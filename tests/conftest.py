"""Shared test configuration."""

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# NumPy-heavy property tests can be slow on loaded CI machines; disable the
# per-example deadline and register a thorough profile.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=50,
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test generator."""
    return np.random.default_rng(12345)
