"""Tests for 3-value quantization with sparsity multiplication (paper §3.1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.quantization import (
    QuantizedTensor,
    dequantize_3value,
    quantize_3value,
    quantize_stochastic_ternary,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)
tensors = hnp.arrays(
    dtype=np.float32, shape=hnp.array_shapes(max_dims=3, max_side=16), elements=finite_floats
)
multipliers = st.floats(min_value=1.0, max_value=1.999)


class TestQuantize3Value:
    def test_known_example_from_paper_figure3(self):
        # Figure 3's accumulated tensor with M = 0.3 (s = 1).
        tensor = np.array(
            [
                [-0.3, 0.1, -0.4, 0.0],
                [-0.2, 0.0, -0.2, -0.1],
                [0.1, -0.4, 0.1, 0.3],
                [0.0, 0.3, -0.2, 0.0],
            ],
            dtype=np.float32,
        )
        # Figure 3 shows M printed as 0.3 but the max is 0.4; use the real max.
        q = quantize_3value(tensor, 1.0)
        assert q.scale == pytest.approx(0.4)
        assert set(np.unique(q.values)) <= {-1, 0, 1}
        # Entries with |t| > M/2 = 0.2 quantize to ±1.
        assert q.values[0, 2] == -1  # -0.4
        assert q.values[2, 3] == 1  # 0.3
        assert q.values[0, 1] == 0  # 0.1

    def test_values_are_ternary_int8(self, rng):
        q = quantize_3value(rng.normal(size=(5, 7)).astype(np.float32), 1.5)
        assert q.values.dtype == np.int8
        assert set(np.unique(q.values)) <= {-1, 0, 1}

    def test_scale_is_max_magnitude_times_s(self, rng):
        t = rng.normal(size=100).astype(np.float32)
        for s in (1.0, 1.25, 1.9):
            q = quantize_3value(t, s)
            assert q.scale == pytest.approx(float(np.max(np.abs(t))) * s, rel=1e-6)

    def test_zero_tensor(self):
        q = quantize_3value(np.zeros((3, 3), dtype=np.float32), 1.5)
        assert q.scale == 0.0
        assert not q.values.any()
        assert dequantize_3value(q).sum() == 0.0

    def test_empty_tensor(self):
        q = quantize_3value(np.zeros((0,), dtype=np.float32))
        assert q.scale == 0.0
        assert q.values.shape == (0,)

    def test_shape_preserved(self, rng):
        t = rng.normal(size=(2, 3, 4)).astype(np.float32)
        assert quantize_3value(t).shape == (2, 3, 4)

    @pytest.mark.parametrize("s", [0.5, 0.99, 2.0, 2.5, -1.0])
    def test_invalid_multiplier_rejected(self, s):
        with pytest.raises(ValueError, match="sparsity multiplier"):
            quantize_3value(np.ones(3, dtype=np.float32), s)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            quantize_3value(np.array([1.0, np.nan], dtype=np.float32))

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            quantize_3value(np.array([1.0, np.inf], dtype=np.float32))

    def test_larger_s_never_less_sparse(self, rng):
        t = rng.normal(size=1000).astype(np.float32)
        sparsities = [quantize_3value(t, s).sparsity for s in (1.0, 1.3, 1.6, 1.9)]
        assert sparsities == sorted(sparsities)

    def test_s_close_to_2_zeroes_all_but_extremes(self, rng):
        t = rng.uniform(-1, 1, size=1000).astype(np.float32)
        q = quantize_3value(t, 1.99)
        # Only entries with |t| >= M/2 ≈ 0.995 * max survive.
        surviving = np.abs(t) >= q.scale / 2
        np.testing.assert_array_equal(q.values != 0, surviving)

    @given(tensor=tensors, s=multipliers)
    def test_error_bound_holds(self, tensor, s):
        """Paper §3.1 convergence bound: max|T - out| <= M/2 < max|T|."""
        q = quantize_3value(tensor, s)
        out = dequantize_3value(q, dtype=np.float64)
        err = np.max(np.abs(tensor.astype(np.float64) - out)) if tensor.size else 0.0
        assert err <= q.scale / 2 + 1e-4 * max(1.0, q.scale)
        if q.scale > 0:
            assert q.scale / 2 < float(np.max(np.abs(tensor))) + 1e-9

    @given(tensor=tensors, s=multipliers)
    def test_ternary_output_property(self, tensor, s):
        q = quantize_3value(tensor, s)
        assert q.values.shape == tensor.shape
        if tensor.size:
            assert int(q.values.min()) >= -1
            assert int(q.values.max()) <= 1

    def test_dequantize_roundtrip_signs(self, rng):
        t = rng.normal(size=500).astype(np.float32)
        q = quantize_3value(t, 1.0)
        out = dequantize_3value(q)
        nonzero = q.values != 0
        np.testing.assert_array_equal(np.sign(out[nonzero]), np.sign(t[nonzero]))


class TestQuantizedTensor:
    def test_sparsity_of_empty(self):
        q = QuantizedTensor(np.zeros((0,), dtype=np.int8), 0.0)
        assert q.sparsity == 1.0

    def test_sparsity_counts_zeros(self):
        q = QuantizedTensor(np.array([-1, 0, 0, 1], dtype=np.int8), 1.0)
        assert q.sparsity == 0.5

    def test_dequantize_method_matches_function(self, rng):
        t = rng.normal(size=64).astype(np.float32)
        q = quantize_3value(t, 1.25)
        np.testing.assert_array_equal(q.dequantize(), dequantize_3value(q))


class TestStochasticTernary:
    def test_unbiased_in_expectation(self, rng):
        t = np.array([0.5, -0.25, 0.1, 0.0], dtype=np.float32)
        trials = 4000
        total = np.zeros_like(t, dtype=np.float64)
        for _ in range(trials):
            q = quantize_stochastic_ternary(t, rng)
            total += q.scale * q.values
        mean = total / trials
        np.testing.assert_allclose(mean, t, atol=0.03)

    def test_zero_stays_zero(self, rng):
        t = np.array([0.0, 0.0, 1.0], dtype=np.float32)
        for _ in range(50):
            q = quantize_stochastic_ternary(t, rng)
            assert q.values[0] == 0 and q.values[1] == 0

    def test_max_magnitude_always_selected(self, rng):
        t = np.array([0.2, -1.0, 0.1], dtype=np.float32)
        for _ in range(50):
            q = quantize_stochastic_ternary(t, rng)
            assert q.values[1] == -1  # probability |t|/M = 1

    def test_scale_has_no_sparsity_multiplier(self, rng):
        t = rng.normal(size=100).astype(np.float32)
        q = quantize_stochastic_ternary(t, rng)
        assert q.scale == pytest.approx(float(np.max(np.abs(t))))

    def test_zero_tensor(self, rng):
        q = quantize_stochastic_ternary(np.zeros(5, dtype=np.float32), rng)
        assert q.scale == 0.0 and not q.values.any()

    def test_nan_rejected(self, rng):
        with pytest.raises(ValueError, match="non-finite"):
            quantize_stochastic_ternary(np.array([np.nan], dtype=np.float32), rng)

    def test_deterministic_given_rng(self):
        t = np.linspace(-1, 1, 50).astype(np.float32)
        a = quantize_stochastic_ternary(t, np.random.default_rng(7))
        b = quantize_stochastic_ternary(t, np.random.default_rng(7))
        np.testing.assert_array_equal(a.values, b.values)
