"""Tests for Elias gamma coding (the QSGD/§6 entropy-coding comparator)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.elias import (
    elias_gamma_bit_length,
    elias_gamma_decode,
    elias_gamma_encode,
)


class TestRoundTrip:
    def test_small_values(self):
        values = np.arange(1, 100, dtype=np.int64)
        decoded = elias_gamma_decode(elias_gamma_encode(values), values.size)
        np.testing.assert_array_equal(decoded.astype(np.int64), values)

    def test_single_value_one(self):
        # 1 is the shortest codeword: the single bit '1'.
        stream = elias_gamma_encode(np.array([1], dtype=np.int64))
        assert stream == b"\x80"
        assert elias_gamma_decode(stream, 1)[0] == 1

    def test_powers_of_two(self):
        values = (np.int64(1) << np.arange(40)).astype(np.int64)
        decoded = elias_gamma_decode(elias_gamma_encode(values), values.size)
        np.testing.assert_array_equal(decoded.astype(np.int64), values)

    def test_empty(self):
        assert elias_gamma_encode(np.zeros(0, dtype=np.int64)) == b""
        assert elias_gamma_decode(b"", 0).size == 0

    @given(
        st.lists(st.integers(min_value=1, max_value=2**32), min_size=1, max_size=200)
    )
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        decoded = elias_gamma_decode(elias_gamma_encode(arr), arr.size)
        np.testing.assert_array_equal(decoded.astype(np.int64), arr)

    @given(st.lists(st.integers(min_value=1, max_value=10**6), max_size=100))
    def test_stream_length_matches_bit_length(self, values):
        arr = np.array(values, dtype=np.int64)
        stream = elias_gamma_encode(arr)
        bits = elias_gamma_bit_length(arr)
        assert len(stream) == -(-bits // 8)


class TestBitLength:
    def test_known_lengths(self):
        # gamma(1)=1 bit, gamma(2..3)=3, gamma(4..7)=5, gamma(8..15)=7.
        assert elias_gamma_bit_length(np.array([1])) == 1
        assert elias_gamma_bit_length(np.array([2])) == 3
        assert elias_gamma_bit_length(np.array([3])) == 3
        assert elias_gamma_bit_length(np.array([4])) == 5
        assert elias_gamma_bit_length(np.array([15])) == 7

    def test_skewed_input_beats_fixed_width(self):
        # A 99%-ones stream costs close to 1 bit/value — the property QSGD
        # exploits for near-sparse gradients.
        values = np.ones(1000, dtype=np.int64)
        values[::100] = 7
        bits = elias_gamma_bit_length(values)
        assert bits / values.size < 1.1


class TestValidation:
    def test_zero_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            elias_gamma_encode(np.array([0], dtype=np.int64))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            elias_gamma_encode(np.array([3, -1], dtype=np.int64))

    def test_float_rejected(self):
        with pytest.raises(TypeError, match="integer"):
            elias_gamma_encode(np.array([1.5]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            elias_gamma_encode(np.ones((2, 2), dtype=np.int64))

    def test_truncated_stream(self):
        stream = elias_gamma_encode(np.array([100, 100], dtype=np.int64))
        with pytest.raises(ValueError, match="truncated|exhausted"):
            elias_gamma_decode(stream[:1], 2)

    def test_count_beyond_stream(self):
        stream = elias_gamma_encode(np.array([1], dtype=np.int64))
        with pytest.raises(ValueError, match="exhausted"):
            elias_gamma_decode(stream, 20)

    def test_negative_count(self):
        with pytest.raises(ValueError, match=">= 0"):
            elias_gamma_decode(b"", -1)


class TestDelta:
    """Elias delta: gamma-coded length + raw low bits."""

    def test_roundtrip_small(self):
        from repro.core.elias import elias_delta_decode, elias_delta_encode

        values = np.arange(1, 500, dtype=np.int64)
        decoded = elias_delta_decode(elias_delta_encode(values), values.size)
        np.testing.assert_array_equal(decoded.astype(np.int64), values)

    def test_known_lengths(self):
        from repro.core.elias import elias_delta_bit_length

        # delta(1) = '1' (1 bit); delta(2) = gamma(2)+1 low bit = 4 bits;
        # delta(4..7) = gamma(3)+2 = 5 bits.
        assert elias_delta_bit_length(np.array([1])) == 1
        assert elias_delta_bit_length(np.array([2])) == 4
        assert elias_delta_bit_length(np.array([3])) == 4
        assert elias_delta_bit_length(np.array([4])) == 5
        assert elias_delta_bit_length(np.array([7])) == 5

    def test_delta_beats_gamma_on_large_values(self):
        from repro.core.elias import elias_delta_bit_length

        large = np.full(50, 10**9, dtype=np.int64)
        assert elias_delta_bit_length(large) < elias_gamma_bit_length(large)

    def test_gamma_matches_delta_on_ones(self):
        from repro.core.elias import elias_delta_bit_length

        ones = np.ones(64, dtype=np.int64)
        assert elias_delta_bit_length(ones) == elias_gamma_bit_length(ones) == 64

    def test_gamma_beats_delta_on_quantization_levels(self):
        # Ternary-like levels (mostly 1, some 2): gamma's practical niche.
        from repro.core.elias import elias_delta_bit_length

        levels = np.ones(1000, dtype=np.int64)
        levels[::7] = 2
        assert elias_gamma_bit_length(levels) <= elias_delta_bit_length(levels)

    @given(
        st.lists(st.integers(min_value=1, max_value=2**40), min_size=1, max_size=150)
    )
    def test_roundtrip_property(self, values):
        from repro.core.elias import elias_delta_decode, elias_delta_encode

        arr = np.array(values, dtype=np.int64)
        decoded = elias_delta_decode(elias_delta_encode(arr), arr.size)
        np.testing.assert_array_equal(decoded.astype(np.int64), arr)

    def test_stream_length_matches_bit_length(self):
        from repro.core.elias import elias_delta_bit_length, elias_delta_encode

        arr = np.arange(1, 300, dtype=np.int64)
        assert len(elias_delta_encode(arr)) == -(-elias_delta_bit_length(arr) // 8)

    def test_truncation_detected(self):
        from repro.core.elias import elias_delta_decode, elias_delta_encode

        stream = elias_delta_encode(np.array([1000, 1000], dtype=np.int64))
        with pytest.raises(ValueError, match="truncated|exhausted"):
            elias_delta_decode(stream[:1], 2)

    def test_zero_rejected(self):
        from repro.core.elias import elias_delta_encode

        with pytest.raises(ValueError, match=">= 1"):
            elias_delta_encode(np.array([0], dtype=np.int64))

    def test_empty(self):
        from repro.core.elias import elias_delta_decode, elias_delta_encode

        assert elias_delta_encode(np.zeros(0, dtype=np.int64)) == b""
        assert elias_delta_decode(b"", 0).size == 0
