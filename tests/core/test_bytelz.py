"""Tests for the byte-LZ comparator (§3.3 general-purpose compression)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bytelz import MAX_MATCH, MIN_MATCH, lz_decode, lz_encode
from repro.core.quantization import quantize_3value
from repro.core.quartic import quartic_encode


class TestRoundTrip:
    def test_empty(self):
        assert lz_encode(b"") == b""
        assert lz_decode(b"") == b""

    def test_short_input_below_min_match(self):
        for data in (b"a", b"ab", b"abc"):
            assert lz_decode(lz_encode(data)) == data

    def test_incompressible(self, rng):
        data = rng.integers(0, 256, size=1000, dtype=np.uint8).tobytes()
        encoded = lz_encode(data)
        assert lz_decode(encoded) == data
        # Random bytes: at worst a ~1% framing overhead.
        assert len(encoded) <= len(data) + len(data) // 128 + 8

    def test_long_run_compresses_hard(self):
        data = bytes([121]) * 10_000
        encoded = lz_encode(data)
        assert lz_decode(encoded) == data
        # Self-overlapping copies encode the run in O(n / MAX_MATCH) tokens.
        assert len(encoded) < 300

    def test_repeated_pattern(self):
        data = b"abcdefgh" * 500
        encoded = lz_encode(data)
        assert lz_decode(encoded) == data
        assert len(encoded) < len(data) / 10

    def test_quartic_stream_roundtrip(self, rng):
        tensor = (rng.normal(0, 0.01, size=50_000)).astype(np.float32)
        quartic = quartic_encode(quantize_3value(tensor, 1.75).values).tobytes()
        assert lz_decode(lz_encode(quartic)) == quartic

    @given(st.binary(max_size=2000))
    def test_roundtrip_property(self, data):
        assert lz_decode(lz_encode(data)) == data

    @given(st.integers(1, 400), st.integers(0, 255), st.integers(1, 5))
    def test_runs_roundtrip(self, run_len, byte, pieces):
        data = (bytes([byte]) * run_len + b"XY") * pieces
        assert lz_decode(lz_encode(data)) == data


class TestFormat:
    def test_literal_only_stream(self):
        # 3 bytes < MIN_MATCH: one literal token.
        assert lz_encode(b"abc") == b"\x02abc"

    def test_copy_token_layout(self):
        # 4 + 4 identical bytes: literal "abcd" then a copy of length 4,
        # offset 4 -> tag 0x80, offset LE 04 00.
        encoded = lz_encode(b"abcdabcd")
        assert encoded == b"\x03abcd\x80\x04\x00"

    def test_max_match_is_honoured(self):
        data = bytes([7]) * (MAX_MATCH * 3)
        encoded = lz_encode(data)
        for i, tag in enumerate(encoded):
            if tag >= 0x80:
                assert (tag & 0x7F) + MIN_MATCH <= MAX_MATCH
        assert lz_decode(encoded) == data


class TestValidation:
    def test_truncated_literal(self):
        with pytest.raises(ValueError, match="truncated literal"):
            lz_decode(b"\x05ab")

    def test_truncated_copy(self):
        with pytest.raises(ValueError, match="truncated copy"):
            lz_decode(b"\x80\x04")

    def test_zero_offset_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            lz_decode(b"\x00a\x80\x00\x00")

    def test_offset_beyond_output_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            lz_decode(b"\x00a\x80\x09\x00")
