"""Tests for error accumulation buffers (paper §3.1, Figure 3)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.error_feedback import ErrorAccumulationBuffer
from repro.core.quantization import dequantize_3value, quantize_3value


class TestBufferBasics:
    def test_starts_zero(self):
        buf = ErrorAccumulationBuffer((3, 4))
        assert buf.shape == (3, 4)
        assert not buf.residual.any()

    def test_add_returns_sum_copy(self):
        buf = ErrorAccumulationBuffer((2,))
        out = buf.add(np.array([1.0, 2.0], dtype=np.float32))
        np.testing.assert_array_equal(out, [1.0, 2.0])
        out[0] = 99.0  # mutating the copy must not affect the buffer
        np.testing.assert_array_equal(buf.residual, [1.0, 2.0])

    def test_subtract_records_residual(self):
        buf = ErrorAccumulationBuffer((2,))
        buf.add(np.array([1.0, 2.0], dtype=np.float32))
        buf.subtract(np.array([0.75, 2.5], dtype=np.float32))
        np.testing.assert_allclose(buf.residual, [0.25, -0.5])

    def test_residual_is_read_only(self):
        buf = ErrorAccumulationBuffer((2,))
        with pytest.raises(ValueError):
            buf.residual[0] = 1.0

    def test_shape_mismatch_rejected(self):
        buf = ErrorAccumulationBuffer((2, 2))
        with pytest.raises(ValueError, match="shape mismatch"):
            buf.add(np.zeros(3, dtype=np.float32))
        with pytest.raises(ValueError, match="shape mismatch"):
            buf.subtract(np.zeros((3, 3), dtype=np.float32))

    def test_reset(self):
        buf = ErrorAccumulationBuffer((2,))
        buf.add(np.ones(2, dtype=np.float32))
        buf.reset()
        assert not buf.residual.any()
        assert buf.l2_norm() == 0.0

    def test_l2_norm(self):
        buf = ErrorAccumulationBuffer((2,))
        buf.add(np.array([3.0, 4.0], dtype=np.float32))
        assert buf.l2_norm() == pytest.approx(5.0)

    def test_transact_runs_full_cycle(self):
        buf = ErrorAccumulationBuffer((3,))

        def lossy(t):
            q = quantize_3value(t, 1.0)
            return q, dequantize_3value(q)

        t = np.array([0.4, -0.1, 0.0], dtype=np.float32)
        message = buf.transact(t, lossy)
        assert set(np.unique(message.values)) <= {-1, 0, 1}
        # Residual equals input minus reconstruction.
        np.testing.assert_allclose(
            buf.residual, t - dequantize_3value(message), atol=1e-7
        )


class TestErrorCorrectionSemantics:
    def test_accumulated_error_is_eventually_transmitted(self):
        """A constant small input below the quantization threshold must
        still get through via accumulation (the core claim of §3.1)."""
        buf = ErrorAccumulationBuffer((1,))
        constant = np.array([0.3], dtype=np.float32)
        transmitted = 0.0
        for _ in range(10):
            corrected = buf.add(constant)
            q = quantize_3value(corrected, 1.0)
            recon = dequantize_3value(q)
            buf.subtract(recon)
            transmitted += float(recon[0])
        # Ten steps of 0.3 = 3.0 total; all of it must have been sent
        # (single-element tensors quantize exactly).
        assert transmitted == pytest.approx(3.0, abs=1e-5)

    def test_residual_stays_bounded_under_quantization(self, rng):
        """Residual never exceeds M/2 of the corrected tensor, so error
        feedback cannot diverge."""
        buf = ErrorAccumulationBuffer((64,))
        for _ in range(100):
            t = rng.normal(0, 0.1, 64).astype(np.float32)
            corrected = buf.add(t)
            q = quantize_3value(corrected, 1.9)
            buf.subtract(dequantize_3value(q))
            if q.scale > 0:
                assert float(np.abs(buf.residual).max()) <= q.scale / 2 + 1e-5

    @given(seed=st.integers(0, 2**16))
    def test_telescoping_identity(self, seed):
        """sum(inputs) == sum(reconstructions) + final residual, exactly
        the invariant that makes error feedback unbiased over time."""
        rng = np.random.default_rng(seed)
        buf = ErrorAccumulationBuffer((16,))
        total_in = np.zeros(16, dtype=np.float64)
        total_out = np.zeros(16, dtype=np.float64)
        for _ in range(20):
            t = rng.normal(0, 1, 16).astype(np.float32)
            total_in += t
            corrected = buf.add(t)
            q = quantize_3value(corrected, 1.5)
            recon = dequantize_3value(q)
            buf.subtract(recon)
            total_out += recon
        np.testing.assert_allclose(
            total_in, total_out + buf.residual, atol=1e-3
        )
