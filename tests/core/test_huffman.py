"""Tests for the canonical Huffman comparator (paper §3.3/§6 context)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.huffman import (
    build_code_lengths,
    canonical_codes,
    huffman_decode,
    huffman_encode,
)
from repro.core.quartic import quartic_encode
from repro.core.zre import zre_encode


class TestCodeConstruction:
    def test_kraft_inequality_holds(self, rng):
        freqs = np.zeros(256, dtype=np.int64)
        freqs[:10] = rng.integers(1, 1000, size=10)
        lengths = build_code_lengths(freqs)
        kraft = sum(2.0 ** -int(l) for l in lengths if l > 0)
        assert kraft <= 1.0 + 1e-12

    def test_more_frequent_not_longer(self, rng):
        freqs = np.zeros(256, dtype=np.int64)
        freqs[0] = 1000
        freqs[1] = 10
        freqs[2] = 10
        lengths = build_code_lengths(freqs)
        assert lengths[0] <= lengths[1]

    def test_single_symbol_gets_one_bit(self):
        freqs = np.zeros(256, dtype=np.int64)
        freqs[42] = 7
        lengths = build_code_lengths(freqs)
        assert lengths[42] == 1
        assert lengths.sum() == 1

    def test_empty_frequencies(self):
        assert not build_code_lengths(np.zeros(256, dtype=np.int64)).any()

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            build_code_lengths(np.zeros(10, dtype=np.int64))

    def test_canonical_codes_are_prefix_free(self, rng):
        freqs = np.zeros(256, dtype=np.int64)
        freqs[:20] = rng.integers(1, 100, size=20)
        lengths = build_code_lengths(freqs)
        codes = canonical_codes(lengths)
        entries = [
            (format(int(codes[s]), f"0{int(lengths[s])}b"))
            for s in np.flatnonzero(lengths > 0)
        ]
        for a in entries:
            for b in entries:
                if a != b:
                    assert not b.startswith(a)


class TestRoundTrip:
    def test_simple(self):
        data = np.array([1, 1, 2, 3, 1, 1], dtype=np.uint8)
        np.testing.assert_array_equal(huffman_decode(huffman_encode(data)), data)

    def test_empty(self):
        assert huffman_decode(huffman_encode(np.zeros(0, dtype=np.uint8))).size == 0

    def test_single_symbol_stream(self):
        data = np.full(100, 121, dtype=np.uint8)
        np.testing.assert_array_equal(huffman_decode(huffman_encode(data)), data)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            huffman_decode(b"\x00\x01")

    @settings(max_examples=25)
    @given(data=hnp.arrays(dtype=np.uint8, shape=st.integers(0, 400),
                           elements=st.integers(0, 255)))
    def test_roundtrip_property(self, data):
        np.testing.assert_array_equal(huffman_decode(huffman_encode(data)), data)

    @settings(max_examples=25)
    @given(data=hnp.arrays(dtype=np.uint8, shape=st.integers(1, 400),
                           elements=st.sampled_from([121] * 8 + [0, 60, 242])))
    def test_roundtrip_skewed(self, data):
        np.testing.assert_array_equal(huffman_decode(huffman_encode(data)), data)


class TestVsZre:
    def test_huffman_beats_zre_on_skewed_quartic_data(self, rng):
        """Entropy coding wins on ratio for very skewed streams — the paper
        concedes ratio and argues speed/simplicity instead."""
        values = rng.choice([-1, 0, 1], p=[0.01, 0.98, 0.01], size=100_000).astype(
            np.int8
        )
        quartic = quartic_encode(values)
        zre_size = zre_encode(quartic).size
        huff_size = len(huffman_encode(quartic))
        # Huffman should be in the same ballpark or better despite its
        # 260-byte table overhead.
        assert huff_size < 2.5 * zre_size

    def test_zre_payload_is_competitive_on_moderate_sparsity(self, rng):
        values = rng.choice([-1, 0, 1], p=[0.1, 0.8, 0.1], size=100_000).astype(
            np.int8
        )
        quartic = quartic_encode(values)
        zre_size = zre_encode(quartic).size
        huff_size = len(huffman_encode(quartic))
        assert zre_size < 4 * huff_size
