"""Tests for the wire format (frame pack/unpack, integrity checks)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.packets import MAGIC, CodecId, WireMessage


def make_message(**overrides):
    defaults = dict(
        codec_id=CodecId.THREELC,
        shape=(3, 4),
        payload=b"\x01\x02\x03",
        scalars=(0.25,),
        dtype=np.float32,
    )
    defaults.update(overrides)
    return WireMessage(**defaults)


class TestWireMessage:
    def test_roundtrip(self):
        msg = make_message()
        again = WireMessage.unpack(msg.pack())
        assert again == msg

    def test_roundtrip_empty_payload(self):
        msg = make_message(payload=b"", shape=())
        assert WireMessage.unpack(msg.pack()) == msg

    def test_roundtrip_many_scalars(self):
        msg = make_message(scalars=tuple(float(i) for i in range(10)))
        assert WireMessage.unpack(msg.pack()) == msg

    def test_element_count(self):
        assert make_message(shape=(3, 4)).element_count == 12
        assert make_message(shape=()).element_count == 1
        assert make_message(shape=(0, 5)).element_count == 0

    def test_wire_size_matches_packed_length(self):
        msg = make_message()
        assert msg.wire_size == len(msg.pack())

    def test_wire_size_includes_header_overhead(self):
        msg = make_message(payload=b"")
        assert msg.wire_size > 0

    def test_magic_prefix(self):
        assert make_message().pack().startswith(MAGIC)

    def test_crc_detects_corruption(self):
        data = bytearray(make_message().pack())
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(ValueError, match="CRC"):
            WireMessage.unpack(bytes(data))

    def test_truncation_detected(self):
        data = make_message().pack()
        with pytest.raises(ValueError):
            WireMessage.unpack(data[: len(data) - 6])

    def test_bad_magic_rejected(self):
        data = bytearray(make_message().pack())
        # Corrupt magic and fix the CRC so only the magic check can fire.
        import struct
        import zlib

        data[0] ^= 0xFF
        body = bytes(data[:-4])
        data[-4:] = struct.pack("<I", zlib.crc32(body))
        with pytest.raises(ValueError, match="magic"):
            WireMessage.unpack(bytes(data))

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            make_message(dtype=np.int32)

    def test_float64_supported(self):
        msg = make_message(dtype=np.float64)
        assert WireMessage.unpack(msg.pack()).dtype == np.float64

    def test_too_many_dims_rejected(self):
        with pytest.raises(ValueError, match="dimensions"):
            make_message(shape=(1,) * 256)

    def test_codec_ids_distinct(self):
        values = [c.value for c in CodecId]
        assert len(values) == len(set(values))

    @given(
        shape=st.lists(st.integers(0, 100), max_size=4).map(tuple),
        payload=st.binary(max_size=200),
        scalars=st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=4
        ).map(tuple),
        codec=st.sampled_from(list(CodecId)),
    )
    def test_roundtrip_property(self, shape, payload, scalars, codec):
        msg = WireMessage(codec_id=codec, shape=shape, payload=payload, scalars=scalars)
        again = WireMessage.unpack(msg.pack())
        assert again == msg
        assert msg.wire_size == len(msg.pack())
