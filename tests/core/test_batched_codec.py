"""Batched codec path: bit-identity with the per-tensor reference.

``ThreeLCCodec.compress_batch`` and ``compress_context_batch`` are the
engine's per-step hot path; their contract is *equivalence*, not
approximation — every wire message, scale, reconstruction, and error
residual must match the per-tensor calls byte for byte, or a batched
engine would train a (subtly) different model than the reference.
"""

import numpy as np
import pytest

from repro.core.codec import (
    CompressionContext,
    ThreeLCCodec,
    compress_context_batch,
)


def random_tensors(rng, count, *, dtype=np.float32):
    shapes = [(0,), (1,), (7,), (64,), (3, 5), (16, 16), (2, 3, 4)]
    return [
        rng.standard_normal(shapes[i % len(shapes)]).astype(dtype)
        for i in range(count)
    ]


def assert_results_identical(batch, reference):
    assert len(batch) == len(reference)
    for got, want in zip(batch, reference):
        assert got.message.codec_id == want.message.codec_id
        assert got.message.shape == want.message.shape
        assert got.message.payload == want.message.payload
        assert got.message.scalars == want.message.scalars
        assert got.message.dtype == want.message.dtype
        assert got.reconstruction.dtype == want.reconstruction.dtype
        assert np.array_equal(got.reconstruction, want.reconstruction)


@pytest.mark.parametrize("s", [1.0, 1.5, 1.99])
@pytest.mark.parametrize("use_zre", [True, False])
def test_compress_batch_matches_sequential(s, use_zre):
    rng = np.random.default_rng(0)
    codec = ThreeLCCodec(s, use_zre=use_zre)
    tensors = random_tensors(rng, 9)
    assert_results_identical(
        codec.compress_batch(tensors), [codec.compress(t) for t in tensors]
    )


def test_compress_batch_float64():
    rng = np.random.default_rng(1)
    codec = ThreeLCCodec(1.0, dtype=np.float64)
    tensors = random_tensors(rng, 5, dtype=np.float64)
    assert_results_identical(
        codec.compress_batch(tensors), [codec.compress(t) for t in tensors]
    )


def test_compress_batch_empty_input():
    assert ThreeLCCodec().compress_batch([]) == []


def test_compress_batch_roundtrips():
    rng = np.random.default_rng(2)
    codec = ThreeLCCodec(1.5)
    for result in codec.compress_batch(random_tensors(rng, 6)):
        assert np.array_equal(
            codec.decompress(result.message), result.reconstruction
        )


@pytest.mark.parametrize("error_feedback", [True, False])
def test_context_batch_matches_sequential_over_steps(error_feedback):
    """Error feedback accumulates across steps; batched and sequential
    context pipelines must keep bit-identical residuals throughout."""
    rng = np.random.default_rng(3)
    codec = ThreeLCCodec(1.0)
    shapes = [(32,), (4, 4), (17,)]
    batched_ctxs = [
        CompressionContext(sh, codec, error_feedback=error_feedback)
        for sh in shapes
    ]
    sequential_ctxs = [
        CompressionContext(sh, codec, error_feedback=error_feedback)
        for sh in shapes
    ]
    for _ in range(4):
        tensors = [rng.standard_normal(sh).astype(np.float32) for sh in shapes]
        batch = compress_context_batch(zip(batched_ctxs, tensors))
        reference = [
            ctx.compress(t) for ctx, t in zip(sequential_ctxs, tensors)
        ]
        assert_results_identical(batch, reference)
        for got, want in zip(batched_ctxs, sequential_ctxs):
            assert got.residual_norm() == want.residual_norm()
            if error_feedback:
                assert np.array_equal(
                    got.buffer.residual, want.buffer.residual
                )


def test_context_batch_groups_per_codec():
    """Contexts with distinct codecs batch per codec, results in input
    order and identical to the per-context path."""
    rng = np.random.default_rng(4)
    codec_a = ThreeLCCodec(1.0)
    codec_b = ThreeLCCodec(1.9, use_zre=False)
    ctxs = [
        CompressionContext((24,), codec_a),
        CompressionContext((24,), codec_b),
        CompressionContext((12,), codec_a),
    ]
    mirror = [
        CompressionContext((24,), codec_a),
        CompressionContext((24,), codec_b),
        CompressionContext((12,), codec_a),
    ]
    tensors = [
        rng.standard_normal(ctx.shape).astype(np.float32) for ctx in ctxs
    ]
    assert_results_identical(
        compress_context_batch(zip(ctxs, tensors)),
        [ctx.compress(t) for ctx, t in zip(mirror, tensors)],
    )
