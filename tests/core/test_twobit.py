"""Tests for the 2-bit encoding ablation baseline."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.quartic import quartic_encode
from repro.core.twobit import twobit_decode, twobit_encode

ternary = hnp.arrays(
    dtype=np.int8, shape=st.integers(0, 64), elements=st.integers(-1, 1)
)


class TestTwoBit:
    def test_four_values_per_byte(self):
        assert twobit_encode(np.zeros(8, dtype=np.int8)).size == 2
        assert twobit_encode(np.zeros(9, dtype=np.int8)).size == 3

    def test_known_packing(self):
        # digits (2,1,0,1) -> 0b10_01_00_01 = 0x91
        values = np.array([1, 0, -1, 0], dtype=np.int8)
        assert twobit_encode(values).tolist() == [0x91]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="values in"):
            twobit_encode(np.array([2], dtype=np.int8))

    def test_decode_length_check(self):
        with pytest.raises(ValueError, match="inconsistent"):
            twobit_decode(np.zeros(2, dtype=np.uint8), 20)

    def test_decode_rejects_invalid_lane(self):
        with pytest.raises(ValueError, match="digit range"):
            twobit_decode(np.array([0xFF], dtype=np.uint8), 4)

    @given(values=ternary)
    def test_roundtrip(self, values):
        encoded = twobit_encode(values)
        np.testing.assert_array_equal(twobit_decode(encoded, values.size), values)

    @given(values=hnp.arrays(dtype=np.int8, shape=st.integers(20, 200),
                             elements=st.integers(-1, 1)))
    def test_quartic_is_20_percent_smaller(self, values):
        """Paper §3.2: quartic encoding takes 20% less space than 2-bit."""
        q = quartic_encode(values).size
        t = twobit_encode(values).size
        # ceil(n/5) vs ceil(n/4): exactly 0.8 when 20 | n, converging to
        # 0.8 for large n; rounding perturbs small inputs either way.
        assert q <= t
        expected = -(-values.size // 5) / -(-values.size // 4)
        assert q / t == pytest.approx(expected)

    def test_quartic_ratio_exact_at_multiples_of_20(self):
        values = np.zeros(20 * 50, dtype=np.int8)
        assert quartic_encode(values).size / twobit_encode(values).size == 0.8
