"""Tests for zero-run encoding (paper §3.3)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.quartic import MAX_QUARTIC_BYTE, ZERO_GROUP_BYTE, quartic_encode
from repro.core.quantization import quantize_3value
from repro.core.zre import (
    FIRST_ESCAPE_BYTE,
    LAST_ESCAPE_BYTE,
    MAX_RUN,
    MIN_RUN,
    zre_decode,
    zre_decode_reference,
    zre_encode,
    zre_encode_reference,
)

quartic_streams = hnp.arrays(
    dtype=np.uint8,
    shape=st.integers(0, 200),
    elements=st.integers(0, MAX_QUARTIC_BYTE),
)
# Streams biased towards long 121 runs to exercise the escape paths.
zero_heavy_streams = hnp.arrays(
    dtype=np.uint8,
    shape=st.integers(0, 200),
    elements=st.sampled_from([ZERO_GROUP_BYTE] * 9 + list(range(0, 243, 11))),
)


class TestEncode:
    def test_single_121_stays_literal(self):
        data = np.array([7, ZERO_GROUP_BYTE, 9], dtype=np.uint8)
        np.testing.assert_array_equal(zre_encode(data), data)

    def test_run_of_two_becomes_243(self):
        data = np.array([ZERO_GROUP_BYTE] * 2, dtype=np.uint8)
        assert zre_encode(data).tolist() == [FIRST_ESCAPE_BYTE]

    def test_run_of_fourteen_becomes_255(self):
        data = np.array([ZERO_GROUP_BYTE] * MAX_RUN, dtype=np.uint8)
        assert zre_encode(data).tolist() == [LAST_ESCAPE_BYTE]

    @pytest.mark.parametrize("k", range(MIN_RUN, MAX_RUN + 1))
    def test_escape_byte_formula(self, k):
        data = np.array([ZERO_GROUP_BYTE] * k, dtype=np.uint8)
        assert zre_encode(data).tolist() == [FIRST_ESCAPE_BYTE + (k - MIN_RUN)]

    def test_long_run_split_into_chunks(self):
        # 31 = 14 + 14 + 3 -> [255, 255, 244]
        data = np.array([ZERO_GROUP_BYTE] * 31, dtype=np.uint8)
        assert zre_encode(data).tolist() == [255, 255, FIRST_ESCAPE_BYTE + 1]

    def test_run_of_fifteen_leaves_literal_tail(self):
        # 15 = 14 + 1 -> [255, 121]
        data = np.array([ZERO_GROUP_BYTE] * 15, dtype=np.uint8)
        assert zre_encode(data).tolist() == [LAST_ESCAPE_BYTE, ZERO_GROUP_BYTE]

    def test_runs_of_other_bytes_not_compressed(self):
        data = np.array([42] * 10, dtype=np.uint8)
        np.testing.assert_array_equal(zre_encode(data), data)

    def test_mixed_stream(self):
        data = np.array(
            [5, ZERO_GROUP_BYTE, ZERO_GROUP_BYTE, ZERO_GROUP_BYTE, 77], dtype=np.uint8
        )
        assert zre_encode(data).tolist() == [5, FIRST_ESCAPE_BYTE + 1, 77]

    def test_rejects_escape_range_input(self):
        with pytest.raises(ValueError, match="quartic bytes"):
            zre_encode(np.array([FIRST_ESCAPE_BYTE], dtype=np.uint8))

    def test_empty(self):
        assert zre_encode(np.zeros(0, dtype=np.uint8)).size == 0

    def test_never_longer_than_input(self, rng):
        data = rng.integers(0, 243, size=500).astype(np.uint8)
        assert zre_encode(data).size <= data.size


class TestDecode:
    def test_escape_expansion(self):
        encoded = np.array([FIRST_ESCAPE_BYTE + 3], dtype=np.uint8)
        np.testing.assert_array_equal(
            zre_decode(encoded),
            np.full(MIN_RUN + 3, ZERO_GROUP_BYTE, dtype=np.uint8),
        )

    def test_literals_pass_through(self):
        data = np.array([0, 100, 242], dtype=np.uint8)
        np.testing.assert_array_equal(zre_decode(data), data)

    def test_empty(self):
        assert zre_decode(np.zeros(0, dtype=np.uint8)).size == 0


class TestProperties:
    @given(data=quartic_streams)
    def test_roundtrip(self, data):
        np.testing.assert_array_equal(zre_decode(zre_encode(data)), data)

    @given(data=zero_heavy_streams)
    def test_roundtrip_zero_heavy(self, data):
        np.testing.assert_array_equal(zre_decode(zre_encode(data)), data)

    @given(data=zero_heavy_streams)
    def test_vectorized_matches_reference_encoder(self, data):
        np.testing.assert_array_equal(zre_encode(data), zre_encode_reference(data))

    @given(data=quartic_streams)
    def test_vectorized_matches_reference_encoder_uniform(self, data):
        np.testing.assert_array_equal(zre_encode(data), zre_encode_reference(data))

    @given(data=zero_heavy_streams)
    def test_decoder_matches_reference(self, data):
        encoded = zre_encode(data)
        np.testing.assert_array_equal(
            zre_decode(encoded), zre_decode_reference(encoded)
        )

    @given(data=quartic_streams)
    def test_output_never_longer(self, data):
        assert zre_encode(data).size <= data.size


class TestPaperClaims:
    def test_all_zero_tensor_compression_280x(self):
        """§3.3: an all-zero float32 tensor compresses 280× (payload only).

        5 values/byte (quartic) × 14 bytes/escape (ZRE) = 70 values/byte;
        70 × 4 bytes/float32 value = 280.
        """
        n = 70 * 1000  # divisible by 5 and by 14 zero-groups
        quantized = quantize_3value(np.zeros(n, dtype=np.float32), 1.0)
        payload = zre_encode(quartic_encode(quantized.values))
        ratio = (n * 4) / payload.size
        assert ratio == pytest.approx(280.0)

    def test_zre_achieves_2x_on_sparse_quantized_data(self, rng):
        """§3.3 claims ~2× or higher, "which varies by the distribution of
        state change values" — at 95% zeros the run structure suffices."""
        values = rng.choice([-1, 0, 1], p=[0.025, 0.95, 0.025], size=50000).astype(
            np.int8
        )
        quartic = quartic_encode(values)
        encoded = zre_encode(quartic)
        assert quartic.size / encoded.size >= 2.0

    def test_zre_gains_grow_with_sparsity(self, rng):
        ratios = []
        for p_zero in (0.5, 0.8, 0.95, 0.99):
            p_rest = (1 - p_zero) / 2
            values = rng.choice(
                [-1, 0, 1], p=[p_rest, p_zero, p_rest], size=30000
            ).astype(np.int8)
            quartic = quartic_encode(values)
            ratios.append(quartic.size / zre_encode(quartic).size)
        assert ratios == sorted(ratios)
        assert ratios[-1] > 5.0
