"""Tests for quartic encoding (paper §3.2)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.quartic import (
    GROUP_SIZE,
    MAX_QUARTIC_BYTE,
    ZERO_GROUP_BYTE,
    padded_length,
    quartic_decode,
    quartic_decode_reference,
    quartic_encode,
    quartic_encode_reference,
)

ternary_arrays = hnp.arrays(
    dtype=np.int8,
    shape=hnp.array_shapes(max_dims=3, max_side=17),
    elements=st.integers(min_value=-1, max_value=1),
)


class TestEncode:
    def test_five_zeros_encode_to_121(self):
        encoded = quartic_encode(np.zeros(5, dtype=np.int8))
        assert encoded.tolist() == [ZERO_GROUP_BYTE]

    def test_all_ones_encode_to_242(self):
        encoded = quartic_encode(np.ones(5, dtype=np.int8))
        assert encoded.tolist() == [MAX_QUARTIC_BYTE]

    def test_all_minus_ones_encode_to_0(self):
        encoded = quartic_encode(-np.ones(5, dtype=np.int8))
        assert encoded.tolist() == [0]

    def test_quartic_form_digit_weights(self):
        # (a,b,c,d,e) = (2,1,0,1,2) -> 2*81 + 27 + 0 + 3 + 2 = 194
        values = np.array([1, 0, -1, 0, 1], dtype=np.int8)
        assert quartic_encode(values).tolist() == [194]

    def test_output_length_is_ceil_div_5(self):
        for n in range(0, 23):
            encoded = quartic_encode(np.zeros(n, dtype=np.int8))
            assert encoded.size == padded_length(n) // GROUP_SIZE

    def test_padding_digits_are_zero_values(self):
        # 6 values: second group is [x, pad, pad, pad, pad]; pads encode as
        # the zero digit so a trailing zero group stays ZRE-compressible.
        encoded = quartic_encode(np.zeros(6, dtype=np.int8))
        assert encoded.tolist() == [ZERO_GROUP_BYTE, ZERO_GROUP_BYTE]

    def test_output_range(self, rng):
        values = rng.integers(-1, 2, size=1000).astype(np.int8)
        encoded = quartic_encode(values)
        assert encoded.dtype == np.uint8
        assert encoded.max() <= MAX_QUARTIC_BYTE

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="values in"):
            quartic_encode(np.array([0, 2], dtype=np.int8))
        with pytest.raises(ValueError, match="values in"):
            quartic_encode(np.array([-2], dtype=np.int8))

    def test_multidimensional_input_flattened_c_order(self):
        values = np.array([[1, 1, 1, 1, 1], [-1, -1, -1, -1, -1]], dtype=np.int8)
        assert quartic_encode(values).tolist() == [MAX_QUARTIC_BYTE, 0]

    def test_empty(self):
        assert quartic_encode(np.zeros(0, dtype=np.int8)).size == 0


class TestDecode:
    def test_roundtrip_exact(self, rng):
        values = rng.integers(-1, 2, size=123).astype(np.int8)
        encoded = quartic_encode(values)
        np.testing.assert_array_equal(quartic_decode(encoded, 123), values)

    def test_roundtrip_with_shape(self, rng):
        values = rng.integers(-1, 2, size=(4, 9)).astype(np.int8)
        decoded = quartic_decode(quartic_encode(values), 36, shape=(4, 9))
        np.testing.assert_array_equal(decoded, values)

    def test_bad_shape_rejected(self):
        encoded = quartic_encode(np.zeros(10, dtype=np.int8))
        with pytest.raises(ValueError, match="incompatible"):
            quartic_decode(encoded, 10, shape=(3, 4))

    def test_length_mismatch_rejected(self):
        encoded = quartic_encode(np.zeros(10, dtype=np.int8))
        with pytest.raises(ValueError, match="inconsistent"):
            quartic_decode(encoded, 11)

    def test_byte_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="quartic range"):
            quartic_decode(np.array([243], dtype=np.uint8), 5)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            quartic_decode(np.zeros(0, dtype=np.uint8), -1)

    def test_empty(self):
        assert quartic_decode(np.zeros(0, dtype=np.uint8), 0).size == 0


class TestProperties:
    @given(values=ternary_arrays)
    def test_roundtrip_property(self, values):
        encoded = quartic_encode(values)
        decoded = quartic_decode(encoded, values.size, shape=values.shape)
        np.testing.assert_array_equal(decoded, values)

    @given(values=ternary_arrays)
    def test_vectorized_matches_reference_encoder(self, values):
        np.testing.assert_array_equal(
            quartic_encode(values), quartic_encode_reference(values)
        )

    @given(data=hnp.arrays(dtype=np.uint8, shape=st.integers(0, 40),
                           elements=st.integers(0, MAX_QUARTIC_BYTE)))
    def test_vectorized_matches_reference_decoder(self, data):
        count = data.size * GROUP_SIZE
        np.testing.assert_array_equal(
            quartic_decode(data, count), quartic_decode_reference(data, count)
        )

    @given(values=ternary_arrays)
    def test_space_is_1_point_6_bits(self, values):
        encoded = quartic_encode(values)
        # Exactly one byte per five values (before ZRE), i.e. 1.6 bits/value.
        assert encoded.size == padded_length(values.size) // GROUP_SIZE
