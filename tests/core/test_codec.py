"""Tests for the assembled 3LC codec and compression contexts."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.codec import CompressionContext, ThreeLCCodec
from repro.core.packets import CodecId, WireMessage

finite_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False, width=32
)
tensors = hnp.arrays(
    dtype=np.float32, shape=hnp.array_shapes(max_dims=3, max_side=12), elements=finite_floats
)


class TestThreeLCCodec:
    def test_reconstruction_equals_decompression(self, rng):
        codec = ThreeLCCodec(1.5)
        t = rng.normal(size=(17, 13)).astype(np.float32)
        result = codec.compress(t)
        np.testing.assert_array_equal(
            codec.decompress(result.message), result.reconstruction
        )

    def test_wire_roundtrip(self, rng):
        codec = ThreeLCCodec(1.0)
        t = rng.normal(size=64).astype(np.float32)
        result = codec.compress(t)
        again = WireMessage.unpack(result.message.pack())
        np.testing.assert_array_equal(
            codec.decompress(again), result.reconstruction
        )

    def test_codec_id_reflects_zre(self):
        assert ThreeLCCodec(1.0).codec_id is CodecId.THREELC
        assert ThreeLCCodec(1.0, use_zre=False).codec_id is CodecId.THREELC_NO_ZRE

    def test_no_zre_payload_is_exactly_quartic_size(self, rng):
        codec = ThreeLCCodec(1.0, use_zre=False)
        t = rng.normal(size=100).astype(np.float32)
        result = codec.compress(t)
        assert len(result.message.payload) == -(-100 // 5)  # ceil(n/5)

    def test_zre_payload_never_larger(self, rng):
        t = rng.normal(size=1000).astype(np.float32)
        with_zre = ThreeLCCodec(1.75).compress(t)
        without = ThreeLCCodec(1.75, use_zre=False).compress(t)
        assert len(with_zre.message.payload) <= len(without.message.payload)
        np.testing.assert_array_equal(
            with_zre.reconstruction, without.reconstruction
        )

    def test_higher_s_compresses_more(self, rng):
        t = rng.normal(size=10000).astype(np.float32)
        sizes = [
            ThreeLCCodec(s).compress(t).wire_size for s in (1.0, 1.5, 1.75, 1.9)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_invalid_multiplier_fails_at_construction(self):
        with pytest.raises(ValueError):
            ThreeLCCodec(2.0)

    def test_rejects_foreign_message(self):
        codec = ThreeLCCodec(1.0)
        msg = WireMessage(codec_id=CodecId.INT8, shape=(1,), payload=b"\0")
        with pytest.raises(ValueError, match="not a 3LC message"):
            codec.decompress(msg)

    def test_scale_transported_in_scalars(self, rng):
        t = rng.normal(size=10).astype(np.float32) * 3
        result = ThreeLCCodec(1.5).compress(t)
        assert result.message.scalars[0] == pytest.approx(
            float(np.max(np.abs(t))) * 1.5, rel=1e-6
        )

    def test_zero_tensor_tiny_message(self):
        result = ThreeLCCodec(1.0).compress(np.zeros(70000, dtype=np.float32))
        # 70000 values -> 14000 zero-group bytes -> 1000 escape bytes.
        assert len(result.message.payload) == 1000
        assert not result.reconstruction.any()

    def test_bits_per_value(self, rng):
        result = ThreeLCCodec(1.0, use_zre=False).compress(
            rng.normal(size=100000).astype(np.float32)
        )
        # 1.6 bits/value plus a vanishing header contribution.
        assert result.bits_per_value() == pytest.approx(1.6, abs=0.01)

    @given(tensor=tensors, s=st.sampled_from([1.0, 1.5, 1.75, 1.9]))
    def test_roundtrip_property(self, tensor, s):
        codec = ThreeLCCodec(s)
        result = codec.compress(tensor)
        out = codec.decompress(WireMessage.unpack(result.message.pack()))
        np.testing.assert_array_equal(out, result.reconstruction)
        assert out.shape == tensor.shape
        # Error bound (paper §3.1).
        if tensor.size:
            err = np.max(np.abs(tensor - out))
            bound = result.message.scalars[0] / 2
            assert err <= bound + 1e-3 * max(1.0, bound)


class TestCompressionContext:
    def test_error_feedback_accumulates(self):
        ctx = CompressionContext((1,), ThreeLCCodec(1.0))
        # 0.3 quantizes to 1*0.3 for single-element tensors (M = 0.3),
        # so use a two-element tensor where the small entry is deferred.
        ctx2 = CompressionContext((2,), ThreeLCCodec(1.0))
        t = np.array([1.0, 0.3], dtype=np.float32)
        r1 = ctx2.compress(t)
        # 0.3 < M/2 -> deferred; residual remembers it.
        assert r1.reconstruction[1] == 0.0
        assert ctx2.residual_norm() > 0
        # Feeding zeros lets the residual flush out over later steps.
        total = r1.reconstruction.astype(np.float64)
        for _ in range(8):
            r = ctx2.compress(np.zeros(2, dtype=np.float32))
            total += r.reconstruction
        np.testing.assert_allclose(total, t, atol=0.05)
        assert ctx.residual_norm() == 0.0  # untouched context

    def test_without_feedback_is_stateless(self, rng):
        ctx = CompressionContext((8,), ThreeLCCodec(1.0), error_feedback=False)
        t = rng.normal(size=8).astype(np.float32)
        r1 = ctx.compress(t)
        r2 = ctx.compress(t)
        np.testing.assert_array_equal(r1.reconstruction, r2.reconstruction)
        assert ctx.residual_norm() == 0.0

    def test_shape_enforced(self):
        ctx = CompressionContext((4,), ThreeLCCodec(1.0))
        with pytest.raises(ValueError, match="shape"):
            ctx.compress(np.zeros(5, dtype=np.float32))

    def test_decompress_passthrough(self, rng):
        ctx = CompressionContext((6,), ThreeLCCodec(1.25))
        t = rng.normal(size=6).astype(np.float32)
        result = ctx.compress(t)
        np.testing.assert_array_equal(
            ctx.decompress(result.message), result.reconstruction
        )
