"""Scheme-specific behaviour tests."""

import numpy as np
import pytest

from repro.compression.float32 import Float32Compressor
from repro.compression.int8 import INT8_LEVELS, Int8Compressor
from repro.compression.local_steps import LocalStepsCompressor
from repro.compression.onebit import OneBitCompressor
from repro.compression.stochastic_ternary import StochasticTernaryCompressor
from repro.compression.threelc import ThreeLCCompressor
from repro.compression.topk import TopKCompressor, sampled_threshold


class TestFloat32:
    def test_lossless(self, rng):
        t = rng.normal(size=(7, 9)).astype(np.float32)
        c = Float32Compressor()
        ctx = c.make_context(t.shape)
        result = ctx.compress(t)
        np.testing.assert_array_equal(result.reconstruction, t)
        np.testing.assert_array_equal(c.decompress(result.message), t)

    def test_32_bits_per_value_plus_header(self, rng):
        t = rng.normal(size=(1000,)).astype(np.float32)
        result = Float32Compressor().make_context(t.shape).compress(t)
        assert result.bits_per_value() == pytest.approx(32.0, abs=0.5)


class TestInt8:
    def test_error_bounded_by_half_level(self, rng):
        t = rng.normal(size=500).astype(np.float32)
        result = Int8Compressor().make_context(t.shape).compress(t)
        scale = float(np.max(np.abs(t))) / INT8_LEVELS
        assert float(np.max(np.abs(t - result.reconstruction))) <= scale / 2 + 1e-6

    def test_uses_255_levels(self, rng):
        t = np.linspace(-1, 1, 1000).astype(np.float32)
        result = Int8Compressor().make_context(t.shape).compress(t)
        quantized = np.frombuffer(result.message.payload, dtype=np.int8)
        assert quantized.min() == -INT8_LEVELS
        assert quantized.max() == INT8_LEVELS
        assert -128 not in quantized

    def test_zero_tensor(self):
        t = np.zeros(10, dtype=np.float32)
        result = Int8Compressor().make_context(t.shape).compress(t)
        assert not result.reconstruction.any()

    def test_no_error_feedback(self, rng):
        c = Int8Compressor()
        ctx = c.make_context((50,))
        t = rng.normal(size=50).astype(np.float32)
        r1 = ctx.compress(t)
        r2 = ctx.compress(t)
        np.testing.assert_array_equal(r1.reconstruction, r2.reconstruction)


class TestOneBitMQE:
    def test_two_reconstruction_values(self, rng):
        t = rng.normal(size=200).astype(np.float32)
        result = OneBitCompressor().make_context(t.shape).compress(t)
        assert len(np.unique(result.reconstruction)) <= 2

    def test_partition_means_minimize_squared_error(self, rng):
        """The MQE property: within each sign partition the reconstruction
        equals the partition mean, the least-squares-optimal constant."""
        t = rng.normal(size=400).astype(np.float32)
        result = OneBitCompressor().make_context(t.shape).compress(t)
        mean_neg, mean_pos = result.message.scalars
        nonneg = t >= 0
        assert mean_pos == pytest.approx(float(t[nonneg].mean()), rel=1e-5)
        assert mean_neg == pytest.approx(float(t[~nonneg].mean()), rel=1e-5)

    def test_error_feedback_recovers_information(self, rng):
        c = OneBitCompressor()
        ctx = c.make_context((64,))
        t = rng.normal(size=64).astype(np.float32)
        total = np.zeros(64, dtype=np.float64)
        total += ctx.compress(t).reconstruction
        for _ in range(40):
            total += ctx.compress(np.zeros(64, dtype=np.float32)).reconstruction
        # After many flush steps the cumulative transmission approaches t.
        assert float(np.abs(total - t).mean()) < float(np.abs(t).mean()) * 0.35

    def test_all_positive_tensor(self):
        t = np.abs(np.random.default_rng(0).normal(size=30)).astype(np.float32)
        result = OneBitCompressor().make_context(t.shape).compress(t)
        mean_neg, mean_pos = result.message.scalars
        assert mean_neg == 0.0
        assert mean_pos > 0

    def test_payload_is_one_bit_per_value(self):
        t = np.zeros(800, dtype=np.float32)
        result = OneBitCompressor().make_context(t.shape).compress(t)
        assert len(result.message.payload) == 100  # 800 bits


class TestStochasticTernary:
    def test_no_error_feedback_by_design(self, rng):
        c = StochasticTernaryCompressor(seed=3)
        ctx = c.make_context((64,), key=("a",))
        assert ctx.residual_norm() == 0.0
        ctx.compress(rng.normal(size=64).astype(np.float32))
        assert ctx.residual_norm() == 0.0

    def test_reproducible_per_key(self, rng):
        t = rng.normal(size=128).astype(np.float32)
        c = StochasticTernaryCompressor(seed=5)
        r1 = c.make_context(t.shape, key=("k",)).compress(t)
        r2 = c.make_context(t.shape, key=("k",)).compress(t)
        np.testing.assert_array_equal(r1.reconstruction, r2.reconstruction)

    def test_different_keys_differ(self, rng):
        t = rng.normal(size=512).astype(np.float32)
        c = StochasticTernaryCompressor(seed=5)
        r1 = c.make_context(t.shape, key=("k1",)).compress(t)
        r2 = c.make_context(t.shape, key=("k2",)).compress(t)
        assert not np.array_equal(r1.reconstruction, r2.reconstruction)

    def test_quartic_payload_size(self, rng):
        t = rng.normal(size=1000).astype(np.float32)
        c = StochasticTernaryCompressor()
        result = c.make_context(t.shape).compress(t)
        assert len(result.message.payload) == 200  # ceil(1000/5), no ZRE


class TestTopK:
    def test_selects_approximately_target_fraction(self, rng):
        t = rng.normal(size=20000).astype(np.float32)
        c = TopKCompressor(0.25, seed=1)
        result = c.make_context(t.shape).compress(t)
        selected = np.count_nonzero(result.reconstruction)
        assert 0.15 <= selected / t.size <= 0.40

    def test_keeps_largest_magnitudes(self, rng):
        t = rng.normal(size=5000).astype(np.float32)
        c = TopKCompressor(0.05, seed=1)
        result = c.make_context(t.shape).compress(t)
        sent = result.reconstruction != 0
        if sent.any() and (~sent).any():
            assert np.abs(t[sent]).min() >= np.abs(t[~sent]).max() * 0.5

    def test_transmitted_values_exact(self, rng):
        t = rng.normal(size=1000).astype(np.float32)
        c = TopKCompressor(0.25, seed=1)
        result = c.make_context(t.shape).compress(t)
        sent = result.reconstruction != 0
        np.testing.assert_array_equal(result.reconstruction[sent], t[sent])

    def test_unsent_accumulates(self, rng):
        c = TopKCompressor(0.05, seed=1)
        ctx = c.make_context((1000,))
        ctx.compress(rng.normal(size=1000).astype(np.float32))
        assert ctx.residual_norm() > 0

    def test_bitmap_plus_values_wire_format(self, rng):
        t = rng.normal(size=800).astype(np.float32)
        c = TopKCompressor(0.25, seed=1)
        result = c.make_context(t.shape).compress(t)
        selected = int(np.count_nonzero(result.reconstruction))
        assert len(result.message.payload) == 100 + 4 * selected

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            TopKCompressor(0.0)
        with pytest.raises(ValueError):
            TopKCompressor(1.5)

    def test_zero_tensor_sends_nothing(self):
        c = TopKCompressor(0.25, seed=1)
        result = c.make_context((100,)).compress(np.zeros(100, dtype=np.float32))
        assert not result.reconstruction.any()
        assert len(result.message.payload) == 13  # bitmap only


class TestSampledThreshold:
    def test_exact_on_small_input(self, rng):
        values = np.abs(rng.normal(size=100))
        threshold = sampled_threshold(values, 0.25, rng)
        kept = np.count_nonzero(values >= threshold)
        assert 20 <= kept <= 35

    def test_full_fraction_keeps_everything(self, rng):
        values = np.abs(rng.normal(size=50))
        threshold = sampled_threshold(values, 1.0, rng)
        assert np.count_nonzero(values >= threshold) == 50

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            sampled_threshold(np.ones(5), 0.0, rng)

    def test_empty_input(self, rng):
        assert sampled_threshold(np.zeros(0), 0.5, rng) == 0.0


class TestLocalSteps:
    def test_transmits_every_period(self, rng):
        c = LocalStepsCompressor(period=3)
        ctx = c.make_context((8,))
        pattern = [
            ctx.compress(rng.normal(size=8).astype(np.float32)) is not None
            for _ in range(9)
        ]
        assert pattern == [False, False, True] * 3

    def test_accumulated_updates_delivered(self, rng):
        c = LocalStepsCompressor(period=2)
        ctx = c.make_context((16,))
        t1 = rng.normal(size=16).astype(np.float32)
        t2 = rng.normal(size=16).astype(np.float32)
        assert ctx.compress(t1) is None
        result = ctx.compress(t2)
        # Inner codec is lossless float32: the sum arrives exactly.
        np.testing.assert_allclose(result.reconstruction, t1 + t2, atol=1e-6)

    def test_period_one_always_transmits(self, rng):
        ctx = LocalStepsCompressor(period=1).make_context((4,))
        assert ctx.compress(np.ones(4, dtype=np.float32)) is not None

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            LocalStepsCompressor(period=0)

    def test_wrapping_lossy_inner(self, rng):
        inner = ThreeLCCompressor(1.0)
        c = LocalStepsCompressor(period=2, inner=inner)
        ctx = c.make_context((32,), key=("x",))
        assert ctx.compress(rng.normal(size=32).astype(np.float32)) is None
        result = ctx.compress(rng.normal(size=32).astype(np.float32))
        assert result is not None
        np.testing.assert_array_equal(
            c.decompress(result.message), result.reconstruction
        )


class TestThreeLCCompressorAdapter:
    def test_name_encodes_multiplier(self):
        assert ThreeLCCompressor(1.75).name == "3LC (s=1.75)"
        assert "no ZRE" in ThreeLCCompressor(1.0, use_zre=False).name

    def test_error_feedback_togglable(self, rng):
        t = rng.normal(size=64).astype(np.float32)
        with_ef = ThreeLCCompressor(1.9).make_context(t.shape)
        without = ThreeLCCompressor(1.9, error_feedback=False).make_context(t.shape)
        with_ef.compress(t)
        without.compress(t)
        assert with_ef.residual_norm() > 0
        assert without.residual_norm() == 0.0


class TestTernGradClipping:
    """The §5.1 baseline omits TernGrad's clipping; the option restores it."""

    def test_clip_bounds_values(self, rng):
        from repro.compression.stochastic_ternary import clip_gradient

        t = rng.normal(size=5000).astype(np.float32)
        t[0] = 100.0  # outlier
        clipped = clip_gradient(t, 2.5)
        sigma = float(np.std(t))
        assert float(np.max(np.abs(clipped))) <= 2.5 * sigma + 1e-4

    def test_clip_is_noop_within_bound(self, rng):
        from repro.compression.stochastic_ternary import clip_gradient

        t = np.zeros(100, dtype=np.float32)
        np.testing.assert_array_equal(clip_gradient(t, 2.5), t)
        u = np.array([0.1, -0.1], dtype=np.float32)
        np.testing.assert_array_equal(clip_gradient(u, 2.5), u)

    def test_clip_restores_resolution_under_outliers(self, rng):
        # One huge outlier collapses unclipped ternary output to near-all
        # zeros; clipping keeps the bulk of values representable.
        t = rng.normal(0, 0.01, size=10_000).astype(np.float32)
        t[0] = 10.0
        plain = StochasticTernaryCompressor(seed=1)
        clipped = StochasticTernaryCompressor(seed=1, clip_factor=2.5)
        nz_plain = np.count_nonzero(
            plain.make_context(t.shape).compress(t).reconstruction
        )
        nz_clipped = np.count_nonzero(
            clipped.make_context(t.shape).compress(t).reconstruction
        )
        assert nz_clipped > 10 * nz_plain

    def test_clipped_variant_name_and_registry(self):
        from repro.compression import make_compressor

        c = make_compressor("Stoch 3-value + QE (clip 2.5)")
        assert c.name == "Stoch 3-value + QE (clip 2.5)"
        assert c.clip_factor == 2.5

    def test_clip_validation(self):
        from repro.compression.stochastic_ternary import clip_gradient

        with pytest.raises(ValueError, match="clip_factor"):
            StochasticTernaryCompressor(clip_factor=0.0)
        with pytest.raises(ValueError, match="clip_factor"):
            clip_gradient(np.ones(3, dtype=np.float32), -1.0)
