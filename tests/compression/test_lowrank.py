"""Tests for the sufficient-factor (truncated SVD) baseline."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.lowrank import SufficientFactorCompressor, _matrix_shape
from repro.core.packets import CodecId, WireMessage


class TestMatrixShape:
    def test_2d_passthrough(self):
        assert _matrix_shape((10, 20)) == (10, 20)

    def test_4d_conv_kernel_flattens_trailing(self):
        assert _matrix_shape((16, 8, 3, 3)) == (16, 72)

    def test_1d_not_factorable(self):
        assert _matrix_shape((64,)) is None

    def test_degenerate_rows_not_factorable(self):
        assert _matrix_shape((1, 64)) is None
        assert _matrix_shape((64, 1)) is None


class TestSufficientFactors:
    def test_exact_on_rank1_matrix(self, rng):
        u = rng.normal(size=20).astype(np.float32)
        v = rng.normal(size=30).astype(np.float32)
        t = np.outer(u, v)
        c = SufficientFactorCompressor(rank=1)
        result = c.make_context(t.shape).compress(t)
        np.testing.assert_allclose(result.reconstruction, t, atol=1e-4)
        # Nothing left behind when the input is exactly rank 1.
        ctx = c.make_context(t.shape)
        ctx.compress(t)
        assert ctx.residual_norm() < 1e-3

    def test_rank_r_recovers_rank_r_input(self, rng):
        a = rng.normal(size=(25, 4)).astype(np.float32)
        b = rng.normal(size=(4, 35)).astype(np.float32)
        t = a @ b
        result = (
            SufficientFactorCompressor(rank=4).make_context(t.shape).compress(t)
        )
        np.testing.assert_allclose(result.reconstruction, t, atol=1e-2)

    def test_truncation_error_accumulates_for_feedback(self, rng):
        t = rng.normal(size=(30, 30)).astype(np.float32)
        ctx = SufficientFactorCompressor(rank=2).make_context(t.shape)
        result = ctx.compress(t)
        residual = t - result.reconstruction
        assert ctx.residual_norm() == pytest.approx(
            float(np.linalg.norm(residual)), rel=1e-4
        )

    def test_error_feedback_transmits_remainder_over_time(self, rng):
        # Feeding zeros after a full-rank input drains the residual: the
        # discarded spectrum flows out rank-by-rank on later steps.
        t = rng.normal(size=(16, 16)).astype(np.float32)
        ctx = SufficientFactorCompressor(rank=4).make_context(t.shape)
        ctx.compress(t)
        norms = [ctx.residual_norm()]
        for _ in range(4):
            ctx.compress(np.zeros_like(t))
            norms.append(ctx.residual_norm())
        assert norms[-1] < 1e-3
        assert all(a >= b - 1e-6 for a, b in zip(norms, norms[1:]))

    def test_roundtrip(self, rng):
        t = rng.normal(size=(12, 18)).astype(np.float32)
        c = SufficientFactorCompressor(rank=3)
        result = c.make_context(t.shape).compress(t)
        np.testing.assert_allclose(
            c.decompress(result.message), result.reconstruction, atol=1e-5
        )

    def test_wire_roundtrip(self, rng):
        t = rng.normal(size=(9, 7)).astype(np.float32)
        c = SufficientFactorCompressor(rank=2)
        result = c.make_context(t.shape).compress(t)
        again = WireMessage.unpack(result.message.pack())
        np.testing.assert_allclose(
            c.decompress(again), result.reconstruction, atol=1e-5
        )

    def test_conv_kernel_shape(self, rng):
        t = rng.normal(size=(8, 4, 3, 3)).astype(np.float32)
        c = SufficientFactorCompressor(rank=2)
        result = c.make_context(t.shape).compress(t)
        assert result.reconstruction.shape == t.shape
        np.testing.assert_allclose(
            c.decompress(result.message), result.reconstruction, atol=1e-5
        )

    def test_payload_cost_formula(self, rng):
        t = rng.normal(size=(40, 60)).astype(np.float32)
        result = SufficientFactorCompressor(rank=3).make_context(t.shape).compress(t)
        assert len(result.message.payload) == 4 * 3 * (40 + 60)
        # Far below dense float32: 1200 vs 9600 bytes.
        assert len(result.message.payload) < 0.2 * t.nbytes

    def test_bias_fallback_is_lossless(self, rng):
        t = rng.normal(size=17).astype(np.float32)
        c = SufficientFactorCompressor(rank=2)
        result = c.make_context(t.shape).compress(t)
        np.testing.assert_array_equal(result.reconstruction, t)
        np.testing.assert_array_equal(c.decompress(result.message), t)

    def test_rank_clamped_to_matrix(self, rng):
        t = rng.normal(size=(3, 50)).astype(np.float32)
        c = SufficientFactorCompressor(rank=10)
        result = c.make_context(t.shape).compress(t)
        # Rank is min(10, 3, 50) = 3: lossless up to float32 rounding.
        np.testing.assert_allclose(result.reconstruction, t, atol=1e-4)
        assert result.message.scalars[0] == 3.0

    def test_validation(self):
        with pytest.raises(ValueError, match="rank"):
            SufficientFactorCompressor(rank=0)

    def test_rejects_foreign_message(self):
        bad = WireMessage(codec_id=CodecId.FLOAT32, shape=(4, 4), payload=b"")
        with pytest.raises(ValueError, match="low-rank"):
            SufficientFactorCompressor().decompress(bad)

    def test_payload_size_mismatch_detected(self):
        bad = WireMessage(
            codec_id=CodecId.LOW_RANK,
            shape=(4, 4),
            payload=b"\x00" * 12,
            scalars=(2.0,),
        )
        with pytest.raises(ValueError, match="expected"):
            SufficientFactorCompressor().decompress(bad)

    def test_factored_message_for_vector_shape_rejected(self):
        bad = WireMessage(
            codec_id=CodecId.LOW_RANK, shape=(4,), payload=b"", scalars=(1.0,)
        )
        with pytest.raises(ValueError, match="non-factorable"):
            SufficientFactorCompressor().decompress(bad)

    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=1, max_value=4),
    )
    def test_roundtrip_property(self, rows, cols, rank):
        rng = np.random.default_rng(rows * 100 + cols * 10 + rank)
        t = rng.normal(size=(rows, cols)).astype(np.float32)
        c = SufficientFactorCompressor(rank=rank)
        result = c.make_context(t.shape).compress(t)
        np.testing.assert_allclose(
            c.decompress(result.message), result.reconstruction, atol=1e-4
        )
        # Truncated SVD never increases the Frobenius norm of the input.
        assert float(np.linalg.norm(result.reconstruction)) <= float(
            np.linalg.norm(t)
        ) * (1 + 1e-5)
