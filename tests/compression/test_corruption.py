"""Failure injection: corrupted frames must fail loudly, never crash.

Two layers of defence are exercised for every registered scheme:

* the transport CRC (``WireMessage.unpack``) catches any in-flight bit
  flip of the framed bytes;
* each decompressor validates its own payload invariants (counts, index
  ranges, level bounds), so a *forged* frame with a valid CRC still either
  decodes to a correctly-shaped tensor or raises :class:`ValueError` —
  no silent shape corruption, no unhandled IndexError, no hang.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import available_schemes, make_compressor
from repro.core.packets import WireMessage

ALL_SCHEMES = available_schemes()


def _first_transmission(ctx, tensor):
    for _ in range(8):
        result = ctx.compress(tensor)
        if result is not None:
            return result
    raise AssertionError("context never transmitted")


@pytest.fixture(params=ALL_SCHEMES, ids=lambda s: s.replace(" ", "_"))
def scheme(request):
    return make_compressor(request.param, seed=5)


class TestTransportCorruption:
    def test_any_flipped_byte_is_caught_by_crc(self, scheme, rng):
        t = rng.normal(0, 0.1, size=(6, 13)).astype(np.float32)
        ctx = scheme.make_context(t.shape, key=("fuzz",))
        packed = bytearray(_first_transmission(ctx, t).message.pack())
        for pos in rng.choice(len(packed), size=min(20, len(packed)), replace=False):
            corrupted = packed.copy()
            corrupted[pos] ^= 0xA5
            with pytest.raises(ValueError):
                WireMessage.unpack(bytes(corrupted))

    def test_truncation_is_caught(self, scheme, rng):
        t = rng.normal(size=40).astype(np.float32)
        ctx = scheme.make_context(t.shape, key=("trunc",))
        packed = _first_transmission(ctx, t).message.pack()
        for cut in (1, len(packed) // 2, len(packed) - 1):
            with pytest.raises(ValueError):
                WireMessage.unpack(packed[:cut])


class TestPayloadForgery:
    """A valid frame around a corrupted payload: the codec's own checks."""

    def test_payload_byte_flips_never_crash(self, scheme, rng):
        t = rng.normal(0, 0.1, size=(9, 11)).astype(np.float32)
        ctx = scheme.make_context(t.shape, key=("forge",))
        message = _first_transmission(ctx, t).message
        if not message.payload:
            pytest.skip("scheme has no payload to forge")
        payload = bytearray(message.payload)
        for pos in rng.choice(len(payload), size=min(30, len(payload)), replace=False):
            forged_payload = payload.copy()
            forged_payload[pos] ^= 0xFF
            forged = WireMessage(
                codec_id=message.codec_id,
                shape=message.shape,
                payload=bytes(forged_payload),
                scalars=message.scalars,
                dtype=message.dtype,
            )
            try:
                out = scheme.decompress(forged)
            except ValueError:
                continue  # detected: acceptable
            assert out.shape == t.shape  # undetected: must still be shaped

    def test_truncated_payload_never_crashes(self, scheme, rng):
        t = rng.normal(size=64).astype(np.float32)
        ctx = scheme.make_context(t.shape, key=("short",))
        message = _first_transmission(ctx, t).message
        if not message.payload:
            pytest.skip("scheme has no payload to truncate")
        for keep in (0, 1, len(message.payload) // 2):
            forged = WireMessage(
                codec_id=message.codec_id,
                shape=message.shape,
                payload=message.payload[:keep],
                scalars=message.scalars,
                dtype=message.dtype,
            )
            try:
                out = scheme.decompress(forged)
            except ValueError:
                continue
            assert out.shape == t.shape


class TestWireMessageFuzz:
    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=100)
    def test_random_bytes_never_crash_unpack(self, blob):
        # Arbitrary garbage: unpack either raises ValueError or, in the
        # astronomically unlikely case of a valid CRC, returns a message.
        try:
            WireMessage.unpack(blob)
        except ValueError:
            pass
