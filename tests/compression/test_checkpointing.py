"""Checkpoint/resume of compression contexts.

Error buffers, momentum accumulators, deferral counters, and RNG stream
positions are *training state*: a restart that silently drops them loses
every update the lossy stage had deferred. The contract, tested generically
for every registered scheme:

    compress k steps; snapshot ``state_dict()``; build a fresh context and
    ``load_state()`` the snapshot; from then on, both contexts produce
    byte-identical wire messages for identical inputs.

The snapshot is also round-tripped through ``numpy.savez`` to prove it is
genuinely serializable, and a behavioural test shows what checkpointing
protects: a resumed sparsifier still delivers the updates it owed, a
cold-restarted one does not.
"""

import io

import numpy as np
import pytest

from repro.compression import available_schemes, make_compressor

ALL_SCHEMES = available_schemes()


def _inputs(shape, steps, seed=7):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 0.05, size=shape).astype(np.float32) for _ in range(steps)]


def _messages(ctx, tensors):
    out = []
    for t in tensors:
        result = ctx.compress(t)
        out.append(None if result is None else result.message.pack())
    return out


@pytest.fixture(params=ALL_SCHEMES, ids=lambda s: s.replace(" ", "_"))
def scheme(request):
    return make_compressor(request.param, seed=9)


class TestResumeEquivalence:
    def test_resumed_context_continues_identically(self, scheme):
        shape = (23, 11)
        warm = _inputs(shape, 5, seed=1)
        rest = _inputs(shape, 6, seed=2)

        original = scheme.make_context(shape, key=("ckpt",))
        _messages(original, warm)
        snapshot = original.state_dict()

        resumed = scheme.make_context(shape, key=("ckpt",))
        resumed.load_state(snapshot)

        assert _messages(original, rest) == _messages(resumed, rest)

    def test_cold_restart_differs_when_context_is_stateful(self, scheme):
        # 2-D so low-rank truncation is actually lossy; an odd warm length
        # so deferral schemes are holding both residual and phase.
        shape = (8, 5)
        warm = _inputs(shape, 5, seed=3)
        probe = _inputs(shape, 3, seed=4)

        original = scheme.make_context(shape, key=("cold",))
        _messages(original, warm)
        if not original.state_dict():
            pytest.skip("stateless scheme: cold restart is lossless")

        cold = scheme.make_context(shape, key=("cold",))
        continued = _messages(original, probe)
        restarted = _messages(cold, probe)
        # At least one subsequent transmission reflects the dropped state.
        assert continued != restarted

    def test_snapshot_survives_npz_serialization(self, scheme, tmp_path):
        shape = (16, 5)
        ctx = scheme.make_context(shape, key=("npz",))
        _messages(ctx, _inputs(shape, 3))
        snapshot = ctx.state_dict()

        # Arrays/numbers/nested dicts only: savez via pickle-free object
        # arrays is not possible for nested dicts, so use allow_pickle for
        # the RNG-state dicts — the point is that numpy can persist it.
        buf = io.BytesIO()
        np.savez(buf, state=np.array([snapshot], dtype=object))
        buf.seek(0)
        loaded = np.load(buf, allow_pickle=True)["state"][0]

        resumed = scheme.make_context(shape, key=("npz",))
        resumed.load_state(loaded)
        probe = _inputs(shape, 2, seed=11)
        twin = scheme.make_context(shape, key=("npz",))
        twin.load_state(snapshot)
        assert _messages(resumed, probe) == _messages(twin, probe)

    def test_shape_mismatch_rejected(self, scheme):
        ctx = scheme.make_context((8, 8), key=("shape",))
        _messages(ctx, _inputs((8, 8), 2))
        snapshot = ctx.state_dict()
        if not any(isinstance(v, np.ndarray) for v in snapshot.values()):
            pytest.skip("no array state to mismatch")
        other = scheme.make_context((4, 4), key=("shape",))
        with pytest.raises((ValueError, KeyError)):
            other.load_state(snapshot)


class TestStatelessContract:
    @pytest.mark.parametrize("name", ["32-bit float", "8-bit int", "16-bit float"])
    def test_stateless_schemes_report_empty_state(self, name):
        ctx = make_compressor(name).make_context((10,))
        assert ctx.state_dict() == {}
        ctx.load_state({})  # accepted

    def test_stateless_rejects_foreign_state(self):
        ctx = make_compressor("32-bit float").make_context((10,))
        with pytest.raises(ValueError, match="stateless"):
            ctx.load_state({"residual": np.zeros(10)})


class TestWhatCheckpointingProtects:
    def test_resume_delivers_owed_updates_cold_restart_loses_them(self):
        # A 5% sparsifier owes 95% of every step's mass to the future.
        # Integrate reconstructions: resume path total ~= input total;
        # cold restart forfeits the buffered remainder.
        scheme = make_compressor("5% sparsification", seed=3)
        shape = (2000,)
        steps = _inputs(shape, 30, seed=5)
        cut = 10

        warm = scheme.make_context(shape, key=("owe",))
        total_in = np.zeros(shape, dtype=np.float64)
        applied_resume = np.zeros(shape, dtype=np.float64)
        for t in steps[:cut]:
            total_in += t
            applied_resume += warm.compress(t).reconstruction
        snapshot = warm.state_dict()

        resumed = scheme.make_context(shape, key=("owe",))
        resumed.load_state(snapshot)
        cold = scheme.make_context(shape, key=("owe",))
        applied_cold = applied_resume.copy()
        for t in steps[cut:]:
            total_in += t
            applied_resume += resumed.compress(t).reconstruction
            applied_cold += cold.compress(t).reconstruction

        err_resume = float(np.linalg.norm(total_in - applied_resume))
        err_cold = float(np.linalg.norm(total_in - applied_cold))
        # The resumed path's shortfall is exactly its current residual...
        assert err_resume == pytest.approx(resumed.residual_norm(), rel=1e-4)
        # ...while the cold restart permanently lost the owed mass.
        assert err_cold > err_resume * 1.2
