"""Cross-scheme contract tests: every compressor honours the interface."""

import numpy as np
import pytest

from repro.compression import available_schemes, make_compressor
from repro.core.packets import WireMessage

ALL_SCHEMES = available_schemes()


@pytest.fixture(params=ALL_SCHEMES, ids=lambda s: s.replace(" ", "_"))
def scheme(request):
    return make_compressor(request.param, seed=11)


def _first_transmission(ctx, tensor):
    """Compress until the context actually transmits (local-steps defers)."""
    for _ in range(8):
        result = ctx.compress(tensor)
        if result is not None:
            return result
    raise AssertionError("context never transmitted")


class TestCompressorContract:
    def test_reconstruction_matches_decompression(self, scheme, rng):
        t = rng.normal(0, 0.1, (9, 33)).astype(np.float32)
        ctx = scheme.make_context(t.shape, key=("test",))
        result = _first_transmission(ctx, t)
        out = scheme.decompress(result.message)
        np.testing.assert_allclose(out, result.reconstruction, atol=1e-6)

    def test_survives_wire_serialization(self, scheme, rng):
        t = rng.normal(0, 0.1, (64,)).astype(np.float32)
        ctx = scheme.make_context(t.shape, key=("wire",))
        result = _first_transmission(ctx, t)
        again = WireMessage.unpack(result.message.pack())
        np.testing.assert_allclose(
            scheme.decompress(again), result.reconstruction, atol=1e-6
        )

    def test_shape_and_dtype_preserved(self, scheme, rng):
        t = rng.normal(size=(3, 5, 7)).astype(np.float32)
        ctx = scheme.make_context(t.shape, key=("shape",))
        result = _first_transmission(ctx, t)
        out = scheme.decompress(result.message)
        assert out.shape == t.shape
        assert out.dtype == np.float32

    def test_shape_mismatch_rejected(self, scheme):
        ctx = scheme.make_context((4, 4), key=("bad",))
        with pytest.raises(ValueError):
            ctx.compress(np.zeros((4, 5), dtype=np.float32))

    def test_zero_tensor_roundtrip(self, scheme):
        t = np.zeros((40,), dtype=np.float32)
        ctx = scheme.make_context(t.shape, key=("zero",))
        result = _first_transmission(ctx, t)
        out = scheme.decompress(result.message)
        np.testing.assert_array_equal(out, np.zeros_like(t))

    def test_residual_norm_finite(self, scheme, rng):
        ctx = scheme.make_context((32,), key=("res",))
        for _ in range(5):
            ctx.compress(rng.normal(size=32).astype(np.float32))
        assert np.isfinite(ctx.residual_norm())

    def test_wire_size_positive_and_counted(self, scheme, rng):
        t = rng.normal(size=(100,)).astype(np.float32)
        ctx = scheme.make_context(t.shape, key=("size",))
        result = _first_transmission(ctx, t)
        assert result.wire_size == len(result.message.pack())
        assert result.bits_per_value() > 0


class TestRegistry:
    def test_table1_has_eleven_designs(self):
        from repro.compression import TABLE1_SCHEMES

        assert len(TABLE1_SCHEMES) == 11
        assert TABLE1_SCHEMES[0] == "32-bit float"

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            make_compressor("gzip")

    def test_all_names_resolve(self):
        for name in ALL_SCHEMES:
            compressor = make_compressor(name)
            assert compressor.name == name
