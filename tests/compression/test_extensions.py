"""Tests for the extension schemes: float16 and round-robin."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.float16 import Float16Compressor
from repro.compression.roundrobin import RoundRobinCompressor, partition_bounds
from repro.core.packets import WireMessage


class TestFloat16:
    def test_half_the_bits(self, rng):
        t = rng.normal(size=1000).astype(np.float32)
        result = Float16Compressor().make_context(t.shape).compress(t)
        assert result.bits_per_value() == pytest.approx(16.0, abs=0.5)

    def test_precision_loss_bounded(self, rng):
        t = rng.normal(size=500).astype(np.float32)
        c = Float16Compressor()
        result = c.make_context(t.shape).compress(t)
        # Half precision has ~3 decimal digits.
        np.testing.assert_allclose(result.reconstruction, t, rtol=1e-3)
        np.testing.assert_array_equal(
            c.decompress(result.message), result.reconstruction
        )

    def test_wire_roundtrip(self, rng):
        t = rng.normal(size=(7, 5)).astype(np.float32)
        c = Float16Compressor()
        result = c.make_context(t.shape).compress(t)
        again = WireMessage.unpack(result.message.pack())
        np.testing.assert_array_equal(c.decompress(again), result.reconstruction)


class TestPartitionBounds:
    def test_covers_everything_exactly_once(self):
        for size in (0, 1, 7, 20, 23):
            for p in (1, 3, 4, 7):
                covered = []
                for i in range(p):
                    start, end = partition_bounds(size, p, i)
                    covered.extend(range(start, end))
                assert covered == list(range(size)), (size, p)

    def test_balanced(self):
        sizes = [
            partition_bounds(22, 4, i)[1] - partition_bounds(22, 4, i)[0]
            for i in range(4)
        ]
        assert sizes == [6, 6, 5, 5]

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_bounds(10, 0, 0)
        with pytest.raises(ValueError):
            partition_bounds(10, 4, 4)

    @given(size=st.integers(0, 1000), p=st.integers(1, 16))
    def test_partition_property(self, size, p):
        total = 0
        prev_end = 0
        for i in range(p):
            start, end = partition_bounds(size, p, i)
            assert start == prev_end
            prev_end = end
            total += end - start
        assert total == size


class TestRoundRobin:
    def test_cycles_partitions(self, rng):
        c = RoundRobinCompressor(4)
        ctx = c.make_context((16,))
        seen_indices = []
        for _ in range(8):
            result = ctx.compress(rng.normal(size=16).astype(np.float32))
            seen_indices.append(int(result.message.scalars[1]))
        assert seen_indices == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_quarter_traffic(self, rng):
        t = rng.normal(size=4000).astype(np.float32)
        c = RoundRobinCompressor(4)
        result = c.make_context(t.shape).compress(t)
        # 1000 float32 values + frame ~= 8 bits/value.
        assert result.bits_per_value() == pytest.approx(8.0, abs=0.5)

    def test_delivery_tracks_input_with_bounded_lag(self, rng):
        """Under a constant input, cumulative delivery equals cumulative
        input up to at most one cycle's worth of lag per element, and the
        residual reaches a steady state (no unbounded accumulation)."""
        p = 4
        c = RoundRobinCompressor(p)
        ctx = c.make_context((21,))
        t = rng.normal(size=21).astype(np.float32)
        total = np.zeros(21, dtype=np.float64)
        norms = []
        for step in range(3 * p):
            total += ctx.compress(t).reconstruction
            if (step + 1) % p == 0:
                norms.append(ctx.residual_norm())
        lag = np.abs(total - 3 * p * t.astype(np.float64))
        assert np.all(lag <= p * np.abs(t) + 1e-4)
        # Residual at cycle boundaries is periodic, not growing.
        assert norms[1] == pytest.approx(norms[2], rel=1e-4)

    def test_decompress_places_partition(self, rng):
        t = rng.normal(size=10).astype(np.float32)
        c = RoundRobinCompressor(2)
        ctx = c.make_context(t.shape)
        result = ctx.compress(t)
        out = c.decompress(result.message)
        np.testing.assert_array_equal(out, result.reconstruction)
        assert np.count_nonzero(out) <= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundRobinCompressor(0)
