"""Tests for the QSGD baseline (unbiased quantization + Elias coding)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.qsgd import QSGDCompressor, qsgd_dequantize, qsgd_quantize
from repro.core.packets import CodecId, WireMessage


class TestQuantize:
    def test_levels_in_range(self, rng):
        t = rng.normal(size=1000).astype(np.float32)
        norm, signs, level = qsgd_quantize(t, 3, rng)
        assert level.min() >= 0 and level.max() <= 3
        assert norm == pytest.approx(float(np.linalg.norm(t)))

    def test_signs_match_input(self, rng):
        t = np.array([1.0, -1.0, 0.5, -0.5], dtype=np.float32)
        _, signs, _ = qsgd_quantize(t, 7, rng)
        np.testing.assert_array_equal(signs, [False, True, False, True])

    def test_zero_tensor(self, rng):
        norm, signs, level = qsgd_quantize(np.zeros(10, dtype=np.float32), 3, rng)
        assert norm == 0.0
        assert not level.any()

    def test_exact_grid_points_are_deterministic(self, rng):
        # Values exactly on the quantization grid have zero stochastic
        # residual, so every draw returns the same level.
        t = np.array([3.0, 4.0], dtype=np.float32)  # norm 5
        for _ in range(10):
            norm, signs, level = qsgd_quantize(t, 5, rng)
            np.testing.assert_array_equal(level, [3, 4])

    def test_unbiasedness(self):
        # E[dequantize(quantize(x))] == x is QSGD's defining property.
        t = np.array([0.3, -0.7, 0.05, 0.0], dtype=np.float32)
        rng = np.random.default_rng(7)
        total = np.zeros_like(t, dtype=np.float64)
        trials = 3000
        for _ in range(trials):
            norm, signs, level = qsgd_quantize(t, 2, rng)
            total += qsgd_dequantize(norm, signs, level, 2)
        np.testing.assert_allclose(total / trials, t, atol=0.02)

    def test_invalid_levels(self, rng):
        with pytest.raises(ValueError, match="levels"):
            qsgd_quantize(np.ones(3, dtype=np.float32), 0, rng)


class TestCompressor:
    def test_roundtrip_matches_reconstruction(self, rng):
        t = rng.normal(0, 0.1, size=(31, 17)).astype(np.float32)
        c = QSGDCompressor(bits=2, seed=3)
        result = c.make_context(t.shape).compress(t)
        np.testing.assert_array_equal(c.decompress(result.message), result.reconstruction)

    def test_wire_roundtrip(self, rng):
        t = rng.normal(size=100).astype(np.float32)
        c = QSGDCompressor(bits=4)
        result = c.make_context(t.shape).compress(t)
        again = WireMessage.unpack(result.message.pack())
        np.testing.assert_array_equal(c.decompress(again), result.reconstruction)

    def test_traffic_well_below_float32(self, rng):
        t = rng.normal(size=10000).astype(np.float32)
        result = QSGDCompressor(bits=2).make_context(t.shape).compress(t)
        # 1 sign bit + ~1-3 gamma bits per value.
        assert result.bits_per_value() < 6.0

    def test_sparser_input_costs_fewer_bits(self, rng):
        dense = rng.normal(size=5000).astype(np.float32)
        sparse = dense.copy()
        sparse[np.abs(sparse) < 2.0] = 0.0
        c = QSGDCompressor(bits=2)
        dense_bits = c.make_context(dense.shape).compress(dense).bits_per_value()
        sparse_bits = c.make_context(sparse.shape).compress(sparse).bits_per_value()
        assert sparse_bits < dense_bits

    def test_no_error_feedback(self, rng):
        # QSGD is unbiased and keeps no residual state.
        t = rng.normal(size=64).astype(np.float32)
        ctx = QSGDCompressor(bits=2).make_context(t.shape)
        ctx.compress(t)
        assert ctx.residual_norm() == 0.0

    def test_zero_tensor_roundtrip(self):
        t = np.zeros((5, 5), dtype=np.float32)
        c = QSGDCompressor(bits=2)
        result = c.make_context(t.shape).compress(t)
        np.testing.assert_array_equal(c.decompress(result.message), t)

    def test_deterministic_per_key(self):
        t = np.linspace(-1, 1, 64).astype(np.float32)
        c = QSGDCompressor(bits=2, seed=5)
        a = c.make_context(t.shape, key=("push", 0, "w")).compress(t)
        b = c.make_context(t.shape, key=("push", 0, "w")).compress(t)
        assert a.message.payload == b.message.payload

    def test_independent_streams_per_key(self, rng):
        t = rng.normal(size=512).astype(np.float32)
        c = QSGDCompressor(bits=2, seed=5)
        a = c.make_context(t.shape, key=("push", 0, "w")).compress(t)
        b = c.make_context(t.shape, key=("push", 1, "w")).compress(t)
        assert a.message.payload != b.message.payload

    def test_bits_validation(self):
        with pytest.raises(ValueError, match="bits"):
            QSGDCompressor(bits=0)
        with pytest.raises(ValueError, match="bits"):
            QSGDCompressor(bits=17)

    def test_rejects_foreign_message(self, rng):
        t = rng.normal(size=8).astype(np.float32)
        result = QSGDCompressor().make_context(t.shape).compress(t)
        bad = WireMessage(
            codec_id=CodecId.FLOAT32,
            shape=result.message.shape,
            payload=result.message.payload,
            scalars=result.message.scalars,
        )
        with pytest.raises(ValueError, match="QSGD"):
            QSGDCompressor().decompress(bad)

    def test_corrupted_levels_detected(self, rng):
        # Splice a gamma stream encoding an out-of-range level.
        from repro.core.elias import elias_gamma_encode

        t = np.ones(8, dtype=np.float32)
        result = QSGDCompressor(bits=2).make_context(t.shape).compress(t)
        signs = result.message.payload[:1]
        forged = signs + elias_gamma_encode(np.full(8, 99, dtype=np.int64))
        bad = WireMessage(
            codec_id=CodecId.QSGD,
            shape=result.message.shape,
            payload=forged,
            scalars=result.message.scalars,
        )
        with pytest.raises(ValueError, match="range"):
            QSGDCompressor(bits=2).decompress(bad)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=400))
    def test_roundtrip_property(self, bits, size):
        rng = np.random.default_rng(size * 31 + bits)
        t = rng.normal(size=size).astype(np.float32)
        c = QSGDCompressor(bits=bits, seed=0)
        result = c.make_context(t.shape).compress(t)
        np.testing.assert_array_equal(
            c.decompress(result.message), result.reconstruction
        )
        # The reconstruction error is bounded by one grid cell per value.
        grid = float(np.linalg.norm(t)) / ((1 << bits) - 1)
        assert np.max(np.abs(result.reconstruction - t)) <= grid + 1e-5


class TestCoding:
    def test_delta_roundtrip(self, rng):
        t = rng.normal(size=300).astype(np.float32)
        c = QSGDCompressor(bits=6, coding="delta")
        result = c.make_context(t.shape).compress(t)
        np.testing.assert_array_equal(
            c.decompress(result.message), result.reconstruction
        )

    def test_coding_recorded_in_frame(self, rng):
        t = rng.normal(size=64).astype(np.float32)
        gamma = QSGDCompressor(bits=4, coding="gamma")
        delta = QSGDCompressor(bits=4, coding="delta")
        g = gamma.make_context(t.shape).compress(t).message
        d = delta.make_context(t.shape).compress(t).message
        assert g.scalars[2] == 0.0 and d.scalars[2] == 1.0
        # Frames are self-describing: either compressor decodes both.
        np.testing.assert_array_equal(gamma.decompress(d), delta.decompress(d))

    def test_gamma_is_the_right_default_on_gaussian_gradients(self, rng):
        # L2-norm scaling keeps QSGD levels near zero for Gaussian tensors
        # regardless of bit width, so gamma's short small-integer codes win
        # at every resolution; delta's asymptotic advantage only appears
        # for genuinely large integers (covered in tests/core/test_elias).
        t = rng.normal(size=20000).astype(np.float32)

        def bits_for(b, coding):
            c = QSGDCompressor(bits=b, coding=coding, seed=2)
            return c.make_context(t.shape).compress(t).bits_per_value()

        for b in (2, 8):
            assert bits_for(b, "gamma") <= bits_for(b, "delta")

    def test_legacy_two_scalar_frame_decodes_as_gamma(self, rng):
        from repro.core.packets import CodecId, WireMessage

        t = rng.normal(size=40).astype(np.float32)
        c = QSGDCompressor(bits=2)
        message = c.make_context(t.shape).compress(t).message
        legacy = WireMessage(
            codec_id=CodecId.QSGD,
            shape=message.shape,
            payload=message.payload,
            scalars=message.scalars[:2],
        )
        np.testing.assert_array_equal(c.decompress(legacy), c.decompress(message))

    def test_unknown_coding_rejected(self):
        with pytest.raises(ValueError, match="coding"):
            QSGDCompressor(coding="golomb")

    def test_unknown_coding_id_in_frame_rejected(self, rng):
        from repro.core.packets import CodecId, WireMessage

        t = rng.normal(size=16).astype(np.float32)
        message = QSGDCompressor().make_context(t.shape).compress(t).message
        forged = WireMessage(
            codec_id=CodecId.QSGD,
            shape=message.shape,
            payload=message.payload,
            scalars=(message.scalars[0], message.scalars[1], 9.0),
        )
        with pytest.raises(ValueError, match="coding id"):
            QSGDCompressor().decompress(forged)
