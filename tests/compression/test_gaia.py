"""Tests for the Gaia-style significance filter."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.gaia import GaiaCompressor
from repro.core.packets import CodecId, WireMessage


class TestThresholdDecay:
    def test_linear_decay_endpoints(self):
        ctx = GaiaCompressor(2.0, 0.5, decay_steps=100).make_context((4,))
        assert ctx.threshold_at(0) == pytest.approx(2.0)
        assert ctx.threshold_at(50) == pytest.approx(1.25)
        assert ctx.threshold_at(100) == pytest.approx(0.5)
        assert ctx.threshold_at(10**6) == pytest.approx(0.5)

    def test_zero_decay_steps(self):
        ctx = GaiaCompressor(2.0, 0.5, decay_steps=0).make_context((4,))
        assert ctx.threshold_at(0) == pytest.approx(0.5)


class TestGaia:
    def test_roundtrip(self, rng):
        t = rng.normal(size=(30, 11)).astype(np.float32)
        c = GaiaCompressor()
        result = c.make_context(t.shape).compress(t)
        np.testing.assert_array_equal(
            c.decompress(result.message), result.reconstruction
        )

    def test_wire_roundtrip(self, rng):
        t = rng.normal(size=256).astype(np.float32)
        c = GaiaCompressor()
        result = c.make_context(t.shape).compress(t)
        again = WireMessage.unpack(result.message.pack())
        np.testing.assert_array_equal(c.decompress(again), result.reconstruction)

    def test_significant_values_pass_insignificant_accumulate(self, rng):
        t = rng.normal(0, 0.01, size=1000).astype(np.float32)
        t[3] = 5.0  # hugely significant relative to the rest
        ctx = GaiaCompressor(2.0, 2.0, decay_steps=0).make_context(t.shape)
        result = ctx.compress(t)
        assert result.reconstruction[3] == pytest.approx(5.0)
        # Most of the small values stayed local.
        sent = int(np.count_nonzero(result.reconstruction))
        assert sent < 200
        assert ctx.residual_norm() > 0

    def test_unsent_mass_conserved(self, rng):
        t = rng.normal(size=500).astype(np.float32)
        ctx = GaiaCompressor().make_context(t.shape)
        result = ctx.compress(t)
        residual = t - result.reconstruction
        assert ctx.residual_norm() == pytest.approx(
            float(np.linalg.norm(residual)), rel=1e-5
        )

    def test_accumulated_changes_eventually_cross_threshold(self):
        # Gaia's error accumulation: a sub-threshold change repeated long
        # enough becomes significant and is transmitted.
        t = np.full(64, 0.05, dtype=np.float32)
        t[0] = 1.0  # establishes a nonzero significance scale
        ctx = GaiaCompressor(2.0, 2.0, decay_steps=0).make_context(t.shape)
        sent_small = 0.0
        for _ in range(60):
            result = ctx.compress(t)
            sent_small += float(result.reconstruction[5])
            t = np.full(64, 0.05, dtype=np.float32)  # steady small updates
        assert sent_small > 0.5  # the small coordinate did get through

    def test_decaying_threshold_sends_more_later(self, rng):
        # The Gaia behaviour the paper contrasts with (§6): traffic grows as
        # the threshold decays, even for a stationary update distribution.
        ctx = GaiaCompressor(4.0, 0.25, decay_steps=40).make_context((2000,))
        early = ctx.compress(rng.normal(size=2000).astype(np.float32)).wire_size
        for _ in range(45):
            last = ctx.compress(rng.normal(size=2000).astype(np.float32)).wire_size
        assert last > early

    def test_zero_tensor(self):
        t = np.zeros(100, dtype=np.float32)
        c = GaiaCompressor()
        result = c.make_context(t.shape).compress(t)
        np.testing.assert_array_equal(c.decompress(result.message), t)

    def test_validation(self):
        with pytest.raises(ValueError, match="initial_threshold"):
            GaiaCompressor(0.5, 2.0)
        with pytest.raises(ValueError, match=">= 0"):
            GaiaCompressor(2.0, -0.5)
        with pytest.raises(ValueError, match="decay_steps"):
            GaiaCompressor(decay_steps=-5)

    def test_rejects_foreign_message(self):
        bad = WireMessage(codec_id=CodecId.FLOAT32, shape=(4,), payload=b"")
        with pytest.raises(ValueError, match="Gaia"):
            GaiaCompressor().decompress(bad)

    def test_value_count_mismatch_detected(self):
        # Bitmap says 2 selected, payload carries 1 value.
        bitmap = np.packbits(np.array([1, 1, 0, 0, 0, 0, 0, 0], dtype=np.uint8))
        payload = bitmap.tobytes() + np.array([1.0], dtype="<f4").tobytes()
        bad = WireMessage(codec_id=CodecId.GAIA_SPARSE, shape=(8,), payload=payload)
        with pytest.raises(ValueError, match="mismatch"):
            GaiaCompressor().decompress(bad)

    @given(st.integers(min_value=1, max_value=400))
    def test_roundtrip_property(self, size):
        rng = np.random.default_rng(size)
        t = rng.normal(size=size).astype(np.float32)
        c = GaiaCompressor()
        result = c.make_context(t.shape).compress(t)
        np.testing.assert_array_equal(
            c.decompress(result.message), result.reconstruction
        )
