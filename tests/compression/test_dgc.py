"""Tests for the Deep Gradient Compression baseline."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.dgc import DGCCompressor, WarmupSchedule
from repro.core.packets import CodecId, WireMessage


class TestWarmupSchedule:
    def test_endpoints(self):
        sched = WarmupSchedule(0.25, 0.001, 100)
        assert sched.fraction_at(0) == pytest.approx(0.25)
        assert sched.fraction_at(100) == pytest.approx(0.001)
        assert sched.fraction_at(10**6) == pytest.approx(0.001)

    def test_monotone_decay(self):
        sched = WarmupSchedule(0.25, 0.001, 50)
        fractions = [sched.fraction_at(s) for s in range(60)]
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))

    def test_geometric_midpoint(self):
        sched = WarmupSchedule(0.25, 0.0025, 100)
        # Exponential ramp: halfway in steps is the geometric mean.
        expected = (0.25 * 0.0025) ** 0.5
        assert sched.fraction_at(50) == pytest.approx(expected)

    def test_zero_warmup(self):
        sched = WarmupSchedule(0.25, 0.001, 0)
        assert sched.fraction_at(0) == pytest.approx(0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupSchedule(0.001, 0.25, 10)  # initial < final
        with pytest.raises(ValueError):
            WarmupSchedule(0.25, 0.0, 10)  # zero final
        with pytest.raises(ValueError):
            WarmupSchedule(0.25, 0.001, -1)
        with pytest.raises(ValueError):
            WarmupSchedule(0.25, 0.001, 10).fraction_at(-1)


class TestDGC:
    def test_roundtrip(self, rng):
        t = rng.normal(size=(40, 25)).astype(np.float32)
        c = DGCCompressor(0.01, warmup_steps=0)
        result = c.make_context(t.shape, key=("push", 0, "w")).compress(t)
        np.testing.assert_array_equal(
            c.decompress(result.message), result.reconstruction
        )

    def test_wire_roundtrip(self, rng):
        t = rng.normal(size=500).astype(np.float32)
        c = DGCCompressor(0.05, warmup_steps=0)
        result = c.make_context(t.shape).compress(t)
        again = WireMessage.unpack(result.message.pack())
        np.testing.assert_array_equal(c.decompress(again), result.reconstruction)

    def test_post_warmup_traffic_is_tiny(self, rng):
        t = rng.normal(size=20000).astype(np.float32)
        ctx = DGCCompressor(0.001, momentum=0.0, warmup_steps=0).make_context(t.shape)
        result = ctx.compress(t)
        # ~0.1% of 20000 = 20 entries at 8 bytes each, plus the frame.
        assert result.wire_size < 400

    def test_warmup_sends_densely_then_sparsifies(self, rng):
        t = rng.normal(size=4000).astype(np.float32)
        ctx = DGCCompressor(
            0.001, momentum=0.0, warmup_steps=20, initial_fraction=0.25
        ).make_context(t.shape)
        first = ctx.compress(t).wire_size
        for _ in range(25):
            last = ctx.compress(rng.normal(size=4000).astype(np.float32)).wire_size
        assert first > 10 * last

    def test_sparse_step_leaves_most_mass_in_velocity(self, rng):
        g = rng.normal(size=1000).astype(np.float32)
        ctx = DGCCompressor(0.001, momentum=0.9, warmup_steps=0).make_context(
            g.shape, key=("push", 0, "w")
        )
        ctx.compress(g)
        # Only ~1/1000 entries were sent; nearly all L2 mass stays local.
        norm = float(np.linalg.norm(g))
        assert 0.8 * norm < ctx.residual_norm() <= norm

    def test_momentum_correction_amplifies_persistent_gradients(self, rng):
        # A direction that keeps appearing builds velocity u=(1-m^t)/(1-m)·g;
        # with momentum correction its transmitted value exceeds the plain
        # top-k accumulation of the same inputs.
        g = rng.normal(size=500).astype(np.float32)
        with_m = DGCCompressor(0.01, momentum=0.9, warmup_steps=0).make_context(
            g.shape, key=("push", 0, "w")
        )
        without_m = DGCCompressor(0.01, momentum=0.0, warmup_steps=0).make_context(
            g.shape, key=("push", 0, "w")
        )
        for _ in range(5):
            last_m = with_m.compress(g)
            last_plain = without_m.compress(g)
        assert np.max(np.abs(last_m.reconstruction)) > np.max(
            np.abs(last_plain.reconstruction)
        )

    def test_momentum_factor_masking(self, rng):
        # Transmitted coordinates must restart both accumulators: compress a
        # spike, then verify the spike coordinate carries no velocity.
        t = np.zeros(1000, dtype=np.float32)
        t[7] = 100.0
        ctx = DGCCompressor(0.001, momentum=0.9, warmup_steps=0).make_context(t.shape)
        result = ctx.compress(t)
        assert result.reconstruction[7] == pytest.approx(100.0)
        # Second step with zero input: coordinate 7 must stay silent (its
        # momentum was masked), so nothing significant is transmitted.
        result2 = ctx.compress(np.zeros(1000, dtype=np.float32))
        assert result2.reconstruction[7] == pytest.approx(0.0)

    def test_unsent_mass_is_conserved(self, rng):
        # momentum=0 reduces DGC to top-k: input = transmitted + residual.
        t = rng.normal(size=2000).astype(np.float32)
        ctx = DGCCompressor(0.01, momentum=0.0, warmup_steps=0).make_context(t.shape)
        result = ctx.compress(t)
        residual = t - result.reconstruction
        assert ctx.residual_norm() == pytest.approx(
            float(np.linalg.norm(residual)), rel=1e-5
        )

    def test_gradient_clipping(self):
        t = np.full(100, 10.0, dtype=np.float32)  # norm 100
        ctx = DGCCompressor(
            1.0, momentum=0.0, warmup_steps=0, initial_fraction=1.0, clip_norm=1.0
        ).make_context(t.shape)
        result = ctx.compress(t)
        # Everything transmitted (fraction 1.0) but clipped to norm 1.
        assert float(np.linalg.norm(result.reconstruction)) == pytest.approx(
            1.0, rel=1e-5
        )

    def test_pull_contexts_drop_momentum(self):
        c = DGCCompressor(0.01, momentum=0.9, warmup_steps=0)
        push = c.make_context((10,), key=("push", 0, "w"))
        pull = c.make_context((10,), key=("pull", "w"))
        assert push.momentum == pytest.approx(0.9)
        assert pull.momentum == 0.0

    def test_index_out_of_range_detected(self):
        payload = np.array([5000], dtype="<u4").tobytes()
        payload += np.array([1.0], dtype="<f4").tobytes()
        bad = WireMessage(codec_id=CodecId.DGC_SPARSE, shape=(10,), payload=payload)
        with pytest.raises(ValueError, match="range"):
            DGCCompressor().decompress(bad)

    def test_ragged_payload_detected(self):
        bad = WireMessage(codec_id=CodecId.DGC_SPARSE, shape=(10,), payload=b"abc")
        with pytest.raises(ValueError, match="multiple of 8"):
            DGCCompressor().decompress(bad)

    def test_rejects_foreign_message(self):
        bad = WireMessage(codec_id=CodecId.FLOAT32, shape=(4,), payload=b"")
        with pytest.raises(ValueError, match="DGC"):
            DGCCompressor().decompress(bad)

    def test_validation(self):
        with pytest.raises(ValueError, match="momentum"):
            DGCCompressor(momentum=1.0)
        with pytest.raises(ValueError):
            DGCCompressor(fraction=0.0)

    @given(st.integers(min_value=1, max_value=300), st.floats(0.01, 1.0))
    def test_roundtrip_property(self, size, fraction):
        rng = np.random.default_rng(size)
        t = rng.normal(size=size).astype(np.float32)
        c = DGCCompressor(fraction, momentum=0.0, warmup_steps=0)
        result = c.make_context(t.shape).compress(t)
        decoded = c.decompress(result.message)
        np.testing.assert_array_equal(decoded, result.reconstruction)
        # Transmitted entries are exact copies of the (velocity) input.
        sent = decoded != 0
        np.testing.assert_allclose(decoded[sent], t[sent], rtol=1e-6)
