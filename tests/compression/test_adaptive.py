"""Tests for the adaptive sparsity-multiplier controller."""

import numpy as np
import pytest

from repro.compression.adaptive import S_MAX, S_MIN, AdaptiveThreeLCCompressor
from repro.compression.threelc import ThreeLCCompressor
from repro.core.packets import WireMessage


def _stream(rng, shape, scale=0.1):
    while True:
        yield rng.normal(0, scale, size=shape).astype(np.float32)


class TestController:
    def test_tracks_target_on_stationary_input(self, rng):
        target = 0.5
        c = AdaptiveThreeLCCompressor(target, gain=0.05)
        shape = (4000,)
        ctx = c.make_context(shape)
        stream = _stream(rng, shape)
        for _ in range(60):
            ctx.compress(next(stream))
        tail = [bits for _, bits in ctx.history[-20:]]
        assert np.mean(tail) == pytest.approx(target, abs=0.15)

    def test_s_stays_in_bounds(self, rng):
        # An unreachable target (0.01 bits) drives s to the clamp, never past.
        c = AdaptiveThreeLCCompressor(0.01, gain=0.5)
        ctx = c.make_context((1000,))
        stream = _stream(rng, (1000,))
        for _ in range(30):
            ctx.compress(next(stream))
            assert S_MIN <= ctx.sparsity_multiplier <= S_MAX

    def test_dense_demand_drives_s_down(self, rng):
        # A generous budget (1.5 bits) keeps s at the minimum: no need to
        # sparsify when the link affords near-quartic-encoding rates.
        c = AdaptiveThreeLCCompressor(1.7, gain=0.2, initial_s=1.9)
        ctx = c.make_context((4000,))
        stream = _stream(rng, (4000,))
        for _ in range(40):
            ctx.compress(next(stream))
        assert ctx.sparsity_multiplier < 1.2

    def test_history_records_s_and_bits(self, rng):
        c = AdaptiveThreeLCCompressor(0.5)
        ctx = c.make_context((100,))
        ctx.compress(rng.normal(size=100).astype(np.float32))
        assert len(ctx.history) == 1
        s_used, bits = ctx.history[0]
        assert s_used == pytest.approx(c.initial_s)
        assert bits > 0

    def test_error_feedback_survives_s_changes(self, rng):
        # The residual buffer is shared across codec swaps: the total applied
        # update over time approaches the total input (error correction).
        shape = (512,)
        c = AdaptiveThreeLCCompressor(0.5, gain=0.1)
        ctx = c.make_context(shape)
        total_in = np.zeros(shape, dtype=np.float64)
        total_out = np.zeros(shape, dtype=np.float64)
        stream = _stream(rng, shape)
        for _ in range(50):
            t = next(stream)
            total_in += t
            total_out += ctx.compress(t).reconstruction
        drift = np.linalg.norm(total_in - total_out)
        assert drift == pytest.approx(ctx.residual_norm(), rel=1e-3)

    def test_decompress_is_plain_threelc(self, rng):
        t = rng.normal(size=200).astype(np.float32)
        c = AdaptiveThreeLCCompressor(0.5)
        result = c.make_context(t.shape).compress(t)
        # A stock 3LC decoder reads adaptive frames unchanged.
        np.testing.assert_array_equal(
            ThreeLCCompressor(1.0).decompress(result.message), result.reconstruction
        )

    def test_wire_roundtrip(self, rng):
        t = rng.normal(size=64).astype(np.float32)
        c = AdaptiveThreeLCCompressor(0.5)
        result = c.make_context(t.shape).compress(t)
        again = WireMessage.unpack(result.message.pack())
        np.testing.assert_array_equal(c.decompress(again), result.reconstruction)

    def test_validation(self):
        with pytest.raises(ValueError, match="target_bits"):
            AdaptiveThreeLCCompressor(0.0)
        with pytest.raises(ValueError, match="gain"):
            AdaptiveThreeLCCompressor(0.5, gain=-1.0)
        with pytest.raises(ValueError, match="initial_s"):
            AdaptiveThreeLCCompressor(0.5, initial_s=2.5)
