"""Tests for state-change trace capture and offline replay."""

import numpy as np
import pytest

from repro.compression import LocalStepsCompressor, ThreeLCCompressor, make_compressor
from repro.trace import StateChangeRecord, TraceReader, TraceRecorder, replay


def small_trace(steps=4, seed=0):
    rng = np.random.default_rng(seed)
    recorder = TraceRecorder()
    for step in range(steps):
        recorder.record(step, "push", "conv/kernel", rng.normal(0, 0.02, (8, 9)))
        recorder.record(step, "push", "fc/bias", rng.normal(0, 0.01, (10,)))
        recorder.record(step, "pull", "conv/kernel", rng.normal(0, 0.01, (8, 9)))
    return recorder


class TestRecord:
    def test_record_validation(self):
        with pytest.raises(ValueError, match="direction"):
            StateChangeRecord(0, "sideways", "w", np.zeros(2, dtype=np.float32))
        with pytest.raises(ValueError, match="step"):
            StateChangeRecord(-1, "push", "w", np.zeros(2, dtype=np.float32))
        with pytest.raises(ValueError, match="'|'"):
            StateChangeRecord(0, "push", "a|b", np.zeros(2, dtype=np.float32))

    def test_recorder_copies_tensors(self):
        recorder = TraceRecorder()
        t = np.ones(4, dtype=np.float32)
        recorder.record(0, "push", "w", t)
        t[:] = 99.0
        saved = list(iter_records(recorder))
        np.testing.assert_array_equal(saved[0].tensor, np.ones(4))

    def test_len(self):
        assert len(small_trace(steps=3)) == 9


def iter_records(recorder):
    return recorder._records


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path):
        recorder = small_trace()
        path = recorder.save(tmp_path / "trace.npz")
        reader = TraceReader(path)
        assert len(reader) == len(recorder)
        for original, loaded in zip(iter_records(recorder), reader):
            assert loaded.step == original.step
            assert loaded.direction == original.direction
            assert loaded.name == original.name
            np.testing.assert_array_equal(loaded.tensor, original.tensor)

    def test_suffix_added_when_missing(self, tmp_path):
        path = small_trace().save(tmp_path / "trace")
        assert path.suffix == ".npz"
        assert TraceReader(path).steps() == [0, 1, 2, 3]

    def test_steps_listing(self, tmp_path):
        path = small_trace(steps=5).save(tmp_path / "t.npz")
        assert TraceReader(path).steps() == [0, 1, 2, 3, 4]

    def test_rejects_foreign_npz(self, tmp_path):
        foreign = tmp_path / "foreign.npz"
        np.savez(foreign, a=np.zeros(3))
        with pytest.raises(ValueError, match="manifest"):
            TraceReader(foreign)


class TestReplay:
    def test_replay_matches_live_compression(self, tmp_path):
        # Replaying through 3LC with per-tensor contexts must produce the
        # exact same wire sizes as compressing the stream live.
        recorder = small_trace(steps=6, seed=3)
        stats = replay(iter_records(recorder), ThreeLCCompressor(1.0))

        live = ThreeLCCompressor(1.0)
        contexts = {}
        expected_bytes = 0
        for rec in iter_records(recorder):
            key = (rec.direction, rec.name)
            if key not in contexts:
                contexts[key] = live.make_context(rec.tensor.shape, key=key)
            expected_bytes += contexts[key].compress(rec.tensor).wire_size
        assert stats.wire_bytes == expected_bytes

    def test_replay_from_disk(self, tmp_path):
        path = small_trace(steps=4, seed=1).save(tmp_path / "t.npz")
        stats = replay(TraceReader(path), ThreeLCCompressor(1.75))
        assert stats.scheme == "3LC (s=1.75)"
        assert stats.wire_bytes > 0
        # Tiny test tensors are frame-header dominated; the ratio is well
        # below Table 2's but must still clearly beat raw float32.
        assert stats.compression_ratio > 3

    def test_per_step_series_has_both_directions(self, tmp_path):
        recorder = small_trace(steps=3)
        stats = replay(iter_records(recorder), ThreeLCCompressor(1.0))
        assert (0, "push") in stats.per_step_bits
        assert (0, "pull") in stats.per_step_bits
        assert all(bits > 0 for bits in stats.per_step_bits.values())

    def test_deferred_records_counted(self):
        recorder = small_trace(steps=4)
        stats = replay(iter_records(recorder), LocalStepsCompressor(2))
        # 3 tensors x 4 steps, half the steps deferred per tensor context.
        assert stats.deferred == 6
        # Deferral halves the wire bytes but elements accrue every step,
        # so the ratio reflects the traffic saving.
        assert stats.compression_ratio == pytest.approx(2.0, rel=0.2)

    def test_codec_comparison_on_one_trace(self):
        # The intended workflow: rank codecs offline on one capture.
        recorder = small_trace(steps=5, seed=7)
        ratios = {
            name: replay(iter_records(recorder), make_compressor(name)).compression_ratio
            for name in ("32-bit float", "8-bit int", "3LC (s=1.00)")
        }
        assert ratios["32-bit float"] < 1.05
        assert ratios["8-bit int"] < ratios["3LC (s=1.00)"]
