"""Tests for shared utilities: seeding, formatting, logging."""

import logging

import numpy as np
import pytest

from repro.utils import (
    SeedSequenceFactory,
    derive_rng,
    format_table,
    get_logger,
    human_bytes,
    human_rate,
)


class TestSeeding:
    def test_same_key_same_stream(self):
        a = derive_rng(7, "worker", 1).normal(size=8)
        b = derive_rng(7, "worker", 1).normal(size=8)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_independent(self):
        a = derive_rng(7, "worker", 1).normal(size=8)
        b = derive_rng(7, "worker", 2).normal(size=8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x").normal(size=8)
        b = derive_rng(2, "x").normal(size=8)
        assert not np.array_equal(a, b)

    def test_key_order_matters(self):
        a = derive_rng(0, "a", "b").normal(size=4)
        b = derive_rng(0, "b", "a").normal(size=4)
        assert not np.array_equal(a, b)

    def test_factory_child_streams_nested(self):
        factory = SeedSequenceFactory(3)
        child = factory.child("sub")
        again = SeedSequenceFactory(3).child("sub")
        np.testing.assert_array_equal(
            child.rng("x").normal(size=4), again.rng("x").normal(size=4)
        )

    def test_factory_rng_matches_derive(self):
        factory = SeedSequenceFactory(5)
        np.testing.assert_array_equal(
            factory.rng("k").normal(size=4), derive_rng(5, "k").normal(size=4)
        )


class TestFormatting:
    def test_human_bytes(self):
        assert human_bytes(512) == "512.00 B"
        assert human_bytes(1536) == "1.50 KiB"
        assert human_bytes(3 * 1024**2) == "3.00 MiB"
        assert "TiB" in human_bytes(2.0 * 1024**4)

    def test_human_rate(self):
        assert human_rate(10e6) == "10.0 Mbps"
        assert human_rate(1e9) == "1.0 Gbps"
        assert human_rate(500) == "500.0 bps"

    def test_format_table_alignment(self):
        text = format_table(
            ["Name", "Value"], [["alpha", 1.5], ["b", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_table_wide_cells(self):
        text = format_table(["H"], [["a-very-long-cell-value"]])
        assert "a-very-long-cell-value" in text


class TestLogging:
    def test_get_logger_returns_child(self):
        root = get_logger()
        child = get_logger("repro.harness")
        assert child.name == "repro.harness"
        assert isinstance(root, logging.Logger)

    def test_single_handler_installed(self):
        get_logger()
        get_logger("repro.x")
        assert len(logging.getLogger("repro").handlers) == 1
