"""Tests for the synthetic dataset substrate."""

import numpy as np
import pytest

from repro.data import DatasetSpec, SyntheticImageDataset


class TestDatasetSpec:
    def test_defaults_valid(self):
        spec = DatasetSpec()
        assert spec.num_classes == 10
        assert spec.image_size == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetSpec(num_classes=1)
        with pytest.raises(ValueError):
            DatasetSpec(image_size=2, template_resolution=4)


class TestSyntheticImageDataset:
    def test_shapes_and_dtypes(self, rng):
        ds = SyntheticImageDataset()
        images, labels = ds.sample(32, rng)
        assert images.shape == (32, 3, 16, 16)
        assert images.dtype == np.float32
        assert labels.shape == (32,)
        assert labels.dtype == np.int64
        assert labels.min() >= 0 and labels.max() < 10

    def test_deterministic_templates(self):
        a = SyntheticImageDataset(DatasetSpec(seed=7))
        b = SyntheticImageDataset(DatasetSpec(seed=7))
        np.testing.assert_array_equal(a.templates, b.templates)

    def test_different_seeds_give_different_tasks(self):
        a = SyntheticImageDataset(DatasetSpec(seed=1))
        b = SyntheticImageDataset(DatasetSpec(seed=2))
        assert not np.array_equal(a.templates, b.templates)

    def test_shards_are_deterministic(self):
        ds = SyntheticImageDataset()
        x1, y1 = ds.train_shard(3, 64)
        x2, y2 = ds.train_shard(3, 64)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_shards_are_disjoint_streams(self):
        ds = SyntheticImageDataset()
        x1, _ = ds.train_shard(0, 64)
        x2, _ = ds.train_shard(1, 64)
        assert not np.array_equal(x1, x2)

    def test_test_set_differs_from_train(self):
        ds = SyntheticImageDataset()
        xt, _ = ds.test_set(64)
        x0, _ = ds.train_shard(0, 64)
        assert not np.array_equal(xt, x0)

    def test_class_signal_present(self, rng):
        """Same-class samples must correlate more with their own template
        than with other templates — otherwise the task is unlearnable."""
        ds = SyntheticImageDataset()
        images, labels = ds.sample(500, rng)
        flat_templates = ds.templates.reshape(10, -1)
        flat_images = images.reshape(500, -1)
        scores = flat_images @ flat_templates.T  # (500, 10)
        top1 = scores.argmax(axis=1)
        assert float(np.mean(top1 == labels)) > 0.5

    def test_image_shape_property(self):
        ds = SyntheticImageDataset(DatasetSpec(image_size=12))
        assert ds.image_shape == (3, 12, 12)
        assert ds.num_classes == 10
