"""Tests for augmentation and batching."""

import numpy as np
import pytest

from repro.data import Augmenter, ShardBatcher, random_crop_flip


class TestRandomCropFlip:
    def test_shape_preserved(self, rng):
        images = rng.normal(size=(8, 3, 16, 16)).astype(np.float32)
        out = random_crop_flip(images, rng, pad=2)
        assert out.shape == images.shape
        assert out.dtype == images.dtype

    def test_deterministic_given_rng(self):
        images = np.random.default_rng(0).normal(size=(4, 3, 8, 8)).astype(np.float32)
        a = random_crop_flip(images, np.random.default_rng(42), pad=2)
        b = random_crop_flip(images, np.random.default_rng(42), pad=2)
        np.testing.assert_array_equal(a, b)

    def test_content_comes_from_padded_image(self, rng):
        """Every output pixel is either 0 (padding) or present in the input."""
        images = rng.uniform(1.0, 2.0, size=(4, 1, 6, 6)).astype(np.float32)
        out = random_crop_flip(images, rng, pad=2)
        in_values = set(np.round(images.reshape(-1), 5).tolist()) | {0.0}
        out_values = set(np.round(out.reshape(-1), 5).tolist())
        assert out_values <= in_values

    def test_pixel_mass_preserved_without_pad(self, rng):
        """pad=0 means the crop is the identity; only flips remain."""
        images = rng.normal(size=(16, 2, 5, 5)).astype(np.float32)
        out = random_crop_flip(images, rng, pad=0)
        np.testing.assert_allclose(
            np.sort(out.reshape(16, -1), axis=1),
            np.sort(images.reshape(16, -1), axis=1),
            rtol=1e-6,
        )

    def test_flip_actually_happens(self):
        images = np.zeros((64, 1, 4, 4), dtype=np.float32)
        images[:, :, :, 0] = 1.0  # left column marked
        out = random_crop_flip(images, np.random.default_rng(0), pad=0)
        flipped = (out[:, 0, 0, -1] == 1.0).mean()
        assert 0.2 < flipped < 0.8

    def test_augmenter_disabled_passthrough(self, rng):
        images = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        aug = Augmenter(rng, enabled=False)
        assert aug(images) is images


class TestShardBatcher:
    def _data(self, n=20):
        return (
            np.arange(n, dtype=np.float32).reshape(n, 1),
            np.arange(n, dtype=np.int64),
        )

    def test_batch_shapes(self, rng):
        x, y = self._data()
        batcher = ShardBatcher(x, y, 4, rng)
        bx, by = batcher.next_batch()
        assert bx.shape == (4, 1)
        assert by.shape == (4,)

    def test_epoch_covers_all_examples(self, rng):
        x, y = self._data(20)
        batcher = ShardBatcher(x, y, 4, rng)
        seen = []
        for _ in range(5):
            _, by = batcher.next_batch()
            seen.extend(by.tolist())
        assert sorted(seen) == list(range(20))

    def test_labels_track_images(self, rng):
        x, y = self._data(20)
        batcher = ShardBatcher(x, y, 5, rng)
        for _ in range(8):
            bx, by = batcher.next_batch()
            np.testing.assert_array_equal(bx[:, 0].astype(np.int64), by)

    def test_reshuffles_between_epochs(self):
        x, y = self._data(16)
        batcher = ShardBatcher(x, y, 16, np.random.default_rng(3))
        _, first = batcher.next_batch()
        _, second = batcher.next_batch()
        assert not np.array_equal(first, second)

    def test_validation(self, rng):
        x, y = self._data(10)
        with pytest.raises(ValueError):
            ShardBatcher(x, y[:5], 2, rng)
        with pytest.raises(ValueError):
            ShardBatcher(x, y, 11, rng)
        with pytest.raises(ValueError):
            ShardBatcher(x, y, 0, rng)

    def test_shard_size(self, rng):
        x, y = self._data(10)
        assert ShardBatcher(x, y, 2, rng).shard_size == 10
