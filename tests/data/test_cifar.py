"""Tests for the CIFAR-10 binary loader (using synthesized binary files)."""

import numpy as np
import pytest

from repro.data.cifar import (
    RECORD_BYTES,
    Cifar10Shards,
    load_cifar10,
    load_cifar10_batch,
)


def write_fake_batch(path, n, seed):
    """Write a valid CIFAR-10 binary batch with known content."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 10, size=n).astype(np.uint8)
    images = rng.integers(0, 256, size=(n, 3 * 32 * 32)).astype(np.uint8)
    records = np.concatenate([labels[:, None], images], axis=1)
    records.tofile(str(path))
    return images.reshape(n, 3, 32, 32), labels


@pytest.fixture
def cifar_dir(tmp_path):
    root = tmp_path / "cifar-10-batches-bin"
    root.mkdir()
    for i in range(1, 6):
        write_fake_batch(root / f"data_batch_{i}.bin", 40, seed=i)
    write_fake_batch(root / "test_batch.bin", 20, seed=99)
    return root


class TestLoadBatch:
    def test_parses_labels_and_images(self, tmp_path):
        path = tmp_path / "batch.bin"
        images, labels = write_fake_batch(path, 10, seed=0)
        got_x, got_y = load_cifar10_batch(path)
        np.testing.assert_array_equal(got_y, labels)
        np.testing.assert_array_equal(got_x, images)
        assert got_x.shape == (10, 3, 32, 32)

    def test_rejects_wrong_size(self, tmp_path):
        path = tmp_path / "bad.bin"
        np.zeros(RECORD_BYTES + 1, dtype=np.uint8).tofile(str(path))
        with pytest.raises(ValueError, match="multiple"):
            load_cifar10_batch(path)

    def test_rejects_bad_labels(self, tmp_path):
        path = tmp_path / "bad.bin"
        record = np.zeros(RECORD_BYTES, dtype=np.uint8)
        record[0] = 55  # label out of range
        record.tofile(str(path))
        with pytest.raises(ValueError, match="label"):
            load_cifar10_batch(path)


class TestLoadFull:
    def test_shapes_and_standardization(self, cifar_dir):
        train_x, train_y, test_x, test_y = load_cifar10(cifar_dir)
        assert train_x.shape == (200, 3, 32, 32)
        assert test_x.shape == (20, 3, 32, 32)
        assert train_x.dtype == np.float32
        # Per-channel standardization over the training set.
        np.testing.assert_allclose(
            train_x.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-4
        )
        np.testing.assert_allclose(
            train_x.std(axis=(0, 2, 3)), np.ones(3), atol=1e-3
        )

    def test_missing_files_reported(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="missing"):
            load_cifar10(tmp_path)


class TestShards:
    def test_shards_disjoint_and_deterministic(self, cifar_dir):
        shards = Cifar10Shards(cifar_dir, num_shards=4, seed=0)
        seen = []
        for shard in range(4):
            x, y = shards.train_shard(shard, 50)
            assert x.shape == (50, 3, 32, 32)
            seen.append(x)
        flat = np.concatenate(seen).reshape(200, -1)
        # All 200 examples appear exactly once (disjoint cover).
        assert np.unique(flat, axis=0).shape[0] == 200
        again = Cifar10Shards(cifar_dir, num_shards=4, seed=0).train_shard(1, 50)
        np.testing.assert_array_equal(again[0], seen[1])

    def test_overdraw_rejected(self, cifar_dir):
        shards = Cifar10Shards(cifar_dir, num_shards=4)
        with pytest.raises(ValueError, match="exceeds"):
            shards.train_shard(0, 51)

    def test_interface_matches_synthetic(self, cifar_dir):
        shards = Cifar10Shards(cifar_dir, num_shards=2)
        assert shards.num_classes == 10
        assert shards.image_shape == (3, 32, 32)
        x, y = shards.test_set(15)
        assert x.shape[0] == 15

    def test_cluster_trains_on_cifar_shards(self, cifar_dir):
        """The adapter plugs straight into the Cluster."""
        from repro.compression import make_compressor
        from repro.distributed import Cluster, ClusterConfig
        from repro.nn import ConstantLR, build_resnet

        cluster = Cluster(
            lambda: build_resnet(8, base_width=4, seed=3),
            Cifar10Shards(cifar_dir, num_shards=2),
            make_compressor("3LC (s=1.00)"),
            ConstantLR(0.01),
            ClusterConfig(num_workers=2, batch_size=8, shard_size=64),
        )
        log = cluster.train_step()
        assert np.isfinite(log.train_loss)
