"""Parallel scorer: bit-identical to serial, cache-aware chunking.

The pool's contract is that ``jobs`` changes wall-clock only. Scores are
frozen dataclasses over floats, so "bit-identical" is plain equality —
any reassociation or cross-process drift fails the comparison exactly.
"""

import numpy as np
import pytest

from repro.harness.config import FAST_CONFIG
from repro.tuner.evaluator import PlanEvaluator
from repro.tuner.parallel import ParallelScorer
from repro.tuner.space import default_space

BASE = FAST_CONFIG.scaled(
    model_family="mlp",
    num_workers=4,
    standard_steps=8,
    model_seed=7,
    dataset_seed=7,
    cluster_seed=7,
    scheme_seed=7,
)


@pytest.fixture(scope="module")
def space():
    return default_space(BASE)


@pytest.fixture(scope="module")
def candidates(space):
    rng = np.random.default_rng(0)
    return [space.sample(rng) for _ in range(6)]


def test_parallel_scores_equal_serial_exactly(space, candidates):
    serial = PlanEvaluator(space, link="10Mbps")
    expected = serial.evaluate_batch(candidates, 1.0)
    with ParallelScorer(space, jobs=2, link="10Mbps") as scorer:
        got = scorer.evaluate_batch(candidates, 1.0)
    assert got == expected


def test_jobs_one_degrades_to_in_process(space, candidates):
    scorer = ParallelScorer(space, jobs=1, link="10Mbps")
    assert scorer._pool is None
    got = scorer.evaluate_batch(candidates[:2], 1.0)
    assert scorer._pool is None  # never spawned
    expected = PlanEvaluator(space, link="10Mbps").evaluate_batch(
        candidates[:2], 1.0
    )
    assert got == expected


def test_set_baseline_reaches_worker_processes(space, candidates):
    lossy = [p for p in candidates if p.scheme != "32-bit float"]
    point = lossy[0] if lossy else candidates[0]
    with ParallelScorer(
        space, jobs=2, link="10Mbps", accuracy_floor_delta=0.0
    ) as scorer:
        # An absurd baseline makes every plan infeasible; the flag must
        # round-trip into the restarted pool's evaluators.
        scorer.set_baseline(2.0)
        got = scorer.evaluate_batch([point], 1.0)
    assert not got[0].feasible
    assert "accuracy" in got[0].reason


def test_chunking_keeps_recording_groups_whole(space, candidates):
    scorer = ParallelScorer(space, jobs=3, link="10Mbps")
    indexed = list(candidates) * 2  # duplicate signatures across the batch
    chunks = scorer._chunk(indexed)
    seen = {}
    for chunk_id, chunk in enumerate(chunks):
        for _, point in chunk:
            sig = space.recording_signature(point)
            assert seen.setdefault(sig, chunk_id) == chunk_id, (
                "recording group split across chunks"
            )
    # Every candidate lands exactly once, indices preserved.
    flat = sorted(index for chunk in chunks for index, _ in chunk)
    assert flat == list(range(len(indexed)))
    scorer.close()


def test_chunking_is_deterministic(space, candidates):
    scorer = ParallelScorer(space, jobs=2, link="10Mbps")
    assert scorer._chunk(candidates) == scorer._chunk(candidates)
    scorer.close()
