"""Search-strategy contracts: budget accounting, determinism, quality.

A fake scorer with a closed-form objective stands in for the simulator,
so these tests pin the *search* behavior (budget never exceeded,
low-fidelity rungs spend but cannot win, the cost model exploits a
learnable landscape) without training anything.
"""

import numpy as np
import pytest

from repro.harness.config import FAST_CONFIG
from repro.tuner.evaluator import PlanScore
from repro.tuner.search import (
    ROUND_SIZE,
    cost_model_search,
    random_search,
    successive_halving,
    tune,
)
from repro.tuner.space import default_space

BASE = FAST_CONFIG.scaled(model_family="mlp", num_workers=4)


class FakeScorer:
    """Deterministic closed-form objective; counts every evaluation."""

    def __init__(self, space, fn, accuracy=0.9):
        self.space = space
        self.fn = fn
        self.accuracy = accuracy
        self.evaluations = 0
        self.calls: list[tuple[int, float]] = []

    def set_baseline(self, accuracy):
        pass

    def evaluate_batch(self, points, fraction=1.0):
        points = list(points)
        self.evaluations += len(points)
        self.calls.append((len(points), fraction))
        return [
            PlanScore(
                point=p,
                step_seconds=self.fn(p),
                accuracy=self.accuracy,
                steps=24,
            )
            for p in points
        ]


def linear_objective(space):
    """A landscape that is exactly linear in the space's features."""
    rng = np.random.default_rng(99)
    probe = space.encode([space.sample(rng) for _ in range(4)])
    weights = np.abs(np.random.default_rng(7).normal(size=probe.shape[1])) + 0.01

    def fn(point):
        return float(space.encode([point])[0] @ weights)

    return fn


@pytest.fixture(scope="module")
def space():
    return default_space(BASE)


def default_score(space, fn):
    point = space.default_point(space.schemes[0])
    return PlanScore(point=point, step_seconds=fn(point), accuracy=0.9, steps=24)


class TestBudgets:
    @pytest.mark.parametrize(
        "strategy", [random_search, successive_halving, cost_model_search]
    )
    def test_budget_never_exceeded(self, space, strategy):
        fn = linear_objective(space)
        for budget in (3, 9, 26):
            scorer = FakeScorer(space, fn)
            result = strategy(
                space, scorer, budget=budget, seed=1,
                default=default_score(space, fn),
            )
            # The default's evaluation is charged inside the budget; the
            # scorer itself is asked for at most budget - 1 more.
            assert result.evaluations <= budget
            assert scorer.evaluations <= budget - 1

    def test_halving_spends_low_fidelity_from_budget(self, space):
        fn = linear_objective(space)
        scorer = FakeScorer(space, fn)
        result = successive_halving(
            space, scorer, budget=30, seed=2, default=default_score(space, fn)
        )
        fractions = {fraction for _, fraction in scorer.calls}
        assert 1.0 in fractions and min(fractions) < 1.0
        assert result.evaluations <= 30

    def test_halving_best_comes_from_full_fidelity(self, space):
        # Low-fidelity scores are not comparable across schedules; the
        # returned best must carry a full-fraction (or default) score.
        fn = linear_objective(space)
        scorer = FakeScorer(space, fn)
        result = successive_halving(
            space, scorer, budget=30, seed=2, default=default_score(space, fn)
        )
        full_points = {
            id_
            for (count, fraction) in scorer.calls
            if fraction >= 1.0
            for id_ in range(count)
        }
        assert full_points or result.best.point == result.default.point


class TestDeterminism:
    @pytest.mark.parametrize(
        "strategy", [random_search, successive_halving, cost_model_search]
    )
    def test_same_seed_same_result(self, space, strategy):
        fn = linear_objective(space)
        results = [
            strategy(
                space, FakeScorer(space, fn), budget=20, seed=5,
                default=default_score(space, fn),
            )
            for _ in range(2)
        ]
        assert results[0].best.point == results[1].best.point
        assert results[0].evaluations == results[1].evaluations
        assert [
            (t.evaluations, t.best_step_seconds) for t in results[0].trajectory
        ] == [
            (t.evaluations, t.best_step_seconds) for t in results[1].trajectory
        ]

    def test_trajectory_is_strictly_improving(self, space):
        fn = linear_objective(space)
        result = random_search(
            space, FakeScorer(space, fn), budget=25, seed=3,
            default=default_score(space, fn),
        )
        bests = [t.best_step_seconds for t in result.trajectory]
        assert bests == sorted(bests, reverse=True)
        assert len(set(bests)) == len(bests)


class TestQuality:
    def test_cost_model_at_least_matches_random(self, space):
        """On a linear landscape the ridge model is exact after its seed
        rounds; with the same budget it must find a plan no worse than
        random search's."""
        fn = linear_objective(space)
        budget = 4 * ROUND_SIZE
        model = cost_model_search(
            space, FakeScorer(space, fn), budget=budget, seed=11,
            default=default_score(space, fn),
        )
        rand = random_search(
            space, FakeScorer(space, fn), budget=budget, seed=11,
            default=default_score(space, fn),
        )
        assert model.best.objective <= rand.best.objective

    def test_infeasible_scores_cannot_win(self, space):
        fn = linear_objective(space)

        class Infeasible(FakeScorer):
            def evaluate_batch(self, points, fraction=1.0):
                scores = super().evaluate_batch(points, fraction)
                return [
                    PlanScore(
                        point=s.point, step_seconds=s.step_seconds / 100,
                        accuracy=0.0, steps=s.steps, feasible=False,
                        reason="accuracy floor",
                    )
                    for s in scores
                ]

        default = default_score(space, fn)
        result = random_search(
            space, Infeasible(space, fn), budget=20, seed=4, default=default
        )
        assert result.best.point == default.point


class TestTuneDriver:
    def test_unknown_strategy_and_tiny_budget(self, space):
        fn = linear_objective(space)
        with pytest.raises(ValueError, match="unknown strategy"):
            tune(space, FakeScorer(space, fn), strategy="anneal", budget=8)
        with pytest.raises(ValueError, match="budget"):
            tune(space, FakeScorer(space, fn), strategy="random", budget=1)

    def test_tune_scores_default_first(self, space):
        fn = linear_objective(space)
        scorer = FakeScorer(space, fn)
        result = tune(
            space, scorer, strategy="random", budget=10, seed=0
        )
        assert scorer.calls[0][0] == 1  # the default plan, alone
        assert result.default.point == space.default_point(space.schemes[0])
        assert result.evaluations <= 10
