"""Plan-space properties: legality as data, canonical form, sampling.

The space is the tuner's contract with the engine: ``sample`` must never
propose a point the engine would reject, ``canonical`` must collapse
run-equivalent points, and ``recording_signature`` must group exactly the
points that share a training recording.
"""

import numpy as np
import pytest

from repro.harness.config import FAST_CONFIG
from repro.tuner.space import (
    PlanPoint,
    PlanSpace,
    boundary_candidates,
    default_space,
)

BASE = FAST_CONFIG.scaled(model_family="mlp", num_workers=4)


@pytest.fixture(scope="module")
def space() -> PlanSpace:
    return default_space(BASE)


def point(space, **overrides) -> PlanPoint:
    base = space.default_point("32-bit float")
    fields = base.as_dict()
    fields["fuse"] = fields.pop("fuse_small_tensors")
    fields["bucket_boundaries"] = tuple(fields["bucket_boundaries"])
    fields.update(overrides)
    return PlanPoint(**fields)


class TestLegality:
    def test_sampling_never_proposes_illegal_points(self, space):
        rng = np.random.default_rng(0)
        for _ in range(300):
            p = space.sample(rng)
            assert space.legal_reason(p) is None
            # Samples arrive canonical: equivalent points are one point.
            assert space.canonical(p) == p

    def test_fuse_lossy_requires_fuse(self, space):
        p = point(space, fuse=False, fuse_lossy=True)
        assert "fuse" in space.legal_reason(p)

    def test_boundaries_require_fuse(self, space):
        p = point(space, fuse=False, bucket_boundaries=("x",))
        assert "fuse" in space.legal_reason(p)

    def test_hier_rack_arithmetic(self, space):
        p = point(space, topology="hier", racks=3, rack_size=2)
        assert "num_workers" in space.legal_reason(p)

    def test_deferring_scheme_illegal_on_collectives(self, space):
        for topology in ("ring", "hier"):
            p = point(
                space, scheme="2 local steps", topology=topology,
                racks=2, rack_size=2,
            )
            assert "defers" in space.legal_reason(p)

    def test_apply_rejects_illegal(self, space):
        p = point(space, fuse=False, fuse_lossy=True)
        with pytest.raises(ValueError, match="illegal plan point"):
            space.apply(p)


class TestCanonical:
    def test_resets_fields_invisible_to_topology(self, space):
        p = point(
            space, topology="single", num_shards=4,
            cross_bw_fraction=0.05, racks=2, rack_size=2,
        )
        canon = space.canonical(p)
        assert canon.num_shards == BASE.num_shards
        assert canon.racks == BASE.racks
        assert canon.cross_bw_fraction == 1.0

    def test_resets_bucket_geometry_without_fuse(self, space):
        p = point(
            space, fuse=False, bucket_elements=4096,
            bucket_boundaries=(),
        )
        assert space.canonical(p).bucket_elements == BASE.bucket_elements

    def test_recording_signature_projects_sim_only_knobs(self, space):
        a = point(
            space, topology="hier", racks=2, rack_size=2,
            cross_bw_fraction=0.05, transmission_priority="registration",
        )
        b = point(
            space, topology="hier", racks=2, rack_size=2,
            cross_bw_fraction=0.25, transmission_priority="smallest",
        )
        assert space.recording_signature(a) == space.recording_signature(b)
        c = point(space, topology="ring")
        assert space.recording_signature(a) != space.recording_signature(c)


class TestConstruction:
    def test_default_point_mirrors_base(self, space):
        p = space.default_point("8-bit int")
        assert p.scheme == "8-bit int"
        assert p.topology == BASE.topology
        assert p.transmission_priority == "registration"
        config = space.apply(p)
        assert config.sim_overlap is True

    def test_apply_threads_every_knob(self, space):
        p = point(
            space, scheme="MQE 1-bit int", topology="hier", racks=2,
            rack_size=2, cross_bw_fraction=0.1,
            transmission_priority="smallest", fuse=True, fuse_lossy=True,
            bucket_elements=1024,
        )
        assert space.legal_reason(p) is None
        config = space.apply(p)
        assert config.topology == "hier"
        assert config.cross_bw_fraction == 0.1
        assert config.transmission_priority == "smallest"
        assert config.fuse_lossy is True
        assert config.bucket_elements == 1024

    def test_point_round_trips_through_dict(self, space):
        rng = np.random.default_rng(3)
        for _ in range(20):
            p = space.sample(rng)
            assert space.point_from_dict(p.as_dict()) == p

    def test_encode_shape_and_intercept(self, space):
        rng = np.random.default_rng(1)
        points = [space.sample(rng) for _ in range(5)]
        X = space.encode(points)
        assert X.shape[0] == 5
        assert np.all(X[:, 0] == 1.0)

    def test_hier_requires_rack_shapes(self):
        with pytest.raises(ValueError, match="rack_shapes"):
            PlanSpace(
                base=BASE, schemes=("32-bit float",),
                topologies=("single", "hier"), rack_shapes=(),
            )


class TestDefaultSpace:
    def test_two_worker_base_drops_hier(self):
        space = default_space(FAST_CONFIG.scaled(model_family="mlp"))
        assert "hier" not in space.topologies

    def test_boundary_candidates_cover_fusable_names(self):
        candidates = boundary_candidates(BASE)
        assert () in candidates
        model = BASE.model_factory()()
        fusable = {
            p.name
            for p in model.parameters()
            if p.size < BASE.small_tensor_threshold
        }
        for names in candidates:
            assert set(names) <= fusable


class TestConfigValidation:
    def test_boundaries_require_fuse_in_config(self):
        with pytest.raises(ValueError, match="fuse"):
            BASE.scaled(bucket_boundaries=("layer1.weight",))

    def test_priority_validated_in_config(self):
        with pytest.raises(ValueError, match="priority"):
            BASE.scaled(transmission_priority="fifo")
