"""The repro.plan/v1 artifact: validation, round-trips, reproducibility.

The artifact is the tuner's only product, so it gets the strictest
checks: schema validation catches shape drift, save/load round-trips are
lossless, two same-seed tuner runs write byte-identical files, and a
saved plan applied through the harness config reproduces the winning
configuration exactly.
"""

import json

import pytest

from repro.harness.config import FAST_CONFIG
from repro.harness import results_io
from repro.tuner.artifact import (
    PLAN_SCHEMA,
    apply_plan,
    load_plan,
    plan_to_dict,
    save_plan,
    validate_plan,
)
from repro.tuner.evaluator import PlanEvaluator
from repro.tuner.search import tune
from repro.tuner.space import default_space

BASE = FAST_CONFIG.scaled(
    model_family="mlp",
    num_workers=4,
    standard_steps=8,
    model_seed=3,
    dataset_seed=3,
    cluster_seed=3,
    scheme_seed=3,
)


@pytest.fixture(scope="module")
def space():
    return default_space(BASE)


def tiny_run(space, seed=0):
    evaluator = PlanEvaluator(space, link="10Mbps")
    return tune(space, evaluator, strategy="random", budget=6, seed=seed)


@pytest.fixture(scope="module")
def artifact(space):
    return plan_to_dict(tiny_run(space), space, link="10Mbps")


class TestValidation:
    def test_well_formed_artifact_passes(self, artifact):
        validate_plan(artifact)
        assert artifact["schema"] == PLAN_SCHEMA

    def test_wrong_schema_rejected(self, artifact):
        bad = dict(artifact, schema="repro.plan/v0")
        with pytest.raises(ValueError, match="unsupported plan schema"):
            validate_plan(bad)

    def test_missing_field_rejected(self, artifact):
        plan = dict(artifact["plan"])
        plan.pop("topology")
        with pytest.raises(ValueError, match="topology"):
            validate_plan(dict(artifact, plan=plan))

    def test_bool_is_not_an_integer(self, artifact):
        plan = dict(artifact["plan"], bucket_elements=True)
        with pytest.raises(ValueError, match="bucket_elements"):
            validate_plan(dict(artifact, plan=plan))

    def test_boundaries_must_be_names(self, artifact):
        plan = dict(artifact["plan"], bucket_boundaries=[1, 2])
        with pytest.raises(ValueError, match="bucket_boundaries"):
            validate_plan(dict(artifact, plan=plan))

    def test_missing_sections_rejected(self, artifact):
        bad = {k: v for k, v in artifact.items() if k != "search"}
        with pytest.raises(ValueError, match="search"):
            validate_plan(bad)


class TestRoundTrip:
    def test_save_load_is_lossless(self, artifact, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(path, artifact)
        assert load_plan(path) == artifact

    def test_results_io_wrappers_round_trip(self, artifact, tmp_path):
        path = tmp_path / "plan.json"
        results_io.save_plan(path, artifact)
        assert results_io.load_plan(path) == artifact

    def test_save_rejects_invalid(self, artifact, tmp_path):
        with pytest.raises(ValueError):
            save_plan(tmp_path / "bad.json", dict(artifact, plan={}))

    def test_apply_plan_reproduces_winning_config(self, space, artifact):
        applied, scheme = apply_plan(BASE, artifact)
        point = space.point_from_dict(artifact["plan"])
        assert applied == space.apply(point)
        assert scheme == artifact["plan"]["scheme"]
        assert applied.sim_overlap is True


class TestReproducibility:
    def test_same_seed_runs_write_identical_bytes(self, space, tmp_path):
        paths = []
        for run in range(2):
            artifact = plan_to_dict(tiny_run(space, seed=9), space, link="10Mbps")
            path = tmp_path / f"plan{run}.json"
            save_plan(path, artifact)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_artifact_carries_no_wall_clock(self, artifact):
        text = json.dumps(artifact)
        assert "wall" not in text and "timestamp" not in text
