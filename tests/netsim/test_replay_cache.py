"""Incremental sweep replay: cache semantics and bit-identical reuse.

Covers the :class:`SweepReplayCache` contract directly (exact-match keys,
hit/miss counters, the recording/simulation/timeline levels) and through
the harness: sweep points differing only in simulation-only knobs share
one training recording, while anything recording-relevant — scheme, step
budget, fusion bucket capacity, topology — invalidates it.
"""

import random
from dataclasses import replace

import pytest

from repro.harness import FAST_CONFIG, ExperimentRunner
from repro.netsim import (
    NetworkSimulator,
    RecordedTraining,
    RecordingKey,
    SweepReplayCache,
)
from tests.netsim.test_vector_parity import random_run, random_timeline


def make_recording(tag: str) -> RecordedTraining:
    return RecordedTraining(
        transmissions=(tag,),
        update_events=(),
        evals=(),
        final=None,
        loss_curve=(),
        traffic=None,
        synchronous=True,
    )


class TestCacheSemantics:
    def test_recording_roundtrip_and_counters(self):
        cache = SweepReplayCache()
        key = RecordingKey("3LC (s=1.00)", 64, ("hier", 4, 2))
        assert cache.recording(key) is None
        assert cache.recording_misses == 1
        rec = make_recording("a")
        cache.store_recording(key, rec)
        assert cache.recording(key) is rec
        assert cache.recording_hits == 1

    @pytest.mark.parametrize(
        "other",
        [
            RecordingKey("32-bit float", 64, ("hier", 4, 2)),  # scheme
            RecordingKey("3LC (s=1.00)", 32, ("hier", 4, 2)),  # step budget
            RecordingKey("3LC (s=1.00)", 64, ("hier", 8, 2)),  # fingerprint
        ],
    )
    def test_recording_key_invalidates(self, other):
        cache = SweepReplayCache()
        key = RecordingKey("3LC (s=1.00)", 64, ("hier", 4, 2))
        cache.store_recording(key, make_recording("a"))
        assert cache.recording(other) is None

    def test_simulation_level_is_exact_match(self):
        cache = SweepReplayCache()
        key = RecordingKey("3LC (s=1.00)", 4, "fp")
        sim_key = (key, "bsp", "100Mbps", 1.0, 0.0)
        assert cache.simulation(sim_key) is None
        cache.store_simulation(sim_key, "sim-object")
        assert cache.simulation(sim_key) == "sim-object"
        # Any varied network knob is a different key.
        assert cache.simulation((key, "bsp", "100Mbps", 0.1, 0.0)) is None
        assert cache.stats()["simulation_hits"] == 1
        assert cache.stats()["simulation_misses"] == 2

    def test_timeline_level(self):
        cache = SweepReplayCache()
        assert cache.timeline("cfg") is None
        cache.store_timeline("cfg", "profile")
        assert cache.timeline("cfg") == "profile"

    def test_len_and_stats_count_entries(self):
        cache = SweepReplayCache()
        cache.store_recording(RecordingKey("a", 1, ()), make_recording("a"))
        cache.store_simulation("s", 1)
        cache.store_timeline("t", 2)
        assert len(cache) == 1  # recordings are the expensive level
        stats = cache.stats()
        assert stats["recordings"] == 1
        assert stats["simulations"] == 1
        assert stats["timelines"] == 1


class TestBitIdenticalReplay:
    def test_resimulated_recording_matches_first_run(self):
        """A cache hit replays the identical plan objects; the simulator
        output must be bit-identical to the cold simulation."""
        rng = random.Random(3)
        links, steps = random_run(rng, 5)
        timeline = random_timeline(rng)
        plans = tuple(steps)  # what a RecordedTraining would carry
        sim = NetworkSimulator(timeline, links, vectorized=True)
        cold = sim.simulate_run(plans)
        cache = SweepReplayCache()
        cache.store_simulation("point", cold)
        assert cache.simulation("point") is cold
        # A different sweep point re-simulates the same recording and must
        # reproduce the schedule exactly (per-step caches included).
        again = NetworkSimulator(timeline, links, vectorized=True).simulate_run(plans)
        assert again == cold


class TestHarnessSweepReuse:
    def test_sim_only_knobs_share_one_recording(self):
        """Two hier sweep points differing only in cross-rack bandwidth
        share the training recording but get distinct simulations."""
        cache = SweepReplayCache()
        base = FAST_CONFIG.scaled(
            standard_steps=4,
            sim_overlap=True,
            topology="hier",
            num_workers=4,
            racks=2,
            rack_size=2,
        )
        first = ExperimentRunner(base, replay_cache=cache)
        first.run("3LC (s=1.00)")
        assert cache.recording_misses == 1
        trained = cache.stats()["recordings"]
        assert trained == 1

        narrow = ExperimentRunner(
            replace(base, cross_bw_fraction=0.25), replay_cache=cache
        )
        narrow.run("3LC (s=1.00)")
        # Recording reused (no second training run), simulations distinct.
        assert cache.recording_hits == 1
        assert cache.stats()["recordings"] == 1
        assert cache.stats()["simulation_misses"] >= 2

    def test_bucket_capacity_invalidates_recording(self):
        """Fusion bucket capacity changes recorded frames: a swept
        ``bucket_elements`` must retrain, not reuse."""
        cache = SweepReplayCache()
        base = FAST_CONFIG.scaled(
            standard_steps=4, sim_overlap=True, fuse_small_tensors=True
        )
        ExperimentRunner(base, replay_cache=cache).run("3LC (s=1.00)")
        ExperimentRunner(
            replace(base, bucket_elements=1024), replay_cache=cache
        ).run("3LC (s=1.00)")
        assert cache.recording_hits == 0
        assert cache.stats()["recordings"] == 2
