"""Netsim replay of injected faults, and the fault knobs' cache keys.

Three concerns share this module because they guard the same seam —
what a churned run records and how downstream layers consume it:

* outage replay: ``StepTransmissions.link_down`` floors must be honored
  identically by the scalar, vectorized, and event-driven cores, and
  traced replays must put the outage window on its own ``outage:``
  track so link-utilization accounting stays undisturbed;
* cache fingerprints: every fault-relevant knob (``backup_workers``,
  the straggler spec, the fault spec) must invalidate the sweep-replay
  recording cache — a hit across differing churn would replay the
  wrong wire plan;
* archives: churn fields round-trip through results_io (and legacy
  archives without them still load) and traced faulted runs export
  valid Chrome traces even when training aborts mid-step.
"""

import json

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed.barriers import StragglerSpec
from repro.distributed.faults import FaultSpec, UplinkFlap, WorkerCrash
from repro.exchange import EngineConfig, ExchangeEngine
from repro.harness.config import FAST_CONFIG
from repro.harness.results_io import run_result_from_dict, run_result_to_dict
from repro.harness.runner import ExperimentRunner
from repro.netsim import (
    EventDrivenSimulator,
    NetworkSimulator,
    link_model_for,
    updates_from_bsp_steps,
)
from repro.netsim.events import StepTransmissions, TransmissionRecord
from repro.network.bandwidth import link
from repro.network.timing import StepTimeModel
from repro.nn import CosineDecay, build_resnet
from repro.nn.stats import profile_backward
from repro.telemetry import Telemetry, Tracer
from repro.telemetry.export import chrome_trace, write_chrome_trace
from repro.telemetry.validate import validate_chrome_trace

TIME_MODEL = StepTimeModel(
    overlap=0.0, per_message_overhead=25e-6, compute_scale=0.05, codec_scale=0.5
)

CORE_PARITY = 1e-6


def _dataset():
    return SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))


def _timeline():
    return profile_backward(
        build_resnet(8, base_width=4, seed=7), *_dataset().train_shard(0, 8)
    )


def train_faulted(topology, fault, steps=6, **extra):
    """Train a small faulted engine with transmission recording on."""
    kwargs = dict(
        num_workers=4,
        batch_size=8,
        shard_size=64,
        seed=0,
        topology=topology,
        fault=fault,
        record_transmissions=True,
    )
    if topology == "hier":
        kwargs.update(racks=2, rack_size=2)
    kwargs.update(extra)
    telemetry = kwargs.pop("telemetry", None)
    engine = ExchangeEngine(
        lambda: build_resnet(8, base_width=4, seed=7),
        _dataset(),
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, steps),
        EngineConfig(**kwargs),
        telemetry=telemetry,
    )
    engine.train(steps)
    return engine


class TestOutageReplay:
    def _synthetic_steps(self):
        record = TransmissionRecord(
            name="grad",
            params=("grad",),
            wire_bytes=125_000,
            elements=1000,
            route="server",
        )
        shared = dict(
            compute_seconds=0.01,
            push_compress_seconds=0.0,
            server_decompress_seconds=0.0,
            server_compress_seconds=0.0,
            pull_decompress_seconds=0.0,
            records=(record,),
        )
        base = StepTransmissions(step=0, **shared)
        floored = StepTransmissions(
            step=0, link_down=(("server", 0.5),), **shared
        )
        return base, floored

    @pytest.mark.parametrize("vectorized", [False, True])
    def test_synthetic_floor_delays_the_step(self, vectorized):
        """A link-down floor holds all of a route's transfers back."""
        base, floored = self._synthetic_steps()
        sim = NetworkSimulator(
            _timeline(),
            link_model_for("single", link("100Mbps"), num_workers=4),
            TIME_MODEL,
            overlap=False,
            serialized_baseline=False,
            vectorized=vectorized,
        )
        plain = sim.simulate_step(base).step_seconds
        held = sim.simulate_step(floored).step_seconds
        assert held >= 0.5
        assert held > plain

    def test_negative_floor_rejected(self):
        with pytest.raises(ValueError, match="link_down"):
            StepTransmissions(
                step=0,
                compute_seconds=0.0,
                push_compress_seconds=0.0,
                server_decompress_seconds=0.0,
                server_compress_seconds=0.0,
                pull_decompress_seconds=0.0,
                records=(),
                link_down=(("server", -1.0),),
            )

    @pytest.mark.parametrize("topology", ["single", "sharded"])
    def test_crash_stream_cores_agree(self, topology):
        """All three cores replay a crash/rejoin stream identically.

        The rejoin step carries the full-model resync on the pull phase;
        the scalar and vectorized replays must agree per step, and the
        event-driven core (lockstep at staleness=0) must agree on the
        serialized total. The event fold only models flat
        parameter-server streams (``updates_from_bsp_steps`` drops
        rack-collective records), so hier is excluded by design.
        """
        fault = FaultSpec(crashes=(WorkerCrash(worker=1, step=2, down_steps=2),))
        engine = train_faulted(topology, fault)
        rejoin = engine.transmissions[4]
        resync = [r for r in rejoin.records if r.name.startswith("resync:")]
        assert resync and all(r.phase == "pull" for r in resync)
        assert (
            sum(r.wire_bytes for r in resync)
            == engine.traffic.steps[4].resync_bytes
        )

        timeline = _timeline()
        lm = link_model_for(topology, link("100Mbps"), num_workers=4)
        scalar = NetworkSimulator(
            timeline, lm, TIME_MODEL,
            overlap=False, serialized_baseline=False, vectorized=False,
        ).simulate_run(engine.transmissions)
        vector = NetworkSimulator(
            timeline, lm, TIME_MODEL,
            overlap=False, serialized_baseline=False, vectorized=True,
        ).simulate_run(engine.transmissions)
        for a, b in zip(scalar.steps, vector.steps):
            assert abs(a.step_seconds - b.step_seconds) <= CORE_PARITY
        # The resync makes the rejoin step strictly slower than its twin
        # one step later (same live set, no resync).
        assert scalar.steps[4].step_seconds > scalar.steps[5].step_seconds

        event = EventDrivenSimulator(
            timeline, lm, TIME_MODEL, staleness=0, overlap=False
        ).simulate(updates_from_bsp_steps(engine.transmissions, 4))
        assert abs(event.total_seconds - scalar.total_seconds) <= CORE_PARITY

    @pytest.mark.parametrize("overlap", [False, True])
    def test_flap_stream_scalar_vector_parity(self, overlap):
        """A flap's rejoin-delay floor survives into the replay and both
        replay cores price it identically."""
        fault = FaultSpec(
            flaps=(
                UplinkFlap(rack=1, step=2, down_steps=2,
                           rejoin_delay_seconds=0.4),
            )
        )
        engine = train_faulted("hier", fault)
        flooded = [st for st in engine.transmissions if st.link_down]
        assert len(flooded) == 1 and flooded[0].step == 4
        assert flooded[0].link_down == (("cross:rack1", 0.4),)

        lm = link_model_for("hier", link("100Mbps"), racks=2, rack_size=2)
        # One timeline for both cores: profile_backward measures real
        # wall time, so two profiles differ in their layer fractions.
        timeline = _timeline()
        runs = [
            NetworkSimulator(
                timeline, lm, TIME_MODEL,
                overlap=overlap, serialized_baseline=False,
                vectorized=vectorized,
            ).simulate_run(engine.transmissions)
            for vectorized in (False, True)
        ]
        for a, b in zip(runs[0].steps, runs[1].steps):
            assert abs(a.step_seconds - b.step_seconds) <= CORE_PARITY
        # The rejoin step pays at least the fabric re-convergence floor.
        assert runs[0].steps[4].step_seconds >= 0.4

    def test_outage_spans_ride_dedicated_tracks(self):
        """Outage windows trace as ``outage:<route>``, not
        ``link:<route>`` — link busy-seconds must keep reconciling with
        utilization."""
        fault = FaultSpec(
            flaps=(
                UplinkFlap(rack=1, step=2, down_steps=2,
                           rejoin_delay_seconds=0.4),
            )
        )
        engine = train_faulted("hier", fault)
        lm = link_model_for("hier", link("100Mbps"), racks=2, rack_size=2)
        tracer = Tracer()
        NetworkSimulator(
            _timeline(), lm, TIME_MODEL,
            overlap=True, serialized_baseline=False,
            tracer=tracer, trace_group="sim",
        ).simulate_run(engine.transmissions)
        outage = [s for s in tracer.spans if s.track.startswith("outage:")]
        assert outage, "expected an outage span for the rejoin floor"
        assert all(s.name == "link-down" for s in outage)
        tracer.check_closed()


class TestRecordingKeyFingerprint:
    """Regression: fault-relevant knobs must split the recording cache.

    A :class:`SweepReplayCache` hit replays the cached wire plan without
    rebuilding the engine, so any knob that changes training dynamics or
    the recorded plan must land in the fingerprint. These knobs once did
    not.
    """

    BASE = FAST_CONFIG.scaled(standard_steps=6, num_workers=4)

    def _key(self, config):
        return ExperimentRunner(config)._recording_key("3LC (s=1.00)", 6)

    def test_backup_workers_invalidates(self):
        assert self._key(self.BASE) != self._key(
            self.BASE.scaled(backup_workers=1)
        )

    def test_straggler_invalidates(self):
        assert self._key(self.BASE) != self._key(
            self.BASE.scaled(straggler=StragglerSpec(seed=3))
        )

    def test_fault_invalidates(self):
        fault = FaultSpec(crashes=(WorkerCrash(worker=1, step=2),))
        assert self._key(self.BASE) != self._key(self.BASE.scaled(fault=fault))

    def test_checkpoint_mode_invalidates(self):
        crashes = (WorkerCrash(worker=1, step=2),)
        a = self.BASE.scaled(fault=FaultSpec(crashes=crashes))
        b = self.BASE.scaled(
            fault=FaultSpec(crashes=crashes, checkpoint_state=False)
        )
        assert self._key(a) != self._key(b)

    def test_sim_only_knobs_still_canonicalize(self):
        """The churn knobs must not break sweep sharing: points differing
        only in network-model knobs keep hitting the same recording."""
        fault = FaultSpec(crashes=(WorkerCrash(worker=1, step=2),))
        a = self.BASE.scaled(fault=fault, cross_bw_fraction=0.5)
        b = self.BASE.scaled(fault=fault, cross_bw_fraction=0.2)
        assert self._key(a) == self._key(b)


class TestChurnArchives:
    def test_fault_summary_round_trips(self):
        fault = FaultSpec(
            crashes=(WorkerCrash(worker=1, step=2, down_steps=2),)
        )
        runner = ExperimentRunner(
            FAST_CONFIG.scaled(standard_steps=6, fault=fault)
        )
        result = runner.run("3LC (s=1.00)")
        assert result.fault_summary is not None
        assert result.fault_summary["crashes"] == 1
        assert result.traffic.total_resync_bytes > 0
        restored = run_result_from_dict(
            json.loads(json.dumps(run_result_to_dict(result)))
        )
        assert restored.fault_summary == result.fault_summary
        assert (
            restored.traffic.total_resync_bytes
            == result.traffic.total_resync_bytes
        )

    def test_legacy_archive_without_churn_fields_loads(self):
        runner = ExperimentRunner(FAST_CONFIG.scaled(standard_steps=6))
        result = runner.run("3LC (s=1.00)")
        legacy = run_result_to_dict(result)
        # A pre-churn archive has neither the summary nor the per-step
        # resync counters.
        del legacy["fault_summary"]
        for step in legacy["traffic_steps"]:
            del step["resync_bytes"]
        loaded = run_result_from_dict(json.loads(json.dumps(legacy)))
        assert loaded.fault_summary is None
        assert loaded.traffic.total_resync_bytes == 0


class TestTracedFaultedRuns:
    def test_faulted_telemetry_run_exports_valid_trace(self, tmp_path):
        """A mid-run fault with telemetry on still produces a schema-valid
        Chrome trace with no dangling spans."""
        fault = FaultSpec(
            crashes=(WorkerCrash(worker=1, step=2, down_steps=2),)
        )
        runner = ExperimentRunner(
            FAST_CONFIG.scaled(
                standard_steps=6, fault=fault,
                sim_overlap=True, telemetry=True,
            )
        )
        result = runner.run("3LC (s=1.00)")
        assert result.fault_summary is not None
        out = tmp_path / "trace.json"
        assert write_chrome_trace(out, runner.telemetry_sessions) > 0
        data = json.loads(out.read_text())
        assert validate_chrome_trace(data) == []

    def test_aborted_run_leaves_no_dangling_spans(self):
        """Training that dies mid-run (every worker gone) must not leave
        the tracer un-exportable: all engine spans are emitted completed,
        so check_closed holds even on the abort path."""
        fault = FaultSpec(
            crashes=tuple(
                WorkerCrash(worker=w, step=2, down_steps=2) for w in range(4)
            ),
        )
        tel = Telemetry()
        engine = ExchangeEngine(
            lambda: build_resnet(8, base_width=4, seed=7),
            _dataset(),
            make_compressor("3LC (s=1.00)", seed=0),
            CosineDecay(0.05, 6),
            EngineConfig(
                num_workers=4, batch_size=8, shard_size=64, seed=0,
                topology="single", fault=fault,
            ),
            telemetry=tel,
        )
        with pytest.raises(RuntimeError, match="no live workers"):
            engine.train(6)
        tel.tracer.check_closed()
        trace = chrome_trace([("aborted", tel)])
        assert validate_chrome_trace(trace) == []
        assert np.isfinite([log.train_loss for log in engine.step_logs]).all()
