"""Tests for the discrete-event network simulator.

The load-bearing assertions:

* the serialized schedule reproduces the analytic ``StepTimeModel`` closed
  form at ``overlap=0`` (the acceptance criterion's 1% bound — the two are
  identical by construction, so we assert much tighter);
* per-layer overlap reports a *measured* overlap fraction in (0, 1] and
  never slows a step down;
* fused buckets wait for their last member gradient;
* the ring is charged per-link, not through a fictitious server NIC.
"""

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.exchange import EngineConfig, ExchangeEngine
from repro.netsim import (
    LinkModel,
    NetworkSimulator,
    SimulatedRun,
    StepTransmissions,
    TransmissionRecord,
    link_model_for,
    ring_links,
    sharded_links,
    single_server_links,
)
from repro.network.bandwidth import LinkSpec, link
from repro.network.timing import StepTimeModel
from repro.nn import CosineDecay, build_resnet
from repro.nn.stats import BackwardTimeline, LayerTiming


def make_timeline(spec: list[tuple[str, float, tuple[str, ...]]]) -> BackwardTimeline:
    return BackwardTimeline(
        tuple(LayerTiming(label, seconds, params) for label, seconds, params in spec)
    )


#: Two-layer model: backward visits "top" first (producing b's gradient),
#: then "bottom" (producing a's gradient).
SIMPLE_TIMELINE = make_timeline(
    [("top", 0.5, ("b",)), ("bottom", 0.5, ("a",))]
)


def simple_step(
    *,
    push_bytes: int = 125_000,
    compute: float = 1.0,
    frames: int = 1,
    pull_bytes: int = 0,
) -> StepTransmissions:
    records = [
        TransmissionRecord(
            name="b",
            params=("b",),
            wire_bytes=push_bytes,
            elements=100,
            route="server",
            worker=0,
            frames=frames,
        )
    ]
    if pull_bytes:
        records.append(
            TransmissionRecord(
                name="b",
                params=("b",),
                wire_bytes=pull_bytes,
                elements=100,
                route="server",
                phase="pull",
                copies=2,
            )
        )
    return StepTransmissions(
        step=0, compute_seconds=compute, records=tuple(records)
    )


MBPS = LinkSpec("1Mbps", 1e6)  # 125 kB/s: a 125000-byte push takes 1 s


class TestScheduler:
    def test_overlap_hides_transfer_behind_backward(self):
        # b's gradient is ready at t=0.5; its 1 s transfer ends at 1.5 —
        # 0.5 s hid under the remaining backward half.
        sim = NetworkSimulator(
            SIMPLE_TIMELINE, single_server_links(MBPS), StepTimeModel(), overlap=True
        )
        step = sim.simulate_step(simple_step(frames=1))
        overhead = StepTimeModel().per_message_overhead
        assert step.step_seconds == pytest.approx(1.5 + overhead)
        assert step.serialized_seconds == pytest.approx(2.0 + overhead)
        assert step.achieved_overlap == pytest.approx(0.5)
        assert step.overlap_speedup > 1.0

    def test_serialized_mode_reports_zero_overlap(self):
        sim = NetworkSimulator(
            SIMPLE_TIMELINE, single_server_links(MBPS), StepTimeModel(), overlap=False
        )
        step = sim.simulate_step(simple_step())
        assert step.achieved_overlap == 0.0
        assert step.step_seconds == pytest.approx(step.serialized_seconds)

    def test_overlap_never_slower_than_serialized(self):
        sim = NetworkSimulator(
            SIMPLE_TIMELINE, single_server_links(MBPS), StepTimeModel(), overlap=True
        )
        for push_bytes in (1_000, 125_000, 10_000_000):
            step = sim.simulate_step(simple_step(push_bytes=push_bytes))
            assert step.step_seconds <= step.serialized_seconds + 1e-12

    def test_pull_phase_cannot_overlap_compute(self):
        # Pulls exist only after the global update: even with overlap on,
        # the pull transfer extends the step past compute end.
        sim = NetworkSimulator(
            SIMPLE_TIMELINE, single_server_links(MBPS), StepTimeModel(), overlap=True
        )
        step = sim.simulate_step(simple_step(push_bytes=1_000, pull_bytes=62_500))
        # push (8 ms) hides entirely; two pull copies take 1 s after compute.
        assert step.step_seconds > 2.0
        assert 0.0 < step.achieved_overlap <= 1.0

    def test_fused_bucket_waits_for_last_member(self):
        # A bucket carrying gradients from both layers cannot transmit at
        # 0.5 (when "b" is ready): it waits for "a" at compute end.
        bucket = StepTransmissions(
            step=0,
            compute_seconds=1.0,
            records=(
                TransmissionRecord(
                    name="bucket:0",
                    params=("a", "b"),
                    wire_bytes=125_000,
                    elements=100,
                    route="server",
                    worker=0,
                ),
            ),
        )
        sim = NetworkSimulator(
            SIMPLE_TIMELINE, single_server_links(MBPS), StepTimeModel(), overlap=True
        )
        step = sim.simulate_step(bucket)
        assert step.step_seconds >= 2.0  # no overlap possible
        assert step.achieved_overlap == pytest.approx(0.0)

    def test_link_utilization_bounded_and_reported(self):
        sim = NetworkSimulator(
            SIMPLE_TIMELINE, single_server_links(MBPS), StepTimeModel(), overlap=True
        )
        step = sim.simulate_step(simple_step())
        assert set(step.link_utilization) == {"server"}
        assert 0.0 < step.link_utilization["server"] <= 1.0

    def test_critical_path_names_events(self):
        sim = NetworkSimulator(
            SIMPLE_TIMELINE, single_server_links(MBPS), StepTimeModel(), overlap=True
        )
        step = sim.simulate_step(simple_step())
        assert any(label.startswith("backward:") for label in step.critical_path)
        assert any(label.startswith("xfer:server") for label in step.critical_path)

    def test_compute_bound_step_blames_backward_not_transfer(self):
        # A 1-byte push finishes long before backward: the step is
        # compute-bound and the critical path must not name the transfer.
        sim = NetworkSimulator(
            SIMPLE_TIMELINE, single_server_links(MBPS), StepTimeModel(), overlap=True
        )
        step = sim.simulate_step(simple_step(push_bytes=1))
        assert step.critical_path[0] == "backward:end"
        assert not any(
            label.startswith("xfer:") for label in step.critical_path
        )

    def test_unknown_route_rejected(self):
        sim = NetworkSimulator(
            SIMPLE_TIMELINE, single_server_links(MBPS), StepTimeModel(), overlap=True
        )
        bad = StepTransmissions(
            step=0,
            compute_seconds=1.0,
            records=(
                TransmissionRecord(
                    name="b", params=("b",), wire_bytes=10, elements=1, route="shard9"
                ),
            ),
        )
        with pytest.raises(ValueError, match="unknown link 'shard9'"):
            sim.simulate_step(bad)

    def test_empty_run_rejected(self):
        sim = NetworkSimulator(
            SIMPLE_TIMELINE, single_server_links(MBPS), StepTimeModel(), overlap=True
        )
        with pytest.raises(ValueError, match="record_transmissions"):
            sim.simulate_run([])

    def test_sharded_links_parallelize(self):
        # Two equal pushes on one NIC serialize; on two NICs they don't.
        def step_on(route_a: str, route_b: str) -> StepTransmissions:
            return StepTransmissions(
                step=0,
                compute_seconds=0.0,
                records=(
                    TransmissionRecord(
                        name="a", params=(), wire_bytes=125_000, elements=1,
                        route=route_a, worker=0,
                    ),
                    TransmissionRecord(
                        name="b", params=(), wire_bytes=125_000, elements=1,
                        route=route_b, worker=0,
                    ),
                ),
            )

        single = NetworkSimulator(
            SIMPLE_TIMELINE, single_server_links(MBPS), StepTimeModel(), overlap=True
        ).simulate_step(step_on("server", "server"))
        sharded = NetworkSimulator(
            SIMPLE_TIMELINE, sharded_links(MBPS, 2), StepTimeModel(), overlap=True
        ).simulate_step(step_on("shard0", "shard1"))
        assert sharded.step_seconds < single.step_seconds


class TestLinkModels:
    def test_factories(self):
        assert single_server_links(MBPS).link_ids == ("server",)
        assert sharded_links(MBPS, 3).link_ids == ("shard0", "shard1", "shard2")
        assert ring_links(MBPS, 4).link_ids == ("ring",)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel("empty", {})
        with pytest.raises(ValueError):
            sharded_links(MBPS, 0)
        with pytest.raises(ValueError):
            ring_links(MBPS, 1)
        with pytest.raises(ValueError, match="unknown topology"):
            link_model_for("mesh", MBPS)

    def test_link_model_for_matches_factories(self):
        assert link_model_for("single", MBPS).link_ids == ("server",)
        assert link_model_for("sharded", MBPS, num_shards=2).link_ids == (
            "shard0",
            "shard1",
        )
        assert link_model_for("ring", MBPS, num_workers=2).link_ids == ("ring",)


# -- end-to-end: engine recordings through the simulator -------------------


def train_engine(topology: str, steps: int = 4, **overrides):
    config = dict(
        num_workers=2,
        batch_size=8,
        shard_size=32,
        seed=0,
        topology=topology,
        record_transmissions=True,
    )
    config.update(overrides)
    engine = ExchangeEngine(
        lambda: build_resnet(8, base_width=4, seed=1),
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, steps),
        EngineConfig(**config),
    )
    engine.train(steps)
    return engine


@pytest.fixture(scope="module")
def profiled():
    """A trained single-topology engine plus its backward timeline."""
    from repro.nn.stats import profile_backward

    engine = train_engine("single")
    model = build_resnet(8, base_width=4, seed=1)
    dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
    images, labels = dataset.train_shard(0, 8)
    timeline = profile_backward(model, images, labels)
    return engine, timeline


class TestAgainstAnalyticModel:
    def test_serialized_matches_closed_form_within_1_percent(self, profiled):
        """Acceptance: serialized simulation == analytic model, overlap=0."""
        engine, timeline = profiled
        model = StepTimeModel(
            overlap=0.0,
            per_message_overhead=25e-6,
            compute_scale=0.05,
            codec_scale=0.5,
        )
        for link_name in ("10Mbps", "100Mbps", "1Gbps"):
            spec = link(link_name)
            sim = NetworkSimulator(
                timeline, single_server_links(spec), model, overlap=False
            )
            run = sim.simulate_run(engine.transmissions)
            analytic = sum(
                model.step_seconds(s, spec) for s in engine.traffic.steps
            ) / len(engine.traffic.steps)
            assert run.mean_step_seconds == pytest.approx(analytic, rel=0.01)

    def test_overlap_reports_measured_fraction(self, profiled):
        """Acceptance: measured overlap in (0, 1], not the 0.9 constant."""
        engine, timeline = profiled
        model = StepTimeModel(compute_scale=0.05, codec_scale=0.5)
        sim = NetworkSimulator(
            timeline, single_server_links(link("10Mbps")), model, overlap=True
        )
        run = sim.simulate_run(engine.transmissions)
        assert 0.0 < run.mean_overlap <= 1.0
        assert run.mean_step_seconds <= (
            sum(s.serialized_seconds for s in run.steps) / len(run.steps)
        )

    def test_recorded_bytes_and_frames_match_traffic_meter(self, profiled):
        engine, _ = profiled
        for st, traffic in zip(engine.transmissions, engine.traffic.steps):
            push = sum(
                r.total_bytes for r in st.records if r.phase in ("push", "collective")
            )
            pull = sum(r.total_bytes for r in st.records if r.phase == "pull")
            assert push == traffic.push_bytes
            assert pull == traffic.pull_bytes_total
            assert st.total_frames == traffic.frames
            assert st.codec_seconds == pytest.approx(traffic.codec_seconds)

    def test_ring_charged_per_link_not_server_nic(self):
        """Acceptance: ring step times reflect per-link transfer."""
        engine = train_engine("ring")
        model = StepTimeModel(
            overlap=0.0,
            per_message_overhead=0.0,
            compute_scale=0.05,
            codec_scale=0.5,
        )
        spec = link("10Mbps")
        sim = NetworkSimulator(
            # Any timeline works: serialized mode ignores readiness order.
            SIMPLE_TIMELINE,
            ring_links(spec, 2),
            model,
            overlap=False,
        )
        run = sim.simulate_run(engine.transmissions)
        analytic = sum(
            model.step_seconds(s, spec) for s in engine.traffic.steps
        ) / len(engine.traffic.steps)
        # The server-NIC closed form charges the sum over every ring link;
        # the simulator charges the (parallel) per-link volume, which for
        # 2 nodes is half the total.
        assert run.mean_step_seconds < analytic
        for st, traffic in zip(engine.transmissions, engine.traffic.steps):
            per_link = sum(r.total_bytes for r in st.records)
            assert 0 < per_link < traffic.push_bytes

    def test_ring_frames_accounted_per_link(self):
        # Simulator records carry one link's frames (the N hop links run
        # in parallel); the meter keeps the all-links aggregate.
        workers = 2
        engine = train_engine("ring")
        for st, traffic in zip(engine.transmissions, engine.traffic.steps):
            assert st.total_frames * workers == traffic.frames

    def test_fused_run_records_buckets(self):
        engine = train_engine("single", fuse_small_tensors=True)
        names = {
            r.name
            for st in engine.transmissions
            for r in st.records
        }
        assert any(name.startswith("bucket:") for name in names)
        # Bucket records carry their member params for readiness lookups.
        for st in engine.transmissions:
            for record in st.records:
                if record.name.startswith("bucket:"):
                    assert len(record.params) > 1


class TestSimulatedRunAggregates:
    def test_aggregates(self):
        sim = NetworkSimulator(
            SIMPLE_TIMELINE, single_server_links(MBPS), StepTimeModel(), overlap=True
        )
        run = sim.simulate_run([simple_step(), simple_step()])
        assert isinstance(run, SimulatedRun)
        assert run.total_seconds == pytest.approx(2 * run.mean_step_seconds)
        assert set(run.mean_link_utilization) == {"server"}

    def test_record_validation(self):
        with pytest.raises(ValueError, match="phase"):
            TransmissionRecord(
                name="x", params=(), wire_bytes=1, elements=1, route="server",
                phase="teleport",
            )
        with pytest.raises(ValueError, match="copies"):
            TransmissionRecord(
                name="x", params=(), wire_bytes=1, elements=1, route="server",
                copies=0,
            )
