"""Transmission-priority knob: smallest-gradient-first service order.

``priority="smallest"`` is a simulation-side knob the plan autotuner
searches over: at equal readiness the link serves the smallest compressed
gradient first (elements, then name) instead of registration order. The
scalar loop is the reference semantics; the vectorized path must match it
bit-for-bit, and the run-batched path must fall back to per-step replay
(one shared service order cannot represent two priorities).
"""

import random

from repro.netsim.events import StepTransmissions, TransmissionRecord
from repro.netsim.links import LinkModel
from repro.netsim.scheduler import NetworkSimulator
from repro.network.bandwidth import LinkSpec
from repro.nn.stats import BackwardTimeline, LayerTiming

from test_vector_parity import (  # same-directory module (pytest prepend)
    assert_scalar_parity,
    random_run,
    random_timeline,
)


def one_layer_timeline() -> BackwardTimeline:
    return BackwardTimeline((LayerTiming("layer0", 0.01, ("p0",)),))


def crafted_step() -> tuple[LinkModel, StepTransmissions]:
    """A small push on 'up' gates a dependent transfer on 'up2'.

    Registration (= name) order serves ``a_big`` before ``b_small`` on the
    shared uplink, so the dependent ``c_out`` starts late; smallest-first
    flips the order and the dependent transfer overlaps the big one.
    """
    links = LinkModel(
        "crafted",
        {"up": LinkSpec("up", 1e8), "up2": LinkSpec("up2", 1e8)},
    )
    records = (
        TransmissionRecord(
            name="a_big", params=("p0",), wire_bytes=10_000_000,
            elements=2_500_000, route="up", worker=0, phase="push", frames=1,
        ),
        TransmissionRecord(
            name="b_small", params=("p0",), wire_bytes=10_000,
            elements=2_500, route="up", worker=1, phase="push", frames=1,
        ),
        TransmissionRecord(
            name="c_out", params=(), wire_bytes=1_000_000,
            elements=250_000, route="up2", worker=None, phase="push",
            frames=1, depends_on=("b_small",),
        ),
    )
    step = StepTransmissions(
        step=0, compute_seconds=0.01, push_compress_seconds=0.0,
        server_decompress_seconds=0.0, pull_decompress_seconds=0.0,
        records=records,
    )
    return links, step


def make_sim(links, *, priority: str, vectorized: bool) -> NetworkSimulator:
    return NetworkSimulator(
        one_layer_timeline(),
        links,
        overlap=True,
        vectorized=vectorized,
        priority=priority,
    )


def test_unknown_priority_rejected():
    links, _ = crafted_step()
    try:
        make_sim(links, priority="fifo", vectorized=True)
    except ValueError as error:
        assert "fifo" in str(error)
    else:
        raise AssertionError("bad priority accepted")


def test_smallest_unblocks_dependent_transfer():
    links, step = crafted_step()
    registration = make_sim(links, priority="registration", vectorized=False)
    smallest = make_sim(links, priority="smallest", vectorized=False)
    reg = registration.simulate_step(step)
    small = smallest.simulate_step(step)
    # Small-first lets c_out ride the second uplink while a_big is still
    # on the wire; registration order serializes them.
    assert small.step_seconds < reg.step_seconds
    assert reg.critical_path != small.critical_path


def test_smallest_scalar_vector_bit_parity():
    for trial in range(20):
        rng = random.Random(7000 + trial)
        links, steps = random_run(rng, rng.randint(3, 6))
        timeline = random_timeline(rng)
        vec = NetworkSimulator(
            timeline, links, overlap=True, vectorized=True,
            priority="smallest",
        )
        scalar = NetworkSimulator(
            timeline, links, overlap=True, vectorized=False,
            priority="smallest",
        )
        for st in steps:
            assert_scalar_parity(vec.simulate_step(st), scalar.simulate_step(st))


def test_simulate_run_falls_back_per_step_under_smallest():
    """Run batching assumes one shared service order; 'smallest' replays
    per step and must equal the per-step results exactly."""
    rng = random.Random(4242)
    links, steps = random_run(rng, 5)
    timeline = random_timeline(rng)
    sim = NetworkSimulator(
        timeline, links, overlap=True, vectorized=True, priority="smallest"
    )
    batched = sim.simulate_run(steps).steps
    fresh = NetworkSimulator(
        timeline, links, overlap=True, vectorized=True, priority="smallest"
    )
    per_step = [fresh.simulate_step(st) for st in steps]
    assert list(batched) == per_step


def test_priorities_share_recordings_but_not_schedules():
    """The same plan stream under both priorities: schedules may differ,
    but total link-busy time is conserved (ordering never changes bytes)."""
    links, step = crafted_step()
    reg = make_sim(links, priority="registration", vectorized=True)
    small = make_sim(links, priority="smallest", vectorized=True)
    a = reg.simulate_step(step)
    b = small.simulate_step(step)
    assert abs(a.comm_seconds - b.comm_seconds) < 1e-12
