"""Differential property tests: scalar vs vectorized vs run-batched replay.

The scalar per-record loop in :class:`NetworkSimulator` is the reference
semantics; the per-step NumPy path and the run-batched path must schedule
*identical* events. Since the segmented scans perform the scalar loop's
exact IEEE operations (depth-wise sweep, no prefix-sum re-association),
parity on schedule times is bit-exact, not merely within tolerance — which
matters because per-worker codec costs are element-shares of one budget,
so distinct pipelines finish in exact real-arithmetic ties and a 1-ulp
perturbation can flip a (ready, name) service order into a macroscopically
different schedule.

Aggregate totals (``comm_seconds`` / ``overhead_seconds``) are summed
pairwise by NumPy and sequentially by the scalar loop, so they carry a
float-association tolerance; they feed no ordering decisions.
"""

import random

import pytest

from repro.netsim.events import StepTransmissions, TransmissionRecord
from repro.netsim.links import LinkModel
from repro.netsim.scheduler import NetworkSimulator
from repro.network.bandwidth import LinkSpec
from repro.nn.stats import BackwardTimeline, LayerTiming

SUM_TOL = 1e-12


def random_run(rng: random.Random, n_steps: int):
    """A random small topology plus a structurally constant plan stream."""
    n_routes = rng.randint(1, 4)
    specs = {
        f"link{r}": LinkSpec(
            f"link{r}",
            rng.choice([1e8, 1e9, 25e9]),
            rtt_seconds=rng.choice([0.0, 1e-4]),
        )
        for r in range(n_routes)
    }
    links = LinkModel("rand", specs)
    n_workers = rng.randint(1, 5)
    n_rec = rng.randint(1, 8)
    layout = []
    for i in range(n_rec):
        phase = rng.choice(["push", "pull"])
        route = f"link{rng.randrange(n_routes)}"
        worker = rng.choice([None, rng.randrange(n_workers)])
        params = tuple(sorted({f"p{rng.randrange(4)}" for _ in range(rng.randint(0, 2))}))
        layout.append((f"r{i}", phase, route, worker, params))
    names = [spec[0] for spec in layout]
    steps = []
    for s in range(n_steps):
        records = []
        for i, (name, phase, route, worker, params) in enumerate(layout):
            # Dependencies: earlier same-phase records, or (pulls) pushes.
            candidates = [
                other[0]
                for other in layout[:i]
                if other[1] == phase or (phase == "pull" and other[1] != "pull")
            ]
            deps = (
                tuple(rng.sample(candidates, k=1))
                if candidates and rng.random() < 0.4
                else ()
            )
            records.append(
                TransmissionRecord(
                    name=name,
                    phase=phase,
                    route=route,
                    worker=worker,
                    params=params,
                    depends_on=deps,
                    wire_bytes=rng.randrange(1, 10_000_000),
                    frames=rng.randrange(1, 20),
                    elements=rng.randrange(1, 100_000),
                )
            )
        steps.append(
            StepTransmissions(
                step=s,
                compute_seconds=rng.uniform(0.001, 0.05),
                push_compress_seconds=rng.uniform(0.0, 0.01),
                server_decompress_seconds=rng.uniform(0.0, 0.005),
                server_compress_seconds=rng.uniform(0.0, 0.005),
                pull_decompress_seconds=rng.uniform(0.0, 0.005),
                records=tuple(records),
            )
        )
    return links, steps


def random_timeline(rng: random.Random) -> BackwardTimeline:
    return BackwardTimeline(
        tuple(
            LayerTiming(f"layer{i}", rng.uniform(0.5, 2.0), (f"p{i}",))
            for i in range(rng.randint(1, 4))
        )
    )


def assert_scalar_parity(vec_step, scalar_step):
    """Vector schedule times must equal the scalar reference bit-for-bit."""
    assert vec_step.step_seconds == scalar_step.step_seconds
    assert vec_step.serialized_seconds == scalar_step.serialized_seconds
    assert vec_step.critical_path == scalar_step.critical_path
    assert abs(vec_step.comm_seconds - scalar_step.comm_seconds) <= SUM_TOL * max(
        1.0, scalar_step.comm_seconds
    )
    assert abs(
        vec_step.overhead_seconds - scalar_step.overhead_seconds
    ) <= SUM_TOL * max(1.0, scalar_step.overhead_seconds)


@pytest.mark.parametrize("overlap", [True, False])
def test_randomized_topologies_bit_parity(overlap):
    """30 random topologies: batched == per-step (full equality) and both
    match the scalar reference bit-for-bit on schedule times."""
    for trial in range(30):
        rng = random.Random(1000 + trial)
        links, steps = random_run(rng, rng.randint(3, 8))
        timeline = random_timeline(rng)
        vec = NetworkSimulator(timeline, links, overlap=overlap, vectorized=True)
        scalar = NetworkSimulator(timeline, links, overlap=overlap, vectorized=False)
        per_step = [vec.simulate_step(st) for st in steps]
        batched = vec.simulate_run(steps).steps
        reference = scalar.simulate_run(steps).steps
        for b, p, s in zip(batched, per_step, reference):
            assert b == p, f"trial {trial}: batched diverged from per-step"
            assert_scalar_parity(b, s)


def test_exact_tie_pipelines_match_scalar():
    """Pipelines whose codec shares sum to one budget end in an exact tie;
    the replay must break it like the scalar loop (regression test for the
    prefix-scan re-association flip)."""
    links = LinkModel("tie", {"up": LinkSpec("up", 1e9)})
    timeline = BackwardTimeline((LayerTiming("layer0", 1.0, ("p0",)),))
    records = tuple(
        TransmissionRecord(
            name=f"r{i}",
            params=(),
            wire_bytes=4096,
            elements=elements,
            route="up",
            worker=worker,
        )
        for i, (worker, elements) in enumerate([(0, 7), (1, 3), (1, 5)])
    )
    steps = [
        StepTransmissions(
            step=s,
            compute_seconds=0.03,
            push_compress_seconds=0.005,
            records=records,
        )
        for s in range(3)
    ]
    vec = NetworkSimulator(timeline, links, vectorized=True)
    scalar = NetworkSimulator(timeline, links, vectorized=False)
    for b, s in zip(vec.simulate_run(steps).steps, scalar.simulate_run(steps).steps):
        assert_scalar_parity(b, s)


def test_mixed_structure_grouping():
    """Alternating record structures split into singleton groups; a run
    with interleaved shapes must equal step-by-step simulation."""
    rng = random.Random(7)
    links, steps_a = random_run(rng, 4)
    # A second stream over the same links but different structure.
    rng2 = random.Random(7)
    _, steps_b = random_run(rng2, 4)
    steps_b = [
        StepTransmissions(
            step=st.step,
            compute_seconds=st.compute_seconds,
            push_compress_seconds=st.push_compress_seconds,
            records=st.records[:-1] if len(st.records) > 1 else st.records,
        )
        for st in steps_b
    ]
    interleaved = [
        st for pair in zip(steps_a, steps_b) for st in pair
    ]
    timeline = random_timeline(random.Random(7))
    vec = NetworkSimulator(timeline, links, vectorized=True)
    run = vec.simulate_run(interleaved).steps
    per_step = [vec.simulate_step(st) for st in interleaved]
    assert list(run) == per_step


def test_zero_compute_step_falls_back():
    """A zero-compute step cannot share the group's compression order;
    the batched path must fall back without changing results."""
    rng = random.Random(11)
    links, steps = random_run(rng, 4)
    steps[1] = StepTransmissions(
        step=steps[1].step,
        compute_seconds=0.0,
        push_compress_seconds=steps[1].push_compress_seconds,
        records=steps[1].records,
    )
    timeline = random_timeline(random.Random(11))
    vec = NetworkSimulator(timeline, links, overlap=True, vectorized=True)
    scalar = NetworkSimulator(timeline, links, overlap=True, vectorized=False)
    run = vec.simulate_run(steps).steps
    per_step = [vec.simulate_step(st) for st in steps]
    assert list(run) == per_step
    for b, s in zip(run, scalar.simulate_run(steps).steps):
        assert_scalar_parity(b, s)


def test_repeat_simulation_is_stable():
    """Warm per-step caches (record batch, signature, numeric rows) must
    not change results: a second simulate_run is equal to the first."""
    rng = random.Random(23)
    links, steps = random_run(rng, 6)
    timeline = random_timeline(rng)
    vec = NetworkSimulator(timeline, links, vectorized=True)
    first = vec.simulate_run(steps)
    second = vec.simulate_run(steps)
    assert first == second
