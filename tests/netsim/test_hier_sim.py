"""Simulator tests for the composed two-tier (hierarchical) link model.

The load-bearing assertions:

* the serialized hierarchical schedule equals the analytic **per-tier
  sum** at ``overlap=0`` to 1e-9 (the acceptance criterion): compute +
  push codec + max-over-racks intra collectives + serialized cross
  pushes + server codec + serialized cross pulls + max-over-racks
  broadcasts + pull codec, with per-frame overhead *and* per-frame link
  RTT inside each transfer;
* ``rtt_seconds`` is charged per wire frame in both simulators (ring hop
  pipelines and slow uplinks are no longer free of propagation delay);
* dependency tiers: a dependent record never starts before its
  dependency's transfer ends, and unknown/circular dependencies are
  rejected with a clear error.
"""

import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.exchange import EngineConfig, ExchangeEngine
from repro.netsim import (
    EventDrivenSimulator,
    NetworkSimulator,
    StepTransmissions,
    TransmissionRecord,
    dependency_waves,
    hierarchical_links,
    link_model_for,
    per_tier_serialized_seconds,
)
from repro.network.bandwidth import LinkSpec, link
from repro.network.timing import StepTimeModel
from repro.nn import CosineDecay, build_resnet
from repro.nn.stats import BackwardTimeline, LayerTiming

TIME_MODEL = StepTimeModel(
    overlap=0.0, per_message_overhead=25e-6, compute_scale=0.05, codec_scale=0.5
)
SIMPLE_TIMELINE = BackwardTimeline(
    (LayerTiming("top", 0.5, ("b",)), LayerTiming("bottom", 0.5, ("a",)))
)
MBPS = LinkSpec("1Mbps", 1e6)


def train_hier_engine(steps: int = 4, **overrides):
    config = dict(
        num_workers=4,
        batch_size=8,
        shard_size=32,
        seed=0,
        topology="hier",
        racks=2,
        rack_size=2,
        record_transmissions=True,
    )
    config.update(overrides)
    dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
    engine = ExchangeEngine(
        lambda: build_resnet(8, base_width=4, seed=1),
        dataset,
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, steps),
        EngineConfig(**config),
    )
    engine.train(steps)
    return engine, dataset


def hier_model(link_name: str = "10Mbps", **kwargs):
    defaults = dict(
        racks=2, rack_size=2, cross_bw_fraction=0.1, cross_rtt_seconds=0.002
    )
    defaults.update(kwargs)
    return link_model_for("hier", link(link_name), **defaults)


class TestSerializedMatchesPerTierSum:
    @pytest.mark.parametrize("link_name", ["10Mbps", "100Mbps", "1Gbps"])
    def test_serialized_equals_closed_form(self, link_name):
        """Acceptance: serialized schedule == analytic two-tier sum, 1e-9."""
        engine, _ = train_hier_engine()
        lm = hier_model(link_name)
        sim = NetworkSimulator(SIMPLE_TIMELINE, lm, TIME_MODEL, overlap=False)
        for st in engine.transmissions:
            step = sim.simulate_step(st)
            assert step.step_seconds == pytest.approx(
                per_tier_serialized_seconds(st, lm, TIME_MODEL), abs=1e-9
            )

    def test_sharded_upper_tier_parallelizes_cross_nics(self):
        from dataclasses import replace

        engine, _ = train_hier_engine(hier_upper="sharded", num_shards=2)
        lm = hier_model(hier_upper="sharded")
        sim = NetworkSimulator(SIMPLE_TIMELINE, lm, TIME_MODEL, overlap=False)
        sharded_run = sim.simulate_run(engine.transmissions)
        # Baseline: the identical plan forced through one shard NIC — a
        # shared core. Two NICs must carry the same bytes strictly faster,
        # and the closed form still matches exactly.
        forced = [
            replace(
                st,
                records=tuple(
                    replace(r, route="cross:shard0")
                    if r.route.startswith("cross:")
                    else r
                    for r in st.records
                ),
            )
            for st in engine.transmissions
        ]
        shared_run = sim.simulate_run(forced)
        assert sharded_run.mean_step_seconds < shared_run.mean_step_seconds
        for st in engine.transmissions:
            step = sim.simulate_step(st)
            assert step.step_seconds == pytest.approx(
                per_tier_serialized_seconds(st, lm, TIME_MODEL), abs=1e-9
            )

    def test_overlap_never_slower_and_reports_tier_utilization(self):
        engine, dataset = train_hier_engine()
        from repro.nn.stats import profile_backward

        timeline = profile_backward(
            build_resnet(8, base_width=4, seed=1), *dataset.train_shard(0, 8)
        )
        lm = hier_model()
        serialized = NetworkSimulator(
            timeline, lm, TIME_MODEL, overlap=False
        ).simulate_run(engine.transmissions)
        overlapped = NetworkSimulator(
            timeline, lm, TIME_MODEL, overlap=True
        ).simulate_run(engine.transmissions)
        assert (
            overlapped.mean_step_seconds
            <= serialized.mean_step_seconds * (1 + 1e-9)
        )
        utilization = overlapped.mean_link_utilization
        assert set(utilization) == {
            "rack0", "rack1", "cross:rack0", "cross:rack1",
        }
        # The 10x-scarcer core is the busy tier.
        assert utilization["cross:rack0"] > utilization["rack0"]

    def test_critical_path_crosses_both_tiers(self):
        engine, _ = train_hier_engine()
        sim = NetworkSimulator(
            SIMPLE_TIMELINE, hier_model(), TIME_MODEL, overlap=False
        )
        step = sim.simulate_step(engine.transmissions[0])
        labels = " ".join(step.critical_path)
        assert "xfer:cross" in labels
        assert "xfer:rack" in labels


class TestRtt:
    def test_linkspec_validates_rtt(self):
        with pytest.raises(ValueError, match="rtt_seconds"):
            LinkSpec("bad", 1e6, rtt_seconds=-0.001)
        with pytest.raises(TypeError, match="rtt_seconds"):
            LinkSpec("bad", 1e6, rtt_seconds="fast")
        assert LinkSpec("ok", 1e6).rtt_seconds == 0.0

    def test_rtt_charged_per_frame_in_step_scheduler(self):
        """A ring collective of F frames pays exactly F * rtt extra."""
        st = StepTransmissions(
            step=0,
            compute_seconds=1.0,
            records=(
                TransmissionRecord(
                    name="b",
                    params=("b",),
                    wire_bytes=125_000,
                    elements=100,
                    route="ring",
                    phase="collective",
                    frames=6,
                ),
            ),
        )
        tm = StepTimeModel(per_message_overhead=0.0)
        flat = NetworkSimulator(
            SIMPLE_TIMELINE,
            hierarchical_links(MBPS, MBPS, racks=1, rack_size=2),
            tm,
            overlap=False,
        )
        # Reuse the ring channel name through a one-off model.
        from repro.netsim import LinkModel

        for rtt in (0.0, 0.004):
            lm = LinkModel("ring-rtt", {"ring": LinkSpec("1Mbps", 1e6, rtt)})
            sim = NetworkSimulator(SIMPLE_TIMELINE, lm, tm, overlap=False)
            step = sim.simulate_step(st)
            if rtt == 0.0:
                base = step.step_seconds
            else:
                assert step.step_seconds == pytest.approx(base + 6 * rtt)
                assert step.overhead_seconds == pytest.approx(6 * rtt)
        assert flat is not None  # the factory accepts equal specs

    def test_rtt_charged_in_event_simulator(self):
        engine, dataset = train_hier_engine(
            sync_mode="async", fixed_compute_seconds=0.05, steps=6
        )
        from repro.nn.stats import profile_backward

        timeline = profile_backward(
            build_resnet(8, base_width=4, seed=1), *dataset.train_shard(0, 8)
        )
        free = EventDrivenSimulator(
            timeline, hier_model(cross_rtt_seconds=0.0), TIME_MODEL
        ).simulate(engine.update_events)
        delayed = EventDrivenSimulator(
            timeline, hier_model(cross_rtt_seconds=0.01), TIME_MODEL
        ).simulate(engine.update_events)
        assert delayed.total_seconds > free.total_seconds
        assert delayed.overhead_seconds > free.overhead_seconds


class TestDependencyWaves:
    def rec(self, name, deps=(), phase="push"):
        return TransmissionRecord(
            name=name,
            params=(),
            wire_bytes=1,
            elements=1,
            route="cross:rack0",
            phase=phase,
            depends_on=tuple(deps),
        )

    def test_waves_order_tiers(self):
        records = [
            self.rec("up", deps=("collective",)),
            self.rec("collective"),
            self.rec("final", deps=("up",)),
        ]
        waves = dependency_waves(records)
        assert waves == [[1], [0], [2]]

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown record"):
            dependency_waves([self.rec("a", deps=("ghost",))])

    def test_external_names_count_as_done(self):
        waves = dependency_waves(
            [self.rec("a", deps=("pushed",))], external_names={"pushed"}
        )
        assert waves == [[0]]

    def test_cycle_rejected(self):
        records = [
            self.rec("a", deps=("b",)),
            self.rec("b", deps=("a",)),
        ]
        with pytest.raises(ValueError, match="circular"):
            dependency_waves(records)

    def test_self_dependency_rejected_at_construction(self):
        with pytest.raises(ValueError, match="depend on itself"):
            self.rec("a", deps=("a",))

    def test_dependent_record_waits_for_dependency_transfer(self):
        """With zero compute, the dependent transfer starts only after its
        dependency lands — the step takes both transfers back to back even
        though they use different links."""
        st = StepTransmissions(
            step=0,
            compute_seconds=0.0,
            records=(
                TransmissionRecord(
                    name="collective",
                    params=(),
                    wire_bytes=125_000,
                    elements=1,
                    route="rack0",
                    phase="collective",
                ),
                TransmissionRecord(
                    name="up",
                    params=(),
                    wire_bytes=125_000,
                    elements=1,
                    route="cross:rack0",
                    phase="push",
                    depends_on=("collective",),
                ),
            ),
        )
        lm = hierarchical_links(
            MBPS, MBPS, racks=1, rack_size=2
        )
        tm = StepTimeModel(per_message_overhead=0.0)
        step = NetworkSimulator(
            SIMPLE_TIMELINE, lm, tm, overlap=True
        ).simulate_step(st)
        # 1 s per transfer at 1 Mbps; sequential despite disjoint links.
        assert step.step_seconds == pytest.approx(2.0)


class TestHierLinkFactories:
    def test_link_ids(self):
        lm = hierarchical_links(MBPS, MBPS, racks=3, rack_size=2)
        assert lm.link_ids == (
            "rack0",
            "rack1",
            "rack2",
            "cross:rack0",
            "cross:rack1",
            "cross:rack2",
        )
        sharded = hierarchical_links(
            MBPS, MBPS, racks=2, rack_size=2, upper="sharded", num_shards=2
        )
        assert sharded.link_ids == (
            "rack0",
            "rack1",
            "cross:shard0",
            "cross:shard1",
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="rack ring"):
            hierarchical_links(MBPS, MBPS, racks=2, rack_size=1)
        with pytest.raises(ValueError, match="upper tier"):
            hierarchical_links(MBPS, MBPS, racks=2, rack_size=2, upper="mesh")
        with pytest.raises(ValueError, match="cross_bw_fraction"):
            link_model_for(
                "hier", MBPS, racks=2, rack_size=2, cross_bw_fraction=0.0
            )

    def test_link_model_for_scales_cross_tier(self):
        lm = link_model_for(
            "hier",
            link("100Mbps"),
            racks=2,
            rack_size=2,
            cross_bw_fraction=0.25,
            cross_rtt_seconds=0.003,
        )
        assert lm.spec("rack0").bits_per_second == 100e6
        assert lm.spec("cross:rack0").bits_per_second == pytest.approx(25e6)
        assert lm.spec("cross:rack1").rtt_seconds == 0.003
        assert lm.spec("rack0").rtt_seconds == 0.0
