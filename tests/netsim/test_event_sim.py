"""Tests for the event-driven (async/SSP) simulator.

The load-bearing assertions:

* **staleness-0 parity** (the acceptance criterion): reshaping a BSP
  recording into the lock-step update stream an SSP(0) system would
  execute and replaying it event-driven reproduces the BSP serialized
  schedule's total step time within 1e-9, on the single, sharded, and
  ring topologies — anchoring the event-driven modes to the calibrated
  BSP path;
* shared links are FIFO: a second worker's push physically queues behind
  the first's;
* SSP staleness bounds *block*: simulated compute starts respect the
  gate, and a tighter bound can only slow the run down;
* the reports (per-worker throughput, staleness distribution, link
  utilization) are internally consistent.
"""

import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.exchange import EngineConfig, ExchangeEngine
from repro.netsim import (
    EventDrivenSimulator,
    NetworkSimulator,
    SimulatedExchange,
    TransmissionRecord,
    UpdateTransmissions,
    link_model_for,
    single_server_links,
    updates_from_bsp_steps,
)
from repro.network.bandwidth import LinkSpec, link
from repro.network.timing import StepTimeModel
from repro.nn import CosineDecay, build_resnet
from repro.nn.stats import BackwardTimeline, LayerTiming, profile_backward

MBPS = LinkSpec("1Mbps", 1e6)  # 125 kB/s: a 125000-byte push takes 1 s

SIMPLE_TIMELINE = BackwardTimeline(
    (LayerTiming("top", 0.5, ("b",)), LayerTiming("bottom", 0.5, ("a",)))
)

TIME_MODEL = StepTimeModel(
    overlap=0.0, per_message_overhead=25e-6, compute_scale=0.05, codec_scale=0.5
)


def make_update(
    update: int,
    worker: int,
    local_step: int,
    *,
    compute: float = 1.0,
    push_bytes: int = 125_000,
    pull_bytes: int = 0,
    staleness: int = 0,
) -> UpdateTransmissions:
    records = [
        TransmissionRecord(
            name="b",
            params=("b",),
            wire_bytes=push_bytes,
            elements=100,
            route="server",
            worker=worker,
        )
    ]
    if pull_bytes:
        records.append(
            TransmissionRecord(
                name="b",
                params=("b",),
                wire_bytes=pull_bytes,
                elements=100,
                route="server",
                worker=worker,
                phase="pull",
            )
        )
    return UpdateTransmissions(
        update=update,
        worker=worker,
        local_step=local_step,
        global_step=update,
        staleness=staleness,
        clock_seconds=0.0,
        compute_seconds=compute,
        records=tuple(records),
    )


def train_engine(topology: str = "single", sync_mode: str = "bsp", steps: int = 4, **overrides):
    config = dict(
        num_workers=2,
        batch_size=8,
        shard_size=32,
        seed=0,
        topology=topology,
        sync_mode=sync_mode,
        record_transmissions=True,
        fixed_compute_seconds=0.05,
    )
    config.update(overrides)
    engine = ExchangeEngine(
        lambda: build_resnet(8, base_width=4, seed=1),
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, steps),
        EngineConfig(**config),
    )
    engine.train(steps)
    return engine


@pytest.fixture(scope="module")
def timeline():
    model = build_resnet(8, base_width=4, seed=1)
    dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
    images, labels = dataset.train_shard(0, 8)
    return profile_backward(model, images, labels)


class TestStalenessZeroParity:
    """Acceptance: SSP(0) event schedule == BSP serialized schedule."""

    @pytest.mark.parametrize("topology", ["single", "sharded", "ring"])
    def test_lockstep_matches_bsp_serialized_total(self, topology, timeline):
        engine = train_engine(topology)
        for link_name in ("10Mbps", "1Gbps"):
            model = link_model_for(
                topology, link(link_name), num_shards=2, num_workers=2
            )
            bsp = NetworkSimulator(
                timeline, model, TIME_MODEL, overlap=False
            ).simulate_run(engine.transmissions)
            events = updates_from_bsp_steps(engine.transmissions, 2)
            lockstep = EventDrivenSimulator(
                timeline, model, TIME_MODEL, staleness=0, overlap=False
            ).simulate(events)
            assert lockstep.total_seconds == pytest.approx(
                bsp.total_seconds, rel=1e-9
            )

    @pytest.mark.parametrize("topology", ["single", "sharded", "ring"])
    def test_lockstep_matches_bsp_overlapped_total(self, topology, timeline):
        # The equivalence also holds with per-layer overlap on: each
        # generation replays through the same overlap machinery.
        engine = train_engine(topology)
        model = link_model_for(topology, link("10Mbps"), num_shards=2, num_workers=2)
        bsp = NetworkSimulator(
            timeline, model, TIME_MODEL, overlap=True, serialized_baseline=False
        ).simulate_run(engine.transmissions)
        lockstep = EventDrivenSimulator(
            timeline, model, TIME_MODEL, staleness=0, overlap=True
        ).simulate(updates_from_bsp_steps(engine.transmissions, 2))
        assert lockstep.total_seconds == pytest.approx(bsp.total_seconds, rel=1e-9)

    def test_bsp_steps_split_losslessly(self):
        engine = train_engine("single")
        events = updates_from_bsp_steps(engine.transmissions, 2)
        for st in engine.transmissions:
            generation = [e for e in events if e.local_step == st.step]
            assert len(generation) == 2
            assert sum(e.total_frames for e in generation) == st.total_frames
            assert sum(
                r.total_bytes for e in generation for r in e.records
            ) == sum(r.total_bytes for r in st.records)
            assert sum(e.codec_seconds for e in generation) >= 0


class TestEventLoop:
    def sim(self, staleness=None, overlap=True, link_model=None):
        return EventDrivenSimulator(
            SIMPLE_TIMELINE,
            link_model or single_server_links(MBPS),
            StepTimeModel(per_message_overhead=0.0),
            staleness=staleness,
            overlap=overlap,
        )

    def test_shared_link_is_fifo(self):
        # Two workers, one update each, equal compute: both pushes are
        # ready at t=1 and serialize on the shared 1 s/transfer link.
        exchange = self.sim(overlap=False).simulate(
            [make_update(0, 0, 0), make_update(1, 1, 0)]
        )
        done = sorted(u.commit_seconds for u in exchange.updates)
        assert done[0] == pytest.approx(2.0)
        assert done[1] == pytest.approx(3.0)
        assert exchange.total_seconds == pytest.approx(3.0)

    def test_overlap_hides_transfer_behind_other_workers_compute(self):
        # Worker 0's gradient "b" is ready at t=0.5 (per-layer overlap);
        # its transfer runs while both workers still compute.
        exchange = self.sim(overlap=True).simulate(
            [make_update(0, 0, 0), make_update(1, 1, 0)]
        )
        assert exchange.total_seconds < 3.0
        assert 0.0 < exchange.achieved_overlap <= 1.0

    def test_async_workers_free_run(self):
        # Unbounded staleness: a worker never waits for the other's commits.
        updates = [
            make_update(i, i % 2, i // 2, staleness=i % 3) for i in range(8)
        ]
        exchange = self.sim(staleness=None).simulate(updates)
        assert isinstance(exchange, SimulatedExchange)
        assert exchange.per_worker_updates == {0: 4, 1: 4}
        assert exchange.staleness_histogram == {0: 3, 1: 3, 2: 2}
        starts = {
            w: [u.start_seconds for u in exchange.updates if u.worker == w]
            for w in (0, 1)
        }
        for series in starts.values():  # per-worker clocks move forward
            assert series == sorted(series)

    def test_ssp_gate_blocks_fast_worker(self):
        # Worker 0 computes 4x faster. Under staleness=1 it may lead by at
        # most one local step: its step-k compute cannot start before the
        # slow worker committed step k-1.
        updates = []
        for k in range(3):
            updates.append(make_update(2 * k, 0, k, compute=0.25))
            updates.append(make_update(2 * k + 1, 1, k, compute=1.0))
        bounded = self.sim(staleness=1).simulate(updates)
        commits = {
            (u.worker, i): u.commit_seconds
            for w in (0, 1)
            for i, u in enumerate(
                [u for u in bounded.updates if u.worker == w]
            )
        }
        starts = {
            (u.worker, i): u.start_seconds
            for w in (0, 1)
            for i, u in enumerate(
                [u for u in bounded.updates if u.worker == w]
            )
        }
        # Starting local step k needs every worker's committed count to
        # reach k - 1, i.e. the slow worker's commit of index k - 2.
        for k in range(2, 3):
            assert starts[(0, k)] >= commits[(1, k - 2)] - 1e-12
        free = self.sim(staleness=None).simulate(updates)
        assert free.total_seconds <= bounded.total_seconds + 1e-12

    def test_tighter_staleness_never_faster(self):
        updates = []
        for k in range(4):
            updates.append(make_update(2 * k, 0, k, compute=0.1))
            updates.append(make_update(2 * k + 1, 1, k, compute=1.0))
        times = [
            self.sim(staleness=s).simulate(updates).total_seconds
            for s in (3, 1, 0)
        ]
        assert times == sorted(times)

    def test_pulls_traverse_the_link(self):
        no_pull = self.sim(overlap=False).simulate([make_update(0, 0, 0)])
        with_pull = self.sim(overlap=False).simulate(
            [make_update(0, 0, 0, pull_bytes=125_000)]
        )
        assert with_pull.total_seconds == pytest.approx(
            no_pull.total_seconds + 1.0
        )

    def test_reports_are_consistent(self):
        updates = [make_update(i, i % 2, i // 2) for i in range(6)]
        exchange = self.sim(staleness=2).simulate(updates)
        assert exchange.mean_update_seconds == pytest.approx(
            exchange.total_seconds / 6
        )
        assert sum(exchange.per_worker_updates.values()) == 6
        assert sum(exchange.staleness_histogram.values()) == 6
        assert set(exchange.link_utilization) == {"server"}
        assert 0.0 < exchange.link_utilization["server"] <= 1.0
        assert exchange.serialized_seconds >= exchange.total_seconds - 1e-12
        assert exchange.overlap_speedup >= 1.0

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="record_transmissions"):
            self.sim().simulate([])

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError, match="staleness"):
            self.sim(staleness=-1)


class TestEngineEventStreamThroughSimulator:
    """End to end: recorded async/SSP engine streams replay cleanly."""

    def test_async_stream_simulates(self, timeline):
        engine = train_engine(sync_mode="async", steps=6)
        assert len(engine.update_events) == 6
        assert engine.transmissions == []  # BSP plans stay BSP-only
        exchange = EventDrivenSimulator(
            timeline,
            single_server_links(link("10Mbps")),
            TIME_MODEL,
            staleness=None,
            overlap=True,
        ).simulate(engine.update_events)
        assert len(exchange.updates) == 6
        assert exchange.total_seconds > 0
        assert exchange.max_staleness >= 1  # two workers interleave

    def test_ssp_stream_simulates_with_gate(self, timeline):
        engine = train_engine(sync_mode="ssp", staleness=1, steps=6)
        exchange = EventDrivenSimulator(
            timeline,
            single_server_links(link("10Mbps")),
            TIME_MODEL,
            staleness=1,
            overlap=True,
        ).simulate(engine.update_events)
        assert len(exchange.updates) == 6
        # Local-step leads in the simulated schedule respect the bound.
        for u in exchange.updates:
            assert u.done_seconds >= u.commit_seconds >= u.start_seconds

    def test_recorded_bytes_match_traffic_meter(self):
        engine = train_engine(sync_mode="async", steps=4)
        for event, traffic in zip(engine.update_events, engine.traffic.steps):
            push = sum(r.total_bytes for r in event.push_records)
            pull = sum(r.total_bytes for r in event.pull_records)
            assert push == traffic.push_bytes
            assert pull == traffic.pull_bytes_total
            assert event.codec_seconds == pytest.approx(traffic.codec_seconds)
