"""Smoke tests: every example script runs to completion from a shell."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "bits/value" in out
    assert "error feedback" in out


def test_distributed_training():
    out = run_example("distributed_training.py", "--steps", "6", "--workers", "2")
    assert "3LC (s=1.00)" in out
    assert "traffic" in out


def test_wan_deployment_planner():
    out = run_example("wan_deployment_planner.py", "--steps", "4")
    assert "32-bit float" in out
    assert "bytes/1k steps" in out


def test_custom_scheme():
    out = run_example("custom_scheme.py")
    assert "signSGD" in out
    assert "zero framework changes" in out


def test_geo_distributed():
    out = run_example("geo_distributed.py", "--steps", "4")
    assert "Best placement" in out
    assert "3LC (s=1.00)" in out
    assert "Egress bill" in out


def test_topology_study():
    out = run_example("topology_study.py", "--nodes", "4", "--size", "4096")
    assert "ring" in out
    assert "param server" in out
    assert "Hot-link bytes" in out


def test_codec_lab():
    out = run_example("codec_lab.py", "--steps", "3")
    assert "Offline codec ranking" in out
    assert "3LC (s=1.00)" in out
    assert "32-bit float" in out


def test_sharded_servers():
    out = run_example("sharded_servers.py", "--workers", "2")
    assert "Hottest server link" in out
    assert "3LC (s=1.00)" in out


def test_overlap_sweep():
    out = run_example("overlap_sweep.py", "--steps", "4")
    assert "per-layer overlap" in out
    assert "10Mbps" in out and "100Mbps" in out and "1Gbps" in out
    assert "measured overlap" in out


def test_hier_sweep():
    out = run_example("hier_sweep.py", "--steps", "4")
    assert "Two-tier step time" in out
    assert "MB intra-rack" in out and "MB cross-rack" in out
    assert "cross util" in out and "rack util" in out
    assert "10Mbps" in out and "1Gbps" in out
