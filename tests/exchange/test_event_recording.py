"""Event-stream recording edge cases: deferring schemes × async modes.

A scheme with ``defers_transmission`` (N-local-steps and its compositions)
legitimately skips wire messages on most updates. Async/SSP *training*
tolerates that (deferred tensors simply ride the error buffers), but an
event stream that is supposed to drive the network simulator cannot: a
recorded update with no push would simulate a server commit that never
received anything. The engine therefore refuses the recording combination
up front with an actionable error, and the CLI drops deferring schemes
from async/SSP sweeps (``tests/harness`` covers the CLI side).
"""

import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.exchange import EngineConfig, ExchangeEngine
from repro.nn import CosineDecay, build_resnet


def make_engine(scheme_name: str, *, sync_mode: str, staleness=None, record=False):
    return ExchangeEngine(
        lambda: build_resnet(8, base_width=4, seed=7),
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor(scheme_name, seed=0),
        CosineDecay(0.05, 8),
        EngineConfig(
            num_workers=2,
            batch_size=8,
            shard_size=32,
            seed=0,
            sync_mode=sync_mode,
            staleness=staleness,
            record_transmissions=record,
        ),
    )


DEFERRING = "2 local steps"


class TestDeferringSchemesInAsyncModes:
    @pytest.mark.parametrize(
        "sync_mode,staleness", [("async", None), ("ssp", 1)]
    )
    def test_recording_rejected_cleanly(self, sync_mode, staleness):
        with pytest.raises(ValueError, match="defers transmissions"):
            make_engine(
                DEFERRING, sync_mode=sync_mode, staleness=staleness, record=True
            )

    def test_plain_async_training_still_works(self):
        # Without recording the historical behaviour stands: deferred
        # updates apply through the error buffers, nothing crashes.
        engine = make_engine(DEFERRING, sync_mode="async")
        engine.train(6)
        assert engine.update_count == 6
        assert len(engine.traffic.steps) == 6
        # Deferral shows up as zero-byte updates, not missing records.
        assert any(s.push_bytes == 0 for s in engine.traffic.steps)
        assert any(s.push_bytes > 0 for s in engine.traffic.steps)

    def test_bsp_recording_still_accepts_deferring_schemes(self):
        # The gate is event-stream specific: BSP step plans represent
        # deferred messages as absent records, which the step simulator
        # already handles.
        engine = make_engine(DEFERRING, sync_mode="bsp", record=True)
        engine.train(4)
        assert len(engine.transmissions) == 4

    def test_non_deferring_async_recording_accepted(self):
        engine = make_engine("3LC (s=1.00)", sync_mode="async", record=True)
        engine.train(4)
        assert len(engine.update_events) == 4
        assert all(e.push_records for e in engine.update_events)
