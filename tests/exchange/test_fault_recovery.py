"""Fault injection and churn-tolerant exchange in the unified engine.

Covers the crash/restart/departure lifecycle on the parameter-server
topologies, elastic rack membership under uplink flaps, the
checkpointed-vs-naive recovery split, barrier fallback when churn
shrinks the live set below a backup-worker barrier's quorum, and the
no-fault invariant: an empty fault spec is bit-identical to no spec.
"""

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed.faults import FaultSpec, UplinkFlap, WorkerCrash
from repro.exchange import EngineConfig, ExchangeEngine
from repro.nn import CosineDecay, build_resnet


def make_engine(scheme="3LC (s=1.00)", steps=8, **overrides):
    kwargs = dict(
        num_workers=4,
        batch_size=8,
        shard_size=64,
        seed=0,
        topology="single",
    )
    if overrides.get("topology") == "hier":
        kwargs.update(racks=2, rack_size=2)
    kwargs.update(overrides)
    return ExchangeEngine(
        lambda: build_resnet(8, base_width=4, seed=7),
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor(scheme, seed=0),
        CosineDecay(0.05, steps),
        EngineConfig(**kwargs),
    )


def losses(engine):
    return [log.train_loss for log in engine.step_logs]


class TestConfigValidation:
    def test_faults_are_bsp_only(self):
        fault = FaultSpec(crashes=(WorkerCrash(worker=0, step=1),))
        with pytest.raises(ValueError, match="BSP-only"):
            make_engine(sync_mode="async", fault=fault)

    def test_crash_needs_parameter_server(self):
        fault = FaultSpec(crashes=(WorkerCrash(worker=0, step=1),))
        with pytest.raises(ValueError, match="ring"):
            make_engine(topology="ring", fault=fault)

    def test_crash_worker_in_range(self):
        fault = FaultSpec(crashes=(WorkerCrash(worker=9, step=1),))
        with pytest.raises(ValueError, match="9"):
            make_engine(fault=fault)

    def test_flap_needs_hier(self):
        fault = FaultSpec(flaps=(UplinkFlap(rack=0, step=1),))
        with pytest.raises(ValueError, match="hier"):
            make_engine(fault=fault)

    def test_flap_rack_in_range(self):
        fault = FaultSpec(flaps=(UplinkFlap(rack=5, step=1),))
        with pytest.raises(ValueError, match="5"):
            make_engine(topology="hier", fault=fault)


class TestNoFaultParity:
    @pytest.mark.parametrize("topology", ["single", "hier"])
    def test_empty_spec_takes_the_no_fault_path(self, topology):
        """fault=FaultSpec() must not perturb the no-fault path at all.

        Training is not bit-deterministic across runs (threaded BLAS
        reduction order), so the comparison is structural — the fault
        machinery must be disarmed entirely — plus a tight numerical
        agreement on the loss trajectory.
        """
        plain = make_engine(topology=topology)
        plain.train(4)
        empty = make_engine(topology=topology, fault=FaultSpec())
        empty.train(4)
        assert empty._fault is None
        assert empty.fault_summary() is None
        assert empty.fault_log == []
        for a, b in zip(plain.traffic.steps, empty.traffic.steps):
            assert a.pull_fanout == b.pull_fanout
            assert a.num_workers == b.num_workers
            assert b.resync_bytes == 0
        np.testing.assert_allclose(
            losses(plain), losses(empty), rtol=1e-4
        )


class TestCrashRestart:
    def test_crash_lifecycle(self):
        fault = FaultSpec(crashes=(WorkerCrash(worker=1, step=2, down_steps=2),))
        engine = make_engine(fault=fault)
        engine.train(6)
        events = [(e["event"], e["step"]) for e in engine.fault_log]
        assert events == [("crash", 2), ("restart", 4)]
        assert engine.fault_log[1]["recovery"] == "checkpoint"
        summary = engine.fault_summary()
        assert summary["crashes"] == 1 and summary["restarts"] == 1
        assert summary["departures"] == 0
        assert summary["resync_bytes"] > 0
        # Down steps aggregate fewer pushes; the rejoin step is whole again.
        fanouts = [t.pull_fanout for t in engine.traffic.steps]
        assert fanouts == [4, 4, 3, 3, 4, 4]
        resync = [t.resync_bytes for t in engine.traffic.steps]
        assert resync[4] > 0 and sum(resync) == resync[4]
        assert all(np.isfinite(l) for l in losses(engine))

    def test_restarted_worker_replica_matches_global_model(self):
        """Checkpointed recovery resyncs the replica; the naive rejoin
        leaves it permanently offset by the missed pulls."""

        def final_offset(checkpoint_state):
            fault = FaultSpec(
                crashes=(WorkerCrash(worker=1, step=2, down_steps=2),),
                checkpoint_state=checkpoint_state,
            )
            # Lossless pulls: replicas track the master exactly, so any
            # residual offset is the recovery protocol's fault. (With a
            # lossy scheme replicas legitimately trail the master by the
            # server's pull-side error residual.)
            engine = make_engine(scheme="32-bit float", fault=fault, steps=6)
            engine.train(6)
            global_state = engine.service.state_dict()
            replica = engine.workers[1]._params
            return max(
                float(np.abs(replica[name].data - tensor).max())
                for name, tensor in global_state.items()
            )

        # Post-resync the replica tracks the global model exactly: the
        # resync copies it, and every later pull applies the same deltas
        # to both.
        assert final_offset(True) == 0.0
        # The naive rejoin never recovers the missed deltas.
        assert final_offset(False) > 0.0

    def test_departure_via_flag(self):
        fault = FaultSpec(
            crashes=(WorkerCrash(worker=2, step=1, depart=True),)
        )
        engine = make_engine(fault=fault)
        engine.train(5)
        events = [e["event"] for e in engine.fault_log]
        assert events == ["crash", "departure"]
        # The departed worker never returns: fanout stays shrunk.
        assert [t.pull_fanout for t in engine.traffic.steps] == [4, 3, 3, 3, 3]
        assert engine.fault_summary()["departures"] == 1

    def test_departure_via_restart_cap(self):
        fault = FaultSpec(
            crashes=(
                WorkerCrash(worker=1, step=1, down_steps=1),
                WorkerCrash(worker=1, step=3, down_steps=1),
            ),
            max_restarts=1,
        )
        engine = make_engine(fault=fault)
        engine.train(6)
        events = [(e["event"], e["step"]) for e in engine.fault_log]
        assert events == [
            ("crash", 1),
            ("restart", 2),
            ("crash", 3),
            ("departure", 3),
        ]

    def test_all_workers_down_raises(self):
        fault = FaultSpec(
            crashes=tuple(
                WorkerCrash(worker=w, step=1, down_steps=2) for w in range(4)
            ),
        )
        engine = make_engine(fault=fault)
        with pytest.raises(RuntimeError, match="no live workers"):
            engine.train(3)

    def test_naive_recovery_transfers_nothing(self):
        fault = FaultSpec(
            crashes=(WorkerCrash(worker=1, step=2, down_steps=2),),
            checkpoint_state=False,
        )
        engine = make_engine(fault=fault)
        engine.train(6)
        assert engine.fault_log[1]["recovery"] == "none"
        assert engine.fault_summary()["resync_bytes"] == 0
        assert all(t.resync_bytes == 0 for t in engine.traffic.steps)

    def test_checkpointed_rejoin_converges_near_fault_free(self):
        """Restored error-feedback state keeps the churned run on the
        fault-free trajectory: the loss tail stays within a stated bound
        (0.25 — an order of magnitude above run-to-run BLAS jitter,
        an order below the divergence a corrupted rejoin produces).
        The percent-accuracy version of this bound at benchmark scale
        is asserted by ``benchmarks/bench_churn.py`` in full mode."""
        plain = make_engine(steps=12)
        plain.train(12)
        fault = FaultSpec(crashes=(WorkerCrash(worker=1, step=3, down_steps=2),))
        recovered = make_engine(fault=fault, steps=12)
        recovered.train(12)
        gap = abs(losses(plain)[-1] - losses(recovered)[-1])
        assert gap < 0.25

    def test_checkpoint_and_naive_diverge(self):
        """The recovery mode must actually change training dynamics."""

        def run(checkpoint_state):
            fault = FaultSpec(
                crashes=(WorkerCrash(worker=1, step=2, down_steps=3),),
                checkpoint_state=checkpoint_state,
            )
            engine = make_engine(fault=fault, steps=8)
            engine.train(8)
            return losses(engine)

        assert run(True) != run(False)


class TestBarrierFallback:
    def test_backup_barrier_degrades_not_deadlocks(self):
        """Churn below the quorum falls back to waiting for everyone."""
        fault = FaultSpec(
            crashes=(
                WorkerCrash(worker=1, step=2, down_steps=2),
                WorkerCrash(worker=2, step=2, down_steps=2),
            ),
        )
        engine = make_engine(fault=fault, backup_workers=1)
        engine.train(5)
        # Steps 2-3 have 2 live workers < required 3: full-barrier
        # fallback accepts both, drops none.
        assert all(np.isfinite(l) for l in losses(engine))
        drops = [t.dropped_pushes for t in engine.traffic.steps]
        assert drops[2] == 0 and drops[3] == 0
        # Healthy steps still drop the slowest (backup_workers=1).
        assert drops[0] == 1 and drops[4] == 1


class TestUplinkFlap:
    def test_flap_lifecycle(self):
        fault = FaultSpec(
            flaps=(UplinkFlap(rack=1, step=2, down_steps=2,
                              rejoin_delay_seconds=0.5),)
        )
        engine = make_engine(topology="hier", fault=fault,
                             record_transmissions=True)
        engine.train(6)
        events = [(e["event"], e["step"]) for e in engine.fault_log]
        assert events == [("flap", 2), ("rejoin", 4)]
        summary = engine.fault_summary()
        assert summary["flaps"] == 1 and summary["rejoins"] == 1
        assert summary["degraded_steps"] == 2
        assert summary["resync_bytes"] > 0
        # The rejoin step's recorded plan floors only the rejoined
        # rack's own uplink, not the other racks' routes.
        flooded = [st for st in engine.transmissions if st.link_down]
        assert len(flooded) == 1 and flooded[0].step == 4
        assert flooded[0].link_down == (("cross:rack1", 0.5),)
        assert all(np.isfinite(l) for l in losses(engine))

    def test_degraded_rack_keeps_training(self):
        """Down racks take local steps; convergence stays in the same
        ballpark as the fault-free run."""
        plain = make_engine(topology="hier", steps=8)
        plain.train(8)
        fault = FaultSpec(flaps=(UplinkFlap(rack=1, step=2, down_steps=3),))
        flapped = make_engine(topology="hier", fault=fault, steps=8)
        flapped.train(8)
        a, b = losses(plain), losses(flapped)
        # Identical until the flap hits, different after, both finite.
        assert a[:2] == b[:2] and a != b
        assert np.isfinite(b).all()
        assert abs(a[-1] - b[-1]) < 1.0

    def test_member_resync_after_rejoin(self):
        """Rejoined rack members carry the post-step global model."""
        fault = FaultSpec(flaps=(UplinkFlap(rack=1, step=1, down_steps=1),))
        engine = make_engine(topology="hier", fault=fault, steps=3)
        engine.train(3)
        assert [(e["event"], e["step"]) for e in engine.fault_log] == [
            ("flap", 1),
            ("rejoin", 2),
        ]
        global_state = engine.service.state_dict()
        rack_size = engine.engine_config.rack_size
        for member in engine.workers[rack_size:]:
            for name, param in member._params.items():
                np.testing.assert_array_equal(param.data, global_state[name])
