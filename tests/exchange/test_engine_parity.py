"""Engine parity: the unified BSP path must reproduce the seed Cluster.

Two independent checks hold the refactor to the seed's numerics:

* ``golden_bsp_trace.json`` was captured by running the *original*
  (pre-refactor) ``Cluster`` implementation; the engine-backed ``Cluster``
  must reproduce its per-step train loss, push/pull wire bytes, and final
  model divergence.
* A live re-implementation of the seed's orchestration loop — built from
  the same ``Worker`` / ``ParameterServer`` / ``FullBarrier`` primitives
  the seed composed — must match the engine step-for-step, bit-for-bit.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.data import Augmenter, DatasetSpec, ShardBatcher, SyntheticImageDataset
from repro.distributed import Cluster, ClusterConfig, FullBarrier, ParameterServer, Worker
from repro.exchange import EngineConfig, ExchangeEngine
from repro.nn import CosineDecay, MomentumSGD, build_resnet
from repro.utils.seeding import SeedSequenceFactory

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_bsp_trace.json").read_text()
)

SCHEMES = sorted(GOLDEN)


def model_factory():
    return build_resnet(8, base_width=4, seed=7)


def make_cluster(scheme_name: str) -> Cluster:
    return Cluster(
        model_factory,
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor(scheme_name, seed=0),
        CosineDecay(0.05, 8),
        ClusterConfig(num_workers=2, batch_size=8, shard_size=32, seed=0),
    )


class SeedReferenceLoop:
    """The seed Cluster's orchestration, reassembled from the primitives.

    This is the code the engine refactored away: explicit worker
    construction, shared-pull fan-out, and per-step byte accounting, in the
    seed's exact operation order.
    """

    def __init__(self, scheme_name: str):
        config = ClusterConfig(num_workers=2, batch_size=8, shard_size=32, seed=0)
        dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
        scheme = make_compressor(scheme_name, seed=0)
        seeds = SeedSequenceFactory(config.seed)

        reference_model = model_factory()
        self.workers = []
        for worker_id in range(config.num_workers):
            model = model_factory()
            model.load_state_dict(reference_model.state_dict())
            images, labels = dataset.train_shard(worker_id, config.shard_size)
            self.workers.append(
                Worker(
                    worker_id,
                    model,
                    ShardBatcher(
                        images, labels, config.batch_size, seeds.rng("batch", worker_id)
                    ),
                    Augmenter(seeds.rng("augment", worker_id), pad=config.augment_pad),
                    scheme,
                    small_tensor_threshold=config.small_tensor_threshold,
                )
            )
        self.server = ParameterServer(
            reference_model.parameters(),
            MomentumSGD(config.momentum, config.weight_decay),
            CosineDecay(0.05, 8),
            scheme,
            config.num_workers,
            small_tensor_threshold=config.small_tensor_threshold,
        )
        self.barrier = FullBarrier()
        self.losses: list[float] = []
        self.push_bytes: list[int] = []
        self.pull_bytes: list[int] = []

    def train(self, steps: int) -> None:
        for _ in range(steps):
            batches = [worker.train_step() for worker in self.workers]
            arrivals = {
                worker.worker_id: batches[i].compute_seconds
                for i, worker in enumerate(self.workers)
            }
            decision = self.barrier.decide(arrivals)
            accepted = [batches[i].messages for i in decision.accepted]
            pull_batch = self.server.step(accepted, divisor=len(decision.accepted))
            deltas = {}
            for name, result in pull_batch.messages.items():
                if result is None:
                    continue
                deltas[name] = self.server.decompress_pull(name, result.message)
            for worker in self.workers:
                worker.apply_pull(deltas)
            self.losses.append(float(np.mean([b.loss for b in batches])))
            self.push_bytes.append(
                sum(
                    r.message.wire_size
                    for b in batches
                    for r in b.messages.values()
                    if r is not None
                )
            )
            self.pull_bytes.append(
                sum(
                    r.message.wire_size
                    for r in pull_batch.messages.values()
                    if r is not None
                )
            )

    def model_divergence(self) -> float:
        global_state = self.server.state_dict()
        worst = 0.0
        for worker in self.workers:
            local = worker.model.state_dict()
            worst = max(
                worst,
                float(
                    np.sqrt(
                        sum(
                            np.sum((local[k] - global_state[k]) ** 2)
                            for k in global_state
                        )
                    )
                ),
            )
        return worst


@pytest.mark.parametrize("scheme_name", SCHEMES)
class TestGoldenTrace:
    """Engine vs. the trace captured from the pre-refactor implementation."""

    def test_loss_trajectory_matches_seed(self, scheme_name):
        cluster = make_cluster(scheme_name)
        cluster.train(GOLDEN[scheme_name]["steps"])
        losses = [log.train_loss for log in cluster.step_logs]
        np.testing.assert_allclose(
            losses, GOLDEN[scheme_name]["train_loss"], rtol=1e-6, atol=0
        )

    def test_wire_bytes_match_seed_exactly(self, scheme_name):
        golden = GOLDEN[scheme_name]
        cluster = make_cluster(scheme_name)
        cluster.train(golden["steps"])
        assert [s.push_bytes for s in cluster.traffic.steps] == golden["push_bytes"]
        assert [
            s.pull_bytes_shared for s in cluster.traffic.steps
        ] == golden["pull_bytes_shared"]
        assert [s.push_elements for s in cluster.traffic.steps] == golden["push_elements"]
        assert [s.pull_elements for s in cluster.traffic.steps] == golden["pull_elements"]

    def test_model_divergence_matches_seed(self, scheme_name):
        golden = GOLDEN[scheme_name]
        cluster = make_cluster(scheme_name)
        cluster.train(golden["steps"])
        assert cluster.model_divergence() == pytest.approx(
            golden["model_divergence"], rel=1e-6
        )


@pytest.mark.parametrize("scheme_name", ["3LC (s=1.00)", "32-bit float"])
class TestLiveReference:
    """Engine vs. a live seed-loop reassembly: must be bit-identical."""

    def test_bit_identical_trajectory_and_bytes(self, scheme_name):
        reference = SeedReferenceLoop(scheme_name)
        reference.train(6)
        cluster = make_cluster(scheme_name)
        cluster.train(6)

        assert [log.train_loss for log in cluster.step_logs] == reference.losses
        assert [s.push_bytes for s in cluster.traffic.steps] == reference.push_bytes
        assert [
            s.pull_bytes_shared for s in cluster.traffic.steps
        ] == reference.pull_bytes
        assert cluster.model_divergence() == reference.model_divergence()

    def test_global_models_bit_identical(self, scheme_name):
        reference = SeedReferenceLoop(scheme_name)
        reference.train(4)
        cluster = make_cluster(scheme_name)
        cluster.train(4)
        ref_state = reference.server.state_dict()
        eng_state = cluster.server.state_dict()
        assert ref_state.keys() == eng_state.keys()
        for name in ref_state:
            np.testing.assert_array_equal(ref_state[name], eng_state[name])


class TestFacadeEquivalence:
    """Cluster facade and a directly-configured engine are the same path."""

    def test_direct_engine_equals_facade(self):
        facade = make_cluster("3LC (s=1.00)")
        engine = ExchangeEngine(
            model_factory,
            SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
            make_compressor("3LC (s=1.00)", seed=0),
            CosineDecay(0.05, 8),
            EngineConfig(
                num_workers=2,
                batch_size=8,
                shard_size=32,
                seed=0,
                topology="single",
                sync_mode="bsp",
            ),
        )
        facade.train(5)
        engine.train(5)
        assert [l.train_loss for l in facade.step_logs] == [
            l.train_loss for l in engine.step_logs
        ]
        assert facade.traffic.total_wire_bytes == engine.traffic.total_wire_bytes
        assert facade.model_divergence() == engine.model_divergence()
