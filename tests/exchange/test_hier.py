"""Hierarchical exchange: parity anchors and structural guarantees.

The load-bearing assertions:

* ``golden_hier_trace.json`` pins the fixed-seed hierarchical BSP schedule
  (per-step losses, per-tier byte split) against regressions;
* a 1-rack hierarchical run is **bit-exact** with the plain ring topology
  — one rack has no cross-rack tier, so the exchange must degenerate to
  the ring, not merely approximate it;
* intra- and cross-rack bytes partition the wire total exactly, in BSP
  and async modes;
* the recorded transmission plans carry the tier coupling
  (``depends_on``) the simulator schedules.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.exchange import (
    EngineConfig,
    ExchangeEngine,
    HierarchicalExchangeService,
    HierarchicalTopology,
    make_topology,
)
from repro.nn import CosineDecay, build_resnet

GOLDEN_PATH = Path(__file__).parent / "golden_hier_trace.json"
GOLDEN_STEPS = 8


def make_engine(scheme_name: str = "3LC (s=1.00)", steps: int = 8, **overrides):
    kwargs = dict(
        num_workers=4,
        batch_size=8,
        shard_size=32,
        seed=0,
        topology="hier",
        racks=2,
        rack_size=2,
    )
    kwargs.update(overrides)
    return ExchangeEngine(
        lambda: build_resnet(8, base_width=4, seed=7),
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor(scheme_name, seed=0),
        CosineDecay(0.05, steps),
        EngineConfig(**kwargs),
    )


class TestGoldenTrace:
    """The fixed-seed hierarchical BSP schedule is pinned exactly."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("scheme", ["32-bit float", "3LC (s=1.00)"])
    def test_schedule_matches_golden(self, golden, scheme):
        expected = golden[scheme]
        engine = make_engine(scheme, steps=GOLDEN_STEPS)
        engine.train(GOLDEN_STEPS)
        assert [log.train_loss for log in engine.step_logs] == pytest.approx(
            expected["train_loss"], rel=0, abs=0
        )
        steps = engine.traffic.steps
        assert [s.push_bytes for s in steps] == expected["push_bytes"]
        assert [s.pull_bytes_shared for s in steps] == expected["pull_bytes_shared"]
        assert [s.intra_rack_bytes for s in steps] == expected["intra_rack_bytes"]
        assert [s.cross_rack_bytes for s in steps] == expected["cross_rack_bytes"]


class TestOneRackParity:
    """racks=1 has no cross-rack tier: it IS the plain ring, bit for bit."""

    @pytest.mark.parametrize("scheme", ["3LC (s=1.00)", "Stoch 3-value + QE"])
    def test_bit_exact_with_plain_ring(self, scheme):
        hier = make_engine(scheme, num_workers=2, racks=1, rack_size=2)
        ring = make_engine(scheme, num_workers=2, topology="ring")
        hier.train(6)
        ring.train(6)
        assert [l.train_loss for l in hier.step_logs] == [
            l.train_loss for l in ring.step_logs
        ]
        hier_state = hier.service.state_dict()
        ring_state = ring.service.state_dict()
        assert all(
            np.array_equal(hier_state[k], ring_state[k]) for k in hier_state
        )
        assert [s.wire_bytes for s in hier.traffic.steps] == [
            s.wire_bytes for s in ring.traffic.steps
        ]
        assert [s.push_messages for s in hier.traffic.steps] == [
            s.push_messages for s in ring.traffic.steps
        ]

    def test_one_rack_has_no_cross_traffic(self):
        engine = make_engine(num_workers=2, racks=1, rack_size=2)
        engine.train(2)
        assert all(s.cross_rack_bytes == 0 for s in engine.traffic.steps)
        assert all(s.pull_fanout == 0 for s in engine.traffic.steps)


class TestTwoTierAccounting:
    def test_split_partitions_wire_bytes_bsp(self):
        engine = make_engine()
        engine.train(4)
        for s in engine.traffic.steps:
            assert s.intra_rack_bytes > 0
            assert s.cross_rack_bytes > 0
            assert s.intra_rack_bytes + s.cross_rack_bytes == s.wire_bytes

    def test_split_partitions_wire_bytes_async(self):
        engine = make_engine(sync_mode="async", fixed_compute_seconds=0.05)
        engine.train(6)
        for s in engine.traffic.steps:
            assert s.intra_rack_bytes + s.cross_rack_bytes == s.wire_bytes

    def test_compression_shrinks_cross_tier_most(self):
        """The paper's thesis at rack granularity: 3LC's reduction on the
        scarce cross tier exceeds raw float's by the compression ratio."""
        raw = make_engine("32-bit float")
        lossy = make_engine("3LC (s=1.00)")
        raw.train(3)
        lossy.train(3)
        assert (
            lossy.traffic.total_cross_rack_bytes
            < raw.traffic.total_cross_rack_bytes / 5
        )

    def test_codec_seconds_match_recorded_plan(self):
        engine = make_engine(record_transmissions=True)
        engine.train(3)
        for st, traffic in zip(engine.transmissions, engine.traffic.steps):
            assert st.codec_seconds == pytest.approx(traffic.codec_seconds)
            push = sum(
                r.total_bytes
                for r in st.records
                if r.phase in ("push", "collective")
            )
            # Collective records carry per-link (not all-links) volume, so
            # the recorded upward bytes are below the meter's aggregate.
            assert 0 < push < traffic.push_bytes


class TestRecording:
    def test_bsp_records_carry_tier_dependencies(self):
        engine = make_engine(record_transmissions=True)
        engine.train(2)
        st = engine.transmissions[0]
        routes = {r.route for r in st.records}
        assert routes == {"rack0", "rack1", "cross:rack0", "cross:rack1"}
        cross_pushes = [r for r in st.records if r.phase == "push"]
        assert cross_pushes and all(
            r.depends_on == (f"{r.params[0]}@rack{r.worker // 2}",)
            and r.route == f"cross:rack{r.worker // 2}"
            for r in cross_pushes
        )
        broadcasts = [
            r for r in st.records if r.phase == "pull" and r.depends_on
        ]
        downs = [
            r for r in st.records if r.phase == "pull" and not r.depends_on
        ]
        # One pull copy per rack down that rack's own uplink...
        assert downs and all(r.copies == 1 and r.frames == 1 for r in downs)
        assert {r.route for r in downs} == {"cross:rack0", "cross:rack1"}
        # ...then one broadcast per rack per pulled tensor, riding the
        # rack ring and depending on its rack's down copy.
        assert len(broadcasts) == len(downs)
        assert all(r.route.startswith("rack") for r in broadcasts)
        assert all(len(r.depends_on) == 1 for r in broadcasts)

    def test_async_updates_are_rack_granular(self):
        engine = make_engine(
            sync_mode="async",
            fixed_compute_seconds=0.05,
            record_transmissions=True,
        )
        engine.train(6)
        events = engine.update_events
        assert len(events) == 6
        assert {e.worker for e in events} == {0, 1}  # rack ids, not workers
        for e in events:
            assert any(r.phase == "collective" for r in e.records)
            assert any(
                r.phase == "push" and r.depends_on for r in e.records
            )
            downs = [
                r for r in e.records if r.phase == "pull" and not r.depends_on
            ]
            bcasts = [
                r for r in e.records if r.phase == "pull" and r.depends_on
            ]
            assert len(downs) == len(bcasts)
            # Each rack's individual pull rides its own uplink.
            assert all(r.route == f"cross:rack{e.worker}" for r in downs)

    def test_ssp_staleness_observed_at_rack_granularity(self):
        from repro.distributed import StragglerSpec

        engine = make_engine(
            sync_mode="ssp",
            staleness=1,
            fixed_compute_seconds=0.05,
            record_transmissions=True,
            straggler=StragglerSpec(
                jitter_sigma=0.0,
                slowdown_probability=0.5,
                slowdown_factor=8.0,
                seed=3,
            ),
        )
        engine.run_updates(10)
        assert engine.max_staleness_observed() <= 2


class TestValidation:
    def test_worker_count_must_match_rack_shape(self):
        with pytest.raises(ValueError, match="not divisible into 2 racks of 2"):
            make_engine(num_workers=6)

    def test_rack_size_needs_a_ring(self):
        with pytest.raises(ValueError, match="rack ring needs >= 2"):
            make_engine(num_workers=2, racks=2, rack_size=1)

    def test_async_needs_multiple_racks(self):
        with pytest.raises(ValueError, match=">= 2 racks"):
            make_engine(sync_mode="async", num_workers=2, racks=1, rack_size=2)

    def test_fusion_rejected_with_one_rack(self):
        # A one-rack hierarchical run degenerates to the flat ring: no
        # cross-rack uplink exists for fused frames to travel on. Two or
        # more racks carry fused buckets (tests/exchange/test_wireplan.py).
        with pytest.raises(ValueError, match="fused buckets need >= 2 racks"):
            make_engine(
                num_workers=2, racks=1, rack_size=2, fuse_small_tensors=True
            )

    def test_backup_workers_rejected(self):
        with pytest.raises(ValueError, match="backup"):
            make_engine(backup_workers=1)

    def test_deferring_scheme_rejected_on_rack_ring(self):
        engine = make_engine("2 local steps")
        with pytest.raises(ValueError, match="deferred a hop"):
            engine.train(1)

    def test_make_topology(self):
        topo = make_topology("hier", racks=3, rack_size=2)
        assert isinstance(topo, HierarchicalTopology)
        assert topo.name == "hier(racks=3, rack=2)"
        with pytest.raises(ValueError, match="upper tier"):
            make_topology("hier", hier_upper="mesh")


class TestShardedUpperTier:
    def test_sharded_upper_trains_and_routes_per_shard(self):
        engine = make_engine(
            hier_upper="sharded", num_shards=2, record_transmissions=True
        )
        engine.train(3)
        assert all(np.isfinite(l.train_loss) for l in engine.step_logs)
        service = engine.service
        assert isinstance(service, HierarchicalExchangeService)
        routes = set(service.cross_routes().values())
        assert routes == {"cross:shard0", "cross:shard1"}
        st = engine.transmissions[0]
        cross_routes = {
            r.route for r in st.records if r.route.startswith("cross")
        }
        assert cross_routes == {"cross:shard0", "cross:shard1"}

    def test_sharded_upper_matches_single_upper_exactly(self):
        """Per-tensor contexts never span shards, so sharding the upper
        tier must not change a transmitted byte or a loss value."""
        single = make_engine()
        sharded = make_engine(hier_upper="sharded", num_shards=3)
        single.train(4)
        sharded.train(4)
        assert [l.train_loss for l in single.step_logs] == [
            l.train_loss for l in sharded.step_logs
        ]
        assert [s.wire_bytes for s in single.traffic.steps] == [
            s.wire_bytes for s in sharded.traffic.steps
        ]
