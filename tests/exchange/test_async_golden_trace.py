"""Golden-trace test for async event-stream recording.

Mirrors the PR 1 pattern in ``test_engine_parity.py``: the event stream of
a fixed-seed 2-worker asynchronous run — scheduling order, logical
timestamps, virtual clocks, observed staleness, and every push/pull
message's wire bytes — was snapshotted into ``golden_async_trace.json``
and must reproduce exactly. The run pins ``fixed_compute_seconds`` (the
knob that removes wall-clock noise from the virtual clocks) and a seeded
straggler, so the schedule exercises a genuinely uneven interleaving:
worker 0 straggles at its first step and worker 1 runs three updates
ahead before it commits (staleness 3 is in the snapshot).

Regenerate (after an *intentional* recording change) by running this file
as a script: ``PYTHONPATH=src python tests/exchange/test_async_golden_trace.py``.
"""

import json
from pathlib import Path

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed.barriers import StragglerSpec
from repro.exchange import EngineConfig, ExchangeEngine
from repro.nn import CosineDecay, build_resnet

GOLDEN_PATH = Path(__file__).parent / "golden_async_trace.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

UPDATES = 10


def make_recorded_engine() -> ExchangeEngine:
    return ExchangeEngine(
        lambda: build_resnet(8, base_width=4, seed=7),
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor(GOLDEN["scheme"], seed=0),
        CosineDecay(0.05, UPDATES),
        EngineConfig(
            num_workers=GOLDEN["num_workers"],
            batch_size=8,
            shard_size=32,
            seed=0,
            sync_mode="async",
            record_transmissions=True,
            fixed_compute_seconds=1.0,
            straggler=StragglerSpec(
                jitter_sigma=0.0,
                slowdown_probability=0.35,
                slowdown_factor=3.0,
                seed=5,
            ),
        ),
    )


def event_stream_as_dicts(engine: ExchangeEngine) -> list[dict]:
    return [
        {
            "update": e.update,
            "worker": e.worker,
            "local_step": e.local_step,
            "global_step": e.global_step,
            "staleness": e.staleness,
            "clock_seconds": e.clock_seconds,
            "pushes": [
                [r.name, r.wire_bytes, r.elements, r.route] for r in e.push_records
            ],
            "pulls": [
                [r.name, r.wire_bytes, r.elements, r.route] for r in e.pull_records
            ],
        }
        for e in engine.update_events
    ]


class TestAsyncGoldenTrace:
    def test_event_stream_matches_snapshot(self):
        engine = make_recorded_engine()
        engine.train(UPDATES)
        assert event_stream_as_dicts(engine) == GOLDEN["updates"]

    def test_snapshot_exercises_an_uneven_schedule(self):
        # Guard against regenerating the trace into a trivial round-robin:
        # the straggler must produce real asynchrony worth snapshotting.
        staleness = [u["staleness"] for u in GOLDEN["updates"]]
        assert max(staleness) >= 2
        workers = [u["worker"] for u in GOLDEN["updates"]]
        assert workers != sorted(workers)  # interleaved, not batched
        assert len(GOLDEN["updates"]) == UPDATES

    def test_logical_timestamps_are_consistent(self):
        # Commit order is the update index; per-worker local steps count
        # up contiguously; staleness equals the pull-to-commit version gap.
        last_local = {}
        for index, u in enumerate(GOLDEN["updates"]):
            assert u["update"] == index
            assert u["global_step"] == index
            expected = last_local.get(u["worker"], -1) + 1
            assert u["local_step"] == expected
            last_local[u["worker"]] = expected
            assert 0 <= u["staleness"] <= index


if __name__ == "__main__":  # regenerate the snapshot
    engine = make_recorded_engine()
    engine.train(UPDATES)
    GOLDEN_PATH.write_text(
        json.dumps(
            {
                "scheme": "3LC (s=1.00)",
                "num_workers": 2,
                "updates": event_stream_as_dicts(engine),
            },
            indent=1,
        )
    )
    print(f"wrote {GOLDEN_PATH}")
