"""Fused-bucket hot path: wire format, codec context, and engine parity.

The fused path must be *numerically invisible* — small tensors travel
through the lossless bypass codec either way — while cutting frame count
and header bytes. These tests pin both properties.
"""

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.compression.fusion import (
    Bucket,
    FusedBucketContext,
    build_fusion_plan,
    split_bucket,
)
from repro.core.packets import CodecId, FusedWireMessage, WireMessage
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed import Cluster, ClusterConfig
from repro.exchange import EngineConfig, ExchangeEngine
from repro.nn import CosineDecay, build_resnet


def model_factory():
    return build_resnet(8, base_width=4, seed=7)


def make_cluster(fuse: bool, scheme: str = "3LC (s=1.00)") -> Cluster:
    return Cluster(
        model_factory,
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor(scheme, seed=0),
        CosineDecay(0.05, 6),
        ClusterConfig(
            num_workers=2,
            batch_size=8,
            shard_size=32,
            seed=0,
            fuse_small_tensors=fuse,
        ),
    )


class TestFusionPlan:
    def test_only_small_tensors_fused(self):
        plan = build_fusion_plan(
            {"a": (10, 10), "big": (64, 64), "b": (7,), "c": (3, 3)},
            threshold=256,
            bucket_elements=1024,
        )
        assert plan.fused_names == {"a", "b", "c"}
        assert len(plan.buckets) == 1
        assert plan.buckets[0].names == ("a", "b", "c")

    def test_capacity_splits_buckets(self):
        plan = build_fusion_plan(
            {f"t{i}": (100,) for i in range(10)},
            threshold=256,
            bucket_elements=250,
        )
        assert [b.names for b in plan.buckets] == [
            ("t0", "t1"), ("t2", "t3"), ("t4", "t5"), ("t6", "t7"), ("t8", "t9"),
        ]
        assert all(b.index == i for i, b in enumerate(plan.buckets))

    def test_deterministic_in_registration_order(self):
        shapes = {"z": (5,), "a": (6,), "m": (7,)}
        plan = build_fusion_plan(shapes, threshold=256, bucket_elements=1024)
        assert plan.buckets[0].names == ("z", "a", "m")

    def test_offsets_cover_bucket(self):
        bucket = Bucket(0, ("x", "y"), ((2, 3), (4,)))
        assert bucket.total_elements == 10
        assert bucket.offsets == ((0, 6), (6, 10))


class TestBucketBoundaries:
    """Named boundaries force-close the open bucket (the autotuner knob)."""

    def test_boundary_splits_at_named_tensor(self):
        shapes = {f"t{i}": (100,) for i in range(4)}
        plan = build_fusion_plan(
            shapes, threshold=256, bucket_elements=1024,
            boundaries=frozenset({"t2"}),
        )
        assert [b.names for b in plan.buckets] == [("t0", "t1"), ("t2", "t3")]

    def test_unknown_boundary_names_are_ignored(self):
        shapes = {"a": (10,), "b": (10,)}
        plan = build_fusion_plan(
            shapes, threshold=256, bucket_elements=1024,
            boundaries=frozenset({"nope", "big"}),
        )
        assert [b.names for b in plan.buckets] == [("a", "b")]

    def test_boundary_composes_with_capacity(self):
        shapes = {f"t{i}": (100,) for i in range(6)}
        plan = build_fusion_plan(
            shapes, threshold=256, bucket_elements=250,
            boundaries=frozenset({"t1"}),
        )
        assert [b.names for b in plan.buckets] == [
            ("t0",), ("t1", "t2"), ("t3", "t4"), ("t5",),
        ]

    def test_engine_config_requires_fuse_for_boundaries(self):
        with pytest.raises(ValueError, match="fuse_small_tensors"):
            EngineConfig(
                num_workers=2,
                fuse_small_tensors=False,
                bucket_boundaries=("t1",),
            )


class TestFusedWireMessage:
    def make_message(self) -> FusedWireMessage:
        flat = np.arange(10, dtype="<f4")
        inner = WireMessage(
            codec_id=CodecId.FLOAT32, shape=(10,), payload=flat.tobytes()
        )
        return FusedWireMessage(inner=inner, shapes=((2, 3), (4,)))

    def test_roundtrip(self):
        message = self.make_message()
        decoded = FusedWireMessage.unpack(message.pack())
        assert decoded.shapes == message.shapes
        assert decoded.inner == message.inner

    def test_wire_size_is_packed_length(self):
        message = self.make_message()
        assert message.wire_size == len(message.pack())

    def test_element_count(self):
        assert self.make_message().element_count == 10

    def test_crc_detects_corruption(self):
        data = bytearray(self.make_message().pack())
        data[10] ^= 0xFF
        with pytest.raises(ValueError, match="CRC"):
            FusedWireMessage.unpack(bytes(data))

    def test_shape_table_must_cover_payload(self):
        flat = np.arange(10, dtype="<f4")
        inner = WireMessage(
            codec_id=CodecId.FLOAT32, shape=(10,), payload=flat.tobytes()
        )
        with pytest.raises(ValueError, match="elements"):
            FusedWireMessage(inner=inner, shapes=((3,),))

    def test_fused_saves_header_bytes_vs_per_tensor(self):
        """K small tensors fused into one frame must cost fewer wire bytes
        than K individual float32 frames carrying the same values."""
        shapes = [(16,)] * 20
        tensors = [np.random.default_rng(i).normal(size=s).astype("<f4") for i, s in enumerate(shapes)]
        per_tensor = sum(
            WireMessage(
                codec_id=CodecId.FLOAT32, shape=t.shape, payload=t.tobytes()
            ).wire_size
            for t in tensors
        )
        flat = np.concatenate([t.reshape(-1) for t in tensors])
        fused = FusedWireMessage(
            inner=WireMessage(
                codec_id=CodecId.FLOAT32, shape=flat.shape, payload=flat.tobytes()
            ),
            shapes=tuple(t.shape for t in tensors),
        ).wire_size
        assert fused < per_tensor


class TestFusedBucketContext:
    def test_reconstruction_is_exact_per_tensor(self):
        scheme = make_compressor("3LC (s=1.00)", seed=0)
        bucket = Bucket(0, ("a", "b"), ((3, 2), (5,)))
        context = scheme.make_fused_bypass_context(bucket, key=("t", 0))
        rng = np.random.default_rng(0)
        tensors = {
            "a": rng.normal(size=(3, 2)).astype(np.float32),
            "b": rng.normal(size=(5,)).astype(np.float32),
        }
        result = context.compress(tensors)
        # Bypass is lossless: reconstruction equals input bit-for-bit.
        for name in tensors:
            np.testing.assert_array_equal(result.parts[name], tensors[name])
        # Receiver decode path: one codec call, then split.
        flat = scheme.decompress_fused_bypass(result.message)
        decoded = split_bucket(flat, bucket)
        for name in tensors:
            np.testing.assert_array_equal(decoded[name], tensors[name])

    def test_deferring_scheme_defers_whole_bucket(self):
        scheme = make_compressor("2 local steps", seed=0)
        bucket = Bucket(0, ("a",), ((4,),))
        context = scheme.make_fused_bypass_context(bucket, key=("t", 0))
        tensor = {"a": np.ones(4, dtype=np.float32)}
        assert context.compress(tensor) is None  # off-step: deferred
        result = context.compress(tensor)  # on-step: accumulated 2x
        np.testing.assert_array_equal(result.parts["a"], 2 * np.ones(4))


class TestEngineFusionParity:
    """Fusion changes framing, never numerics."""

    def test_identical_training_trajectory(self):
        unfused, fused = make_cluster(False), make_cluster(True)
        unfused.train(6)
        fused.train(6)
        assert [l.train_loss for l in unfused.step_logs] == [
            l.train_loss for l in fused.step_logs
        ]
        assert unfused.model_divergence() == fused.model_divergence()
        for name, value in unfused.server.state_dict().items():
            np.testing.assert_array_equal(value, fused.server.state_dict()[name])

    def test_fewer_frames_and_no_byte_regression(self):
        unfused, fused = make_cluster(False), make_cluster(True)
        unfused.train(6)
        fused.train(6)
        assert fused.traffic.total_messages < unfused.traffic.total_messages
        assert fused.traffic.total_wire_bytes < unfused.traffic.total_wire_bytes
        # Same state-change elements crossed the wire either way.
        assert sum(s.push_elements for s in fused.traffic.steps) == sum(
            s.push_elements for s in unfused.traffic.steps
        )

    def test_lossless_scheme_keeps_replicas_synced_when_fused(self):
        cluster = make_cluster(True, scheme="32-bit float")
        cluster.train(3)
        assert cluster.model_divergence() < 1e-5

    def test_fused_tensors_marked_bypassed(self):
        cluster = make_cluster(True)
        plan = cluster.fusion_plan
        assert plan is not None and plan.fused_names
        assert plan.fused_names <= cluster.server.bypassed
        assert plan.fused_names <= cluster.workers[0].bypassed

    def test_fusion_rejected_on_ring_only(self):
        """The ring has no point-to-point framing to fuse; the sharded
        topology now carries partition-aware plans (tests/exchange/
        test_wireplan.py pins its bit-exactness)."""
        with pytest.raises(ValueError, match="raw gradients per hop"):
            EngineConfig(
                num_workers=2,
                batch_size=8,
                shard_size=32,
                topology="ring",
                fuse_small_tensors=True,
            )
        dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
        engine = ExchangeEngine(
            model_factory,
            dataset,
            make_compressor("3LC (s=1.00)", seed=0),
            CosineDecay(0.05, 4),
            EngineConfig(
                num_workers=2,
                batch_size=8,
                shard_size=32,
                topology="sharded",
                fuse_small_tensors=True,
            ),
        )
        assert engine.fusion_plan is not None

    def test_lossy_requires_fuse(self):
        with pytest.raises(ValueError, match="requires fuse_small_tensors"):
            EngineConfig(num_workers=2, batch_size=8, shard_size=32, fuse_lossy=True)

    def test_deferring_scheme_composes_with_fusion(self):
        cluster = make_cluster(True, scheme="2 local steps")
        cluster.train(4)
        wire = [s.wire_bytes for s in cluster.traffic.steps]
        assert wire[0] == 0 and wire[2] == 0  # off-steps fully deferred
        assert wire[1] > 0 and wire[3] > 0
