"""Combinatorial smoke: every (topology × sync mode × scheme) cell.

The unified engine's promise is that any exchange topology composes with
any synchronization mode behind one driver loop. This sweep trains a tiny
model for a few quanta in every valid cell — one lossy and one lossless
scheme each — and asserts the invalid cells are rejected with a clear
error instead of silently misbehaving.
"""

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.exchange import (
    SYNC_MODES,
    TOPOLOGIES,
    EngineConfig,
    ExchangeEngine,
    make_sync_mode,
    make_topology,
)
from repro.nn import CosineDecay, build_resnet

SCHEMES = ["32-bit float", "3LC (s=1.00)"]  # one lossless + one lossy

#: The ring is a synchronous collective: every node must contribute a chunk
#: to every hop, so event-driven modes cannot drive it.
INVALID = {("ring", "async"), ("ring", "ssp")}


def make_engine(topology: str, sync_mode: str, scheme: str, **overrides):
    kwargs = dict(
        num_workers=2,
        batch_size=8,
        shard_size=32,
        seed=0,
        topology=topology,
        sync_mode=sync_mode,
    )
    if topology == "hier":
        # Two racks of two: exercises both tiers (intra rings + cross
        # service) and satisfies the async requirement of >= 2 racks.
        kwargs.update(num_workers=4, racks=2, rack_size=2)
    if sync_mode == "ssp":
        kwargs["staleness"] = 1
    kwargs.update(overrides)
    return ExchangeEngine(
        lambda: build_resnet(8, base_width=4, seed=7),
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor(scheme, seed=0),
        CosineDecay(0.05, 4),
        EngineConfig(**kwargs),
    )


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("sync_mode", SYNC_MODES)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_matrix_cell(topology, sync_mode, scheme):
    if (topology, sync_mode) in INVALID:
        with pytest.raises(ValueError, match="synchronous collective"):
            make_engine(topology, sync_mode, scheme)
        return

    engine = make_engine(topology, sync_mode, scheme)
    before = engine.service.state_dict()
    engine.train(3)

    # The model trained and telemetry was recorded in every cell.
    losses = [log.train_loss for log in engine.step_logs]
    assert len(losses) == 3 and all(np.isfinite(l) for l in losses)
    after = engine.service.state_dict()
    assert any(not np.array_equal(before[k], after[k]) for k in before)
    assert len(engine.traffic.steps) == 3
    assert all(s.push_bytes > 0 for s in engine.traffic.steps)
    assert all(s.push_messages > 0 for s in engine.traffic.steps)
    result = engine.evaluate(test_size=50)
    assert 0.0 <= result.test_accuracy <= 1.0
    assert np.isfinite(result.test_loss)


def test_sharded_bsp_matches_single_bsp_exactly():
    """Per-tensor contexts never span servers (paper §2's shard-trivial
    point): partitioning the model across shards must not change a single
    transmitted byte or loss value."""
    single = make_engine("single", "bsp", "3LC (s=1.00)")
    sharded = make_engine("sharded", "bsp", "3LC (s=1.00)", num_shards=3)
    single.train(4)
    sharded.train(4)
    assert [l.train_loss for l in single.step_logs] == [
        l.train_loss for l in sharded.step_logs
    ]
    assert [s.wire_bytes for s in single.traffic.steps] == [
        s.wire_bytes for s in sharded.traffic.steps
    ]


def test_ring_has_no_pull_phase():
    engine = make_engine("ring", "bsp", "3LC (s=1.00)")
    engine.train(2)
    assert all(s.pull_bytes_shared == 0 for s in engine.traffic.steps)
    assert all(s.pull_fanout == 0 for s in engine.traffic.steps)
    # Replicas mirror the canonical model exactly (shared delta).
    assert engine.model_divergence() == pytest.approx(0.0, abs=1e-6)


def test_ring_compression_reduces_ring_bytes():
    raw = make_engine("ring", "bsp", "32-bit float")
    compressed = make_engine("ring", "bsp", "3LC (s=1.00)")
    raw.train(2)
    compressed.train(2)
    assert compressed.traffic.total_wire_bytes < raw.traffic.total_wire_bytes


def test_ring_rejects_backup_workers():
    with pytest.raises(ValueError, match="backup"):
        make_engine("ring", "bsp", "32-bit float", num_workers=3, backup_workers=1)


def test_ssp_requires_staleness():
    with pytest.raises(ValueError, match="staleness"):
        make_engine("single", "ssp", "32-bit float", staleness=None)


def test_async_rejects_staleness():
    with pytest.raises(ValueError, match="staleness"):
        make_engine("single", "async", "32-bit float", staleness=2)


def test_unknown_names_rejected():
    with pytest.raises(ValueError, match="unknown topology"):
        make_topology("hypercube")
    with pytest.raises(ValueError, match="unknown sync mode"):
        make_sync_mode("semi-sync")


def test_async_facade_train_collects_eval_results():
    """AsyncCluster narrows evaluate() to a float (historical contract),
    but the inherited train() must still collect full EvalResults."""
    from repro.data import DatasetSpec, SyntheticImageDataset
    from repro.distributed import AsyncCluster, AsyncConfig
    from repro.exchange import EvalResult

    cluster = AsyncCluster(
        lambda: build_resnet(8, base_width=4, seed=7),
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor("32-bit float", seed=0),
        CosineDecay(0.05, 4),
        AsyncConfig(num_workers=2, batch_size=8, shard_size=32, seed=0),
    )
    evals = cluster.train(4, eval_every=2, test_size=50)
    assert evals and all(isinstance(e, EvalResult) for e in evals)
    assert isinstance(cluster.evaluate(test_size=50), float)


def test_ring_workers_skip_push_context_allocation():
    engine = make_engine("ring", "bsp", "3LC (s=1.00)")
    worker = engine.workers[0]
    assert worker.push_contexts == {} and worker.fused_contexts == {}
    with pytest.raises(RuntimeError, match="push_compression"):
        worker.train_step()


def test_bsp_rejects_staleness():
    with pytest.raises(ValueError, match="staleness"):
        make_engine("single", "bsp", "32-bit float", staleness=2)


def test_ssp_staleness_bound_holds_on_sharded():
    from repro.distributed import StragglerSpec

    engine = make_engine(
        "sharded",
        "ssp",
        "32-bit float",
        num_workers=3,
        straggler=StragglerSpec(
            jitter_sigma=0.0, slowdown_probability=0.5, slowdown_factor=50.0, seed=1
        ),
    )
    engine.run_updates(18)
    assert engine.max_staleness_observed() <= 2  # staleness + 1 in flight
