"""The wire-plan layer: partition-aware fused buckets on every topology.

The load-bearing assertions:

* a partition-aware plan never lets a bucket span two wire destinations,
  and the sharded plan's destinations match the service's own greedy
  owner map exactly;
* fused sharded and fused hierarchical runs are **bit-exact** with their
  unfused per-tensor counterparts (the exact mode is the lossless bypass
  codec either way — only framing may change) while moving strictly fewer
  wire frames;
* a fixed-seed fused schedule is pinned against regressions
  (``golden_fused_trace.json``, the fused counterpart of
  ``golden_hier_trace.json``);
* async/SSP fused runs record per-update event streams whose bucket
  records the event-driven simulator replays;
* lossy fused buckets (one shared 3LC scale per bucket) trade accuracy
  for strictly less wire traffic than the exact fused path.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.compression.fusion import build_fusion_plan
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.exchange import (
    EngineConfig,
    ExchangeEngine,
    build_wire_plan,
    fusion_incompatibility,
    make_topology,
)
from repro.netsim import EventDrivenSimulator, link_model_for
from repro.network.bandwidth import link
from repro.nn import CosineDecay, build_resnet
from repro.nn.stats import profile_backward

GOLDEN_PATH = Path(__file__).parent / "golden_fused_trace.json"
GOLDEN_STEPS = 8


def model_factory():
    return build_resnet(8, base_width=4, seed=7)


def make_engine(scheme_name: str = "3LC (s=1.00)", steps: int = 8, **overrides):
    kwargs = dict(num_workers=2, batch_size=8, shard_size=32, seed=0)
    kwargs.update(overrides)
    return ExchangeEngine(
        model_factory,
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor(scheme_name, seed=0),
        CosineDecay(0.05, steps),
        EngineConfig(**kwargs),
    )


def golden_config(name: str) -> dict:
    """The two fixed-seed configurations the golden trace pins."""
    return {
        "sharded": dict(
            num_workers=2, topology="sharded", num_shards=3,
            fuse_small_tensors=True,
        ),
        "hier": dict(
            num_workers=4, topology="hier", racks=2, rack_size=2,
            fuse_small_tensors=True,
        ),
    }[name]


class TestPartitionAwarePlans:
    def test_buckets_never_span_partition_keys(self):
        shapes = {f"t{i}": (10,) for i in range(8)}
        plan = build_fusion_plan(
            shapes,
            threshold=256,
            bucket_elements=1024,
            partition=lambda name: int(name[1:]) % 3,
        )
        assert plan.fused_names == set(shapes)
        for bucket in plan.buckets:
            keys = {int(name[1:]) % 3 for name in bucket.names}
            assert len(keys) == 1
            assert bucket.group == keys.pop()

    def test_capacity_respected_within_partition(self):
        plan = build_fusion_plan(
            {f"t{i}": (100,) for i in range(6)},
            threshold=256,
            bucket_elements=250,
            partition=lambda name: int(name[1:]) % 2,
        )
        # Per destination: three 100-element tensors -> (2, 1) split.
        assert [b.names for b in plan.buckets] == [
            ("t0", "t2"), ("t4",), ("t1", "t3"), ("t5",),
        ]
        assert [b.index for b in plan.buckets] == [0, 1, 2, 3]

    def test_restrict_preserves_global_indices(self):
        plan = build_fusion_plan(
            {f"t{i}": (10,) for i in range(4)},
            threshold=256,
            bucket_elements=10,
        )
        sub = plan.restrict([1, 3])
        assert [b.index for b in sub.buckets] == [1, 3]
        assert sub.bucket(3).names == ("t3",)
        with pytest.raises(KeyError, match="no bucket"):
            sub.bucket(0)
        assert plan.restrict([]) is None

    def test_sharded_wire_plan_matches_service_owner_map(self):
        engine = make_engine(
            topology="sharded", num_shards=3, fuse_small_tensors=True
        )
        plan = engine.fusion_plan
        assert plan is not None and plan.buckets
        for bucket in plan.buckets:
            owners = {engine.service.shard_of(n) for n in bucket.names}
            assert owners == {bucket.group}
            assert engine.service.shard_of_bucket(bucket.index) == bucket.group

    def test_hier_sharded_upper_plan_matches_upper_owner_map(self):
        engine = make_engine(
            num_workers=4, topology="hier", racks=2, rack_size=2,
            hier_upper="sharded", num_shards=2, fuse_small_tensors=True,
        )
        plan = engine.fusion_plan
        assert plan is not None and plan.buckets
        upper = engine.service.upper
        for bucket in plan.buckets:
            assert {upper.shard_of(n) for n in bucket.names} == {bucket.group}

    def test_incompatibility_messages(self):
        assert "raw gradients per hop" in fusion_incompatibility("ring")
        assert ">= 2 racks" in fusion_incompatibility("hier", racks=1)
        assert fusion_incompatibility("hier", racks=2) is None
        for topology in ("single", "sharded"):
            assert fusion_incompatibility(topology) is None

    def test_build_wire_plan_rejects_ring(self):
        with pytest.raises(ValueError, match="does not support"):
            build_wire_plan(
                make_topology("ring"),
                {"t": (10,)},
                threshold=256,
                bucket_elements=1024,
            )

    def test_spanning_plan_rejected_by_sharded_service(self):
        # A plan built without the topology's partition must be refused:
        # its buckets would need two wire destinations.
        from repro.distributed.sharding import ShardedParameterService
        from repro.nn.optimizer import MomentumSGD

        params = list(model_factory().parameters())
        flat_plan = build_fusion_plan(
            {p.name: p.shape for p in params},
            threshold=256,
            bucket_elements=1 << 20,
        )
        with pytest.raises(ValueError, match="spans shards"):
            ShardedParameterService(
                params,
                lambda: MomentumSGD(0.9, 1e-4),
                CosineDecay(0.05, 4),
                make_compressor("3LC (s=1.00)", seed=0),
                num_workers=2,
                num_shards=3,
                fusion_plan=flat_plan,
            )


class TestFusedShardedParity:
    """Fusion changes framing, never numerics — now on the sharded service."""

    @pytest.mark.parametrize("scheme", ["3LC (s=1.00)", "32-bit float"])
    def test_bit_exact_with_unfused(self, scheme):
        unfused = make_engine(scheme, topology="sharded", num_shards=3)
        fused = make_engine(
            scheme, topology="sharded", num_shards=3, fuse_small_tensors=True
        )
        unfused.train(6)
        fused.train(6)
        assert [l.train_loss for l in unfused.step_logs] == [
            l.train_loss for l in fused.step_logs
        ]
        u_state, f_state = unfused.service.state_dict(), fused.service.state_dict()
        assert all(np.array_equal(u_state[k], f_state[k]) for k in u_state)
        assert unfused.model_divergence() == fused.model_divergence()

    def test_fewer_frames_same_elements(self):
        unfused = make_engine(topology="sharded", num_shards=3)
        fused = make_engine(
            topology="sharded", num_shards=3, fuse_small_tensors=True
        )
        unfused.train(6)
        fused.train(6)
        assert fused.traffic.total_messages < unfused.traffic.total_messages
        assert fused.traffic.total_wire_bytes < unfused.traffic.total_wire_bytes
        assert sum(s.push_elements for s in fused.traffic.steps) == sum(
            s.push_elements for s in unfused.traffic.steps
        )

    def test_recorded_routes_are_per_shard(self):
        fused = make_engine(
            topology="sharded",
            num_shards=3,
            fuse_small_tensors=True,
            record_transmissions=True,
        )
        fused.train(2)
        st = fused.transmissions[0]
        bucket_records = [r for r in st.records if r.name.startswith("bucket:")]
        assert bucket_records
        plan = fused.fusion_plan
        for record in bucket_records:
            index = int(record.name.split(":")[1])
            assert record.route == f"shard{plan.bucket(index).group}"
            assert record.params == plan.bucket(index).names


class TestFusedHierParity:
    @pytest.mark.parametrize("hier_upper", ["single", "sharded"])
    def test_bit_exact_with_unfused(self, hier_upper):
        kwargs = dict(
            num_workers=4, topology="hier", racks=2, rack_size=2,
            hier_upper=hier_upper,
        )
        unfused = make_engine(**kwargs)
        fused = make_engine(fuse_small_tensors=True, **kwargs)
        unfused.train(6)
        fused.train(6)
        assert [l.train_loss for l in unfused.step_logs] == [
            l.train_loss for l in fused.step_logs
        ]
        u_state, f_state = unfused.service.state_dict(), fused.service.state_dict()
        assert all(np.array_equal(u_state[k], f_state[k]) for k in u_state)

    def test_split_still_partitions_wire_bytes(self):
        fused = make_engine(
            num_workers=4, topology="hier", racks=2, rack_size=2,
            fuse_small_tensors=True,
        )
        fused.train(4)
        for s in fused.traffic.steps:
            assert s.intra_rack_bytes + s.cross_rack_bytes == s.wire_bytes

    def test_fewer_cross_frames_than_unfused(self):
        """Fusion shrinks the *cross tier's* frame count: the rack rings
        still move one chunk per hop, but the uplink carries one frame
        per bucket per rack instead of one per small tensor."""
        kwargs = dict(num_workers=4, topology="hier", racks=2, rack_size=2)
        unfused = make_engine(**kwargs)
        fused = make_engine(fuse_small_tensors=True, **kwargs)
        unfused.train(3)
        fused.train(3)
        assert fused.traffic.total_messages < unfused.traffic.total_messages
        # Byte totals also shrink (fewer frame headers, same payloads).
        assert fused.traffic.total_wire_bytes < unfused.traffic.total_wire_bytes

    def test_recorded_fused_uplink_depends_on_rack_collectives(self):
        fused = make_engine(
            num_workers=4, topology="hier", racks=2, rack_size=2,
            fuse_small_tensors=True, record_transmissions=True,
        )
        fused.train(2)
        st = fused.transmissions[0]
        ups = [
            r for r in st.records
            if r.phase == "push" and r.name.startswith("bucket:")
        ]
        assert ups
        for record in ups:
            rack = int(record.name.split("@up")[1])
            assert record.route == f"cross:rack{rack}"
            assert set(record.depends_on) == {
                f"{name}@rack{rack}" for name in record.params
            }
        downs = [
            r for r in st.records
            if r.phase == "pull"
            and r.name.startswith("bucket:")
            and not r.depends_on
        ]
        bcasts = [
            r for r in st.records
            if r.phase == "pull" and r.name.startswith("bucket:") and r.depends_on
        ]
        # One down copy per rack per bucket on that rack's own uplink,
        # each feeding exactly one rack-ring broadcast.
        assert downs and len(bcasts) == len(downs)
        assert {r.route for r in downs} == {"cross:rack0", "cross:rack1"}


class TestGoldenFusedTrace:
    """The fixed-seed fused schedules are pinned exactly."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("name", ["sharded", "hier"])
    def test_schedule_matches_golden(self, golden, name):
        expected = golden[name]
        engine = make_engine(steps=GOLDEN_STEPS, **golden_config(name))
        engine.train(GOLDEN_STEPS)
        assert [log.train_loss for log in engine.step_logs] == pytest.approx(
            expected["train_loss"], rel=0, abs=0
        )
        steps = engine.traffic.steps
        assert [s.push_bytes for s in steps] == expected["push_bytes"]
        assert [s.pull_bytes_shared for s in steps] == expected["pull_bytes_shared"]
        assert [s.push_messages for s in steps] == expected["push_messages"]
        assert [s.pull_messages for s in steps] == expected["pull_messages"]


class TestAsyncFusedPullStreams:
    def make_async(self, fuse: bool, **overrides):
        return make_engine(
            sync_mode="async",
            fixed_compute_seconds=0.05,
            fuse_small_tensors=fuse,
            record_transmissions=True,
            **overrides,
        )

    def test_bit_exact_with_unfused_async(self):
        unfused, fused = self.make_async(False), self.make_async(True)
        unfused.train(8)
        fused.train(8)
        assert [l.train_loss for l in unfused.step_logs] == [
            l.train_loss for l in fused.step_logs
        ]
        u_state, f_state = unfused.service.state_dict(), fused.service.state_dict()
        assert all(np.array_equal(u_state[k], f_state[k]) for k in u_state)

    def test_events_carry_fused_records_both_phases(self):
        fused = self.make_async(True)
        fused.train(6)
        assert len(fused.update_events) == 6
        for event in fused.update_events:
            fused_pushes = [
                r for r in event.push_records if r.name.startswith("bucket:")
            ]
            fused_pulls = [
                r for r in event.pull_records if r.name.startswith("bucket:")
            ]
            assert fused_pushes and fused_pulls
            for record in fused_pushes + fused_pulls:
                assert len(record.params) > 1
                assert record.frames == 1

    def test_fused_events_replay_through_event_simulator(self):
        fused = self.make_async(True)
        fused.train(8)
        dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
        timeline = profile_backward(model_factory(), *dataset.train_shard(0, 8))
        simulator = EventDrivenSimulator(
            timeline,
            link_model_for("single", link("100Mbps")),
            staleness=None,
            overlap=True,
        )
        exchange = simulator.simulate(fused.update_events)
        assert len(exchange.updates) == 8
        assert exchange.total_seconds > 0
        # Fewer frames than the unfused stream -> less per-frame overhead.
        unfused = self.make_async(False)
        unfused.train(8)
        baseline = simulator.simulate(unfused.update_events)
        assert sum(e.total_frames for e in fused.update_events) < sum(
            e.total_frames for e in unfused.update_events
        )
        assert exchange.overhead_seconds < baseline.overhead_seconds

    def test_ssp_fused_respects_staleness(self):
        engine = make_engine(
            sync_mode="ssp",
            staleness=1,
            fixed_compute_seconds=0.05,
            fuse_small_tensors=True,
        )
        engine.run_updates(10)
        assert engine.max_staleness_observed() <= 2

    def test_hier_async_fused_records_rack_granular_buckets(self):
        engine = make_engine(
            num_workers=4, topology="hier", racks=2, rack_size=2,
            sync_mode="async", fixed_compute_seconds=0.05,
            fuse_small_tensors=True, record_transmissions=True,
        )
        engine.train(6)
        assert {e.worker for e in engine.update_events} == {0, 1}
        for event in engine.update_events:
            ups = [
                r for r in event.push_records if r.name.startswith("bucket:")
            ]
            downs = [
                r
                for r in event.pull_records
                if r.name.startswith("bucket:") and "@down" in r.name
            ]
            bcasts = [
                r
                for r in event.pull_records
                if r.name.startswith("bucket:") and "@bcast" in r.name
            ]
            assert ups and downs and len(downs) == len(bcasts)
            assert all(r.depends_on for r in ups + bcasts)
        for s in engine.traffic.steps:
            assert s.intra_rack_bytes + s.cross_rack_bytes == s.wire_bytes


class TestLossyFusedBuckets:
    def test_lossy_moves_fewer_bytes_than_exact(self):
        exact = make_engine(fuse_small_tensors=True)
        lossy = make_engine(fuse_small_tensors=True, fuse_lossy=True)
        exact.train(6)
        lossy.train(6)
        assert lossy.traffic.total_wire_bytes < exact.traffic.total_wire_bytes
        # Same framing plan: frame counts match, only payloads shrink.
        assert lossy.traffic.total_messages == exact.traffic.total_messages
        assert all(np.isfinite(l.train_loss) for l in lossy.step_logs)

    def test_lossy_error_feedback_keeps_divergence_bounded(self):
        lossy = make_engine(fuse_small_tensors=True, fuse_lossy=True)
        lossy.train(8)
        # Error feedback corrects quantization across steps: replicas stay
        # within pull-compression distance of the global model, they do
        # not drift unboundedly.
        assert lossy.model_divergence() < 1.0

    def test_lossy_buckets_carry_residual_state(self):
        lossy = make_engine(fuse_small_tensors=True, fuse_lossy=True)
        lossy.train(4)
        norms = lossy.workers[0].residual_norms()
        fused_norms = [
            value for key, value in norms.items() if key.startswith("fused-")
        ]
        assert fused_norms and any(value > 0 for value in fused_norms)

    def test_lossy_composes_with_sharded_and_async(self):
        sharded = make_engine(
            topology="sharded", num_shards=3,
            fuse_small_tensors=True, fuse_lossy=True,
        )
        sharded.train(4)
        assert all(np.isfinite(l.train_loss) for l in sharded.step_logs)
        a = make_engine(
            sync_mode="async", fixed_compute_seconds=0.05,
            fuse_small_tensors=True, fuse_lossy=True,
        )
        a.train(6)
        assert all(np.isfinite(l.train_loss) for l in a.step_logs)
