"""Unit tests for the telemetry subsystem: registry, tracer, exporters."""

import json

import pytest

from repro.telemetry import (
    NULL_REGISTRY,
    NULL_TELEMETRY,
    NULL_TRACER,
    MetricsRegistry,
    Telemetry,
    Tracer,
    series_key,
)
from repro.telemetry.export import (
    chrome_trace,
    metric_rows,
    summary_text,
    write_chrome_trace,
    write_metric_snapshots,
)
from repro.telemetry.validate import validate_chrome_trace


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("wire_bytes", {}) == "wire_bytes"

    def test_labels_sorted(self):
        key = series_key("wire_bytes", {"scheme": "3lc", "link": "cross"})
        assert key == "wire_bytes{link=cross,scheme=3lc}"


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("wire_bytes", phase="push").inc(10)
        reg.counter("wire_bytes", phase="push").inc(5)
        reg.counter("wire_bytes", phase="pull").inc(1)
        snap = reg.snapshot()
        assert snap["counters"]["wire_bytes{phase=push}"] == 15
        assert snap["counters"]["wire_bytes{phase=pull}"] == 1

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("n").inc(-1)

    def test_gauge_keeps_last(self):
        reg = MetricsRegistry()
        reg.gauge("train_loss").set(2.5)
        reg.gauge("train_loss").set(1.5)
        assert reg.snapshot()["gauges"]["train_loss"] == 1.5

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("staleness")
        for v in (0.5, 1.0, 2.0, 4.0):
            h.observe(v)
        snap = reg.snapshot()["histograms"]["staleness"]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(7.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 4.0
        assert snap["mean"] == pytest.approx(7.5 / 4)
        assert sum(snap["buckets"].values()) == 4

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("wire_bytes", phase="push").inc(10)
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
        # No-op instruments are shared singletons: no per-call allocation.
        assert reg.counter("a") is reg.counter("b")
        assert NULL_REGISTRY.snapshot()["counters"] == {}


class TestTracer:
    def test_completed_span(self):
        tr = Tracer()
        tr.span("netsim", "link:server", "layer3", 0.0, 0.5, phase="push")
        (span,) = tr.spans
        assert span.duration == 0.5
        assert span.args == {"phase": "push"}

    def test_span_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Tracer().span("g", "t", "n", 1.0, 0.5)

    def test_begin_end_stack(self):
        tr = Tracer()
        tr.begin("engine", "worker0", "step", 0.0)
        tr.begin("engine", "worker0", "compute", 0.0)
        tr.end("engine", "worker0", 0.25)
        tr.end("engine", "worker0", 1.0)
        names = [s.name for s in tr.spans]
        assert names == ["compute", "step"]
        tr.check_closed()

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().end("g", "t")

    def test_check_closed_names_open_spans(self):
        tr = Tracer()
        tr.begin("engine", "worker0", "step", 0.0)
        assert tr.open_spans() == ["engine/worker0/step"]
        with pytest.raises(RuntimeError, match="worker0/step"):
            tr.check_closed()

    def test_wall_clock_span(self):
        tr = Tracer()
        with tr.wall("bench", "main", "work"):
            sum(range(100))
        (span,) = tr.spans
        assert span.duration >= 0.0

    def test_busy_seconds_groups_by_track(self):
        tr = Tracer()
        tr.span("sim", "link:a", "x", 0.0, 1.0)
        tr.span("sim", "link:a", "y", 2.0, 2.5)
        tr.span("sim", "link:b", "z", 0.0, 0.25)
        busy = tr.busy_seconds()
        assert busy[("sim", "link:a")] == pytest.approx(1.5)
        assert busy[("sim", "link:b")] == pytest.approx(0.25)

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.span("g", "t", "n", 0.0, 1.0)
        tr.begin("g", "t", "n")
        tr.end("g", "t")
        assert tr.spans == []
        tr.check_closed()
        assert NULL_TRACER.spans == []


class TestChromeExport:
    def _tracer(self):
        tr = Tracer()
        tr.span("netsim", "link:server", "layer0", 0.0, 0.5, phase="push")
        tr.span("netsim", "compute", "backward", 0.0, 1.0)
        return tr

    def test_trace_structure(self):
        data = chrome_trace([("run", self._tracer())])
        events = data["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {m["name"] for m in metas} == {"process_name", "thread_name"}
        assert len(spans) == 2
        # Seconds scale to microseconds; tracks get distinct tids.
        by_name = {e["name"]: e for e in spans}
        assert by_name["layer0"]["dur"] == pytest.approx(0.5e6)
        assert by_name["layer0"]["args"] == {"phase": "push"}
        assert by_name["layer0"]["tid"] != by_name["backward"]["tid"]

    def test_export_rejects_unclosed_spans(self):
        tr = self._tracer()
        tr.begin("netsim", "compute", "dangling", 5.0)
        with pytest.raises(RuntimeError, match="dangling"):
            chrome_trace([("run", tr)])

    def test_written_file_validates(self, tmp_path):
        path = tmp_path / "out" / "trace.json"
        count = write_chrome_trace(path, [("run", self._tracer())])
        data = json.loads(path.read_text())
        assert count == len(data["traceEvents"])
        assert validate_chrome_trace(data) == []

    def test_accepts_bare_tracer_and_telemetry(self):
        tel = Telemetry()
        tel.tracer.span("engine", "worker0", "compute", 0.0, 1.0)
        assert chrome_trace(tel)["traceEvents"]
        assert chrome_trace(self._tracer())["traceEvents"]


class TestMetricSnapshots:
    def test_rows_include_steps_and_final(self, tmp_path):
        tel = Telemetry()
        tel.registry.counter("wire_bytes", phase="push").inc(100)
        tel.snapshot_step(step=0)
        tel.registry.counter("wire_bytes", phase="push").inc(50)
        tel.snapshot_step(step=1)
        path = tmp_path / "metrics.jsonl"
        count = write_metric_snapshots(path, [("run", tel)])
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert count == len(rows) == 3  # two steps + final rollup
        assert rows[0]["step"] == 0
        assert rows[0]["metrics"]["counters"]["wire_bytes{phase=push}"] == 100
        assert rows[1]["metrics"]["counters"]["wire_bytes{phase=push}"] == 150
        assert rows[2]["final"] is True

    def test_metric_rows_label_sessions(self):
        tel = Telemetry()
        tel.snapshot_step(step=0)
        rows = metric_rows([("my run", tel)])
        assert all(r["session"] == "my run" for r in rows)


class TestValidator:
    def test_rejects_missing_keys(self):
        errors = validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        assert errors

    def test_rejects_unknown_phase(self):
        event = {"name": "x", "ph": "?", "pid": 1, "tid": 1}
        assert validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_negative_duration(self):
        event = {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": -1}
        assert validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_unbalanced_begin_end(self):
        begin = {"name": "x", "ph": "B", "pid": 1, "tid": 1, "ts": 0}
        assert validate_chrome_trace({"traceEvents": [begin]})


class TestTelemetrySession:
    def test_summary_shape(self):
        tel = Telemetry()
        tel.registry.counter("wire_bytes", phase="push").inc(10)
        tel.registry.gauge("train_loss").set(2.0)
        tel.registry.histogram("staleness").observe(1.0)
        tel.tracer.span("engine", "worker0", "compute", 0.0, 1.0)
        tel.tracer.span("engine", "worker0", "compress", 1.0, 1.5)
        summary = tel.summary()
        assert summary["counters"]["wire_bytes{phase=push}"] == 10
        assert summary["gauges"]["train_loss"] == 2.0
        assert summary["histograms"]["staleness"]["count"] == 1
        assert summary["spans"]["engine/worker0"] == {
            "count": 2,
            "busy_seconds": pytest.approx(1.5),
        }
        assert json.dumps(summary)  # JSON-ready for results_io

    def test_summary_renders_as_text(self):
        tel = Telemetry()
        tel.registry.counter("messages", phase="push").inc(3)
        tel.tracer.span("engine", "server", "apply", 0.0, 0.5)
        text = summary_text(tel.summary(), title="Run rollup")
        assert "Run rollup" in text
        assert "messages{phase=push}" in text

    def test_null_telemetry_is_disabled(self):
        assert not NULL_TELEMETRY.enabled
        NULL_TELEMETRY.registry.counter("x").inc(1)
        NULL_TELEMETRY.snapshot_step(step=0)
        assert NULL_TELEMETRY.step_snapshots == []
        assert NULL_TELEMETRY.summary()["counters"] == {}
