"""Analysis-layer tests: attribution reconciliation across the topology ×
sync-mode matrix, trace diffing with fault localization, and the live
exposition endpoints.

The acceptance invariant: attribution is an exact partition of each
step window, so bucket sums equal the simulated step time to 1e-6 on
every topology (single / sharded / ring / hier) under every sync mode
(bsp / async / ssp)."""

import json
import threading
import urllib.request

import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed.faults import FaultSpec, UplinkFlap
from repro.exchange import EngineConfig, ExchangeEngine
from repro.harness.config import FAST_CONFIG
from repro.harness.runner import ExperimentRunner
from repro.netsim import (
    EventDrivenSimulator,
    NetworkSimulator,
    link_model_for,
    updates_from_bsp_steps,
)
from repro.network.bandwidth import link
from repro.network.timing import StepTimeModel
from repro.nn import CosineDecay, build_resnet
from repro.nn.stats import profile_backward
from repro.telemetry import Telemetry, Tracer
from repro.telemetry.analysis import (
    attribute_group,
    attribute_trace,
    bottleneck_report,
    diff_report,
    diff_text,
    prometheus_text,
    report_text,
    spans_from_chrome,
    spans_from_tracer,
    MetricsServer,
)
from repro.telemetry.export import chrome_trace

TIME_MODEL = StepTimeModel(
    overlap=0.0, per_message_overhead=25e-6, compute_scale=0.05, codec_scale=0.5
)


def train_engine(topology="single", sync_mode="bsp", steps=4, fault=None, **overrides):
    config = dict(
        num_workers=2,
        batch_size=8,
        shard_size=32,
        seed=0,
        topology=topology,
        sync_mode=sync_mode,
        record_transmissions=True,
        fixed_compute_seconds=0.05,
    )
    if topology == "hier":
        config.update(num_workers=4, racks=2, rack_size=2)
    if topology == "sharded":
        config.update(num_shards=2)
    if sync_mode == "ssp":
        config.update(staleness=1)
    if fault is not None:
        config.update(fault=fault)
    config.update(overrides)
    engine = ExchangeEngine(
        lambda: build_resnet(8, base_width=4, seed=1),
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, steps),
        EngineConfig(**config),
    )
    engine.train(steps)
    return engine


@pytest.fixture(scope="module")
def timeline():
    model = build_resnet(8, base_width=4, seed=1)
    dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
    return profile_backward(model, *dataset.train_shard(0, 8))


def _link_model(topology):
    return link_model_for(
        topology,
        link("100Mbps"),
        num_shards=2,
        num_workers=2,
        racks=2,
        rack_size=2,
        cross_bw_fraction=0.1,
    )


def _trace_bsp(engine, timeline, topology, *, vectorized=True, fault=False):
    tracer = Tracer()
    sim = NetworkSimulator(
        timeline,
        _link_model(topology),
        TIME_MODEL,
        overlap=True,
        vectorized=vectorized,
        tracer=tracer,
        trace_group="sim",
    )
    run = sim.simulate_run(engine.transmissions)
    return tracer, run


class TestAttributionReconciles:
    """Bucket sums == simulated step time to 1e-6, full matrix."""

    @pytest.mark.parametrize("topology", ["single", "sharded", "ring", "hier"])
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_bsp_step_windows(self, topology, vectorized, timeline):
        engine = train_engine(topology)
        tracer, run = _trace_bsp(
            engine, timeline, topology, vectorized=vectorized
        )
        attribution = attribute_group(spans_from_tracer(tracer), "sim")
        assert len(attribution.steps) == len(run.steps)
        for window, st in zip(attribution.steps, run.steps):
            assert window.step == st.step
            assert window.total_seconds == pytest.approx(
                st.step_seconds, abs=1e-6
            )
            assert window.reconciliation_error <= 1e-6
            assert sum(window.buckets.values()) == pytest.approx(
                st.step_seconds, abs=1e-6
            )
        assert attribution.total_seconds == pytest.approx(
            sum(st.step_seconds for st in run.steps), abs=1e-6
        )

    @pytest.mark.parametrize(
        "topology,sync_mode",
        [
            ("single", "async"),
            ("single", "ssp"),
            ("sharded", "async"),
            ("sharded", "ssp"),
            ("ring", "async"),
            ("ring", "ssp"),
            ("hier", "async"),
            ("hier", "ssp"),
        ],
    )
    def test_event_driven_single_window(self, topology, sync_mode, timeline):
        if topology == "ring":
            # The ring is a synchronous collective: its event-mode
            # coverage rides the staleness-0 fold of a BSP recording
            # (the same bridge the event core's parity anchor walks).
            engine = train_engine(topology, steps=4)
            events = updates_from_bsp_steps(engine.transmissions, 2)
        else:
            engine = train_engine(topology, sync_mode=sync_mode, steps=4)
            events = engine.update_events
        tracer = Tracer()
        sim = EventDrivenSimulator(
            timeline,
            _link_model(topology),
            TIME_MODEL,
            staleness=1 if sync_mode == "ssp" else None,
            overlap=True,
            tracer=tracer,
            trace_group="sim",
        )
        exchange = sim.simulate(events)
        attribution = attribute_group(spans_from_tracer(tracer), "sim")
        # Per-update streams carry no step args: one window spans the run.
        assert len(attribution.steps) == 1
        window = attribution.steps[0]
        assert window.reconciliation_error <= 1e-6
        assert window.end == pytest.approx(exchange.total_seconds, abs=1e-6)

    def test_hier_buckets_name_both_tiers(self, timeline):
        engine = train_engine("hier")
        tracer, _ = _trace_bsp(engine, timeline, "hier")
        buckets = attribute_group(spans_from_tracer(tracer), "sim").buckets
        assert buckets.get("compute", 0.0) > 0.0
        assert buckets.get("codec", 0.0) > 0.0
        assert any(key.startswith("wire:rack") for key in buckets)
        assert any(key.startswith("wire:cross:rack") for key in buckets)

    def test_chrome_round_trip_attributes_identically(self, timeline):
        engine = train_engine("hier")
        tracer, _ = _trace_bsp(engine, timeline, "hier")
        live = attribute_group(spans_from_tracer(tracer), "sim")
        exported = chrome_trace(tracer)
        loaded = attribute_group(spans_from_chrome(exported), "sim")
        # Chrome rides microsecond floats: boundary coincidences can
        # split into hairline slices, so compare values (not key sets)
        # inside the reconciliation budget.
        for bucket in live.buckets.keys() | loaded.buckets.keys():
            assert loaded.buckets.get(bucket, 0.0) == pytest.approx(
                live.buckets.get(bucket, 0.0), abs=1e-6
            )


class TestBottleneckReport:
    def test_schema_and_ranking(self, timeline):
        engine = train_engine("hier")
        tracer, _ = _trace_bsp(engine, timeline, "hier")
        report = bottleneck_report(
            attribute_trace(spans_from_tracer(tracer)), top=3
        )
        assert report["schema"] == "repro.bottleneck-report/v1"
        (session,) = report["sessions"]
        assert session["group"] == "sim"
        ranked = [entry["seconds"] for entry in session["bottlenecks"]]
        assert ranked == sorted(ranked, reverse=True)
        assert session["reconciliation"]["max_abs_error"] <= 1e-6
        assert 0.0 < sum(e["share"] for e in session["bottlenecks"]) <= 1.0 + 1e-9
        assert session["per_rack"]  # hier traces carry rack rollups
        text = report_text(report, top=3)
        assert "sim" in text and "Bucket" in text


class TestTraceDiff:
    def test_flapped_run_names_the_link(self, timeline):
        clean = train_engine("hier", steps=6)
        flapped = train_engine(
            "hier",
            steps=6,
            fault=FaultSpec(
                flaps=(
                    UplinkFlap(
                        rack=1, step=2, down_steps=1, rejoin_delay_seconds=0.05
                    ),
                )
            ),
        )
        traces = {}
        for label, engine in (("clean", clean), ("flapped", flapped)):
            tracer, _ = _trace_bsp(engine, timeline, "hier")
            traces[label] = chrome_trace(tracer)
        report = diff_report(traces["clean"], traces["flapped"])
        assert report["schema"] == "repro.trace-diff/v1"
        (group,) = report["groups"]
        assert group["new_outage_routes"] == ["cross:rack1"]
        flagged = [
            entry
            for entry in group["regressions"]
            if entry.get("outage_routes")
        ]
        assert flagged, "no regression window carries the outage"
        assert all(
            entry["outage_routes"] == ["cross:rack1"] for entry in flagged
        )
        # The rejoin step regressed and the diff localizes it.
        worst = max(
            (e for e in group["regressions"] if "delta_seconds" in e),
            key=lambda e: e["delta_seconds"],
        )
        assert worst["delta_seconds"] > 0.0
        assert worst["outage_routes"] == ["cross:rack1"]
        text = diff_text(report)
        assert "cross:rack1" in text

    def test_identical_traces_diff_clean(self, timeline):
        engine = train_engine("single")
        tracer, _ = _trace_bsp(engine, timeline, "single")
        data = chrome_trace(tracer)
        report = diff_report(data, data)
        (group,) = report["groups"]
        assert group["delta_seconds"] == 0.0
        assert group["new_outage_routes"] == []
        assert all("delta_seconds" not in e for e in group["regressions"])


def _parse_prometheus(body: str) -> dict[str, float]:
    """Minimal exposition-format parser: sample name+labels -> value."""
    samples = {}
    for line in body.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        assert name, f"malformed sample line: {line!r}"
        samples[name] = float(value)
    return samples


class TestExposition:
    def test_prometheus_text_renders_all_kinds(self):
        tel = Telemetry()
        tel.registry.counter("wire_bytes", phase="push", scheme="3lc").inc(64)
        tel.registry.gauge("loss").set(1.25)
        tel.registry.histogram("staleness").observe(1)
        tel.registry.histogram("staleness").observe(3)
        body = prometheus_text([("run A", tel)])
        samples = _parse_prometheus(body)
        assert (
            samples['wire_bytes{phase="push",scheme="3lc",session="run A"}']
            == 64.0
        )
        assert samples['loss{session="run A"}'] == 1.25
        assert samples['staleness_count{session="run A"}'] == 2.0
        assert samples['staleness_sum{session="run A"}'] == 4.0
        assert samples['staleness_bucket{le="+Inf",session="run A"}'] == 2.0
        # Cumulative bucket counts never decrease.
        buckets = [
            value
            for key, value in samples.items()
            if key.startswith("staleness_bucket")
        ]
        assert buckets == sorted(buckets)
        assert "# TYPE wire_bytes counter" in body
        assert "# TYPE staleness histogram" in body

    def test_metrics_endpoint_during_live_sweep(self):
        config = FAST_CONFIG.scaled(standard_steps=4, telemetry=True)
        runner = ExperimentRunner(config)
        done = threading.Event()

        def sweep():
            try:
                runner.run("3LC (s=1.00)")
            finally:
                done.set()

        with MetricsServer(lambda: list(runner.telemetry_sessions)) as server:
            thread = threading.Thread(target=sweep, daemon=True)
            thread.start()
            # Poll /metrics while the sweep runs; the feed must parse at
            # every point, and carry series once the run registers.
            saw_series = False
            while not done.is_set() or not saw_series:
                body = (
                    urllib.request.urlopen(f"{server.url}/metrics", timeout=10)
                    .read()
                    .decode()
                )
                samples = _parse_prometheus(body)
                if samples:
                    saw_series = True
                if done.is_set() and saw_series:
                    break
            thread.join(timeout=30)
            assert done.is_set()
            body = (
                urllib.request.urlopen(f"{server.url}/metrics", timeout=10)
                .read()
                .decode()
            )
            samples = _parse_prometheus(body)
            assert any(key.startswith("wire_bytes") for key in samples)
            stream = urllib.request.urlopen(f"{server.url}/stream", timeout=10)
            first = json.loads(stream.readline())
            stream.close()
            assert first["session"].startswith("3LC")
            assert "metrics" in first

    def test_unknown_path_is_404(self):
        with MetricsServer(lambda: []) as server:
            try:
                urllib.request.urlopen(f"{server.url}/nope", timeout=10)
            except urllib.error.HTTPError as error:
                assert error.code == 404
            else:  # pragma: no cover - fail loudly
                pytest.fail("expected 404")
