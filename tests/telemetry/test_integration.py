"""Integration tests: spans vs simulator accounting, engine metrics,
and the harness-level telemetry round trip.

The load-bearing invariant (the PR's acceptance check): every span a
simulator emits on a ``link:<route>`` track uses exactly the duration it
charged to that link's busy accounting, so per-link span sums equal
``sum(step.link_utilization[route] * step.step_seconds)`` to float
precision — well inside 1e-6.
"""

import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.exchange import EngineConfig, ExchangeEngine
from repro.harness.config import FAST_CONFIG
from repro.harness.runner import ExperimentRunner
from repro.netsim import (
    EventDrivenSimulator,
    NetworkSimulator,
    link_model_for,
    single_server_links,
)
from repro.network.bandwidth import link
from repro.network.timing import StepTimeModel
from repro.nn import CosineDecay, build_resnet
from repro.nn.stats import profile_backward
from repro.telemetry import Telemetry, Tracer
from repro.telemetry.export import chrome_trace
from repro.telemetry.validate import validate_chrome_trace

TIME_MODEL = StepTimeModel(
    overlap=0.0, per_message_overhead=25e-6, compute_scale=0.05, codec_scale=0.5
)


def _train_hier(steps=4):
    dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
    engine = ExchangeEngine(
        lambda: build_resnet(8, base_width=4, seed=1),
        dataset,
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, steps),
        EngineConfig(
            num_workers=4,
            batch_size=8,
            shard_size=64,
            seed=0,
            topology="hier",
            racks=2,
            rack_size=2,
            record_transmissions=True,
        ),
    )
    engine.train(steps)
    timeline = profile_backward(
        build_resnet(8, base_width=4, seed=1), *dataset.train_shard(0, 8)
    )
    return engine, timeline


def _link_span_busy(tracer, group):
    """Per-route span-duration totals for one trace group."""
    return {
        track.removeprefix("link:"): busy
        for (g, track), busy in tracer.busy_seconds().items()
        if g == group and track.startswith("link:")
    }


def _utilization_busy(run):
    """The simulator's own accounting: per-route busy seconds."""
    busy = {}
    for st in run.steps:
        for route, fraction in st.link_utilization.items():
            busy[route] = busy.get(route, 0.0) + fraction * st.step_seconds
    return busy


class TestSpanUtilizationParity:
    """Per-link busy spans must sum to the simulator's link_utilization."""

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_hier_bsp(self, vectorized):
        engine, timeline = _train_hier()
        lm = link_model_for(
            "hier", link("100Mbps"), racks=2, rack_size=2, cross_bw_fraction=0.1
        )
        tracer = Tracer()
        sim = NetworkSimulator(
            timeline,
            lm,
            TIME_MODEL,
            overlap=True,
            vectorized=vectorized,
            tracer=tracer,
            trace_group="sim",
        )
        run = sim.simulate_run(engine.transmissions)
        expected = _utilization_busy(run)
        actual = _link_span_busy(tracer, "sim")
        assert set(actual) == {r for r, b in expected.items() if b > 0}
        for route, busy in expected.items():
            assert actual.get(route, 0.0) == pytest.approx(busy, abs=1e-6)
        # Both tiers of the hierarchical link model carried traffic.
        assert any(r.startswith("rack") for r in actual)
        assert any(r.startswith("cross:rack") for r in expected)

    def test_scalar_vector_span_parity(self):
        engine, timeline = _train_hier()
        lm = link_model_for(
            "hier", link("100Mbps"), racks=2, rack_size=2, cross_bw_fraction=0.1
        )
        busy = {}
        for vectorized in (True, False):
            tracer = Tracer()
            NetworkSimulator(
                timeline,
                lm,
                TIME_MODEL,
                overlap=True,
                vectorized=vectorized,
                tracer=tracer,
                trace_group="sim",
            ).simulate_run(engine.transmissions)
            busy[vectorized] = _link_span_busy(tracer, "sim")
        assert busy[True].keys() == busy[False].keys()
        for route in busy[True]:
            assert busy[True][route] == pytest.approx(
                busy[False][route], abs=1e-9
            )

    def test_event_driven_async(self):
        dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
        engine = ExchangeEngine(
            lambda: build_resnet(8, base_width=4, seed=1),
            dataset,
            make_compressor("3LC (s=1.00)", seed=0),
            CosineDecay(0.05, 6),
            EngineConfig(
                num_workers=2, batch_size=8, shard_size=64, seed=0,
                sync_mode="async", record_transmissions=True,
            ),
        )
        engine.train(6)
        timeline = profile_backward(
            build_resnet(8, base_width=4, seed=1), *dataset.train_shard(0, 8)
        )
        tracer = Tracer()
        sim = EventDrivenSimulator(
            timeline,
            single_server_links(link("100Mbps")),
            TIME_MODEL,
            overlap=True,
            tracer=tracer,
            trace_group="sim",
        )
        exchange = sim.simulate(engine.update_events)
        actual = _link_span_busy(tracer, "sim")
        for route, fraction in exchange.link_utilization.items():
            expected = fraction * exchange.total_seconds
            if expected > 0:
                assert actual[route] == pytest.approx(expected, abs=1e-6)

    def test_trace_offset_makes_steps_contiguous(self):
        engine, timeline = _train_hier()
        lm = link_model_for(
            "hier", link("100Mbps"), racks=2, rack_size=2, cross_bw_fraction=0.1
        )
        tracer = Tracer()
        sim = NetworkSimulator(
            timeline, lm, TIME_MODEL, overlap=True, tracer=tracer,
            trace_group="sim",
        )
        run = sim.simulate_run(engine.transmissions)
        # Later steps' spans start past the earlier steps' total time.
        step_starts = {}
        for span in tracer.spans:
            step = span.args.get("step")
            if step is not None:
                step_starts.setdefault(step, span.start)
        steps = sorted(step_starts)
        assert steps == [st.step for st in run.steps]
        for earlier, later in zip(steps, steps[1:]):
            assert step_starts[later] >= step_starts[earlier]


class TestEngineTelemetry:
    def test_bsp_hier_metrics_and_spans(self):
        tel = Telemetry()
        dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
        engine = ExchangeEngine(
            lambda: build_resnet(8, base_width=4, seed=1),
            dataset,
            make_compressor("3LC (s=1.00)", seed=0),
            CosineDecay(0.05, 3),
            EngineConfig(
                num_workers=4, batch_size=8, shard_size=64, seed=0,
                topology="hier", racks=2, rack_size=2,
            ),
            telemetry=tel,
        )
        engine.train(3)
        summary = tel.summary()
        counters = summary["counters"]
        assert counters["messages{phase=push}"] > 0
        assert any(key.startswith("wire_bytes{") for key in counters)
        assert any("link=cross" in key for key in counters)
        assert summary["gauges"]["train_loss"] > 0
        # One snapshot per step, and a worker track per rack-ring worker.
        assert len(tel.step_snapshots) == 3
        assert any(t.startswith("engine/worker") for t in summary["spans"])
        data = chrome_trace(tel)
        assert validate_chrome_trace(data) == []

    def test_async_updates_traced(self):
        tel = Telemetry()
        dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
        engine = ExchangeEngine(
            lambda: build_resnet(8, base_width=4, seed=1),
            dataset,
            make_compressor("3LC (s=1.00)", seed=0),
            CosineDecay(0.05, 4),
            EngineConfig(
                num_workers=2, batch_size=8, shard_size=64, seed=0,
                sync_mode="async",
            ),
            telemetry=tel,
        )
        engine.train(4)
        summary = tel.summary()
        assert summary["histograms"]["staleness"]["count"] > 0
        assert any(t.startswith("engine/worker") for t in summary["spans"])
        assert validate_chrome_trace(chrome_trace(tel)) == []

    def test_disabled_by_default(self):
        dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
        engine = ExchangeEngine(
            lambda: build_resnet(8, base_width=4, seed=1),
            dataset,
            make_compressor("3LC (s=1.00)", seed=0),
            CosineDecay(0.05, 2),
            EngineConfig(num_workers=2, batch_size=8, shard_size=64, seed=0),
        )
        engine.train(2)
        assert not engine.telemetry.enabled
        assert engine.telemetry.summary()["counters"] == {}


class TestRunnerTelemetry:
    @pytest.fixture(scope="class")
    def traced_runner(self):
        config = FAST_CONFIG.scaled(
            standard_steps=4, eval_points=1, telemetry=True, sim_overlap=True,
        )
        runner = ExperimentRunner(config)
        runner.run("3LC (s=1.00)", 1.0)
        return runner

    def test_summary_on_result(self, traced_runner):
        result = traced_runner.run("3LC (s=1.00)", 1.0)
        assert result.telemetry_summary is not None
        assert result.telemetry_summary["counters"]
        assert result.telemetry_summary["spans"]

    def test_sessions_recorded_and_exportable(self, traced_runner):
        assert len(traced_runner.telemetry_sessions) == 1
        label, tel = traced_runner.telemetry_sessions[0]
        assert "3LC" in label
        data = chrome_trace(traced_runner.telemetry_sessions)
        assert validate_chrome_trace(data) == []
        # Both the engine's and the simulators' groups made it in.
        processes = {
            event["args"]["name"]
            for event in data["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert any("engine" in p for p in processes)
        assert any("sim:" in p for p in processes)

    def test_roundtrip_through_results_io(self, traced_runner):
        from repro.harness.results_io import (
            run_result_from_dict,
            run_result_to_dict,
        )

        result = traced_runner.run("3LC (s=1.00)", 1.0)
        restored = run_result_from_dict(run_result_to_dict(result))
        assert restored.telemetry_summary == result.telemetry_summary

    def test_telemetry_off_leaves_result_bare(self):
        config = FAST_CONFIG.scaled(standard_steps=4, eval_points=1)
        runner = ExperimentRunner(config)
        result = runner.run("32-bit float", 1.0)
        assert result.telemetry_summary is None
        assert runner.telemetry_sessions == []
