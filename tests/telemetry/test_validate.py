"""Edge cases for the trace schema gate: empty traces, per-track
discipline under ``--strict``, and malformed files through the CLI."""

import json

from repro.telemetry import Tracer
from repro.telemetry.export import chrome_trace
from repro.telemetry.validate import main, validate_chrome_trace


def _x(pid, tid, name, ts, dur):
    return {"name": name, "ph": "X", "pid": pid, "tid": tid, "ts": ts, "dur": dur}


class TestEmptyTrace:
    def test_empty_event_list_is_flagged(self):
        errors = validate_chrome_trace({"traceEvents": []})
        assert errors == ["'traceEvents' is empty"]

    def test_empty_tracer_exports_an_empty_trace(self):
        data = chrome_trace(Tracer())
        assert validate_chrome_trace(data) == ["'traceEvents' is empty"]

    def test_missing_trace_events_key(self):
        assert validate_chrome_trace({}) == ["missing or non-list 'traceEvents'"]
        assert validate_chrome_trace([]) == [
            "top level must be an object, got list"
        ]


class TestStrictOverlap:
    def test_overlapping_spans_on_one_track(self):
        data = {
            "traceEvents": [
                _x(1, 1, "a", 0.0, 10.0),
                _x(1, 1, "b", 5.0, 10.0),
            ]
        }
        # Default mode tolerates overlap (shared tracks interleave
        # legitimately); strict flags it.
        assert validate_chrome_trace(data) == []
        errors = validate_chrome_trace(data, strict=True)
        assert len(errors) == 1
        assert "overlapping spans" in errors[0]
        assert "'a'" in errors[0] and "'b'" in errors[0]

    def test_touching_spans_are_not_overlapping(self):
        data = {
            "traceEvents": [
                _x(1, 1, "a", 0.0, 5.0),
                _x(1, 1, "b", 5.0, 5.0),
            ]
        }
        assert validate_chrome_trace(data, strict=True) == []

    def test_overlap_on_different_tracks_is_fine(self):
        data = {
            "traceEvents": [
                _x(1, 1, "a", 0.0, 10.0),
                _x(1, 2, "b", 5.0, 10.0),
            ]
        }
        assert validate_chrome_trace(data, strict=True) == []


class TestStrictOrdering:
    def test_out_of_order_timestamps_on_one_track(self):
        data = {
            "traceEvents": [
                _x(1, 1, "late", 100.0, 1.0),
                _x(1, 1, "early", 50.0, 1.0),
            ]
        }
        assert validate_chrome_trace(data) == []
        errors = validate_chrome_trace(data, strict=True)
        assert len(errors) == 1
        assert "out-of-order" in errors[0]

    def test_interleaved_tracks_keep_their_own_order(self):
        data = {
            "traceEvents": [
                _x(1, 1, "a0", 0.0, 1.0),
                _x(1, 2, "b0", 100.0, 1.0),
                _x(1, 1, "a1", 2.0, 1.0),
                _x(1, 2, "b1", 102.0, 1.0),
            ]
        }
        assert validate_chrome_trace(data, strict=True) == []


class TestMalformedInput:
    def test_malformed_json_fixture_fails_the_cli(self, tmp_path, capsys):
        bad = tmp_path / "broken_trace.json"
        bad.write_text('{"traceEvents": [ {"name": "oops" ')
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "unreadable trace" in out

    def test_valid_and_malformed_mix_still_fails(self, tmp_path, capsys):
        tracer = Tracer()
        tracer.span("g", "t", "s", 0.0, 1.0)
        good = tmp_path / "good.json"
        good.write_text(json.dumps(chrome_trace(tracer)))
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        assert main([str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "ok" in out and "unreadable trace" in out

    def test_strict_flag_via_cli(self, tmp_path, capsys):
        data = {
            "traceEvents": [
                _x(1, 1, "a", 0.0, 10.0),
                _x(1, 1, "b", 5.0, 10.0),
            ]
        }
        path = tmp_path / "overlap.json"
        path.write_text(json.dumps(data))
        assert main([str(path)]) == 0
        capsys.readouterr()
        assert main(["--strict", str(path)]) == 1
        assert "overlapping spans" in capsys.readouterr().out

    def test_event_missing_keys(self):
        data = {"traceEvents": [{"ph": "X", "ts": 0.0}]}
        errors = validate_chrome_trace(data)
        assert len(errors) == 1
        assert "missing keys" in errors[0]
