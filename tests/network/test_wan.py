"""Tests for the geo-distributed WAN topology model."""

import pytest

from repro.network.wan import Region, WanTopology


def three_regions() -> WanTopology:
    return WanTopology(
        [
            Region("us", workers=4, intra_bps=1e9),
            Region("eu", workers=4, intra_bps=1e9),
            Region("ap", workers=2, intra_bps=1e9),
        ],
        inter_bps={("us", "eu"): 100e6, ("us", "ap"): 20e6},
        default_inter_bps=10e6,
    )


class TestRegion:
    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            Region("x", workers=-1, intra_bps=1e9)
        with pytest.raises(ValueError, match="intra_bps"):
            Region("x", workers=1, intra_bps=0.0)


class TestTopology:
    def test_bandwidth_lookup_symmetric(self):
        topo = three_regions()
        assert topo.bandwidth_between("us", "eu") == 100e6
        assert topo.bandwidth_between("eu", "us") == 100e6

    def test_default_applies_to_unlisted_pairs(self):
        topo = three_regions()
        assert topo.bandwidth_between("eu", "ap") == 10e6

    def test_intra_region_bandwidth(self):
        topo = three_regions()
        assert topo.bandwidth_between("us", "us") == 1e9

    def test_total_workers(self):
        assert three_regions().total_workers == 10

    def test_unknown_region_rejected(self):
        topo = three_regions()
        with pytest.raises(KeyError):
            topo.bandwidth_between("us", "mars")

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            WanTopology([])
        with pytest.raises(ValueError, match="duplicate"):
            WanTopology(
                [Region("a", 1, 1e9), Region("a", 1, 1e9)]
            )
        with pytest.raises(KeyError, match="unknown region"):
            WanTopology([Region("a", 1, 1e9)], inter_bps={("a", "b"): 1e6})
        with pytest.raises(ValueError, match="not inter-region"):
            WanTopology(
                [Region("a", 1, 1e9), Region("b", 1, 1e9)],
                inter_bps={("a", "a"): 1e6},
            )
        with pytest.raises(ValueError, match="must be > 0"):
            WanTopology(
                [Region("a", 1, 1e9), Region("b", 1, 1e9)],
                inter_bps={("a", "b"): 0.0},
            )


class TestStepCost:
    def test_bottleneck_is_slowest_region(self):
        topo = three_regions()
        # Server in us: eu crosses at 100 Mbps, ap at 20 Mbps. ap has half
        # the workers but a 5x thinner pipe -> ap binds.
        cost = topo.step_cost("us", push_bytes_per_worker=1e6, pull_bytes_per_worker=1e6)
        assert cost.bottleneck_region == "ap"
        # 2 workers x 2 MB x 8 bits at 20 Mbps = 1.6 s.
        assert cost.seconds == pytest.approx(8 * 2e6 * 2 / 20e6)

    def test_inter_region_bytes_exclude_server_region(self):
        topo = three_regions()
        cost = topo.step_cost("us", 100.0, 50.0)
        # eu: 4 workers x 150B; ap: 2 x 150B. us workers stay local.
        assert cost.inter_region_bytes == 4 * 150 + 2 * 150

    def test_compression_shrinks_step_time_proportionally(self):
        topo = three_regions()
        full = topo.step_cost("us", 1e6, 1e6)
        compressed = topo.step_cost("us", 1e4, 1e4)  # 100x smaller
        assert full.seconds / compressed.seconds == pytest.approx(100.0)

    def test_zero_worker_region_never_binds(self):
        topo = WanTopology(
            [
                Region("hub", workers=0, intra_bps=1e9),
                Region("edge", workers=3, intra_bps=1e9),
            ],
            default_inter_bps=1e6,
        )
        cost = topo.step_cost("hub", 1000, 1000)
        assert cost.bottleneck_region == "edge"

    def test_validation(self):
        topo = three_regions()
        with pytest.raises(KeyError):
            topo.step_cost("mars", 1, 1)
        with pytest.raises(ValueError, match=">= 0"):
            topo.step_cost("us", -1, 0)


class TestPlacement:
    def test_best_placement_minimizes_barrier_time(self):
        topo = three_regions()
        best = topo.best_server_placement(1e5, 1e5)
        candidates = {
            name: topo.step_cost(name, 1e5, 1e5).seconds for name in topo.regions
        }
        assert best.seconds == min(candidates.values())

    def test_placement_follows_worker_mass(self):
        # Heavily skewed worker distribution pulls the server to the big
        # region: its traffic then stays intra-region.
        topo = WanTopology(
            [
                Region("big", workers=9, intra_bps=1e9),
                Region("small", workers=1, intra_bps=1e9),
            ],
            default_inter_bps=10e6,
        )
        assert topo.best_server_placement(1e5, 1e5).server_region == "big"

    def test_as_link_feeds_time_model(self):
        topo = three_regions()
        link = topo.as_link("us", "ap")
        assert link.bits_per_second == 20e6
        assert link.transfer_seconds(2.5e6) == pytest.approx(1.0)
