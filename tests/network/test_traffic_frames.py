"""TrafficMeter frame accounting across fusion modes and topologies.

The per-frame protocol overhead (``StepTimeModel.per_message_overhead``)
is only honest if the meter's frame counts are: every wire message — one
per surviving tensor per direction, one per fused bucket, one per (node,
hop) chunk on the ring — must appear exactly once.
"""

import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.exchange import EngineConfig, ExchangeEngine
from repro.network.bandwidth import link
from repro.network.timing import StepTimeModel
from repro.nn import CosineDecay, build_mlp, build_resnet

STEPS = 3


def train(topology: str, *, fuse: bool = False, workers: int = 2, model="resnet"):
    if model == "resnet":
        factory = lambda: build_resnet(8, base_width=4, seed=1)
    else:
        # Deep-narrow MLP: everything except the input projection is below
        # the bypass threshold, the regime fusion exists for.
        factory = lambda: build_mlp(3 * 12 * 12, (14,) * 6, num_classes=10, seed=3)
    engine = ExchangeEngine(
        factory,
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, STEPS),
        EngineConfig(
            num_workers=workers,
            batch_size=8,
            shard_size=32,
            seed=0,
            topology=topology,
            fuse_small_tensors=fuse,
        ),
    )
    engine.train(STEPS)
    return engine


class TestSingleTopologyFrames:
    def test_per_tensor_counts(self):
        engine = train("single")
        tensors = len(engine.service.params)
        for step in engine.traffic.steps:
            # One frame per tensor per worker push; shared pulls are
            # compressed once but transmitted to every worker (3LC never
            # defers, so every tensor transmits every step).
            assert step.push_messages == tensors * 2
            assert step.pull_messages == tensors
            assert step.frames == tensors * 2 + tensors * step.pull_fanout

    def test_fused_run_pays_fewer_frames_for_same_bytes_order(self):
        unfused = train("single", model="mlp")
        fused = train("single", fuse=True, model="mlp")
        assert fused.traffic.total_messages < unfused.traffic.total_messages
        # Fusion only merges frames; it must not inflate traffic.
        assert fused.traffic.total_wire_bytes <= unfused.traffic.total_wire_bytes

    def test_fused_run_pays_less_frame_overhead(self):
        unfused = train("single", model="mlp")
        fused = train("single", fuse=True, model="mlp")
        model = StepTimeModel(per_message_overhead=1e-4)
        overhead_unfused = sum(
            model.overhead_seconds(s) for s in unfused.traffic.steps
        )
        overhead_fused = sum(model.overhead_seconds(s) for s in fused.traffic.steps)
        assert overhead_fused < overhead_unfused
        # And the per-frame overhead shows up in modelled step time: on an
        # effectively infinite link the byte difference vanishes but the
        # frame difference remains.
        spec = link("1Gbps")
        t_unfused = sum(model.step_seconds(s, spec) for s in unfused.traffic.steps)
        t_fused = sum(model.step_seconds(s, spec) for s in fused.traffic.steps)
        assert t_fused < t_unfused


class TestShardedTopologyFrames:
    def test_sharding_preserves_frame_counts(self):
        # Sharding moves tensors to different NICs but neither splits nor
        # merges messages: frame counts match the single-server run.
        single = train("single")
        sharded = train("sharded")
        for a, b in zip(single.traffic.steps, sharded.traffic.steps):
            assert a.push_messages == b.push_messages
            assert a.pull_messages == b.pull_messages


class TestRingTopologyFrames:
    def test_ring_frame_count_formula(self):
        workers = 2
        engine = train("ring", workers=workers)
        tensors = len(engine.service.params)
        expected = tensors * 2 * (workers - 1) * workers
        for step in engine.traffic.steps:
            assert step.push_messages == expected
            assert step.pull_messages == 0  # no pull phase after all-gather
            assert step.frames == expected

    def test_ring_pays_more_frames_than_point_to_point(self):
        # 2 (N-1) N chunk messages per tensor versus N pushes + 1 pull:
        # the ring's fine-grained chunking is exactly what the per-frame
        # overhead should penalize.
        ring = train("ring")
        single = train("single")
        assert ring.traffic.total_messages > single.traffic.total_messages
