"""Tests for link specs, traffic metering, and the step-time model."""

import numpy as np
import pytest

from repro.network import (
    LINKS,
    LinkSpec,
    StepTimeModel,
    StepTraffic,
    TrafficMeter,
    extrapolate_training_time,
    link,
)


class TestLinkSpec:
    def test_transfer_seconds(self):
        spec = LinkSpec("test", 8e6)  # 1 MB/s
        assert spec.transfer_seconds(1_000_000) == pytest.approx(1.0)
        assert spec.transfer_seconds(0) == 0.0

    def test_paper_links_registered(self):
        assert set(LINKS) == {"10Mbps", "100Mbps", "1Gbps"}
        assert link("10Mbps").bits_per_second == 10e6

    def test_unknown_link(self):
        with pytest.raises(KeyError, match="unknown link"):
            link("56k")

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec("bad", 0)
        with pytest.raises(ValueError, match="positive finite"):
            LinkSpec("bad", -5)
        with pytest.raises(ValueError, match="positive finite"):
            LinkSpec("bad", float("inf"))
        with pytest.raises(ValueError, match="positive finite"):
            LinkSpec("bad", float("nan"))
        with pytest.raises(TypeError, match="must be a number"):
            LinkSpec("bad", "fast")
        with pytest.raises(ValueError, match="non-empty name"):
            LinkSpec("", 1e6)
        with pytest.raises(ValueError):
            LinkSpec("x", 1e6).transfer_seconds(-1)


def _step(**kw):
    defaults = dict(
        step=0,
        push_bytes=1000,
        pull_bytes_shared=500,
        pull_fanout=4,
        push_elements=4000,
        pull_elements=1000,
        model_elements=1000,
        num_workers=4,
        compute_seconds=0.1,
        codec_seconds=0.01,
    )
    defaults.update(kw)
    return StepTraffic(**defaults)


class TestStepTraffic:
    def test_wire_bytes(self):
        s = _step()
        assert s.pull_bytes_total == 2000
        assert s.wire_bytes == 3000

    def test_baseline_bytes_full_model_both_directions(self):
        s = _step()
        # 4 bytes * 1000 elements * (4 workers + 4 fanout)
        assert s.baseline_bytes == 32000

    def test_bits_per_value_uses_main_accounting(self):
        s = _step(push_bytes_main=800, push_elements_main=4000)
        assert s.push_bits_per_value() == pytest.approx(1.6)
        assert _step().push_bits_per_value() == 0.0

    def test_pull_bits_per_value(self):
        s = _step(pull_bytes_main=200, pull_elements_main=1000)
        assert s.pull_bits_per_value() == pytest.approx(1.6)


class TestTrafficMeter:
    def test_compression_ratio(self):
        meter = TrafficMeter()
        meter.record(_step())
        assert meter.compression_ratio() == pytest.approx(32000 / 3000)

    def test_bits_per_value_consistent_with_ratio(self):
        meter = TrafficMeter()
        meter.record(_step())
        meter.record(_step(step=1, push_bytes=2000))
        assert meter.average_bits_per_value() == pytest.approx(
            32.0 / meter.compression_ratio()
        )

    def test_empty_meter(self):
        meter = TrafficMeter()
        assert meter.compression_ratio() == float("inf")
        assert meter.average_bits_per_value() == 0.0
        assert meter.mean_compute_seconds() == 0.0
        assert meter.mean_codec_seconds() == 0.0
        assert meter.mean_wire_bytes() == 0.0

    def test_means(self):
        meter = TrafficMeter()
        meter.record(_step(compute_seconds=0.1, codec_seconds=0.02))
        meter.record(_step(step=1, compute_seconds=0.3, codec_seconds=0.04))
        assert meter.mean_compute_seconds() == pytest.approx(0.2)
        assert meter.mean_codec_seconds() == pytest.approx(0.03)


class TestStepTimeModel:
    def test_comm_fully_hidden_when_small(self):
        model = StepTimeModel(overlap=1.0, per_message_overhead=0.0)
        s = _step(push_bytes=10, pull_bytes_shared=1, compute_seconds=1.0)
        assert model.step_seconds(s, link("1Gbps")) == pytest.approx(1.01)

    def test_comm_dominates_on_slow_link(self):
        model = StepTimeModel(overlap=0.0, per_message_overhead=0.0)
        s = _step(compute_seconds=0.0, codec_seconds=0.0)
        expected = 8 * 3000 / 10e6
        assert model.step_seconds(s, link("10Mbps")) == pytest.approx(expected)

    def test_overlap_hides_partially(self):
        model = StepTimeModel(overlap=0.5, per_message_overhead=0.0)
        s = _step(compute_seconds=1.0, codec_seconds=0.0,
                  push_bytes=100_000_000, pull_bytes_shared=0)
        comm = 8 * 100_000_000 / 1e9  # 0.8 s > hidden 0.5 s
        assert model.step_seconds(s, link("1Gbps")) == pytest.approx(
            1.0 + comm - 0.5
        )

    def test_hardware_scales(self):
        model = StepTimeModel(
            overlap=0.0, per_message_overhead=0.0, compute_scale=0.1, codec_scale=0.5
        )
        s = _step(push_bytes=0, pull_bytes_shared=0,
                  compute_seconds=1.0, codec_seconds=0.2)
        assert model.step_seconds(s, link("1Gbps")) == pytest.approx(0.1 + 0.1)

    def test_monotone_in_bandwidth(self):
        model = StepTimeModel()
        s = _step()
        times = [
            model.step_seconds(s, link(n)) for n in ("10Mbps", "100Mbps", "1Gbps")
        ]
        assert times == sorted(times, reverse=True)

    def test_totals(self):
        model = StepTimeModel()
        meter = TrafficMeter()
        meter.record(_step())
        meter.record(_step(step=1))
        spec = link("10Mbps")
        assert model.total_seconds(meter, spec) == pytest.approx(
            2 * model.mean_step_seconds(meter, spec)
        )

    def test_overhead_charged_per_frame(self):
        model = StepTimeModel(overlap=0.0, per_message_overhead=1e-3)
        few = _step(push_messages=5, pull_messages=5)
        many = _step(push_messages=50, pull_messages=5)
        spec = link("1Gbps")
        # Each counted pull message physically crosses the wire once per
        # fan-out subscriber (default fanout in _step is 4).
        assert few.frames == 5 + 5 * 4
        assert model.overhead_seconds(many) == pytest.approx(0.070)
        assert model.step_seconds(many, spec) - model.step_seconds(
            few, spec
        ) == pytest.approx(45e-3)
        # Legacy records without frame counts pay no overhead.
        assert model.overhead_seconds(_step()) == 0.0

    def test_with_overlap_installs_measured_fraction(self):
        model = StepTimeModel(overlap=0.9, per_message_overhead=0.0)
        measured = model.with_overlap(0.4)
        assert measured.overlap == 0.4
        assert measured.compute_scale == model.compute_scale
        s = _step(compute_seconds=1.0, codec_seconds=0.0,
                  push_bytes=100_000_000, pull_bytes_shared=0)
        assert measured.step_seconds(s, link("1Gbps")) > model.step_seconds(
            s, link("1Gbps")
        )
        with pytest.raises(ValueError):
            model.with_overlap(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepTimeModel(overlap=1.5)
        with pytest.raises(ValueError):
            StepTimeModel(per_message_overhead=-1)
        with pytest.raises(ValueError):
            StepTimeModel(per_message_overhead=float("nan"))
        with pytest.raises(ValueError):
            StepTimeModel(compute_scale=0)
        with pytest.raises(ValueError):
            StepTimeModel(codec_scale=-1)


class TestExtrapolation:
    def test_paper_formula(self):
        # t_full=100 min at s_full=0.2 s/step; target link s_short=2 s/step.
        assert extrapolate_training_time(100.0, 0.2, 2.0) == pytest.approx(1000.0)

    def test_identity_when_same_speed(self):
        assert extrapolate_training_time(50.0, 0.5, 0.5) == 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            extrapolate_training_time(-1, 1, 1)
        with pytest.raises(ValueError):
            extrapolate_training_time(1, 0, 1)

    def test_matches_step_model_for_uniform_steps(self):
        """On uniform per-step traffic the paper's extrapolation and our
        direct model agree exactly."""
        model = StepTimeModel()
        meter = TrafficMeter()
        for i in range(10):
            meter.record(_step(step=i))
        fast, slow = link("1Gbps"), link("10Mbps")
        t_full = model.total_seconds(meter, fast)
        s_full = model.mean_step_seconds(meter, fast)
        s_short = model.mean_step_seconds(meter, slow)
        predicted = extrapolate_training_time(t_full, s_full, s_short)
        assert predicted == pytest.approx(model.total_seconds(meter, slow), rel=1e-9)
