"""End-to-end training integration for the §6 related-work schemes.

The contract tests prove each codec round-trips; these prove each scheme
actually *trains* on the full cluster path — push compression, server
aggregation, shared (or per-worker) pull compression, local model updates
— reducing loss and saving traffic, with its cross-step state (momentum
correction, warmup, threshold decay, controller state) exercised over
many steps.
"""

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed import Cluster, ClusterConfig
from repro.nn import CosineDecay, build_resnet

NEW_SCHEMES = (
    "QSGD (2-bit)",
    "QSGD (4-bit)",
    "DGC (0.10%)",
    "Gaia",
    "sufficient factors (rank 1)",
    "sufficient factors (rank 4)",
    "3LC (adaptive, 0.5 bits)",
    "2 local steps + 3LC (s=1.00)",
    "4 local steps",
    "8 local steps",
)

STEPS = 25


def train(scheme_name: str):
    cluster = Cluster(
        lambda: build_resnet(8, base_width=4, seed=7),
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor(scheme_name, seed=0),
        CosineDecay(0.05, STEPS),
        ClusterConfig(num_workers=2, batch_size=8, shard_size=64, seed=0),
    )
    losses = []
    for _ in range(STEPS):
        losses.append(cluster.train_step().train_loss)
    return cluster, losses


@pytest.mark.parametrize("scheme_name", NEW_SCHEMES, ids=lambda s: s.replace(" ", "_"))
def test_scheme_trains_end_to_end(scheme_name):
    cluster, losses = train(scheme_name)
    # Loss goes down: late-window mean clearly below the first steps'.
    early = float(np.mean(losses[:5]))
    late = float(np.mean(losses[-5:]))
    assert late < early, (scheme_name, early, late)
    # Every lossy/deferring scheme transmits fewer bytes than raw float32.
    assert cluster.traffic.compression_ratio() > 1.5, scheme_name
    # The model is still evaluable and finite.
    final = cluster.evaluate(test_size=200)
    assert np.isfinite(final.test_loss)
    assert 0.0 <= final.test_accuracy <= 1.0


def test_adaptive_controller_state_survives_cluster_run():
    cluster, _ = train("3LC (adaptive, 0.5 bits)")
    # Every non-bypassed push context carries controller history.
    worker = cluster.workers[0]
    adjusted = [
        ctx
        for name, ctx in worker.push_contexts.items()
        if name not in worker.bypassed and hasattr(ctx, "history")
    ]
    assert adjusted, "no adaptive contexts found on the worker"
    assert all(len(ctx.history) == STEPS for ctx in adjusted)


def test_dgc_pull_contexts_degrade_to_plain_topk():
    cluster, _ = train("DGC (0.10%)")
    pulls = [
        ctx
        for name, ctx in cluster.server.pull_contexts.items()
        if name not in cluster.server.bypassed
    ]
    assert pulls
    assert all(ctx.momentum == 0.0 for ctx in pulls)
    pushes = [
        ctx
        for name, ctx in cluster.workers[0].push_contexts.items()
        if name not in cluster.workers[0].bypassed
    ]
    assert all(ctx.momentum == pytest.approx(0.9) for ctx in pushes)
