"""Unit tests for Worker and ParameterServer in isolation."""

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.data import Augmenter, DatasetSpec, ShardBatcher, SyntheticImageDataset
from repro.distributed import ParameterServer, Worker
from repro.nn import ConstantLR, MomentumSGD, build_mlp
from repro.utils.seeding import derive_rng


def make_worker(scheme_name="3LC (s=1.00)", worker_id=0, threshold=64):
    dataset = SyntheticImageDataset(DatasetSpec(image_size=8, seed=0))
    images, labels = dataset.train_shard(worker_id, 32)
    model = build_mlp(3 * 8 * 8, (32,), num_classes=10, seed=4)
    return Worker(
        worker_id,
        model,
        ShardBatcher(images, labels, 8, derive_rng(0, "b", worker_id)),
        Augmenter(derive_rng(0, "a", worker_id), pad=1),
        make_compressor(scheme_name, seed=0),
        small_tensor_threshold=threshold,
    )


def make_server(scheme_name="3LC (s=1.00)", num_workers=2, threshold=64):
    model = build_mlp(3 * 8 * 8, (32,), num_classes=10, seed=4)
    return ParameterServer(
        model.parameters(),
        MomentumSGD(0.9, 1e-4),
        ConstantLR(0.05),
        make_compressor(scheme_name, seed=0),
        num_workers,
        small_tensor_threshold=threshold,
    )


class TestWorker:
    def test_train_step_produces_all_tensors(self):
        worker = make_worker()
        batch = worker.train_step()
        assert set(batch.messages) == set(worker.parameter_names())
        assert batch.compute_seconds > 0
        assert batch.compress_seconds >= 0
        assert np.isfinite(batch.loss)

    def test_small_tensors_use_bypass(self):
        worker = make_worker(threshold=64)
        # MLP biases (<= 32 elements) bypass; weight matrices do not.
        assert any(name.endswith("/bias") for name in worker.bypassed)
        assert not any(name.endswith("/weight") for name in worker.bypassed)

    def test_apply_pull_updates_local_model(self):
        worker = make_worker()
        name = worker.parameter_names()[0]
        before = worker.model.state_dict()[name].copy()
        delta = np.ones_like(before)
        worker.apply_pull({name: delta})
        np.testing.assert_allclose(
            worker.model.state_dict()[name], before + 1.0, rtol=1e-6
        )

    def test_residual_norms_reported(self):
        worker = make_worker()
        worker.train_step()
        norms = worker.residual_norms()
        assert set(norms) == set(worker.parameter_names())
        # 3LC push contexts accumulate residuals on compressed tensors.
        assert any(v > 0 for k, v in norms.items() if k not in worker.bypassed)

    def test_missing_gradient_detected(self, monkeypatch):
        worker = make_worker()
        # Sabotage the backward pass so no gradients are produced.
        monkeypatch.setattr(worker.model, "backward", lambda grad: grad)
        with pytest.raises(RuntimeError, match="missing gradient"):
            worker.train_step()


class TestParameterServer:
    def test_step_count_advances(self):
        server = make_server(num_workers=1)
        worker = make_worker()
        batch = worker.train_step()
        assert server.global_step == 0
        server.step([batch.messages])
        assert server.global_step == 1

    def test_wrong_worker_count_rejected(self):
        server = make_server(num_workers=2)
        worker = make_worker()
        batch = worker.train_step()
        # More pushes than workers, or none at all, is a protocol error;
        # fewer is legal (backup-worker barriers drop pushes).
        with pytest.raises(ValueError, match="pushes"):
            server.step([batch.messages] * 3)
        with pytest.raises(ValueError, match="pushes"):
            server.step([])
        with pytest.raises(ValueError, match="divisor"):
            server.step([batch.messages], divisor=0)

    def test_pull_messages_cover_all_tensors(self):
        server = make_server(num_workers=1)
        worker = make_worker()
        pull = server.step([worker.train_step().messages])
        assert set(pull.messages) == set(server.params)
        assert pull.compress_seconds >= 0
        assert pull.decompress_seconds >= 0

    def test_state_dict_is_a_copy(self):
        server = make_server()
        state = server.state_dict()
        name = next(iter(state))
        state[name][...] = 123.0
        assert not np.allclose(server.params[name].data, 123.0)

    def test_deferred_tensors_leave_model_unchanged(self):
        server = make_server("2 local steps", num_workers=1)
        worker = make_worker("2 local steps")
        before = server.state_dict()
        # First local step: everything deferred (period 2).
        server.step([worker.train_step().messages])
        mid = server.state_dict()
        for name in before:
            np.testing.assert_array_equal(before[name], mid[name])
        # Second local step transmits and updates.
        server.step([worker.train_step().messages])
        after = server.state_dict()
        assert any(not np.array_equal(mid[k], after[k]) for k in after)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_workers"):
            make_server(num_workers=0)


class TestPushPullSymmetry:
    def test_worker_and_server_agree_on_bypass_set(self):
        worker = make_worker(threshold=64)
        server = make_server(threshold=64)
        assert worker.bypassed == server.bypassed
