"""Fault specs and error-feedback checkpointing.

The fault-injection layer's correctness rests on two contracts tested
here in isolation: a :class:`FaultSpec` is a validated, hashable value
object (it rides inside the sweep-replay fingerprint), and a worker's
error-feedback state round-trips bit-exactly through
``snapshot_state``/``restore_state`` — the property crash recovery
leans on.
"""

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.compression.base import restore_contexts, snapshot_contexts
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.data.augment import Augmenter
from repro.data.batcher import ShardBatcher
from repro.distributed.faults import FaultSpec, UplinkFlap, WorkerCrash
from repro.distributed.worker import Worker
from repro.nn import build_resnet


class TestFaultSpecValidation:
    def test_empty_spec(self):
        spec = FaultSpec()
        assert spec.empty
        assert spec.crash_at(0, 0) is None
        assert spec.flap_at(0, 0) is None

    def test_lookups(self):
        crash = WorkerCrash(worker=1, step=3, down_steps=2)
        flap = UplinkFlap(rack=0, step=5)
        spec = FaultSpec(crashes=(crash,), flaps=(flap,))
        assert not spec.empty
        assert spec.crash_at(1, 3) is crash
        assert spec.crash_at(1, 4) is None
        assert spec.crash_at(0, 3) is None
        assert spec.flap_at(0, 5) is flap
        assert spec.flap_at(1, 5) is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"worker": -1, "step": 0},
            {"worker": 0, "step": -1},
            {"worker": 0, "step": 0, "down_steps": 0},
        ],
    )
    def test_crash_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            WorkerCrash(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rack": -1, "step": 0},
            {"rack": 0, "step": -1},
            {"rack": 0, "step": 0, "down_steps": 0},
            {"rack": 0, "step": 0, "rejoin_delay_seconds": -0.5},
        ],
    )
    def test_flap_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            UplinkFlap(**kwargs)

    def test_duplicate_events_rejected(self):
        crash = WorkerCrash(worker=1, step=3)
        with pytest.raises(ValueError, match="duplicate"):
            FaultSpec(crashes=(crash, WorkerCrash(worker=1, step=3, down_steps=2)))
        flap = UplinkFlap(rack=0, step=2)
        with pytest.raises(ValueError, match="duplicate"):
            FaultSpec(flaps=(flap, UplinkFlap(rack=0, step=2, down_steps=3)))

    def test_negative_max_restarts_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(max_restarts=-1)

    def test_hashable_for_fingerprints(self):
        a = FaultSpec(crashes=(WorkerCrash(worker=0, step=1),))
        b = FaultSpec(crashes=(WorkerCrash(worker=0, step=1),))
        assert a == b and hash(a) == hash(b)
        c = FaultSpec(crashes=(WorkerCrash(worker=0, step=2),))
        assert a != c


def make_worker(worker_id: int = 0) -> Worker:
    dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
    images, labels = dataset.train_shard(worker_id, 32)
    return Worker(
        worker_id,
        build_resnet(8, base_width=4, seed=3),
        ShardBatcher(
            images, labels, batch_size=8,
            rng=np.random.default_rng(worker_id),
        ),
        Augmenter(np.random.default_rng(worker_id + 100), pad=2),
        make_compressor("3LC (s=1.00)", seed=0),
    )


class TestCheckpointRoundTrip:
    def test_snapshot_perturb_restore_bit_exact(self):
        """Residuals restored from a checkpoint are bit-identical."""
        worker = make_worker()
        for _ in range(3):
            worker.train_step()
        snapshot = worker.snapshot_state()
        norms_before = worker.residual_norms()
        assert any(norm > 0 for norm in norms_before.values()), (
            "training should have left residual mass behind"
        )
        # Perturb: more training shifts every error buffer.
        for _ in range(2):
            worker.train_step()
        assert worker.residual_norms() != norms_before
        worker.restore_state(snapshot)
        assert worker.residual_norms() == norms_before
        for name, context in worker.push_contexts.items():
            state = context.state_dict()
            # Bypass (float32) contexts carry no residual; lossy ones must
            # match the checkpoint bit for bit.
            if "residual" in snapshot["push"][name]:
                np.testing.assert_array_equal(
                    state["residual"], snapshot["push"][name]["residual"]
                )

    def test_snapshot_is_isolated_from_live_state(self):
        """Mutating the live contexts must not corrupt the snapshot."""
        worker = make_worker()
        worker.train_step()
        snapshot = worker.snapshot_state()
        frozen = {
            name: state["residual"].copy()
            for name, state in snapshot["push"].items()
            if "residual" in state
        }
        assert frozen, "expected at least one lossy context"
        worker.train_step()
        for name, residual in frozen.items():
            np.testing.assert_array_equal(
                snapshot["push"][name]["residual"], residual
            )

    def test_restore_rejects_key_mismatch(self):
        worker = make_worker()
        snapshot = worker.snapshot_state()
        extra = dict(snapshot["push"])
        extra["no/such/tensor"] = next(iter(snapshot["push"].values()))
        with pytest.raises(ValueError, match="no/such/tensor"):
            restore_contexts(worker.push_contexts, extra)
        missing = dict(snapshot["push"])
        dropped = next(iter(missing))
        del missing[dropped]
        with pytest.raises(ValueError, match=dropped.replace("/", "/")):
            restore_contexts(worker.push_contexts, missing)

    def test_restore_rejects_shape_mismatch(self):
        worker = make_worker()
        snapshot = snapshot_contexts(worker.push_contexts)
        name = next(n for n, s in snapshot.items() if "residual" in s)
        bad = dict(snapshot)
        bad[name] = dict(bad[name], residual=np.zeros((1, 1), dtype=np.float32))
        with pytest.raises(ValueError):
            restore_contexts(worker.push_contexts, bad)
