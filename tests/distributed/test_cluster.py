"""Integration tests for the parameter-server training simulator."""

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed import Cluster, ClusterConfig
from repro.nn import ConstantLR, CosineDecay, build_mlp, build_resnet


def tiny_dataset():
    return SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))


def tiny_factory():
    return lambda: build_resnet(8, base_width=4, seed=7)


def tiny_config(**overrides):
    defaults = dict(num_workers=2, batch_size=8, shard_size=32, seed=0)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def make_cluster(scheme_name="32-bit float", steps_for_schedule=10, **cfg):
    return Cluster(
        tiny_factory(),
        tiny_dataset(),
        make_compressor(scheme_name, seed=0),
        CosineDecay(0.05, steps_for_schedule),
        tiny_config(**cfg),
    )


class TestClusterMechanics:
    def test_step_advances_and_logs(self):
        cluster = make_cluster()
        log = cluster.train_step()
        assert cluster.global_step == 1
        assert log.step == 0
        assert np.isfinite(log.train_loss)
        assert log.learning_rate == pytest.approx(0.05)

    def test_traffic_recorded_per_step(self):
        cluster = make_cluster()
        cluster.train(3)
        assert len(cluster.traffic.steps) == 3
        first = cluster.traffic.steps[0]
        assert first.push_bytes > 0
        assert first.pull_bytes_shared > 0
        assert first.pull_fanout == 2
        assert first.model_elements == sum(
            p.size for p in tiny_factory()().parameters()
        )

    def test_evaluate_returns_finite_metrics(self):
        cluster = make_cluster()
        cluster.train(2)
        result = cluster.evaluate(test_size=100)
        assert 0.0 <= result.test_accuracy <= 1.0
        assert np.isfinite(result.test_loss)
        assert result.step == 2

    def test_eval_every(self):
        cluster = make_cluster()
        evals = cluster.train(4, eval_every=2, test_size=50)
        assert [e.step for e in evals] == [2, 4]

    def test_replicas_start_identical(self):
        cluster = make_cluster()
        states = [w.model.state_dict() for w in cluster.workers]
        for name in states[0]:
            np.testing.assert_array_equal(states[0][name], states[1][name])

    def test_baseline_keeps_replicas_exactly_synced(self):
        cluster = make_cluster("32-bit float")
        cluster.train(3)
        assert cluster.model_divergence() < 1e-5

    def test_lossy_pulls_cause_bounded_divergence(self):
        cluster = make_cluster("3LC (s=1.00)")
        cluster.train(5)
        divergence = cluster.model_divergence()
        assert divergence > 0
        # Error feedback keeps drift around/below the weight scale.
        global_norm = float(
            np.sqrt(
                sum(np.sum(v**2) for v in cluster.server.state_dict().values())
            )
        )
        assert divergence < global_norm

    def test_workers_share_pull_messages(self):
        """Both workers must apply identical pull deltas (shared compression,
        paper Figure 2b): their replicas stay identical to each other even
        though they drift from the global model."""
        cluster = make_cluster("3LC (s=1.50)")
        cluster.train(4)
        a = cluster.workers[0].model.state_dict()
        b = cluster.workers[1].model.state_dict()
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_small_tensors_bypass_compression(self):
        cluster = make_cluster("3LC (s=1.00)")
        bn_names = [n for n in cluster.server.params if "/bn" in n or "gamma" in n]
        assert bn_names
        assert all(n in cluster.server.bypassed for n in bn_names)
        # Large conv tensors must NOT bypass.
        big = [
            n
            for n, p in cluster.server.params.items()
            if p.size >= cluster.config.small_tensor_threshold
        ]
        assert big
        assert all(n not in cluster.server.bypassed for n in big)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_workers=0)
        with pytest.raises(ValueError):
            ClusterConfig(batch_size=0)
        with pytest.raises(ValueError):
            ClusterConfig(shard_size=4, batch_size=8)


class TestLocalStepsIntegration:
    def test_half_the_steps_transmit(self):
        cluster = make_cluster("2 local steps")
        cluster.train(6)
        wire = [s.wire_bytes for s in cluster.traffic.steps]
        # Odd global steps transmit, even ones are silent.
        assert wire[0] == 0 and wire[2] == 0 and wire[4] == 0
        assert wire[1] > 0 and wire[3] > 0 and wire[5] > 0

    def test_compression_ratio_near_two(self):
        cluster = make_cluster("2 local steps")
        cluster.train(6)
        # Slightly below 2.0: frame headers are charged on transmit steps.
        assert cluster.traffic.compression_ratio() == pytest.approx(2.0, rel=0.05)

    def test_model_still_updates(self):
        cluster = make_cluster("2 local steps")
        before = cluster.server.state_dict()
        cluster.train(2)
        after = cluster.server.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)


class TestGradientAggregation:
    def test_server_averages_worker_gradients(self):
        """With lossless compression, the server update must equal momentum
        SGD on the mean of per-worker gradients."""
        from repro.nn import MomentumSGD

        cluster = make_cluster("32-bit float")
        # Capture gradients by running worker steps manually.
        batches = [w.train_step() for w in cluster.workers]
        grads = {}
        for name in cluster.server.params:
            per_worker = [
                cluster.server.scheme.decompress(b.messages[name].message)
                if name not in cluster.server.bypassed
                else b.messages[name].reconstruction
                for b in batches
            ]
            grads[name] = np.mean(per_worker, axis=0)
        before = cluster.server.state_dict()
        cluster.server.step([b.messages for b in batches])
        after = cluster.server.state_dict()

        reference = MomentumSGD(
            cluster.config.momentum, cluster.config.weight_decay
        )
        for name, param in cluster.server.params.items():
            expected = before[name].copy()
            grad = grads[name]
            if param.weight_decay:
                grad = grad + cluster.config.weight_decay * before[name]
            expected -= 0.05 * grad  # first step: slot == grad, lr == 0.05
            np.testing.assert_allclose(after[name], expected, atol=1e-5)


class TestTrainingProgress:
    def test_loss_decreases_with_baseline(self):
        cluster = make_cluster("32-bit float", steps_for_schedule=30)
        cluster.train(30)
        losses = [log.train_loss for log in cluster.step_logs]
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    @pytest.mark.parametrize(
        "scheme", ["3LC (s=1.00)", "MQE 1-bit int", "5% sparsification"]
    )
    def test_compressed_training_still_learns(self, scheme):
        cluster = make_cluster(scheme, steps_for_schedule=30)
        cluster.train(30)
        losses = [log.train_loss for log in cluster.step_logs]
        assert np.mean(losses[-5:]) < np.mean(losses[:5])
