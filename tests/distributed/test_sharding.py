"""Tests for the sharded (multi-server) parameter service."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression import make_compressor
from repro.distributed.server import ParameterServer
from repro.distributed.sharding import (
    ShardedParameterService,
    partition_parameters,
)
from repro.nn import ConstantLR, MomentumSGD
from repro.nn.parameter import Parameter


class TestPartition:
    def test_every_tensor_placed_exactly_once(self):
        sizes = {f"t{i}": (i + 1) * 10 for i in range(7)}
        shards = partition_parameters(sizes, 3)
        placed = [name for shard in shards for name in shard]
        assert sorted(placed) == sorted(sizes)

    def test_balanced_within_one_largest_tensor(self):
        sizes = {f"t{i}": s for i, s in enumerate([100, 90, 50, 40, 30, 20, 10])}
        shards = partition_parameters(sizes, 2)
        loads = [sum(sizes[n] for n in shard) for shard in shards]
        assert abs(loads[0] - loads[1]) <= max(sizes.values())

    def test_more_shards_than_tensors(self):
        shards = partition_parameters({"a": 5}, 4)
        assert sum(len(s) for s in shards) == 1
        assert len(shards) == 4

    def test_deterministic(self):
        sizes = {"a": 10, "b": 10, "c": 10}
        assert partition_parameters(sizes, 2) == partition_parameters(sizes, 2)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_shards"):
            partition_parameters({"a": 1}, 0)
        with pytest.raises(ValueError, match="negative"):
            partition_parameters({"a": -1}, 2)

    @given(
        st.dictionaries(
            st.text(alphabet="abcdefgh", min_size=1, max_size=4),
            st.integers(0, 1000),
            max_size=12,
        ),
        st.integers(1, 5),
    )
    def test_partition_property(self, sizes, num_shards):
        shards = partition_parameters(sizes, num_shards)
        assert len(shards) == num_shards
        placed = [n for s in shards for n in s]
        assert sorted(placed) == sorted(sizes)


def _make_params(rng):
    return [
        Parameter("conv/kernel", rng.normal(size=(12, 27)).astype(np.float32)),
        Parameter("fc/weight", rng.normal(size=(27, 10)).astype(np.float32)),
        Parameter("fc/bias", np.zeros(10, dtype=np.float32), weight_decay=False),
        Parameter("head/weight", rng.normal(size=(10, 10)).astype(np.float32)),
    ]


def _make_pushes(params, scheme, workers, steps, seed=0):
    """Per-step compressed pushes with persistent per-worker contexts."""
    rng = np.random.default_rng(seed)
    contexts = {
        (w, p.name): scheme.make_context(p.data.shape, key=("push", w, p.name))
        for w in range(workers)
        for p in params
    }
    all_steps = []
    for _ in range(steps):
        step_pushes = []
        for w in range(workers):
            push = {}
            for p in params:
                grad = rng.normal(0, 0.05, size=p.data.shape).astype(np.float32)
                push[p.name] = contexts[(w, p.name)].compress(grad)
            step_pushes.append(push)
        all_steps.append(step_pushes)
    return all_steps


@pytest.mark.parametrize("scheme_name", ["32-bit float", "3LC (s=1.00)"])
@pytest.mark.parametrize("num_shards", [1, 2, 3])
def test_sharded_service_matches_single_server(scheme_name, num_shards, rng):
    """Sharding is a pure partition: the global model evolves identically
    whether one server or K hold it (every codec context is per-tensor)."""
    scheme = make_compressor(scheme_name, seed=0)
    params = _make_params(rng)
    workers = 2
    single = ParameterServer(
        params, MomentumSGD(0.9, 1e-4), ConstantLR(0.1), scheme,
        num_workers=workers, small_tensor_threshold=8,
    )
    sharded = ShardedParameterService(
        params,
        lambda: MomentumSGD(0.9, 1e-4),
        ConstantLR(0.1),
        scheme,
        num_workers=workers,
        num_shards=num_shards,
        small_tensor_threshold=8,
    )
    for step_pushes in _make_pushes(params, scheme, workers, steps=4, seed=3):
        single.step(step_pushes)
        sharded.step(step_pushes)
    a, b = single.state_dict(), sharded.state_dict()
    assert a.keys() == b.keys()
    for name in a:
        np.testing.assert_array_equal(a[name], b[name], err_msg=name)


class TestLoadSpreading:
    def test_hot_link_divided_by_sharding(self, rng):
        scheme = make_compressor("32-bit float")
        params = _make_params(rng)
        workers = 4

        def hot_link(num_shards):
            service = ShardedParameterService(
                params, lambda: MomentumSGD(0.9, 1e-4), ConstantLR(0.1), scheme,
                num_workers=workers, num_shards=num_shards,
                small_tensor_threshold=1,
            )
            pushes = _make_pushes(params, scheme, workers, steps=1)[0]
            service.step(pushes)
            return service.hot_link_bytes(pull_fanout=workers)

        one, three = hot_link(1), hot_link(3)
        # Three servers split the uplink; balance is within one tensor.
        assert three < 0.6 * one

    def test_pull_batch_covers_all_tensors(self, rng):
        scheme = make_compressor("3LC (s=1.00)")
        params = _make_params(rng)
        service = ShardedParameterService(
            params, lambda: MomentumSGD(0.9, 1e-4), ConstantLR(0.1), scheme,
            num_workers=2, num_shards=2, small_tensor_threshold=8,
        )
        pushes = _make_pushes(params, scheme, 2, steps=1)[0]
        batch = service.step(pushes)
        assert set(batch.messages) == {p.name for p in params}

    def test_shard_of_and_validation(self, rng):
        params = _make_params(rng)
        service = ShardedParameterService(
            params, lambda: MomentumSGD(0.9, 1e-4), ConstantLR(0.1),
            make_compressor("32-bit float"), num_workers=2, num_shards=2,
        )
        for p in params:
            assert 0 <= service.shard_of(p.name) < 2
        with pytest.raises(KeyError, match="unknown parameter"):
            service.shard_of("nope")
        with pytest.raises(ValueError, match="num_shards"):
            ShardedParameterService(
                params, lambda: MomentumSGD(0.9, 1e-4), ConstantLR(0.1),
                make_compressor("32-bit float"), num_workers=2, num_shards=0,
            )
