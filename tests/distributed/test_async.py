"""Tests for asynchronous / stale-synchronous training (paper §2.1)."""

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed import AsyncCluster, AsyncConfig, Cluster, ClusterConfig, StragglerSpec
from repro.nn import ConstantLR, CosineDecay, build_resnet


def make_async(staleness=None, scheme="32-bit float", updates_for_schedule=24, **cfg):
    defaults = dict(num_workers=3, batch_size=8, shard_size=32, seed=0)
    defaults.update(cfg)
    return AsyncCluster(
        lambda: build_resnet(8, base_width=4, seed=7),
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor(scheme, seed=0),
        CosineDecay(0.05, updates_for_schedule),
        AsyncConfig(staleness=staleness, **defaults),
    )


class TestAsyncMechanics:
    def test_updates_apply_one_push_at_a_time(self):
        cluster = make_async()
        before = cluster.server.state_dict()
        cluster.run_updates(1)
        after = cluster.server.state_dict()
        assert cluster.update_count == 1
        assert any(not np.array_equal(before[k], after[k]) for k in before)

    def test_fully_async_staleness_unbounded_under_stragglers(self):
        straggler = StragglerSpec(
            jitter_sigma=0.0, slowdown_probability=0.5, slowdown_factor=50.0, seed=1
        )
        cluster = make_async(staleness=None, straggler=straggler)
        # The virtual clock advances by *measured* compute seconds, so the
        # schedule is load-sensitive; run long enough that workers hit by
        # repeated 50x slowdowns fall behind regardless of timing noise.
        cluster.run_updates(60)
        assert cluster.max_staleness_observed() > 2

    def test_ssp_bounds_staleness(self):
        straggler = StragglerSpec(
            jitter_sigma=0.0, slowdown_probability=0.5, slowdown_factor=50.0, seed=1
        )
        cluster = make_async(staleness=1, straggler=straggler)
        cluster.run_updates(18)
        assert cluster.max_staleness_observed() <= 2  # staleness + 1 in flight

    def test_staleness_zero_is_lockstep(self):
        cluster = make_async(staleness=0)
        cluster.run_updates(9)
        assert cluster.max_staleness_observed() <= 1

    def test_traffic_recorded_per_update(self):
        cluster = make_async(scheme="3LC (s=1.00)")
        cluster.run_updates(4)
        assert len(cluster.traffic.steps) == 4
        assert all(s.push_bytes > 0 for s in cluster.traffic.steps)
        assert all(s.pull_bytes_shared > 0 for s in cluster.traffic.steps)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AsyncConfig(staleness=-1)
        with pytest.raises(ValueError):
            AsyncConfig(num_workers=0)


class TestAsyncLearning:
    def test_async_training_learns(self):
        cluster = make_async(scheme="3LC (s=1.00)", updates_for_schedule=60)
        cluster.run_updates(60)
        assert cluster.evaluate(test_size=200) > 0.3  # well above 10% chance

    def test_async_needs_more_updates_than_bsp(self):
        """Paper §2.1: asynchronous transmission 'generally requires more
        training steps than BSP to train a model to similar test accuracy'.
        Compare at an equal number of *gradient applications*."""
        workers, budget = 3, 36  # 36 async updates == 12 BSP steps x 3 workers
        dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))

        bsp = Cluster(
            lambda: build_resnet(8, base_width=4, seed=7),
            dataset,
            make_compressor("32-bit float", seed=0),
            CosineDecay(0.05, budget // workers),
            ClusterConfig(num_workers=workers, batch_size=8, shard_size=32, seed=0),
        )
        bsp.train(budget // workers)
        bsp_acc = bsp.evaluate(test_size=300).test_accuracy

        # Async with heavy stragglers -> very stale updates.
        straggler = StragglerSpec(
            jitter_sigma=0.0, slowdown_probability=0.6, slowdown_factor=30.0, seed=4
        )
        async_cluster = make_async(
            staleness=None, updates_for_schedule=budget, straggler=straggler
        )
        async_cluster.run_updates(budget)
        async_acc = async_cluster.evaluate(test_size=300)

        # Asynchrony should not *beat* BSP at equal update budget; allow a
        # small noise margin rather than demanding strict inferiority.
        assert async_acc <= bsp_acc + 0.05
