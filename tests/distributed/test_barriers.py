"""Tests for barrier policies and straggler modelling (paper §2.1)."""

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed import (
    BackupWorkerBarrier,
    Cluster,
    ClusterConfig,
    FullBarrier,
    StragglerSpec,
)
from repro.nn import CosineDecay, build_resnet


class TestStragglerSpec:
    def test_deterministic(self):
        spec = StragglerSpec(seed=1)
        assert spec.multiplier(2, 10) == spec.multiplier(2, 10)

    def test_varies_by_worker_and_step(self):
        spec = StragglerSpec(seed=1)
        values = {spec.multiplier(w, s) for w in range(4) for s in range(4)}
        assert len(values) > 8

    def test_slowdowns_occur_at_configured_rate(self):
        spec = StragglerSpec(
            jitter_sigma=0.0, slowdown_probability=0.25, slowdown_factor=10.0, seed=3
        )
        n = 2000
        slow = sum(spec.multiplier(0, s) > 5.0 for s in range(n))
        assert 0.2 < slow / n < 0.3

    def test_no_jitter_no_slowdown_is_identity(self):
        spec = StragglerSpec(jitter_sigma=0.0, slowdown_probability=0.0)
        assert spec.multiplier(0, 0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StragglerSpec(jitter_sigma=-1)
        with pytest.raises(ValueError):
            StragglerSpec(slowdown_probability=2)
        with pytest.raises(ValueError):
            StragglerSpec(slowdown_factor=0.5)


class TestBarrierPolicies:
    def test_full_barrier_accepts_everyone(self):
        decision = FullBarrier().decide({0: 1.0, 1: 3.0, 2: 2.0})
        assert set(decision.accepted) == {0, 1, 2}
        assert decision.dropped == ()
        assert decision.compute_seconds == 3.0

    def test_full_barrier_orders_by_arrival(self):
        decision = FullBarrier().decide({0: 3.0, 1: 1.0, 2: 2.0})
        assert decision.accepted == (1, 2, 0)

    def test_backup_barrier_drops_slowest(self):
        barrier = BackupWorkerBarrier(required=2)
        decision = barrier.decide({0: 1.0, 1: 9.0, 2: 2.0})
        assert decision.accepted == (0, 2)
        assert decision.dropped == (1,)
        # The straggler does not set the step latency.
        assert decision.compute_seconds == 2.0

    def test_backup_barrier_validation(self):
        with pytest.raises(ValueError):
            BackupWorkerBarrier(0)
        with pytest.raises(ValueError):
            BackupWorkerBarrier(3).decide({0: 1.0})

    def test_full_barrier_empty_rejected(self):
        with pytest.raises(ValueError):
            FullBarrier().decide({})


def make_cluster(**cfg_overrides):
    defaults = dict(num_workers=3, batch_size=8, shard_size=32, seed=0)
    defaults.update(cfg_overrides)
    return Cluster(
        lambda: build_resnet(8, base_width=4, seed=7),
        SyntheticImageDataset(DatasetSpec(image_size=12, seed=0)),
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, 10),
        ClusterConfig(**defaults),
    )


class TestClusterIntegration:
    def test_backup_workers_drop_pushes(self):
        straggler = StragglerSpec(
            jitter_sigma=0.0, slowdown_probability=0.5, slowdown_factor=50.0, seed=2
        )
        cluster = make_cluster(backup_workers=1, straggler=straggler)
        cluster.train(6)
        dropped = [s.dropped_pushes for s in cluster.traffic.steps]
        assert all(d == 1 for d in dropped)  # always drops exactly one

    def test_backup_workers_cut_straggler_latency(self):
        straggler = StragglerSpec(
            jitter_sigma=0.0, slowdown_probability=0.25, slowdown_factor=100.0, seed=7
        )
        bsp = make_cluster(straggler=straggler)
        backup = make_cluster(backup_workers=1, straggler=straggler)
        bsp.train(12)
        backup.train(12)
        bsp_latency = bsp.traffic.mean_compute_seconds()
        backup_latency = backup.traffic.mean_compute_seconds()
        # With 3 workers and a 25% chance of a 100x slowdown, BSP latency is
        # dominated by single stragglers; one backup worker removes them
        # (only the rarer two-straggler steps remain slow).
        assert backup_latency < bsp_latency / 2

    def test_backup_cluster_still_learns(self):
        cluster = make_cluster(backup_workers=1)
        cluster.train(10)
        losses = [log.train_loss for log in cluster.step_logs]
        assert np.mean(losses[-3:]) < np.mean(losses[:3])

    def test_bsp_accepts_all_without_straggler_spec(self):
        cluster = make_cluster()
        cluster.train(2)
        assert all(s.dropped_pushes == 0 for s in cluster.traffic.steps)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="backup_workers"):
            ClusterConfig(num_workers=2, backup_workers=2)
