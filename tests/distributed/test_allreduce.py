"""Tests for the ring all-reduce topology with per-hop compression."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression import (
    LocalStepsCompressor,
    ThreeLCCompressor,
    make_compressor,
)
from repro.distributed.allreduce import RingAllReduce, chunk_bounds


class TestChunkBounds:
    def test_even_split(self):
        assert chunk_bounds(12, 3) == [(0, 4), (4, 8), (8, 12)]

    def test_remainder_spreads_forward(self):
        assert chunk_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_elements(self):
        bounds = chunk_bounds(2, 4)
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_zero_size(self):
        assert chunk_bounds(0, 3) == [(0, 0), (0, 0), (0, 0)]

    @given(st.integers(0, 1000), st.integers(1, 16))
    def test_partition_property(self, size, parts):
        bounds = chunk_bounds(size, parts)
        assert len(bounds) == parts
        assert bounds[0][0] == 0 and bounds[-1][1] == size
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0
            assert 0 <= (a1 - a0) - (b1 - b0) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_bounds(10, 0)
        with pytest.raises(ValueError):
            chunk_bounds(-1, 2)


class TestLosslessRing:
    def test_computes_exact_mean(self, rng):
        n = 4
        tensors = [rng.normal(size=(7, 5)).astype(np.float32) for _ in range(n)]
        ring = RingAllReduce(n, (7, 5))
        result = ring.reduce(tensors)
        expected = np.mean(tensors, axis=0)
        for out in result.outputs:
            np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-6)

    def test_sum_mode(self, rng):
        n = 3
        tensors = [rng.normal(size=10).astype(np.float32) for _ in range(n)]
        result = RingAllReduce(n, (10,)).reduce(tensors, average=False)
        np.testing.assert_allclose(
            result.outputs[0], np.sum(tensors, axis=0), rtol=1e-5
        )

    def test_all_nodes_agree(self, rng):
        n = 5
        tensors = [rng.normal(size=33).astype(np.float32) for _ in range(n)]
        result = RingAllReduce(n, (33,)).reduce(tensors)
        for out in result.outputs[1:]:
            np.testing.assert_array_equal(out, result.outputs[0])

    def test_baseline_byte_formula(self, rng):
        n, size = 4, 100
        tensors = [rng.normal(size=size).astype(np.float32) for _ in range(n)]
        result = RingAllReduce(n, (size,)).reduce(tensors)
        assert result.baseline_bytes == 2 * (n - 1) * size * 4
        # Raw float32 transport: wire equals baseline exactly.
        assert result.wire_bytes == result.baseline_bytes
        assert result.compression_ratio == pytest.approx(1.0)

    def test_ring_moves_less_than_central_server(self, rng):
        # The bandwidth-optimality argument: per *link*, the ring carries
        # ~2·size/N·(N-1) bytes while a parameter server's uplink carries
        # N·size (pushes) + N·size (pulls).
        n, size = 8, 1000
        tensors = [rng.normal(size=size).astype(np.float32) for _ in range(n)]
        result = RingAllReduce(n, (size,)).reduce(tensors)
        server_link_bytes = 2 * n * size * 4
        assert result.max_link_bytes < server_link_bytes / 3

    def test_tensor_smaller_than_ring(self, rng):
        # Degenerate chunking (empty chunks) must still reduce correctly.
        n = 6
        tensors = [rng.normal(size=3).astype(np.float32) for _ in range(n)]
        result = RingAllReduce(n, (3,)).reduce(tensors)
        np.testing.assert_allclose(
            result.outputs[0], np.mean(tensors, axis=0), rtol=1e-5
        )


class TestCompressedRing:
    def test_threelc_ring_traffic_reduced(self, rng):
        n = 4
        tensors = [
            rng.normal(0, 0.01, size=1000).astype(np.float32) for _ in range(n)
        ]
        ring = RingAllReduce(n, (1000,), ThreeLCCompressor(1.0))
        result = ring.reduce(tensors)
        assert result.compression_ratio > 10

    def test_fine_grained_codec_approximates_mean(self, rng):
        # 8-bit per-hop requantization compounds only mildly.
        n = 4
        tensors = [rng.normal(size=500).astype(np.float32) for _ in range(n)]
        ring = RingAllReduce(n, (500,), make_compressor("8-bit int"))
        result = ring.reduce(tensors)
        expected = np.mean(tensors, axis=0)
        corr = np.corrcoef(result.outputs[0], expected)[0, 1]
        assert corr > 0.99

    def test_single_ternary_reduction_is_coarse(self, rng):
        # Per-hop 3-value quantization of *dense partial sums* is drastic:
        # a single reduction's output is a poor estimate of the mean. This
        # is the §3 point-to-point argument made quantitative.
        n = 4
        tensors = [rng.normal(size=500).astype(np.float32) for _ in range(n)]
        ring = RingAllReduce(n, (500,), ThreeLCCompressor(1.0))
        result = ring.reduce(tensors)
        expected = np.mean(tensors, axis=0)
        err = float(np.linalg.norm(result.outputs[0] - expected))
        assert err > float(np.linalg.norm(expected))  # worse than guessing 0

    def test_error_feedback_corrects_the_time_average(self, rng):
        # Error feedback's contract is integral, not per-call: the running
        # average of repeated reductions converges toward the true mean,
        # because every link eventually transmits what it owes. (A consumer
        # that does NOT integrate outputs — e.g. repeated standalone
        # reductions — sees no such correction; see the class docstring.)
        n = 4
        tensors = [rng.normal(size=400).astype(np.float32) for _ in range(n)]
        expected = np.mean(tensors, axis=0)
        ring = RingAllReduce(n, (400,), ThreeLCCompressor(1.0))
        acc = np.zeros(400)
        errors = []
        for k in range(1, 31):
            acc += ring.reduce(tensors).outputs[0]
            errors.append(float(np.linalg.norm(acc / k - expected)))
        assert errors[-1] < 0.3 * errors[0]

    def test_hop_compounding_worse_than_point_to_point(self, rng):
        # The §3 design argument: one lossy stage (PS push) loses less than
        # N-1 chained lossy stages (ring reduce-scatter).
        n = 6
        tensors = [rng.normal(size=600).astype(np.float32) for _ in range(n)]
        expected = np.mean(tensors, axis=0)
        ring_result = RingAllReduce(n, (600,), ThreeLCCompressor(1.0)).reduce(tensors)
        ring_err = float(np.linalg.norm(ring_result.outputs[0] - expected))

        # Point-to-point: each worker quantizes once; the server averages.
        c = ThreeLCCompressor(1.0)
        decoded = []
        for i, t in enumerate(tensors):
            res = c.make_context(t.shape, key=("push", i)).compress(t)
            decoded.append(c.decompress(res.message))
        ps_err = float(np.linalg.norm(np.mean(decoded, axis=0) - expected))
        assert ps_err < ring_err

    def test_deferring_scheme_rejected(self, rng):
        n = 3
        tensors = [rng.normal(size=30).astype(np.float32) for _ in range(n)]
        ring = RingAllReduce(n, (30,), LocalStepsCompressor(2))
        with pytest.raises(ValueError, match="deferred"):
            ring.reduce(tensors)

    @pytest.mark.parametrize("scheme", ["8-bit int", "MQE 1-bit int"])
    def test_other_codecs_run_on_ring(self, rng, scheme):
        n = 3
        tensors = [rng.normal(size=64).astype(np.float32) for _ in range(n)]
        ring = RingAllReduce(n, (64,), make_compressor(scheme))
        result = ring.reduce(tensors)
        assert result.wire_bytes < result.baseline_bytes
        assert all(out.shape == (64,) for out in result.outputs)


class TestValidation:
    def test_too_few_nodes(self):
        with pytest.raises(ValueError, match=">= 2"):
            RingAllReduce(1, (4,))

    def test_wrong_tensor_count(self, rng):
        ring = RingAllReduce(3, (4,))
        with pytest.raises(ValueError, match="expected 3"):
            ring.reduce([np.zeros(4, dtype=np.float32)] * 2)

    def test_wrong_shape(self):
        ring = RingAllReduce(2, (4,))
        with pytest.raises(ValueError, match="shape"):
            ring.reduce([np.zeros(4, dtype=np.float32), np.zeros(5, dtype=np.float32)])
