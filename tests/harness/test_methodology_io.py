"""Tests for the two-phase measurement protocol and results persistence."""

import pytest

from repro.harness import (
    FAST_CONFIG,
    ExperimentRunner,
    load_results,
    save_results,
    two_phase_estimate,
)
from repro.harness.methodology import accelerated_fraction
from repro.harness.results_io import run_result_from_dict, run_result_to_dict


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(FAST_CONFIG)


class TestAcceleratedFraction:
    def test_zre_designs_run_ten_percent(self):
        assert accelerated_fraction("3LC (s=1.75)", "10Mbps", 1000) == 0.1

    def test_no_zre_design_uses_fixed_budget(self):
        # Fixed 100-step budget at 10 Mbps: fraction shrinks as the
        # standard budget grows, unlike the ZRE designs' constant 10%.
        assert accelerated_fraction("3LC (s=1.00, no ZRE)", "10Mbps", 2000) == 0.05
        assert accelerated_fraction("32-bit float", "10Mbps", 1000) == 0.1
        assert accelerated_fraction("32-bit float", "100Mbps", 2000) == 0.5

    def test_capped_at_standard_budget(self):
        assert accelerated_fraction("8-bit int", "10Mbps", 50) == 1.0

    def test_only_slow_links(self):
        with pytest.raises(ValueError):
            accelerated_fraction("32-bit float", "1Gbps", 100)


class TestTwoPhaseEstimate:
    @pytest.mark.parametrize("scheme", ["32-bit float", "3LC (s=1.00)"])
    def test_estimate_close_to_direct(self, runner, scheme):
        """The paper's extrapolation should track the simulator's direct
        per-link computation: per-step times are near-stationary, so the
        short-run mean is representative."""
        estimate = two_phase_estimate(runner, scheme, "10Mbps")
        assert estimate.relative_error < 0.35
        assert estimate.accelerated_steps <= runner.config.standard_steps
        assert estimate.accuracy == runner.run(scheme, 1.0).final_accuracy

    def test_estimate_fields(self, runner):
        estimate = two_phase_estimate(runner, "32-bit float", "100Mbps")
        assert estimate.link_name == "100Mbps"
        assert estimate.estimated_total_seconds > 0
        assert estimate.direct_total_seconds > 0


class TestResultsIo:
    def test_dict_roundtrip(self, runner):
        result = runner.run("32-bit float", 1.0)
        restored = run_result_from_dict(run_result_to_dict(result))
        assert restored.scheme == result.scheme
        assert restored.final_accuracy == result.final_accuracy
        assert restored.loss_curve == result.loss_curve
        assert restored.mean_step_seconds == result.mean_step_seconds
        assert len(restored.traffic.steps) == len(result.traffic.steps)
        assert restored.traffic.compression_ratio() == pytest.approx(
            result.traffic.compression_ratio()
        )

    def test_file_roundtrip(self, runner, tmp_path):
        results = [runner.run("32-bit float", 1.0), runner.run("3LC (s=1.00)", 1.0)]
        path = tmp_path / "runs" / "results.json"
        save_results(results, path)
        loaded = load_results(path)
        assert [r.scheme for r in loaded] == [r.scheme for r in results]
        assert loaded[1].compression_ratio == results[1].compression_ratio

    def test_version_check(self):
        with pytest.raises(ValueError, match="format version"):
            run_result_from_dict({"format_version": 99})

    def test_telemetry_summary_roundtrip(self, runner):
        """A populated telemetry rollup survives the dict round trip."""
        from dataclasses import replace

        result = replace(
            runner.run("32-bit float", 1.0),
            telemetry_summary={
                "counters": {"wire_bytes{phase=push,scheme=f32}": 123.0},
                "gauges": {"train_loss": 2.5},
                "histograms": {},
                "spans": {"engine/worker0": {"count": 4, "busy_seconds": 0.25}},
            },
        )
        restored = run_result_from_dict(run_result_to_dict(result))
        assert restored.telemetry_summary == result.telemetry_summary

    def test_telemetry_summary_defaults_none(self, runner):
        """Runs without telemetry round-trip the field as None."""
        result = runner.run("32-bit float", 1.0)
        assert result.telemetry_summary is None
        restored = run_result_from_dict(run_result_to_dict(result))
        assert restored.telemetry_summary is None

    def test_legacy_dict_without_telemetry_loads(self, runner):
        """Archives written before the telemetry field still load."""
        data = run_result_to_dict(runner.run("32-bit float", 1.0))
        del data["telemetry_summary"]
        restored = run_result_from_dict(data)
        assert restored.telemetry_summary is None
        assert restored.scheme == "32-bit float"
