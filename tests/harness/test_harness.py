"""Harness tests: config, runner caching, tables, figures, CLI plumbing.

These run on the miniature FAST_CONFIG — correctness of plumbing, not of
paper numbers (the benchmarks cover those).
"""

import numpy as np
import pytest

from repro.harness import (
    FAST_CONFIG,
    ExperimentConfig,
    ExperimentRunner,
    figure7_curves,
    figure8_sparsity,
    figure9_compressed_size,
    figure_time_accuracy,
    table1,
    table2,
)
from repro.harness.ascii_plot import Series, render_plot
from repro.harness.tables import TABLE2_SCHEMES


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(FAST_CONFIG)


class TestExperimentConfig:
    def test_steps_for_fraction(self):
        config = ExperimentConfig(standard_steps=100)
        assert config.steps_for_fraction(1.0) == 100
        assert config.steps_for_fraction(0.25) == 25
        with pytest.raises(ValueError):
            config.steps_for_fraction(0.0)

    def test_schedule_sweeps_full_range(self):
        config = ExperimentConfig(standard_steps=100, base_lr=0.02, num_workers=4)
        sched = config.schedule(25)  # 25% budget
        assert sched(0) == pytest.approx(0.08)  # worker-scaled
        assert sched(25) == pytest.approx(config.min_lr)

    def test_scaled_override(self):
        config = FAST_CONFIG.scaled(standard_steps=48)
        assert config.standard_steps == 48
        assert config.depth == FAST_CONFIG.depth

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(standard_steps=2)

    def test_factories(self):
        config = FAST_CONFIG
        model = config.model_factory()()
        assert model.forward(
            np.zeros((1, 3, config.image_size, config.image_size), dtype=np.float32)
        ).shape == (1, config.num_classes)
        assert config.dataset().num_classes == config.num_classes


class TestExperimentRunner:
    def test_run_produces_complete_result(self, runner):
        result = runner.run("32-bit float", 1.0)
        assert result.steps == FAST_CONFIG.standard_steps
        assert 0 <= result.final_accuracy <= 1
        assert len(result.loss_curve) == result.steps
        assert result.eval_curve[-1].step == result.steps
        assert set(result.mean_step_seconds) == {"10Mbps", "100Mbps", "1Gbps"}
        assert result.compression_ratio > 0

    def test_caching_returns_same_object(self, runner):
        a = runner.run("32-bit float", 1.0)
        b = runner.run("32-bit float", 1.0)
        assert a is b

    def test_fraction_changes_steps(self, runner):
        half = runner.run("32-bit float", 0.5)
        assert half.steps == FAST_CONFIG.steps_for_fraction(0.5)

    def test_run_many_grid(self, runner):
        grid = runner.run_many(["32-bit float"], (0.5, 1.0))
        assert set(grid) == {("32-bit float", 0.5), ("32-bit float", 1.0)}

    def test_deterministic_across_runners(self):
        r1 = ExperimentRunner(FAST_CONFIG)
        r2 = ExperimentRunner(FAST_CONFIG)
        a = r1.run("3LC (s=1.00)", 0.5)
        b = r2.run("3LC (s=1.00)", 0.5)
        assert a.final_accuracy == b.final_accuracy
        assert a.compression_ratio == b.compression_ratio

    def test_slower_links_take_longer(self, runner):
        result = runner.run("32-bit float", 1.0)
        assert (
            result.total_seconds["10Mbps"]
            > result.total_seconds["100Mbps"]
            > result.total_seconds["1Gbps"]
        )


class TestSimOverlap:
    """--sim-overlap end to end: runner, table column, serialization."""

    @pytest.fixture(scope="class")
    def sim_runner(self):
        return ExperimentRunner(
            FAST_CONFIG.scaled(standard_steps=8, sim_overlap=True)
        )

    def test_runner_populates_achieved_overlap(self, sim_runner):
        result = sim_runner.run("3LC (s=1.00)", 1.0)
        assert result.achieved_overlap is not None
        assert set(result.achieved_overlap) == {"10Mbps", "100Mbps", "1Gbps"}
        assert all(0.0 <= v <= 1.0 for v in result.achieved_overlap.values())
        assert all(v > 0 for v in result.mean_step_seconds.values())

    def test_table1_gains_overlap_column(self, sim_runner):
        rows, text = table1(sim_runner, ("32-bit float", "3LC (s=1.00)"))
        assert "Ovl@10M" in text
        assert "[simulated per-layer overlap]" in text
        assert all(r.achieved_overlap is not None for r in rows)

    def test_achieved_overlap_round_trips(self, sim_runner):
        from repro.harness.results_io import (
            run_result_from_dict,
            run_result_to_dict,
        )

        result = sim_runner.run("3LC (s=1.00)", 1.0)
        restored = run_result_from_dict(run_result_to_dict(result))
        assert restored.achieved_overlap == result.achieved_overlap

    def test_analytic_runner_has_no_overlap_column(self, runner):
        rows, text = table1(runner, ("32-bit float", "3LC (s=1.00)"))
        assert "Ovl@10M" not in text
        assert all(r.achieved_overlap is None for r in rows)

    def test_analytic_achieved_overlap_is_none_and_round_trips(self, runner):
        """Regression: 'not simulated' must stay None — not 0.0, not {} —
        through the JSON archive, including documents missing the keys."""
        from repro.harness.results_io import (
            run_result_from_dict,
            run_result_to_dict,
        )

        result = runner.run("32-bit float", 1.0)
        assert result.achieved_overlap is None
        assert result.per_worker_throughput is None
        assert result.staleness_distribution is None
        assert result.link_utilization is None
        document = run_result_to_dict(result)
        assert document["achieved_overlap"] is None
        restored = run_result_from_dict(document)
        assert restored.achieved_overlap is None
        assert restored.per_worker_throughput is None
        assert restored.staleness_distribution is None
        assert restored.link_utilization is None
        # Archives written before these fields existed load as None too.
        for key in (
            "achieved_overlap",
            "per_worker_throughput",
            "staleness_distribution",
            "link_utilization",
        ):
            document.pop(key, None)
        legacy = run_result_from_dict(document)
        assert legacy.achieved_overlap is None
        assert legacy.staleness_distribution is None


class TestEventDrivenSimOverlap:
    """--sim-overlap with async/SSP: event-driven replay end to end."""

    @pytest.fixture(scope="class")
    def async_runner(self):
        return ExperimentRunner(
            FAST_CONFIG.scaled(standard_steps=8, sim_overlap=True, sync_mode="async")
        )

    def test_runner_populates_event_driven_reports(self, async_runner):
        result = async_runner.run("3LC (s=1.00)", 1.0)
        assert result.achieved_overlap is not None
        assert set(result.achieved_overlap) == {"10Mbps", "100Mbps", "1Gbps"}
        assert all(0.0 <= v <= 1.0 for v in result.achieved_overlap.values())
        assert all(v > 0 for v in result.mean_step_seconds.values())
        throughput = result.per_worker_throughput["10Mbps"]
        assert set(throughput) == set(range(FAST_CONFIG.num_workers))
        assert all(v > 0 for v in throughput.values())
        assert sum(result.staleness_distribution.values()) == result.steps
        utilization = result.link_utilization["10Mbps"]
        assert set(utilization) == {"server"}
        assert 0.0 < utilization["server"] <= 1.0

    def test_table1_reports_measured_overlap_for_async(self, async_runner):
        rows, text = table1(async_runner, ("32-bit float", "3LC (s=1.00)"))
        assert "Ovl@10M" in text
        assert "[simulated event-driven updates]" in text
        assert all(r.achieved_overlap is not None for r in rows)

    def test_event_reports_round_trip(self, async_runner):
        from repro.harness.results_io import (
            run_result_from_dict,
            run_result_to_dict,
        )

        result = async_runner.run("3LC (s=1.00)", 1.0)
        restored = run_result_from_dict(run_result_to_dict(result))
        assert restored.achieved_overlap == result.achieved_overlap
        assert restored.per_worker_throughput == result.per_worker_throughput
        assert restored.staleness_distribution == result.staleness_distribution
        assert restored.link_utilization == result.link_utilization

    def test_ssp_runner_simulates_with_staleness_bound(self):
        runner = ExperimentRunner(
            FAST_CONFIG.scaled(
                standard_steps=6, sim_overlap=True, sync_mode="ssp", staleness=1
            )
        )
        result = runner.run("3LC (s=1.00)", 1.0)
        assert result.achieved_overlap is not None
        assert sum(result.staleness_distribution.values()) == result.steps

    def test_ssp_config_requires_staleness(self):
        with pytest.raises(ValueError, match="staleness"):
            FAST_CONFIG.scaled(sync_mode="ssp")

    def test_cli_simulated_async_sweep_drops_deferring_schemes(self, capsys):
        from repro.harness.cli import main

        assert (
            main(
                [
                    "fig7", "--fast", "--steps", "4",
                    "--sync-mode", "async", "--sim-overlap",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 local steps" not in out
        assert "3LC (s=1.00)" in out

    def test_cli_plain_async_sweep_keeps_deferring_schemes(self, capsys):
        # Without --sim-overlap no event stream is recorded; deferring
        # schemes train fine under async and keep their rows.
        from repro.harness.cli import main

        assert (
            main(["fig7", "--fast", "--steps", "4", "--sync-mode", "async"]) == 0
        )
        out = capsys.readouterr().out
        assert "2 local steps" in out
        assert "3LC (s=1.00)" in out


class TestHierarchicalHarness:
    """--topology hier end to end: runner, Table 1 split, CLI validation."""

    @pytest.fixture(scope="class")
    def hier_runner(self):
        return ExperimentRunner(
            FAST_CONFIG.scaled(
                num_workers=4,
                topology="hier",
                racks=2,
                rack_size=2,
                standard_steps=6,
                sim_overlap=True,
            )
        )

    def test_runner_reports_per_tier_utilization(self, hier_runner):
        result = hier_runner.run("3LC (s=1.00)", 1.0)
        assert result.achieved_overlap is not None
        assert result.link_utilization is not None
        utilization = result.link_utilization["10Mbps"]
        assert set(utilization) == {
            "rack0", "rack1", "cross:rack0", "cross:rack1",
        }
        # The 10x-scarcer core is the busy tier.
        assert utilization["cross:rack0"] > utilization["rack0"]
        meter = result.traffic
        assert meter.total_cross_rack_bytes > 0
        assert (
            meter.total_intra_rack_bytes + meter.total_cross_rack_bytes
            == meter.total_wire_bytes
        )

    def test_table1_gains_traffic_split_columns(self, hier_runner):
        rows, text = table1(hier_runner, ("32-bit float", "3LC (s=1.00)"))
        assert "Intra(MB/step)" in text and "Cross(MB/step)" in text
        assert "Ovl@10M" in text
        for row in rows:
            assert row.intra_rack_mb is not None and row.intra_rack_mb > 0
            assert row.cross_rack_mb is not None and row.cross_rack_mb > 0
        # Compression shrinks the scarce tier.
        assert rows[1].cross_rack_mb < rows[0].cross_rack_mb

    def test_flat_table1_has_no_split_columns(self, runner):
        _, text = table1(runner, ("32-bit float", "3LC (s=1.00)"))
        assert "Intra(MB/step)" not in text

    def test_traffic_split_round_trips(self, hier_runner):
        from repro.harness.results_io import (
            run_result_from_dict,
            run_result_to_dict,
        )

        result = hier_runner.run("3LC (s=1.00)", 1.0)
        restored = run_result_from_dict(run_result_to_dict(result))
        assert [s.intra_rack_bytes for s in restored.traffic.steps] == [
            s.intra_rack_bytes for s in result.traffic.steps
        ]
        assert [s.cross_rack_bytes for s in restored.traffic.steps] == [
            s.cross_rack_bytes for s in result.traffic.steps
        ]
        assert restored.link_utilization == result.link_utilization

    def test_event_driven_hier_runner(self):
        runner = ExperimentRunner(
            FAST_CONFIG.scaled(
                num_workers=4,
                topology="hier",
                racks=2,
                rack_size=2,
                standard_steps=6,
                sim_overlap=True,
                sync_mode="async",
            )
        )
        result = runner.run("3LC (s=1.00)", 1.0)
        # Scheduling units are racks: two throughput keys, not four.
        throughput = result.per_worker_throughput["10Mbps"]
        assert set(throughput) == {0, 1}
        utilization = result.link_utilization["10Mbps"]
        assert set(utilization) == {
            "rack0", "rack1", "cross:rack0", "cross:rack1",
        }
        assert sum(result.staleness_distribution.values()) == result.steps

    def test_config_rejects_mismatched_rack_shape(self):
        with pytest.raises(ValueError, match="not divisible into"):
            FAST_CONFIG.scaled(topology="hier", racks=2, rack_size=3)
        with pytest.raises(ValueError, match="cross_bw_fraction"):
            FAST_CONFIG.scaled(
                num_workers=4, topology="hier", cross_bw_fraction=0.0
            )

    def test_cli_flag_validation_names_offending_values(self, capsys):
        from repro.harness.cli import main

        cases = [
            (["table1", "--fast", "--racks", "3"], "--racks 3 requires --topology hier"),
            (
                ["table1", "--fast", "--rack-size", "2"],
                "--rack-size 2 requires --topology hier",
            ),
            (
                ["table1", "--fast", "--cross-bw", "0.5"],
                "--cross-bw 0.5 requires --topology hier",
            ),
            (
                ["table1", "--fast", "--shards", "4", "--topology", "ring"],
                "--shards 4 requires --topology sharded (got --topology ring)",
            ),
            (
                ["table1", "--fast", "--staleness", "2"],
                "--staleness 2 requires --sync-mode ssp (got --sync-mode bsp)",
            ),
            (
                ["table1", "--fast", "--topology", "hier", "--racks", "3"],
                "not divisible into 3 racks",
            ),
            (
                # racks * rack_size == num_workers, but a 1-worker "rack"
                # has no ring: must fail at parse time, not mid-run.
                [
                    "table1", "--fast", "--topology", "hier",
                    "--racks", "2", "--rack-size", "1",
                ],
                "rack ring needs >= 2",
            ),
            (
                ["table1", "--fast", "--fuse", "--topology", "ring"],
                "--fuse is incompatible with --topology ring",
            ),
            (
                # One rack degenerates to the ring: same parse-time rule.
                [
                    "table1", "--fast", "--fuse", "--topology", "hier",
                    "--racks", "1", "--rack-size", "2",
                ],
                "fused buckets need >= 2 racks",
            ),
            (
                ["table1", "--fast", "--bucket-elements", "512"],
                "--bucket-elements 512 requires --fuse",
            ),
            (
                ["table1", "--fast", "--fuse", "--bucket-elements", "0"],
                "--bucket-elements must be >= 1, got 0",
            ),
            (
                ["table1", "--fast", "--fuse-lossy"],
                "--fuse-lossy selects the fused-bucket codec mode; it "
                "requires --fuse",
            ),
        ]
        for argv, fragment in cases:
            with pytest.raises(SystemExit):
                main(argv)
            assert fragment in capsys.readouterr().err

    def test_cli_hier_drops_deferring_schemes(self, capsys):
        from repro.harness.cli import main

        assert (
            main(
                [
                    "fig7", "--fast", "--steps", "4",
                    "--topology", "hier", "--racks", "1", "--rack-size", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 local steps" not in out
        assert "3LC (s=1.00)" in out


class TestRingSchemeFilter:
    def test_deferring_schemes_flagged(self):
        from repro.compression.registry import make_compressor

        assert make_compressor("2 local steps", seed=0).defers_transmission
        assert make_compressor(
            "2 local steps + 3LC (s=1.00)", seed=0
        ).defers_transmission
        assert not make_compressor("3LC (s=1.00)", seed=0).defers_transmission
        assert not make_compressor("32-bit float", seed=0).defers_transmission

    def test_cli_fig7_on_ring_drops_deferring_schemes(self, capsys):
        from repro.harness.cli import main

        assert main(["fig7", "--fast", "--steps", "4", "--topology", "ring"]) == 0
        out = capsys.readouterr().out
        assert "2 local steps" not in out
        assert "3LC (s=1.00)" in out


class TestTables:
    def test_table1_rows_and_shape(self, runner):
        schemes = ("32-bit float", "3LC (s=1.00)", "2 local steps")
        rows, text = table1(runner, schemes)
        assert [r.scheme for r in rows] == list(schemes)
        baseline = rows[0]
        assert baseline.speedup_10mbps == pytest.approx(1.0)
        assert baseline.accuracy_difference == 0.0
        # 3LC must beat the baseline on a slow link even at toy scale.
        assert rows[1].speedup_10mbps > 1.0
        assert "Table 1" in text

    def test_table1_requires_baseline(self, runner):
        with pytest.raises(ValueError, match="baseline"):
            table1(runner, ("3LC (s=1.00)",))

    def test_table2_rows(self, runner):
        schemes = TABLE2_SCHEMES[:2]  # no-ZRE and s=1.00
        rows, text = table2(runner, schemes)
        assert len(rows) == 2
        no_zre, with_zre = rows
        # ZRE can only shrink traffic.
        assert with_zre.compression_ratio >= no_zre.compression_ratio
        assert no_zre.bits_per_value == pytest.approx(
            32.0 / no_zre.compression_ratio, rel=1e-6
        )
        assert "Table 2" in text


class TestFigures:
    def test_time_accuracy_figure(self, runner):
        fig = figure_time_accuracy(
            runner, "10Mbps", ("32-bit float", "3LC (s=1.00)"), (0.5, 1.0)
        )
        assert len(fig.series) == 2
        for series in fig.series:
            assert len(series.points) == 2
            times = [p[0] for p in series.points]
            assert times == sorted(times)  # larger budget, more minutes
        assert "10Mbps" in fig.text

    def test_figure7(self, runner):
        loss_fig, acc_fig = figure7_curves(runner, ("32-bit float", "3LC (s=1.00)"))
        assert len(loss_fig.series) == 2
        assert len(loss_fig.series[0].points) == FAST_CONFIG.standard_steps
        assert all(len(s.points) >= 1 for s in acc_fig.series)

    def test_figure8(self, runner):
        fig = figure8_sparsity(
            runner, "10Mbps", ("3LC (s=1.00)",), (1.0,)
        )
        assert "sparsity" in fig.name

    def test_figure9(self, runner):
        fig = figure9_compressed_size(runner, "3LC (s=1.00)")
        no_zre, push, pull = fig.series
        assert all(y == 1.6 for _, y in no_zre.points)
        # ZRE keeps compressed sizes at or below the quartic 1.6 bits
        # (plus small header overhead on tiny test tensors).
        assert all(y <= 2.5 for _, y in push.points)
        assert len(push.points) == FAST_CONFIG.standard_steps


class TestAsciiPlot:
    def test_renders_points_and_legend(self):
        s = Series.from_xy("demo", [0, 1, 2], [0, 1, 4])
        out = render_plot([s], title="T", x_label="X", y_label="Y")
        assert "T" in out and "demo" in out
        assert "o" in out

    def test_degenerate_single_point(self):
        out = render_plot([Series("p", ((1.0, 1.0),))])
        assert "p" in out

    def test_size_validation(self):
        with pytest.raises(ValueError):
            render_plot([], width=4, height=2)

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            Series.from_xy("x", [1], [1, 2])


class TestCli:
    def test_table2_fast(self, capsys):
        from repro.harness.cli import main

        code = main(["table2", "--fast", "--steps", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_fig9_fast(self, capsys):
        from repro.harness.cli import main

        assert main(["fig9", "--fast", "--steps", "8"]) == 0
        assert "Figure 9" in capsys.readouterr().out

    def test_related_work_fast(self, capsys):
        from repro.harness.cli import main

        assert main(["related-work", "--fast", "--steps", "8"]) == 0
        out = capsys.readouterr().out
        assert "Related work" in out
        assert "QSGD (2-bit)" in out
        assert "DGC (0.10%)" in out
