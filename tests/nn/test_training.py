"""Loss, optimizer, and schedule tests."""

import math

import numpy as np
import pytest

from repro.nn import (
    ConstantLR,
    CosineDecay,
    MomentumSGD,
    Parameter,
    StepwiseDecay,
    scale_lr_for_workers,
)
from repro.nn.loss import SoftmaxCrossEntropy, accuracy, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 10)).astype(np.float32))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), rtol=1e-5)

    def test_numerically_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]], dtype=np.float32))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]], dtype=np.float32)
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert accuracy(np.zeros((0, 3), dtype=np.float32), np.zeros(0)) == 0.0


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0]], dtype=np.float32)
        assert loss_fn.forward(logits, np.array([0])) < 1e-6

    def test_uniform_prediction_log_k(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.zeros((4, 10), dtype=np.float32)
        loss = loss_fn.forward(logits, np.arange(4))
        assert loss == pytest.approx(math.log(10), rel=1e-5)

    def test_gradient_matches_numerical(self, rng):
        loss_fn = SoftmaxCrossEntropy()
        logits = rng.normal(size=(3, 5)).astype(np.float32)
        labels = np.array([1, 4, 0])
        loss_fn.forward(logits, labels)
        grad = loss_fn.backward()
        eps = 1e-3
        for i in range(3):
            for j in range(5):
                logits[i, j] += eps
                up = loss_fn.forward(logits, labels)
                logits[i, j] -= 2 * eps
                down = loss_fn.forward(logits, labels)
                logits[i, j] += eps
                assert grad[i, j] == pytest.approx((up - down) / (2 * eps), abs=1e-3)

    def test_backward_requires_forward(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()

    def test_label_shape_validated(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(
                np.zeros((3, 2), dtype=np.float32), np.zeros((4,), dtype=np.int64)
            )


class TestMomentumSGD:
    def test_first_step_is_plain_sgd(self):
        p = Parameter("w", np.array([1.0], dtype=np.float32), weight_decay=False)
        p.grad = np.array([0.5], dtype=np.float32)
        MomentumSGD(0.9, 0.0).step([p], lr=0.1)
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_momentum_accumulates(self):
        p = Parameter("w", np.zeros(1, dtype=np.float32), weight_decay=False)
        opt = MomentumSGD(0.5, 0.0)
        for _ in range(2):
            p.grad = np.array([1.0], dtype=np.float32)
            opt.step([p], lr=1.0)
        # accum: 1.0 then 1.5; total update 2.5.
        assert p.data[0] == pytest.approx(-2.5)

    def test_weight_decay_applies_only_when_flagged(self):
        decayed = Parameter("a", np.array([2.0], dtype=np.float32), weight_decay=True)
        plain = Parameter("b", np.array([2.0], dtype=np.float32), weight_decay=False)
        for p in (decayed, plain):
            p.grad = np.zeros(1, dtype=np.float32)
        MomentumSGD(0.0, 0.1).step([decayed, plain], lr=1.0)
        assert decayed.data[0] == pytest.approx(2.0 - 0.1 * 2.0)
        assert plain.data[0] == pytest.approx(2.0)

    def test_missing_gradient_raises(self):
        p = Parameter("w", np.zeros(1, dtype=np.float32))
        with pytest.raises(RuntimeError, match="no gradient"):
            MomentumSGD().step([p], lr=0.1)

    def test_apply_named_matches_step(self):
        data = np.array([1.0, -2.0], dtype=np.float32)
        grad = np.array([0.3, 0.1], dtype=np.float32)
        p = Parameter("w", data.copy(), weight_decay=True)
        p.grad = grad.copy()
        a = MomentumSGD(0.9, 1e-2)
        a.step([p], lr=0.1)
        b = MomentumSGD(0.9, 1e-2)
        named = {"w": data.copy()}
        b.apply_named(named, {"w": grad.copy()}, 0.1, decay_names={"w"})
        np.testing.assert_allclose(named["w"], p.data, rtol=1e-6)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            MomentumSGD(momentum=1.0)
        with pytest.raises(ValueError):
            MomentumSGD(weight_decay=-0.1)

    def test_state_dict_and_reset(self):
        p = Parameter("w", np.zeros(2, dtype=np.float32))
        p.grad = np.ones(2, dtype=np.float32)
        opt = MomentumSGD(0.9, 0.0)
        opt.step([p], lr=0.1)
        assert "w" in opt.state_dict()
        opt.reset()
        assert opt.state_dict() == {}


class TestSchedules:
    def test_cosine_endpoints(self):
        sched = CosineDecay(0.1, 100, min_lr=0.001)
        assert sched(0) == pytest.approx(0.1)
        assert sched(100) == pytest.approx(0.001)
        assert sched(50) == pytest.approx((0.1 + 0.001) / 2, rel=1e-6)

    def test_cosine_monotone_decreasing(self):
        sched = CosineDecay(0.1, 64)
        values = [sched(t) for t in range(65)]
        assert values == sorted(values, reverse=True)

    def test_cosine_clamps_out_of_range(self):
        sched = CosineDecay(0.1, 10)
        assert sched(-5) == sched(0)
        assert sched(99) == sched(10)

    def test_cosine_validation(self):
        with pytest.raises(ValueError):
            CosineDecay(0.1, 0)
        with pytest.raises(ValueError):
            CosineDecay(0.0001, 10, min_lr=0.001)

    def test_stepwise(self):
        sched = StepwiseDecay(1.0, [10, 20], factor=0.1)
        assert sched(5) == pytest.approx(1.0)
        assert sched(10) == pytest.approx(0.1)
        assert sched(25) == pytest.approx(0.01)

    def test_stepwise_requires_sorted(self):
        with pytest.raises(ValueError):
            StepwiseDecay(1.0, [20, 10])

    def test_constant(self):
        assert ConstantLR(0.3)(123) == 0.3

    def test_linear_scaling_rule(self):
        assert scale_lr_for_workers(0.1, 10) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            scale_lr_for_workers(0.1, 0)


class TestParameter:
    def test_accumulate_grad(self):
        p = Parameter("w", np.zeros(2, dtype=np.float32))
        p.accumulate_grad(np.ones(2, dtype=np.float32))
        p.accumulate_grad(np.ones(2, dtype=np.float32))
        np.testing.assert_array_equal(p.grad, [2.0, 2.0])

    def test_accumulate_shape_check(self):
        p = Parameter("w", np.zeros(2, dtype=np.float32))
        with pytest.raises(ValueError, match="shape"):
            p.accumulate_grad(np.ones(3, dtype=np.float32))

    def test_zero_grad(self):
        p = Parameter("w", np.zeros(1, dtype=np.float32))
        p.accumulate_grad(np.ones(1, dtype=np.float32))
        p.zero_grad()
        assert p.grad is None
