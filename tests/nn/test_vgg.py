"""Tests for the VGG builder and the §5.2 architecture-ratio claim."""

import numpy as np
import pytest

from repro.nn import build_resnet, build_vgg, model_stats


class TestBuildVgg:
    def test_output_shape(self):
        model = build_vgg(num_classes=7, image_size=16, seed=0)
        out = model.forward(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert out.shape == (2, 7)

    def test_geometry_validation(self):
        with pytest.raises(ValueError, match="divisible"):
            build_vgg(image_size=12, convs_per_stage=(1, 1, 1))

    def test_deterministic_init(self):
        a = build_vgg(seed=3).state_dict()
        b = build_vgg(seed=3).state_dict()
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_fc_head_dominates_parameters(self):
        """The classic VGG property: the dense head holds most weights."""
        model = build_vgg(image_size=32, fc_width=1024, seed=0)
        head = sum(p.size for p in model.parameters() if p.name.startswith("head"))
        total = sum(p.size for p in model.parameters())
        assert head / total > 0.5

    def test_trains_one_step(self):
        from repro.nn import MomentumSGD
        from repro.nn.loss import SoftmaxCrossEntropy

        model = build_vgg(image_size=16, base_width=4, fc_width=32, seed=0)
        loss_fn = SoftmaxCrossEntropy()
        x = np.random.default_rng(0).normal(size=(4, 3, 16, 16)).astype(np.float32)
        y = np.array([0, 1, 2, 3])
        first = loss_fn.forward(model.forward(x, training=True), y)
        model.zero_grad()
        model.backward(loss_fn.backward())
        MomentumSGD(0.9, 0.0).step(model.parameters(), 0.05)
        second = loss_fn.forward(model.forward(x, training=True), y)
        assert np.isfinite(second)


class TestArchitectureRatio:
    def test_vgg_has_higher_params_per_flop_than_resnet(self):
        """Paper §5.2: ResNets have small parameter-to-computation ratios
        compared to VGG — the reason ResNet is the *challenging* workload
        for traffic compression. Measured at CIFAR geometry (32×32)."""
        resnet = model_stats(build_resnet(20, base_width=16), (3, 32, 32))
        vgg = model_stats(
            build_vgg(image_size=32, base_width=16, fc_width=1024), (3, 32, 32)
        )
        assert vgg.params_per_mflop > 2 * resnet.params_per_mflop

    def test_traffic_per_step_reflects_parameters(self):
        resnet = model_stats(build_resnet(20, base_width=16), (3, 16, 16))
        assert resnet.bytes_per_step == 4 * resnet.parameters
