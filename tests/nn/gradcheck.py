"""Numerical gradient checking helpers shared by the nn tests."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["check_input_gradient", "check_parameter_gradients"]


def _central_difference(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Numerical dF/dx for a scalar-valued f, element by element."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f()
        flat[i] = orig - eps
        f_minus = f()
        flat[i] = orig
        grad_flat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def check_input_gradient(
    module: Module, x: np.ndarray, rtol: float = 2e-2, atol: float = 2e-3
) -> None:
    """Assert the module's input gradient matches central differences.

    Uses the scalar objective ``sum(w * forward(x))`` for a fixed random
    weight tensor so every output element contributes.
    """
    x = x.astype(np.float32).copy()
    out = module.forward(x, training=True)
    w = np.random.default_rng(0).normal(size=out.shape).astype(np.float32)
    module.forward(x, training=True)  # refresh cache
    analytic = module.backward(w)

    def objective() -> float:
        return float((module.forward(x, training=True) * w).sum())

    numeric = _central_difference(objective, x)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


def check_parameter_gradients(
    module: Module, x: np.ndarray, rtol: float = 2e-2, atol: float = 2e-3
) -> None:
    """Assert every parameter gradient matches central differences."""
    x = x.astype(np.float32)
    out = module.forward(x, training=True)
    w = np.random.default_rng(1).normal(size=out.shape).astype(np.float32)

    def objective() -> float:
        return float((module.forward(x, training=True) * w).sum())

    module.forward(x, training=True)
    module.zero_grad()
    module.backward(w)
    for param in module.parameters():
        numeric = _central_difference(objective, param.data)
        np.testing.assert_allclose(
            param.grad, numeric, rtol=rtol, atol=atol, err_msg=param.name
        )
