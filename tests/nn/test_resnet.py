"""ResNet topology and residual-block gradient tests."""

import numpy as np
import pytest

from repro.nn import BasicBlock, PadShortcut, build_mlp, build_resnet
from repro.nn.resnet import resnet_depth_blocks
from tests.nn.gradcheck import check_input_gradient


def _rng():
    return np.random.default_rng(0)


class TestPadShortcut:
    def test_subsample_and_pad(self):
        sc = PadShortcut(2, 4, stride=2)
        x = np.random.default_rng(1).normal(size=(1, 2, 6, 6)).astype(np.float32)
        out = sc.forward(x)
        assert out.shape == (1, 4, 3, 3)
        np.testing.assert_array_equal(out[:, :2], x[:, :, ::2, ::2])
        assert not out[:, 2:].any()

    def test_gradient(self):
        sc = PadShortcut(2, 4, stride=2)
        check_input_gradient(sc, np.random.default_rng(2).normal(size=(2, 2, 4, 4)))

    def test_cannot_shrink(self):
        with pytest.raises(ValueError):
            PadShortcut(4, 2, stride=1)

    def test_parameter_free(self):
        assert PadShortcut(2, 4, stride=2).parameters() == []


class TestBasicBlock:
    def test_identity_block_shape(self):
        block = BasicBlock(4, 4, rng=_rng())
        x = np.zeros((2, 4, 6, 6), dtype=np.float32)
        assert block.forward(x, training=True).shape == x.shape

    def test_downsample_block_shape(self):
        block = BasicBlock(4, 8, stride=2, rng=_rng())
        x = np.zeros((2, 4, 6, 6), dtype=np.float32)
        assert block.forward(x, training=True).shape == (2, 8, 3, 3)

    def test_gradient_flows_through_both_branches(self):
        block = BasicBlock(2, 2, rng=_rng())
        check_input_gradient(
            block, np.random.default_rng(3).normal(size=(2, 2, 4, 4)), rtol=5e-2
        )

    def test_downsample_gradient(self):
        block = BasicBlock(2, 4, stride=2, rng=_rng())
        check_input_gradient(
            block, np.random.default_rng(4).normal(size=(2, 2, 4, 4)), rtol=5e-2
        )

    def test_shortcut_is_identity_when_shapes_match(self):
        from repro.nn import Identity

        assert isinstance(BasicBlock(4, 4, rng=_rng()).shortcut, Identity)
        assert isinstance(BasicBlock(4, 8, stride=2, rng=_rng()).shortcut, PadShortcut)


class TestBuildResnet:
    def test_depth_formula(self):
        assert resnet_depth_blocks(8) == 1
        assert resnet_depth_blocks(110) == 18
        with pytest.raises(ValueError):
            resnet_depth_blocks(10)
        with pytest.raises(ValueError):
            resnet_depth_blocks(2)

    def test_parameter_count_scales_with_depth(self):
        small = sum(p.size for p in build_resnet(8, base_width=8).parameters())
        large = sum(p.size for p in build_resnet(20, base_width=8).parameters())
        assert large > 2 * small

    def test_output_shape(self):
        model = build_resnet(8, num_classes=7, base_width=4)
        out = model.forward(np.zeros((3, 3, 16, 16), dtype=np.float32))
        assert out.shape == (3, 7)

    def test_deterministic_initialization(self):
        a = build_resnet(8, base_width=4, seed=5).state_dict()
        b = build_resnet(8, base_width=4, seed=5).state_dict()
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_different_seeds_differ(self):
        a = build_resnet(8, base_width=4, seed=1).state_dict()
        b = build_resnet(8, base_width=4, seed=2).state_dict()
        assert any(not np.array_equal(a[k], b[k]) for k in a)

    def test_unique_parameter_names(self):
        names = [p.name for p in build_resnet(20, base_width=4).parameters()]
        assert len(names) == len(set(names))

    def test_stage_widths(self):
        model = build_resnet(8, base_width=4)
        params = {p.name: p for p in model.parameters()}
        assert params["stage0/block0/conv1/weight"].shape[0] == 4
        assert params["stage1/block0/conv1/weight"].shape[0] == 8
        assert params["stage2/block0/conv1/weight"].shape[0] == 16

    def test_resnet110_topology_constructs(self):
        # The paper's actual depth; construct-only (too slow to train here).
        model = build_resnet(110, base_width=16)
        blocks = sum(1 for p in model.parameters() if p.name.endswith("conv1/weight"))
        assert blocks == 54  # 18 blocks/stage * 3 stages
        # 2 convs/block * 54 + stem + fc = 110 weighted layers.
        weighted = sum(
            1
            for p in model.parameters()
            if p.name.endswith(("conv1/weight", "conv2/weight", "conv/weight", "fc/weight"))
        )
        assert weighted == 110

    def test_state_dict_roundtrip(self):
        model = build_resnet(8, base_width=4, seed=3)
        state = model.state_dict()
        other = build_resnet(8, base_width=4, seed=9)
        other.load_state_dict(state)
        for name, value in other.state_dict().items():
            np.testing.assert_array_equal(value, state[name])

    def test_load_state_dict_missing_key(self):
        model = build_resnet(8, base_width=4)
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError, match="missing"):
            model.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        model = build_resnet(8, base_width=4)
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict(state)


class TestBuildMlp:
    def test_shapes(self):
        model = build_mlp(48, (16, 8), num_classes=5)
        out = model.forward(np.zeros((2, 3, 4, 4), dtype=np.float32))
        assert out.shape == (2, 5)

    def test_trains_on_toy_problem(self):
        from repro.nn import ConstantLR, MomentumSGD
        from repro.nn.loss import SoftmaxCrossEntropy, accuracy

        rng = np.random.default_rng(5)
        x = rng.normal(size=(128, 8)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.int64)
        model = build_mlp(8, (16,), num_classes=2, seed=0)
        optimizer = MomentumSGD(0.9, 0.0)
        loss_fn = SoftmaxCrossEntropy()
        for _ in range(60):
            logits = model.forward(x, training=True)
            loss_fn.forward(logits, y)
            model.zero_grad()
            model.backward(loss_fn.backward())
            optimizer.step(model.parameters(), 0.05)
        assert accuracy(model.forward(x), y) > 0.95
