"""Layer-level correctness: forward semantics and analytic gradients."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    ReLU,
    Sequential,
)
from repro.nn.functional import col2im, conv_output_size, im2col
from tests.nn.gradcheck import check_input_gradient, check_parameter_gradients


def _rng():
    return np.random.default_rng(0)


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(3, 8, 3, stride=2, rng=_rng())
        out = conv.forward(np.zeros((2, 3, 9, 9), dtype=np.float32))
        assert out.shape == (2, 8, 5, 5)

    def test_matches_direct_convolution(self):
        conv = Conv2d(2, 3, 3, stride=1, pad=1, rng=_rng())
        x = np.random.default_rng(1).normal(size=(1, 2, 5, 5)).astype(np.float32)
        out = conv.forward(x)
        # Direct (slow) convolution for one output position.
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        for f in range(3):
            expected = float(
                (padded[0, :, 1:4, 2:5] * conv.weight.data[f]).sum()
            )
            assert out[0, f, 1, 2] == pytest.approx(expected, rel=1e-4)

    def test_input_gradient(self):
        conv = Conv2d(2, 3, 3, stride=1, rng=_rng())
        check_input_gradient(conv, np.random.default_rng(2).normal(size=(2, 2, 5, 5)))

    def test_strided_input_gradient(self):
        conv = Conv2d(2, 2, 3, stride=2, rng=_rng())
        check_input_gradient(conv, np.random.default_rng(3).normal(size=(1, 2, 7, 7)))

    def test_parameter_gradients(self):
        conv = Conv2d(2, 2, 3, bias=True, rng=_rng())
        check_parameter_gradients(
            conv, np.random.default_rng(4).normal(size=(2, 2, 4, 4))
        )

    def test_channel_mismatch_rejected(self):
        conv = Conv2d(3, 4, 3, rng=_rng())
        with pytest.raises(ValueError, match="channels"):
            conv.forward(np.zeros((1, 2, 5, 5), dtype=np.float32))

    def test_backward_requires_training_forward(self):
        conv = Conv2d(1, 1, 3, rng=_rng())
        conv.forward(np.zeros((1, 1, 4, 4), dtype=np.float32), training=False)
        with pytest.raises(RuntimeError, match="training"):
            conv.backward(np.zeros((1, 1, 4, 4), dtype=np.float32))

    def test_bias_free_by_default(self):
        conv = Conv2d(1, 1, 3, rng=_rng())
        assert conv.bias is None
        assert len(conv.parameters()) == 1


class TestIm2Col:
    def test_adjoint_property(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint identity."""
        rng = np.random.default_rng(5)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        cols = im2col(x, kernel=3, stride=2, pad=1)
        y = rng.normal(size=cols.shape).astype(np.float32)
        back = col2im(y, x.shape, kernel=3, stride=2, pad=1)
        assert float((cols * y).sum()) == pytest.approx(
            float((x * back).sum()), rel=1e-4
        )

    def test_output_size_formula(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 3, 2, 1) == 16
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestBatchNorm2d:
    def test_normalizes_batch(self):
        bn = BatchNorm2d(4)
        x = np.random.default_rng(6).normal(3.0, 2.0, size=(8, 4, 5, 5)).astype(
            np.float32
        )
        out = bn.forward(x, training=True)
        assert out.mean(axis=(0, 2, 3)) == pytest.approx(np.zeros(4), abs=1e-5)
        assert out.var(axis=(0, 2, 3)) == pytest.approx(np.ones(4), abs=1e-2)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2, momentum=0.0)  # running stats = last batch
        x = np.random.default_rng(7).normal(1.0, 2.0, size=(16, 2, 4, 4)).astype(
            np.float32
        )
        bn.forward(x, training=True)
        out = bn.forward(x, training=False)
        assert abs(float(out.mean())) < 0.05

    def test_input_gradient(self):
        bn = BatchNorm2d(3)
        check_input_gradient(
            bn, np.random.default_rng(8).normal(size=(4, 3, 3, 3)), rtol=5e-2
        )

    def test_parameter_gradients(self):
        bn = BatchNorm2d(2)
        check_parameter_gradients(
            bn, np.random.default_rng(9).normal(size=(4, 2, 3, 3))
        )

    def test_params_flagged_no_weight_decay(self):
        bn = BatchNorm2d(4)
        assert all(not p.weight_decay for p in bn.parameters())

    def test_stats_roundtrip(self):
        bn1 = BatchNorm2d(3)
        bn1.forward(
            np.random.default_rng(10).normal(size=(4, 3, 2, 2)).astype(np.float32),
            training=True,
        )
        bn2 = BatchNorm2d(3)
        bn2.load_stats(bn1.stats_dict())
        np.testing.assert_array_equal(bn2.running_mean, bn1.running_mean)
        np.testing.assert_array_equal(bn2.running_var, bn1.running_var)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            BatchNorm2d(3).forward(np.zeros((2, 4, 3, 3), dtype=np.float32))


class TestLinear:
    def test_affine_map(self):
        fc = Linear(3, 2, rng=_rng())
        x = np.ones((1, 3), dtype=np.float32)
        expected = fc.weight.data.sum(axis=1) + fc.bias.data
        np.testing.assert_allclose(fc.forward(x)[0], expected, rtol=1e-5)

    def test_gradients(self):
        fc = Linear(4, 3, rng=_rng())
        x = np.random.default_rng(11).normal(size=(5, 4))
        check_input_gradient(fc, x)
        check_parameter_gradients(fc, x)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            Linear(4, 2, rng=_rng()).forward(np.zeros((1, 5), dtype=np.float32))


class TestActivationsAndPooling:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]], dtype=np.float32))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_relu_gradient(self):
        check_input_gradient(
            ReLU(), np.random.default_rng(12).normal(size=(3, 4)) + 0.1
        )

    def test_identity_passthrough(self):
        x = np.ones((2, 2), dtype=np.float32)
        layer = Identity()
        assert layer.forward(x) is x
        assert layer.backward(x) is x

    def test_global_avg_pool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = GlobalAvgPool2d().forward(x)
        assert out.shape == (1, 1)
        assert out[0, 0] == pytest.approx(7.5)

    def test_global_avg_pool_gradient(self):
        check_input_gradient(
            GlobalAvgPool2d(), np.random.default_rng(13).normal(size=(2, 3, 4, 4))
        )

    def test_avg_pool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = AvgPool2d(2).forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_avg_pool_gradient(self):
        check_input_gradient(
            AvgPool2d(2), np.random.default_rng(14).normal(size=(2, 2, 4, 4))
        )

    def test_avg_pool_divisibility(self):
        with pytest.raises(ValueError):
            AvgPool2d(3).forward(np.zeros((1, 1, 4, 4), dtype=np.float32))

    def test_flatten_roundtrip(self):
        f = Flatten()
        x = np.random.default_rng(15).normal(size=(2, 3, 4)).astype(np.float32)
        out = f.forward(x, training=True)
        assert out.shape == (2, 12)
        assert f.backward(out).shape == x.shape


class TestSequential:
    def test_chains_forward_and_backward(self):
        rng = _rng()
        model = Sequential(Linear(4, 8, name="a", rng=rng), ReLU(), Linear(8, 2, name="b", rng=rng))
        x = np.random.default_rng(16).normal(size=(3, 4))
        check_input_gradient(model, x)

    def test_parameter_collection_order(self):
        rng = _rng()
        model = Sequential(Linear(2, 2, name="a", rng=rng), Linear(2, 2, name="b", rng=rng))
        names = [p.name for p in model.parameters()]
        assert names == ["a/weight", "a/bias", "b/weight", "b/bias"]

    def test_indexing(self):
        rng = _rng()
        layers = [Linear(2, 2, name="x", rng=rng), ReLU()]
        model = Sequential(*layers)
        assert len(model) == 2
        assert model[1] is layers[1]
