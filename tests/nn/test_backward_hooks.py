"""Backward hooks and the per-layer backward profiler."""

import numpy as np
import pytest

from repro.nn import (
    BackwardTimeline,
    LayerTiming,
    Linear,
    ReLU,
    Sequential,
    build_resnet,
    profile_backward,
)


def tiny_batch(size=4, features=6):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(size, features)).astype(np.float32)
    y = rng.integers(0, 3, size=size)
    return x, y


class TestBackwardHooks:
    def test_hook_fires_with_duration(self):
        layer = Linear(6, 3, rng=np.random.default_rng(0))
        calls = []
        layer.register_backward_hook(lambda m, s: calls.append((m, s)))
        x, _ = tiny_batch()
        layer.forward(x, training=True)
        layer.backward(np.ones((4, 3), dtype=np.float32))
        assert len(calls) == 1
        module, seconds = calls[0]
        assert module is layer
        assert seconds >= 0.0

    def test_hook_removal(self):
        layer = Linear(6, 3, rng=np.random.default_rng(0))
        calls = []
        handle = layer.register_backward_hook(lambda m, s: calls.append(s))
        handle.remove()
        x, _ = tiny_batch()
        layer.forward(x, training=True)
        layer.backward(np.ones((4, 3), dtype=np.float32))
        assert calls == []
        handle.remove()  # idempotent

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            Linear(6, 3, rng=np.random.default_rng(0)).register_backward_hook("not a hook")

    def test_hooks_observe_backward_execution_order(self):
        first = Linear(6, 5, rng=np.random.default_rng(0))
        second = Linear(5, 3, rng=np.random.default_rng(1))
        model = Sequential(first, ReLU(), second)
        order = []
        for leaf in (first, second):
            leaf.register_backward_hook(lambda m, s: order.append(m))
        x, _ = tiny_batch()
        model.forward(x, training=True)
        model.backward(np.ones((4, 3), dtype=np.float32))
        # Backward visits the *last* forward layer first.
        assert order == [second, first]


class TestProfileBackward:
    def test_resnet_timeline_covers_all_parameters(self):
        model = build_resnet(8, base_width=4, seed=1)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 12, 12)).astype(np.float32)
        y = rng.integers(0, 10, size=2)
        timeline = profile_backward(model, x, y, repeats=2)
        produced = {name for layer in timeline.layers for name in layer.params}
        assert produced == {p.name for p in model.parameters()}
        assert timeline.total_seconds > 0
        assert sum(timeline.fractions) == pytest.approx(1.0)

    def test_ready_fractions_monotone_with_depth(self):
        # The classifier head backpropagates first, the stem conv last.
        model = build_resnet(8, base_width=4, seed=1)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 12, 12)).astype(np.float32)
        y = rng.integers(0, 10, size=2)
        ready = profile_backward(model, x, y, repeats=1).ready_fraction()
        head = next(n for n in ready if n.startswith("head/"))
        stem = next(n for n in ready if n.startswith("stem"))
        assert ready[head] < ready[stem]
        assert all(0.0 < f <= 1.0 for f in ready.values())

    def test_validation(self):
        model = build_resnet(8, base_width=4, seed=1)
        x = np.zeros((2, 3, 12, 12), dtype=np.float32)
        y = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError, match="repeats"):
            profile_backward(model, x, y, repeats=0)


class TestBackwardTimeline:
    def timeline(self):
        return BackwardTimeline(
            (
                LayerTiming("l0", 0.2, ("w0",)),
                LayerTiming("l1", 0.3, ("w1",)),
                LayerTiming("l2", 0.5, ("w2",)),
            )
        )

    def test_fractions_and_ready(self):
        tl = self.timeline()
        assert tl.fractions == pytest.approx((0.2, 0.3, 0.5))
        ready = tl.ready_fraction()
        assert ready["w0"] == pytest.approx(0.2)
        assert ready["w2"] == pytest.approx(1.0)

    def test_zero_profile_degrades_to_uniform(self):
        tl = BackwardTimeline(
            (LayerTiming("a", 0.0, ("x",)), LayerTiming("b", 0.0, ("y",)))
        )
        assert tl.fractions == pytest.approx((0.5, 0.5))

    def test_coarsen(self):
        tl = self.timeline()
        merged = tl.coarsen(1)
        assert len(merged.layers) == 1
        assert merged.layers[0].params == ("w0", "w1", "w2")
        assert merged.total_seconds == pytest.approx(tl.total_seconds)
        assert len(tl.coarsen(10).layers) == 3  # clamped to layer count
        with pytest.raises(ValueError):
            tl.coarsen(0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BackwardTimeline(())
