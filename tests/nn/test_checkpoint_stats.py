"""Tests for checkpointing and model statistics."""

import numpy as np
import pytest

from repro.nn import (
    ConstantLR,
    MomentumSGD,
    build_mlp,
    build_resnet,
    load_checkpoint,
    model_stats,
    save_checkpoint,
)
from repro.nn.loss import SoftmaxCrossEntropy


def _train_a_bit(model, optimizer, steps=3, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    loss_fn = SoftmaxCrossEntropy()
    x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
    y = rng.integers(0, 10, size=4)
    for _ in range(steps):
        logits = model.forward(x, training=True)
        loss_fn.forward(logits, y)
        model.zero_grad()
        model.backward(loss_fn.backward())
        optimizer.step(model.parameters(), 0.05)
    return x, y


class TestCheckpoint:
    def test_roundtrip_restores_parameters(self, tmp_path):
        model = build_resnet(8, base_width=4, seed=1)
        opt = MomentumSGD(0.9, 1e-4)
        _train_a_bit(model, opt)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, opt, step=3)

        fresh = build_resnet(8, base_width=4, seed=99)
        fresh_opt = MomentumSGD(0.9, 1e-4)
        step = load_checkpoint(path, fresh, fresh_opt)
        assert step == 3
        for name, value in fresh.state_dict().items():
            np.testing.assert_array_equal(value, model.state_dict()[name])

    def test_restores_bn_running_stats(self, tmp_path):
        model = build_resnet(8, base_width=4, seed=1)
        opt = MomentumSGD()
        x, _ = _train_a_bit(model, opt)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, step=1)
        fresh = build_resnet(8, base_width=4, seed=2)
        load_checkpoint(path, fresh)
        # Eval-mode forward uses running stats: outputs must match exactly.
        np.testing.assert_array_equal(
            fresh.forward(x, training=False), model.forward(x, training=False)
        )

    def test_resume_continues_identically(self, tmp_path):
        """Save, train k steps; reload, train k steps: identical weights."""
        model_a = build_resnet(8, base_width=4, seed=1)
        opt_a = MomentumSGD(0.9, 1e-4)
        _train_a_bit(model_a, opt_a, steps=2)
        path = tmp_path / "mid.npz"
        save_checkpoint(path, model_a, opt_a, step=2)
        _train_a_bit(model_a, opt_a, steps=2, rng_seed=7)

        model_b = build_resnet(8, base_width=4, seed=50)
        opt_b = MomentumSGD(0.9, 1e-4)
        load_checkpoint(path, model_b, opt_b)
        _train_a_bit(model_b, opt_b, steps=2, rng_seed=7)
        for name, value in model_b.state_dict().items():
            np.testing.assert_allclose(
                value, model_a.state_dict()[name], atol=1e-6, err_msg=name
            )

    def test_architecture_mismatch_rejected(self, tmp_path):
        model = build_mlp(16, (8,), num_classes=3, seed=0)
        path = tmp_path / "mlp.npz"
        save_checkpoint(path, model)
        other = build_mlp(16, (4,), num_classes=3, seed=0)
        with pytest.raises(ValueError):
            load_checkpoint(path, other)


class TestModelStats:
    def test_linear_flops(self):
        model = build_mlp(16, (), num_classes=4, seed=0)  # single Linear
        stats = model_stats(model, (1, 4, 4))
        assert stats.parameters == 16 * 4 + 4
        assert stats.flops == 2 * 16 * 4

    def test_conv_flops_hand_computed(self):
        from repro.nn import Conv2d, Sequential

        rng = np.random.default_rng(0)
        model = Sequential(Conv2d(2, 3, 3, stride=1, pad=1, name="c", rng=rng))
        stats = model_stats(model, (2, 8, 8))
        # 3 filters * 8*8 outputs * 2*3*3 inputs * 2 ops
        assert stats.flops == 2 * 3 * 8 * 8 * 2 * 3 * 3
        assert stats.parameters == 3 * 2 * 3 * 3

    def test_resnet_ratio_decreases_with_depth(self):
        """Deeper CIFAR ResNets add compute faster than parameters in their
        early stages — the low params-per-FLOP property the paper exploits
        (§5.2). Sanity: the ratio stays within an order of magnitude."""
        shallow = model_stats(build_resnet(8, base_width=8), (3, 16, 16))
        deep = model_stats(build_resnet(20, base_width=8), (3, 16, 16))
        assert deep.parameters > shallow.parameters
        assert deep.flops > shallow.flops
        assert 0.2 < deep.params_per_mflop / shallow.params_per_mflop < 5

    def test_bytes_per_step(self):
        stats = model_stats(build_resnet(8, base_width=4), (3, 8, 8))
        assert stats.bytes_per_step == 4 * stats.parameters

    def test_strided_geometry_tracked(self):
        # Stage transitions halve spatial dims; FLOPs must use the reduced
        # geometry, so doubling the input size ~4x the FLOPs.
        small = model_stats(build_resnet(8, base_width=4), (3, 8, 8))
        large = model_stats(build_resnet(8, base_width=4), (3, 16, 16))
        assert large.flops == pytest.approx(4 * small.flops, rel=0.05)
        assert large.parameters == small.parameters
