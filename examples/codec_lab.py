#!/usr/bin/env python
"""Codec lab: capture a gradient trace once, rank every codec offline.

The expensive part of evaluating a compression scheme is the training run
behind it. This example shows the trace workflow that decouples the two:

1. Train a small ResNet for a few steps with plain SGD, recording every
   gradient tensor into a :class:`repro.trace.TraceRecorder`.
2. Save the trace to disk (a portable ``.npz``).
3. Replay the *same* captured stream through every registered codec with
   live-equivalent per-tensor contexts (error feedback included) and rank
   them by measured wire cost — no retraining per scheme.

This is how Figure 9-style analyses (bits/value over steps) or a new
codec prototype can be iterated in seconds.

Run:  python examples/codec_lab.py [--steps N] [--trace PATH]
"""

import argparse
import tempfile
from pathlib import Path

from repro.compression import available_schemes, make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.nn import CosineDecay, MomentumSGD, SoftmaxCrossEntropy, build_resnet
from repro.trace import TraceRecorder, TraceReader, replay
from repro.utils.format import format_table, human_bytes
from repro.utils.seeding import derive_rng


def capture_trace(steps: int, path: Path) -> Path:
    """Single-node training loop that archives every gradient tensor."""
    model = build_resnet(8, base_width=8, seed=42)
    dataset = SyntheticImageDataset(DatasetSpec(image_size=16, seed=0))
    images, labels = dataset.train_shard(0, 512)
    loss_fn = SoftmaxCrossEntropy()
    optimizer = MomentumSGD(momentum=0.9, weight_decay=1e-4)
    schedule = CosineDecay(0.05, steps)
    rng = derive_rng(0, "codec-lab", "batches")
    recorder = TraceRecorder()

    batch = 32
    for step in range(steps):
        idx = rng.choice(images.shape[0], size=batch, replace=False)
        logits = model.forward(images[idx], training=True)
        loss = loss_fn.forward(logits, labels[idx])
        model.backward(loss_fn.backward())
        for param in model.parameters():
            recorder.record(step, "push", param.name, param.grad)
        optimizer.step(model.parameters(), schedule(step))
        if step % max(1, steps // 4) == 0:
            print(f"  step {step:3d}  loss {loss:.3f}  ({len(recorder)} records)")
    saved = recorder.save(path)
    print(f"captured {len(recorder)} state-change tensors -> {saved}")
    return saved


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=12)
    parser.add_argument("--trace", type=Path, default=None)
    args = parser.parse_args()

    trace_path = args.trace or Path(tempfile.mkdtemp()) / "gradients.npz"
    print(f"[1/2] capturing {args.steps} steps of real ResNet gradients")
    saved = capture_trace(args.steps, trace_path)

    print("\n[2/2] replaying the trace through every registered codec")
    rows = []
    for name in available_schemes():
        stats = replay(TraceReader(saved), make_compressor(name, seed=0))
        rows.append(
            (
                name,
                stats.compression_ratio,
                stats.bits_per_value,
                stats.wire_bytes,
                stats.deferred,
            )
        )
    rows.sort(key=lambda r: -r[1])
    print(
        format_table(
            ["Scheme", "Ratio", "bits/value", "Wire", "Deferred"],
            [
                [name, f"{ratio:.1f}x", f"{bits:.3f}", human_bytes(wire), deferred]
                for name, ratio, bits, wire, deferred in rows
            ],
            title="Offline codec ranking on one captured gradient stream",
        )
    )
    print(
        "\nEvery scheme saw the identical stream with live-equivalent error"
        "\nfeedback — the ranking is what a full training re-run would measure,"
        "\nobtained without one."
    )


if __name__ == "__main__":
    main()
