#!/usr/bin/env python
"""Quickstart: compress a gradient tensor with 3LC.

Demonstrates the three-stage pipeline of the paper on a single tensor:
3-value quantization with sparsity multiplication, quartic encoding, and
zero-run encoding — plus error feedback across repeated transmissions.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CompressionContext, ThreeLCCodec, WireMessage


def main() -> None:
    rng = np.random.default_rng(0)
    # A gradient-like tensor: zero-centred, mostly small values.
    gradient = rng.normal(0.0, 0.01, size=(256, 512)).astype(np.float32)
    original_bytes = gradient.nbytes
    print(f"input: {gradient.shape} float32, {original_bytes:,} bytes")

    # --- one-shot compression at different sparsity multipliers -----------
    for s in (1.0, 1.5, 1.75, 1.9):
        codec = ThreeLCCodec(sparsity_multiplier=s)
        result = codec.compress(gradient)
        ratio = original_bytes / result.wire_size
        err = float(np.abs(gradient - result.reconstruction).max())
        bound = result.message.scalars[0] / 2
        print(
            f"  s={s:4.2f}: {result.wire_size:8,} bytes on the wire "
            f"({ratio:6.1f}x, {result.bits_per_value():.3f} bits/value), "
            f"max error {err:.2e} <= M/2 = {bound:.2e}"
        )

    # --- the wire format is self-describing -------------------------------
    codec = ThreeLCCodec(1.75)
    message = codec.compress(gradient).message
    raw = message.pack()  # bytes you could write to a socket
    decoded = codec.decompress(WireMessage.unpack(raw))
    print(f"\nround trip through {len(raw):,} raw bytes: shape {decoded.shape} restored")

    # --- error feedback across steps ---------------------------------------
    # Training transmits a similar gradient step after step. Without error
    # feedback, each step loses the same small values forever; the context's
    # accumulation buffer (paper §3.1) remembers and delivers them later, so
    # the *cumulative* transmitted signal tracks the cumulative truth.
    steps = 20
    with_feedback = CompressionContext(gradient.shape, ThreeLCCodec(1.0))
    without = CompressionContext(
        gradient.shape, ThreeLCCodec(1.0), error_feedback=False
    )
    total_ef = np.zeros_like(gradient, dtype=np.float64)
    total_no = np.zeros_like(gradient, dtype=np.float64)
    for _ in range(steps):
        total_ef += with_feedback.compress(gradient).reconstruction
        total_no += without.compress(gradient).reconstruction
    truth = steps * gradient.astype(np.float64)
    scale = float(np.abs(truth).mean())
    err_ef = float(np.abs(total_ef - truth).mean()) / scale
    err_no = float(np.abs(total_no - truth).mean()) / scale
    print(
        f"\nerror feedback over {steps} repeated transmissions at s=1.0:"
        f"\n  relative error with accumulation buffer: {err_ef:7.2%}"
        f"\n  relative error without:                  {err_no:7.2%}"
    )


if __name__ == "__main__":
    main()
