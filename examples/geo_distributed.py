#!/usr/bin/env python
"""Geo-distributed training planner: server placement on a real WAN.

The paper's §1 motivates 3LC with geo-distributed deployments whose
training data is pinned to regulatory regions (EU data residency, China's
Cybersecurity Law) and whose state changes must cross slow, sometimes
metered WAN links. This example plans such a deployment end to end:

1. Train briefly on the in-process cluster to *measure* per-step push and
   pull bytes for a chosen compression scheme (no modelled traffic).
2. Feed those measurements into the WAN topology model: three regions,
   heterogeneous inter-region bandwidths.
3. Report, for every scheme: the best server placement, the step's
   communication time there, and the monthly WAN bill a metered link
   would charge — the paper's "cost-effective distributed ML" concern.

Run:  python examples/geo_distributed.py [--steps N]
"""

import argparse

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed import Cluster, ClusterConfig
from repro.network import Region, WanTopology
from repro.nn import CosineDecay, build_resnet, scale_lr_for_workers
from repro.utils.format import format_table, human_bytes

SCHEMES = (
    "32-bit float",
    "8-bit int",
    "5% sparsification",
    "3LC (s=1.00)",
    "3LC (s=1.75)",
)

#: A three-region deployment: most workers in the EU (data residency),
#: a US contingent, and a small mobile-edge group behind a thin pipe.
TOPOLOGY = WanTopology(
    [
        Region("eu-west", workers=6, intra_bps=1e9),
        Region("us-east", workers=3, intra_bps=1e9),
        Region("mobile-edge", workers=1, intra_bps=100e6),
    ],
    inter_bps={
        ("eu-west", "us-east"): 100e6,
        ("eu-west", "mobile-edge"): 10e6,
        ("us-east", "mobile-edge"): 10e6,
    },
    default_inter_bps=10e6,
)

#: What a metered WAN link bills per GB crossing a regional boundary
#: (typical inter-region egress pricing).
DOLLARS_PER_GB = 0.09


def measure_per_worker_bytes(scheme_name: str, steps: int) -> tuple[float, float]:
    """Short real training run; returns mean per-worker (push, pull) bytes."""
    workers = 4
    dataset = SyntheticImageDataset(DatasetSpec(image_size=16, seed=0))
    cluster = Cluster(
        lambda: build_resnet(8, base_width=8, seed=42),
        dataset,
        make_compressor(scheme_name, seed=0),
        CosineDecay(scale_lr_for_workers(0.02, workers), steps),
        ClusterConfig(num_workers=workers, batch_size=16, shard_size=256, seed=0),
    )
    cluster.train(steps)
    steps_recorded = len(cluster.traffic.steps)
    push = sum(s.push_bytes for s in cluster.traffic.steps)
    pull = sum(s.pull_bytes_shared for s in cluster.traffic.steps)
    # Push bytes are summed over workers; the shared pull is compressed
    # once and every worker receives a copy.
    return push / steps_recorded / workers, pull / steps_recorded


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=30)
    parser.add_argument(
        "--steps-per-month",
        type=int,
        default=2_000_000,
        help="training steps a continuously-learning deployment runs monthly",
    )
    args = parser.parse_args()

    print(f"Topology: {', '.join(TOPOLOGY.regions)} "
          f"({TOPOLOGY.total_workers} workers total)\n")

    rows = []
    for scheme in SCHEMES:
        push, pull = measure_per_worker_bytes(scheme, args.steps)
        best = TOPOLOGY.best_server_placement(push, pull)
        monthly_wan = best.inter_region_bytes * args.steps_per_month
        rows.append(
            [
                scheme,
                best.server_region,
                f"{best.seconds * 1e3:.1f} ms",
                best.bottleneck_region,
                human_bytes(monthly_wan),
                f"${monthly_wan / 1e9 * DOLLARS_PER_GB:,.0f}",
            ]
        )
    print(
        format_table(
            [
                "Scheme",
                "Server",
                "Comm/step",
                "Bottleneck",
                "WAN bytes/month",
                "Egress bill",
            ],
            rows,
            title="Best placement and metered-WAN cost per scheme",
        )
    )
    print(
        "\nReading: compression does not change the *placement* (worker mass"
        "\ndecides that) but divides both the per-step barrier time and the"
        "\negress bill by its compression ratio — the paper's argument that"
        "\n3LC makes WAN and metered deployments practical."
    )


if __name__ == "__main__":
    main()
