#!/usr/bin/env python
"""Sharded parameter servers: spreading the hot uplink (Figure 1).

The paper's architecture diagram shows several servers, each storing "a
partition of the global model" (§2); its testbed used one server machine,
whose uplink carries every push and every pull fan-out copy. This example
measures what sharding buys on real compressed traffic:

1. Build a model and generate one step of real gradients per worker.
2. Compress pushes exactly as the cluster would (per-tensor contexts).
3. Step a sharded parameter service at several shard counts and report
   the hottest server link's bytes — with and without 3LC.

The punchline the table shows: sharding and compression attack the same
bottleneck multiplicatively. Four shards x 39x compression turn a
multi-megabyte uplink into a few kilobytes per server per step.

Run:  python examples/sharded_servers.py [--workers N]
"""

import argparse

import numpy as np

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed import ShardedParameterService
from repro.nn import ConstantLR, MomentumSGD, SoftmaxCrossEntropy, build_resnet
from repro.utils.format import format_table, human_bytes


def real_gradients(workers: int):
    """One backward pass per worker on its own shard of data."""
    dataset = SyntheticImageDataset(DatasetSpec(image_size=16, seed=0))
    loss_fn = SoftmaxCrossEntropy()
    model = build_resnet(8, base_width=16, seed=42)
    grads = []
    for worker in range(workers):
        images, labels = dataset.train_shard(worker, 32)
        logits = model.forward(images, training=True)
        loss_fn.forward(logits, labels)
        model.zero_grad()
        model.backward(loss_fn.backward())
        grads.append({p.name: p.grad.copy() for p in model.parameters()})
    return model, grads


def hot_link(model, grads, scheme_name: str, num_shards: int, workers: int) -> int:
    scheme = make_compressor(scheme_name, seed=0)
    service = ShardedParameterService(
        model.parameters(),
        lambda: MomentumSGD(0.9, 1e-4),
        ConstantLR(0.1),
        scheme,
        num_workers=workers,
        num_shards=num_shards,
    )
    # Mirror the worker's small-layer bypass (§5.1): tensors below the
    # service threshold travel as raw float32.
    sizes = {p.name: p.size for p in model.parameters()}
    contexts = {
        (w, name): (
            scheme.make_bypass_context(g.shape, key=("push", w, name))
            if sizes[name] < 256
            else scheme.make_context(g.shape, key=("push", w, name))
        )
        for w, worker_grads in enumerate(grads)
        for name, g in worker_grads.items()
    }
    pushes = [
        {name: contexts[(w, name)].compress(g) for name, g in worker_grads.items()}
        for w, worker_grads in enumerate(grads)
    ]
    service.step(pushes)
    return service.hot_link_bytes(pull_fanout=workers)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    model, grads = real_gradients(args.workers)
    total_params = sum(p.size for p in model.parameters())
    print(f"model: {total_params:,} parameters, {args.workers} workers\n")

    rows = []
    for scheme_name in ("32-bit float", "3LC (s=1.00)"):
        for shards in (1, 2, 4):
            rows.append(
                [
                    scheme_name,
                    shards,
                    human_bytes(
                        hot_link(model, grads, scheme_name, shards, args.workers)
                    ),
                ]
            )
    print(
        format_table(
            ["Scheme", "Servers", "Hottest server link / step"],
            rows,
            title="Uplink load vs. shard count (one BSP step, measured bytes)",
        )
    )
    print(
        "\nSharding divides the per-server link by the partition balance;"
        "\ncompression divides it again by the codec ratio. The two compose"
        "\nbecause 3LC's contexts are per-tensor: a tensor's compression"
        "\nstate never spans servers (see repro.distributed.sharding)."
    )


if __name__ == "__main__":
    main()
