#!/usr/bin/env python
"""Distributed training with 3LC vs. the uncompressed baseline.

Reproduces the paper's core experiment at demo scale: a ResNet trained by a
simulated parameter-server cluster, once with 32-bit float state change
transmission and once with 3LC, comparing accuracy, traffic, and modelled
wall-clock time on a 10 Mbps WAN link.

Run:  python examples/distributed_training.py [--steps N] [--workers K]
"""

import argparse

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed import Cluster, ClusterConfig
from repro.network import StepTimeModel, link
from repro.nn import CosineDecay, build_resnet, scale_lr_for_workers
from repro.utils.format import human_bytes


def train_once(scheme_name: str, steps: int, workers: int) -> None:
    dataset = SyntheticImageDataset(DatasetSpec(image_size=16, seed=0))
    config = ClusterConfig(
        num_workers=workers, batch_size=16, shard_size=256, seed=0
    )
    schedule = CosineDecay(scale_lr_for_workers(0.02, workers), steps)
    cluster = Cluster(
        lambda: build_resnet(8, base_width=8, seed=42),
        dataset,
        make_compressor(scheme_name, seed=0),
        schedule,
        config,
    )
    print(f"\n--- {scheme_name} ---")
    for eval_result in cluster.train(steps, eval_every=max(1, steps // 4)):
        print(
            f"  step {eval_result.step:4d}: "
            f"test accuracy {100 * eval_result.test_accuracy:5.1f}%, "
            f"test loss {eval_result.test_loss:.3f}"
        )
    meter = cluster.traffic
    time_model = StepTimeModel(compute_scale=0.05, codec_scale=0.5)
    wan_minutes = time_model.total_seconds(meter, link("10Mbps")) / 60
    print(
        f"  traffic: {human_bytes(meter.total_wire_bytes)} on the wire "
        f"({meter.compression_ratio():.1f}x reduction, "
        f"{meter.average_bits_per_value():.3f} bits/value)"
    )
    print(f"  modelled training time @ 10 Mbps: {wan_minutes:.1f} minutes")
    print(f"  replica drift from global model: {cluster.model_divergence():.4f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=60)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()
    for scheme in ("32-bit float", "3LC (s=1.00)", "3LC (s=1.75)"):
        train_once(scheme, args.steps, args.workers)


if __name__ == "__main__":
    main()
