#!/usr/bin/env python
"""Two-tier step time across link speeds: where the core bottleneck bites.

The hierarchical topology (``--topology hier``) composes a rack-local
ring all-reduce with a cross-rack parameter service: gradients ride fast
rack links, one compressed aggregate per rack crosses the scarce core,
and the shared model deltas fan back down through both tiers. This
example makes the two-tier cost surface inspectable: it trains a small
hierarchical cluster once, records every step's tier-coupled
transmission plan, and replays the run through the discrete-event
simulator at the paper's three fabric bandwidths — serialized and with
per-layer overlap — reporting per-tier link utilization alongside.

The printed table shows the regime the paper targets: the rack tier
stays mostly idle while the core (at a tenth of the fabric rate)
saturates, which is exactly where 3LC's compression of the cross-rack
aggregate pays.

Run:  python examples/hier_sweep.py [--steps N] [--cross-bw FRACTION]
"""

import argparse

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.exchange import EngineConfig, ExchangeEngine
from repro.netsim import NetworkSimulator, link_model_for
from repro.network.bandwidth import LINKS
from repro.network.timing import StepTimeModel
from repro.nn import CosineDecay, build_resnet
from repro.nn.stats import profile_backward
from repro.utils.format import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=8)
    parser.add_argument("--racks", type=int, default=2)
    parser.add_argument("--rack-size", type=int, default=2)
    parser.add_argument(
        "--cross-bw", type=float, default=0.1,
        help="cross-rack uplink rate as a fraction of the fabric rate",
    )
    args = parser.parse_args()

    num_workers = args.racks * args.rack_size
    dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
    model_factory = lambda: build_resnet(8, base_width=8, seed=1)
    engine = ExchangeEngine(
        model_factory,
        dataset,
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, args.steps),
        EngineConfig(
            num_workers=num_workers,
            batch_size=8,
            shard_size=64,
            seed=0,
            topology="hier",
            racks=args.racks,
            rack_size=args.rack_size,
            record_transmissions=True,
        ),
    )
    engine.train(args.steps)
    meter = engine.traffic
    print(
        f"trained {args.racks} racks x {args.rack_size} workers over "
        f"{args.steps} steps: "
        f"{meter.total_intra_rack_bytes / 1e6:.2f} MB intra-rack, "
        f"{meter.total_cross_rack_bytes / 1e6:.2f} MB cross-rack "
        f"(core at {args.cross_bw:.0%} of the fabric rate)\n"
    )

    images, labels = dataset.train_shard(0, 8)
    timeline = profile_backward(model_factory(), images, labels)
    time_model = StepTimeModel(compute_scale=0.05, codec_scale=0.5)
    rows = []
    for link_name, spec in LINKS.items():
        lm = link_model_for(
            "hier",
            spec,
            racks=args.racks,
            rack_size=args.rack_size,
            cross_bw_fraction=args.cross_bw,
        )
        serialized = NetworkSimulator(
            timeline, lm, time_model, overlap=False
        ).simulate_run(engine.transmissions)
        overlapped = NetworkSimulator(
            timeline, lm, time_model, overlap=True
        ).simulate_run(engine.transmissions)
        utilization = overlapped.mean_link_utilization
        rack_busy = max(
            v for k, v in utilization.items() if k.startswith("rack")
        )
        cross_busy = max(
            v for k, v in utilization.items() if k.startswith("cross")
        )
        rows.append(
            [
                link_name,
                f"{1e3 * serialized.mean_step_seconds:.2f} ms",
                f"{1e3 * overlapped.mean_step_seconds:.2f} ms",
                f"{serialized.mean_step_seconds / overlapped.mean_step_seconds:.2f}x",
                f"{overlapped.mean_overlap:.2f}",
                f"{cross_busy:.2f}",
                f"{rack_busy:.2f}",
            ]
        )
    print(
        format_table(
            [
                "Fabric link",
                "serialized",
                "per-layer overlap",
                "speedup",
                "measured overlap",
                "cross util",
                "rack util",
            ],
            rows,
            title=(
                "Two-tier step time, 3LC (s=1.00), core at "
                f"{args.cross_bw:.0%} of fabric"
            ),
        )
    )
    print(
        "\nthe cross column is the scarce tier's busy fraction; when it"
        "\napproaches 1.0 the core sets the step time and compressing the"
        "\nper-rack aggregate is what buys speed (bench_hier.py sweeps this)."
    )


if __name__ == "__main__":
    main()
