#!/usr/bin/env python
"""WAN deployment planner: which scheme for which link?

The paper's motivation (§1) is geo-distributed and metered-network
training. This example sweeps every compression scheme over a range of
link bandwidths — including links slower than the paper's 10 Mbps, as in
federated/mobile settings — and reports the modelled per-step time and the
bytes a metered connection would bill per 1000 steps, using traffic
measured from a short real training run.

Run:  python examples/wan_deployment_planner.py [--steps N]
"""

import argparse

from repro.compression import TABLE1_SCHEMES, make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed import Cluster, ClusterConfig
from repro.network import LinkSpec, StepTimeModel
from repro.nn import CosineDecay, build_resnet, scale_lr_for_workers
from repro.utils.format import format_table, human_bytes

LINKS = [
    LinkSpec("1Mbps (metered mobile)", 1e6),
    LinkSpec("10Mbps (WAN)", 10e6),
    LinkSpec("100Mbps", 100e6),
    LinkSpec("1Gbps (LAN)", 1e9),
]


def measure_scheme(scheme_name: str, steps: int):
    dataset = SyntheticImageDataset(DatasetSpec(image_size=16, seed=0))
    config = ClusterConfig(num_workers=4, batch_size=16, shard_size=256, seed=0)
    cluster = Cluster(
        lambda: build_resnet(8, base_width=8, seed=42),
        dataset,
        make_compressor(scheme_name, seed=0),
        CosineDecay(scale_lr_for_workers(0.02, 4), steps),
        config,
    )
    cluster.train(steps)
    return cluster.traffic


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=30)
    args = parser.parse_args()

    time_model = StepTimeModel(compute_scale=0.05, codec_scale=0.5)
    rows = []
    for scheme_name in TABLE1_SCHEMES:
        meter = measure_scheme(scheme_name, args.steps)
        per_1k_steps = meter.mean_wire_bytes() * 1000
        row = [scheme_name, human_bytes(per_1k_steps)]
        for spec in LINKS:
            row.append(f"{time_model.mean_step_seconds(meter, spec):.3f}")
        rows.append(row)

    headers = ["Design", "bytes/1k steps"] + [f"s/step @{l.name.split()[0]}" for l in LINKS]
    print(format_table(headers, rows, title="WAN deployment planner (measured traffic, modelled time)"))
    print(
        "\nReading guide: on metered links, pick the design with the smallest"
        "\nbytes/1k-steps that holds accuracy (see Table 1 / bench_table1);"
        "\non fast LANs, codec overhead dominates and aggressive compression"
        "\nstops paying off — the paper's §5.3 finding."
    )


if __name__ == "__main__":
    main()
