#!/usr/bin/env python
"""Serialized vs. per-layer-overlapped step time across link speeds.

The paper's speedup claims assume communication hides behind backward
computation via fine-grained per-layer barriers (§2.1). This example makes
that assumption inspectable: it trains a small parameter-server cluster
once, records every step's transmission plan, and replays the run through
the discrete-event network simulator (``repro.netsim``) twice per link —
once fully serialized (compute, then codec, then transfer) and once with
per-layer overlap scheduling — at the paper's three bandwidths.

The printed table shows where overlap matters: on slow links the step is
communication-bound and hiding a compute-pass worth of transfer barely
dents it; near the balance point the overlapped schedule visibly beats the
serialized one; on fast links there is little communication left to hide.
The "measured overlap" column is the fraction the analytic StepTimeModel
previously hardcoded as 0.9.

Run:  python examples/overlap_sweep.py [--steps N]
"""

import argparse

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.exchange import EngineConfig, ExchangeEngine
from repro.netsim import NetworkSimulator, single_server_links
from repro.network.bandwidth import LINKS
from repro.network.timing import StepTimeModel
from repro.nn import CosineDecay, build_resnet
from repro.nn.stats import profile_backward
from repro.utils.format import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
    model_factory = lambda: build_resnet(8, base_width=8, seed=1)
    engine = ExchangeEngine(
        model_factory,
        dataset,
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, args.steps),
        EngineConfig(
            num_workers=args.workers,
            batch_size=8,
            shard_size=64,
            seed=0,
            record_transmissions=True,
        ),
    )
    engine.train(args.steps)

    # Per-layer backward profile: gradient i becomes transmittable when
    # its layer's backward slice completes.
    images, labels = dataset.train_shard(0, 8)
    timeline = profile_backward(model_factory(), images, labels)
    print(
        f"profiled {len(timeline.layers)} backward layers over "
        f"{args.steps} recorded steps\n"
    )

    time_model = StepTimeModel(compute_scale=0.05, codec_scale=0.5)
    rows = []
    for link_name, spec in LINKS.items():
        serialized = NetworkSimulator(
            timeline, single_server_links(spec), time_model, overlap=False
        ).simulate_run(engine.transmissions)
        overlapped = NetworkSimulator(
            timeline, single_server_links(spec), time_model, overlap=True
        ).simulate_run(engine.transmissions)
        rows.append(
            [
                link_name,
                f"{1e3 * serialized.mean_step_seconds:.2f} ms",
                f"{1e3 * overlapped.mean_step_seconds:.2f} ms",
                f"{serialized.mean_step_seconds / overlapped.mean_step_seconds:.2f}x",
                f"{overlapped.mean_overlap:.2f}",
                f"{100 * overlapped.mean_hidden_fraction:.0f}%",
            ]
        )
    print(
        format_table(
            [
                "Link",
                "serialized",
                "per-layer overlap",
                "speedup",
                "measured overlap",
                "comm hidden",
            ],
            rows,
            title="Serialized vs per-layer-overlapped step time (3LC s=1.00)",
        )
    )
    print(
        "\nmeasured overlap replaces the StepTimeModel's calibrated 0.9 "
        "constant;\n'comm hidden' is the share of transfer time that ran "
        "under other work."
    )


if __name__ == "__main__":
    main()
