#!/usr/bin/env python
"""Topology study: does point-to-point compression survive all-reduce?

The paper's §3 design is explicitly point-to-point: one lossy stage per
direction, no coordination among nodes. Modern in-datacenter frameworks
instead use ring all-reduce, where every value is re-encoded at each of
the N-1 hops. This example demonstrates, on real tensors, why 3LC targets
the parameter-server exchange:

* an uncompressed ring already balances links (no server hotspot), so
  there is less for compression to win;
* chaining ternary quantization across hops compounds error badly, while
  a single point-to-point quantization stays faithful;
* fine-grained codecs (8-bit) do compose with the ring — the niche where
  per-hop compression is safe.

Run:  python examples/topology_study.py [--nodes N] [--size S]
"""

import argparse

import numpy as np

from repro.compression import ThreeLCCompressor, make_compressor
from repro.distributed import RingAllReduce
from repro.utils.format import format_table, human_bytes


def ps_round(tensors, compressor):
    """One parameter-server exchange with shared compressed pulls."""
    wire = 0
    decoded = []
    for i, t in enumerate(tensors):
        result = compressor.make_context(t.shape, key=("push", i)).compress(t)
        wire += result.wire_size
        decoded.append(compressor.decompress(result.message))
    mean = np.mean(decoded, axis=0).astype(np.float32)
    pull = compressor.make_context(mean.shape, key=("pull",)).compress(mean)
    hot_link = wire + len(tensors) * pull.wire_size
    return np.asarray(compressor.decompress(pull.message)), hot_link


def relative_error(result: np.ndarray, expected: np.ndarray) -> float:
    return float(np.linalg.norm(result - expected) / np.linalg.norm(expected))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--size", type=int, default=65536)
    args = parser.parse_args()

    rng = np.random.default_rng(7)
    tensors = [
        rng.normal(0, 0.01, size=args.size).astype(np.float32)
        for _ in range(args.nodes)
    ]
    expected = np.mean(tensors, axis=0)

    rows = []

    raw_ring = RingAllReduce(args.nodes, (args.size,)).reduce(tensors)
    rows.append(
        ["ring", "none", raw_ring.max_link_bytes,
         relative_error(raw_ring.outputs[0], expected)]
    )
    rows.append(["param server", "none", 2 * args.nodes * args.size * 4, 0.0])

    ring_3lc = RingAllReduce(
        args.nodes, (args.size,), ThreeLCCompressor(1.0)
    ).reduce(tensors)
    rows.append(
        ["ring", "3LC per hop", ring_3lc.max_link_bytes,
         relative_error(ring_3lc.outputs[0], expected)]
    )

    ps_out, ps_link = ps_round(tensors, ThreeLCCompressor(1.0))
    rows.append(
        ["param server", "3LC point-to-point", ps_link,
         relative_error(ps_out, expected)]
    )

    ring_8bit = RingAllReduce(
        args.nodes, (args.size,), make_compressor("8-bit int")
    ).reduce(tensors)
    rows.append(
        ["ring", "8-bit per hop", ring_8bit.max_link_bytes,
         relative_error(ring_8bit.outputs[0], expected)]
    )

    print(
        format_table(
            ["Topology", "Compression", "Hot-link bytes", "Rel. error of mean"],
            [
                [topo, scheme, human_bytes(link), f"{err:.3f}"]
                for topo, scheme, link, err in rows
            ],
            title=(
                f"Averaging one {args.size}-value gradient across "
                f"{args.nodes} nodes"
            ),
        )
    )
    print(
        "\nReading: the raw ring's hottest link already carries"
        f" {raw_ring.max_link_bytes / (2 * args.nodes * args.size * 4):.0%}"
        " of the parameter server's — compression has less to save there."
        "\nTernary quantization is coarse either way in a single exchange"
        "\n(error feedback across training steps is what recovers accuracy,"
        "\n§3.1), but chaining it over N-1 ring hops compounds the loss"
        "\nbeyond the single point-to-point stage — compare the two 3LC"
        "\nrows. 8-bit per hop is the safe mix for all-reduce fabrics."
    )


if __name__ == "__main__":
    main()
