#!/usr/bin/env python
"""Extending the library with a custom compression scheme.

Shows the downstream-user path: implement the two-class Compressor /
CompressorContext interface, and the whole stack — parameter-server
simulator, traffic meter, time model — works with your codec unchanged.

The demo scheme is *sign-SGD with error feedback*: 1 bit per value, global
mean-magnitude reconstruction (simpler than MQE 1-bit's per-partition
means). It is a realistic baseline that the paper's family of experiments
could have included.

Run:  python examples/custom_scheme.py
"""

import numpy as np

from repro.compression import Compressor, CompressorContext, CompressionResult
from repro.core.error_feedback import ErrorAccumulationBuffer
from repro.core.packets import CodecId, WireMessage
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed import Cluster, ClusterConfig
from repro.nn import CosineDecay, build_resnet, scale_lr_for_workers


class _SignContext(CompressorContext):
    def __init__(self, shape):
        super().__init__(shape)
        self.buffer = ErrorAccumulationBuffer(self.shape)

    def compress(self, tensor):
        arr = self._check_shape(tensor)
        corrected = self.buffer.add(arr)
        magnitude = float(np.abs(corrected).mean())
        positive = corrected >= 0
        message = WireMessage(
            # Reuse the 1-bit codec id: payload layout is identical
            # (bitmap + scalars), only the magnitude rule differs.
            codec_id=CodecId.ONEBIT_MQE,
            shape=arr.shape,
            payload=np.packbits(positive.reshape(-1)).tobytes(),
            scalars=(-magnitude, magnitude),
            dtype=np.float32,
        )
        reconstruction = np.where(
            positive, np.float32(magnitude), np.float32(-magnitude)
        ).astype(np.float32)
        self.buffer.subtract(reconstruction)
        return CompressionResult(message, reconstruction)

    def residual_norm(self):
        return self.buffer.l2_norm()


class SignSGDCompressor(Compressor):
    """1-bit sign compression with mean-magnitude reconstruction."""

    name = "signSGD + EF"

    def make_context(self, shape, *, key=()):
        return _SignContext(shape)

    def decompress(self, message):
        count = message.element_count
        bits = np.unpackbits(
            np.frombuffer(message.payload, dtype=np.uint8), count=count
        ).astype(bool)
        neg, pos = message.scalars
        return (
            np.where(bits, np.float32(pos), np.float32(neg))
            .astype(np.float32)
            .reshape(message.shape)
        )


def main() -> None:
    steps, workers = 60, 4
    dataset = SyntheticImageDataset(DatasetSpec(image_size=16, seed=0))
    for scheme in (SignSGDCompressor(),):
        cluster = Cluster(
            lambda: build_resnet(8, base_width=8, seed=42),
            dataset,
            scheme,
            CosineDecay(scale_lr_for_workers(0.02, workers), steps),
            ClusterConfig(num_workers=workers, batch_size=16, shard_size=256),
        )
        cluster.train(steps)
        final = cluster.evaluate(test_size=500)
        meter = cluster.traffic
        print(
            f"{scheme.name}: accuracy {100 * final.test_accuracy:.1f}%, "
            f"traffic reduction {meter.compression_ratio():.1f}x "
            f"({meter.average_bits_per_value():.2f} bits/value)"
        )
    print("custom scheme plugged into the full stack with zero framework changes")


if __name__ == "__main__":
    main()
