"""Shim for environments without the ``wheel`` package.

``pip install -e .`` needs PEP 660 editable-wheel support, which the
pinned setuptools in the offline evaluation environment lacks. Running
``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
where wheel is available) installs the same editable package.
"""

from setuptools import setup

setup()
