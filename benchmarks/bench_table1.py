"""Regenerates Table 1: speedups over the baseline and test accuracy.

Paper's Table 1 (10 workers, ResNet-110, CIFAR-10; reproduction scale in
EXPERIMENTS.md):

    Design               @10Mbps @100Mbps @1Gbps  Accuracy  Diff
    32-bit float          1.00     1.00    1.00    93.37
    8-bit int             3.62     3.47    1.51    93.33    -0.04
    Stoch 3-value + QE   12.3      7.51    1.53    92.06    -1.31
    MQE 1-bit int        14.6      7.40    1.30    93.21    -0.16
    25% sparsification    3.25     3.11    1.33    93.40    +0.03
    5% sparsification     8.98     6.62    1.44    92.87    -0.50
    2 local steps         1.92     1.87    1.38    93.03    -0.34
    3LC (s=1.00)         15.9      7.97    1.53    93.32    -0.05
    3LC (s=1.50)         20.9      8.70    1.53    93.29    -0.08
    3LC (s=1.75)         22.8      9.04    1.53    93.51    +0.14
    3LC (s=1.90)         22.8      9.22    1.55    93.10    -0.27

Shape assertions (not absolute numbers): 3LC achieves the best 10 Mbps
speedup; its speedups grow with ``s``; speedups shrink as bandwidth grows;
moderate 3LC keeps accuracy within a small margin of the baseline.
"""

from repro.harness.tables import table1

from benchmarks.conftest import emit


def test_table1(runner, benchmark):
    rows, text = benchmark.pedantic(
        lambda: table1(runner), rounds=1, iterations=1
    )
    emit("Table 1 (reproduction)", text)
    by_name = {r.scheme: r for r in rows}

    # The baseline is its own reference point.
    assert by_name["32-bit float"].speedup_10mbps == 1.0

    # 3LC gives the best speedup on the slowest link (paper's headline).
    best = max(rows, key=lambda r: r.speedup_10mbps)
    assert best.scheme.startswith("3LC")

    # Speedup grows with the sparsity multiplier at 10 Mbps.
    s_sweep = [
        by_name[f"3LC (s={s})"].speedup_10mbps
        for s in ("1.00", "1.50", "1.75", "1.90")
    ]
    assert s_sweep == sorted(s_sweep)

    # Traffic reduction matters less as bandwidth grows.
    for row in rows:
        assert row.speedup_10mbps >= row.speedup_100mbps >= row.speedup_1gbps * 0.98

    # Compression beats no compression on constrained links.
    assert by_name["3LC (s=1.00)"].speedup_10mbps > 5.0
    assert by_name["3LC (s=1.00)"].speedup_10mbps > by_name["8-bit int"].speedup_10mbps
    assert (
        by_name["3LC (s=1.00)"].speedup_10mbps
        > by_name["25% sparsification"].speedup_10mbps
    )
    assert by_name["2 local steps"].speedup_10mbps < 2.5  # ~2x traffic saving

    # Accuracy: moderate 3LC stays close to the baseline (paper: -0.05%);
    # our noisier small-scale runs get a wider but still tight margin.
    assert abs(by_name["3LC (s=1.00)"].accuracy_difference) < 0.03
    assert abs(by_name["8-bit int"].accuracy_difference) < 0.03
    # The most aggressive setting is the worst 3LC variant (paper: s=1.90
    # "performs highly aggressive traffic compression" and loses accuracy).
    threelc_accs = {
        s: by_name[f"3LC (s={s})"].accuracy for s in ("1.00", "1.50", "1.75", "1.90")
    }
    assert threelc_accs["1.90"] <= max(threelc_accs.values())
