#!/usr/bin/env python
"""Wire-plan autotuner trajectory: search quality and parallel scaling.

The tuner's claim is twofold: it finds plans the default configuration
leaves on the table, and the parallel scoring pool changes wall-clock
only — never the answer. This benchmark runs the cost-model search on
the bench MLP under the hierarchical base config (2 racks x 2 workers,
scarce cross-rack uplink at 10 Mbps) and records the best-so-far
trajectory (simulated step time vs evaluations vs wall-clock) into
``BENCH_tuner.json``.

``--check`` asserts the acceptance criteria directly:

* the found plan's simulated step time is >= 10% below the default
  plan's, within <= 200 evaluations;
* ``--jobs N`` produces a byte-identical plan artifact to ``--jobs 1``
  (always asserted — determinism is independent of core count);
* ``--jobs 4`` cuts wall-clock >= 2x vs serial — asserted only when the
  machine has >= 4 cores and ``--jobs`` >= 4 (printed as SKIP
  otherwise: the speedup is physically unavailable on fewer cores).

Run:  python benchmarks/bench_tuner.py [--smoke] [--check] [--json PATH]
                                       [--jobs N] [--budget N] [--seed N]
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.harness.config import FAST_CONFIG
from repro.tuner.artifact import plan_to_dict, save_plan
from repro.tuner.parallel import ParallelScorer
from repro.tuner.search import tune
from repro.tuner.space import default_space
from repro.utils.format import format_table

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_tuner.json"

#: Acceptance: the tuned plan beats the default by at least this margin.
TARGET_IMPROVEMENT = 0.10

#: Acceptance: within at most this many simulator evaluations.
MAX_EVALUATIONS = 200

#: Acceptance: parallel scaling target when the cores exist.
TARGET_WALL_SPEEDUP = 2.0

LINK = "10Mbps"
STRATEGY = "model"


def bench_base_config(seed: int):
    """The bench MLP under the hierarchical base config.

    Hier with a scarce cross-rack uplink is where the default plan has
    the most headroom — the scenario the autotuner exists for. One seed
    reaches every stochastic layer (and, separately, plan sampling).
    """
    return FAST_CONFIG.scaled(
        model_family="mlp",
        num_workers=4,
        topology="hier",
        racks=2,
        rack_size=2,
        cross_bw_fraction=0.1,
        model_seed=seed,
        dataset_seed=seed,
        cluster_seed=seed,
        scheme_seed=seed,
    )


def run_tuner(config, *, budget: int, seed: int, jobs: int):
    """One tuner run; returns (result, artifact_dict, wall_seconds)."""
    space = default_space(config)
    t0 = time.perf_counter()
    with ParallelScorer(space, jobs=jobs, link=LINK) as scorer:
        result = tune(
            space, scorer, strategy=STRATEGY, budget=budget, seed=seed
        )
    wall = time.perf_counter() - t0
    return result, plan_to_dict(result, space, link=LINK), wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI scale: small search budget"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the acceptance criteria (improvement, budget, "
        "parallel bit-identity, gated wall-clock scaling)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the trajectory (the committed baseline is "
        "benchmarks/BENCH_tuner.json)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="job count for the parallel run compared against serial "
        "(default 2)",
    )
    parser.add_argument(
        "--budget", type=int, default=None, help="evaluation budget override"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--plan-out", metavar="PATH", default=None,
        help="also write the winning repro.plan/v1 artifact to PATH",
    )
    args = parser.parse_args(argv)

    budget = args.budget if args.budget is not None else (24 if args.smoke else 96)
    budget = min(budget, MAX_EVALUATIONS)
    jobs = max(2, args.jobs)
    config = bench_base_config(args.seed)

    result, artifact, wall_serial = run_tuner(
        config, budget=budget, seed=args.seed, jobs=1
    )
    result_par, artifact_par, wall_parallel = run_tuner(
        config, budget=budget, seed=args.seed, jobs=jobs
    )

    identical = json.dumps(artifact, sort_keys=True) == json.dumps(
        artifact_par, sort_keys=True
    )
    best = result.best
    table = format_table(
        ["evals", "wall s", "best step s", "improvement"],
        [
            [
                str(p.evaluations),
                f"{p.wall_seconds:.2f}",
                f"{p.best_step_seconds:.4g}",
                f"{100 * (1 - p.best_step_seconds / result.default.step_seconds):+.1f}%",
            ]
            for p in result.trajectory
        ],
    )
    mode = "smoke" if args.smoke else "full"
    print(f"=== wire-plan autotuner trajectory ({mode}, {STRATEGY}) ===")
    print(table)
    print(
        f"default plan: {result.default.point.scheme} / "
        f"{result.default.point.topology} -> "
        f"{result.default.step_seconds:.4g} s/step @{LINK}"
    )
    print(
        f"best plan:    {best.point.scheme} / {best.point.topology} "
        f"(priority={best.point.transmission_priority}, "
        f"fuse={best.point.fuse}) -> {best.step_seconds:.4g} s/step "
        f"({100 * result.improvement:+.1f}%)"
    )
    print(
        f"{result.evaluations}/{budget} evaluations; wall {wall_serial:.1f}s "
        f"serial vs {wall_parallel:.1f}s at --jobs {jobs}; artifacts "
        f"{'bit-identical' if identical else 'DIVERGED'}"
    )

    payload = {
        "benchmark": "tuner",
        "mode": mode,
        "strategy": STRATEGY,
        "budget": budget,
        "seed": args.seed,
        "link": LINK,
        "evaluations": result.evaluations,
        "default_step_seconds": result.default.step_seconds,
        "best_step_seconds": best.step_seconds,
        "improvement": result.improvement,
        "best_plan": best.point.as_dict(),
        "trajectory": [
            {
                "evaluations": p.evaluations,
                "wall_seconds": p.wall_seconds,
                "best_step_seconds": p.best_step_seconds,
            }
            for p in result.trajectory
        ],
        "wall_serial_seconds": wall_serial,
        "wall_parallel_seconds": wall_parallel,
        "parallel_jobs": jobs,
        "parallel_identical": identical,
    }
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.plan_out is not None:
        save_plan(args.plan_out, artifact)
        print(f"wrote plan artifact to {args.plan_out}")

    if args.check:
        failures = []
        if not identical:
            failures.append(
                f"--jobs {jobs} artifact differs from the serial artifact "
                "(parallel scoring must be bit-identical)"
            )
        if result.evaluations > MAX_EVALUATIONS:
            failures.append(
                f"{result.evaluations} evaluations > {MAX_EVALUATIONS} cap"
            )
        if result.improvement < TARGET_IMPROVEMENT:
            failures.append(
                f"improvement {100 * result.improvement:.1f}% < "
                f"{100 * TARGET_IMPROVEMENT:g}% target"
            )
        cores = os.cpu_count() or 1
        if jobs >= 4 and cores >= 4:
            if wall_parallel * TARGET_WALL_SPEEDUP > wall_serial:
                failures.append(
                    f"--jobs {jobs} wall {wall_parallel:.1f}s not "
                    f">={TARGET_WALL_SPEEDUP:g}x faster than serial "
                    f"{wall_serial:.1f}s"
                )
            else:
                print(
                    f"wall-clock scaling: {wall_serial / wall_parallel:.1f}x "
                    f">= {TARGET_WALL_SPEEDUP:g}x at --jobs {jobs}"
                )
        else:
            print(
                f"SKIP wall-clock scaling check: needs --jobs >= 4 on >= 4 "
                f"cores (have --jobs {jobs}, {cores} cores); bit-identity "
                "was still asserted"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("acceptance checks: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
