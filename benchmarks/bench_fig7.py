"""Regenerates Figure 7: runtime training loss and test accuracy curves.

Paper's finding: "Except for 3LC, traffic reduction designs tend to have
higher training loss, and their accuracy also increases slowly. In
contrast, 3LC achieves small training loss and high accuracy that are
close to those of the baseline."

Shape assertions: every design's loss decreases over training; 3LC's final
loss and accuracy track the baseline more closely than the median
compressed design tracks it.
"""

import numpy as np

from repro.harness.figures import FIGURE7_SCHEMES, figure7_curves

from benchmarks.conftest import emit


def _tail_mean(values, k=10):
    return float(np.mean(values[-k:]))


def test_figure7(runner, benchmark):
    loss_fig, acc_fig = benchmark.pedantic(
        lambda: figure7_curves(runner, FIGURE7_SCHEMES), rounds=1, iterations=1
    )
    emit("Figure 7 left (training loss)", loss_fig.text)
    emit("Figure 7 right (test accuracy)", acc_fig.text)

    losses = {s.label: [y for _, y in s.points] for s in loss_fig.series}
    accs = {s.label: [y for _, y in s.points] for s in acc_fig.series}

    # Training makes progress under every design.
    for label, curve in losses.items():
        assert _tail_mean(curve) < np.mean(curve[:10]), label

    # Final accuracy is sane and ordered plausibly.
    final_acc = {label: curve[-1] for label, curve in accs.items()}
    baseline = final_acc["32-bit float"]
    assert baseline > 60.0

    # 3LC tracks the baseline loss curve more closely than the local-steps
    # design does (the paper's contrast between 3LC and the rest).
    gap_3lc = abs(_tail_mean(losses["3LC (s=1.00)"]) - _tail_mean(losses["32-bit float"]))
    gap_local = abs(
        _tail_mean(losses["2 local steps"]) - _tail_mean(losses["32-bit float"])
    )
    assert gap_3lc <= gap_local + 0.05

    # 3LC's accuracy lands within a few points of the baseline.
    assert final_acc["3LC (s=1.00)"] > baseline - 5.0
