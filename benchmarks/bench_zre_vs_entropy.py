"""ZRE vs. entropy coding (paper §3.3 / §6).

The paper's claim: "Compared to general-purpose compression algorithms or
entropy coding schemes, zero-run encoding is simple to implement and fast
to run by avoiding any bit-level operation and lookup tables." This bench
quantifies both sides on real quantized training-like traffic:

* ratio — canonical Huffman usually edges out ZRE on entropy, since ZRE
  only exploits runs of the zero-group byte;
* speed — ZRE's byte-level scan beats the bit-level Huffman encoder, and
  decoding is not even close.
"""

import time

import numpy as np
import pytest

from repro.core.bytelz import lz_decode, lz_encode
from repro.core.huffman import huffman_decode, huffman_encode
from repro.core.quantization import quantize_3value
from repro.core.quartic import quartic_encode
from repro.core.zre import zre_decode, zre_encode

from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def quartic_stream():
    """Quartic bytes from a gradient-like tensor at s=1.75 (sparse)."""
    rng = np.random.default_rng(1)
    small = rng.normal(0, 0.01, size=500_000)
    spikes = rng.normal(0, 0.2, size=500_000) * (rng.random(500_000) < 0.02)
    tensor = (small + spikes).astype(np.float32)
    quantized = quantize_3value(tensor, 1.75)
    return quartic_encode(quantized.values)


class TestRatio:
    def test_compare_ratios(self, benchmark, quartic_stream):
        def all_three():
            return (
                zre_encode(quartic_stream),
                huffman_encode(quartic_stream),
                lz_encode(quartic_stream.tobytes()),
            )

        zre, huff, lz = benchmark.pedantic(all_three, rounds=1, iterations=1)
        zre_ratio = quartic_stream.size / zre.size
        huff_ratio = quartic_stream.size / len(huff)
        lz_ratio = quartic_stream.size / len(lz)
        emit(
            "ZRE vs Huffman vs byte-LZ ratio on quartic bytes",
            f"ZRE:     {zre_ratio:5.2f}x\n"
            f"Huffman: {huff_ratio:5.2f}x\n"
            f"byte-LZ: {lz_ratio:5.2f}x",
        )
        # Neither generic coder should beat ZRE by an order of magnitude —
        # the run structure captures most of the redundancy.
        assert huff_ratio < 4 * zre_ratio
        assert lz_ratio < 4 * zre_ratio
        assert zre_ratio > 1.5


class TestSpeed:
    def test_zre_encode_speed(self, benchmark, quartic_stream):
        benchmark(zre_encode, quartic_stream)

    def test_huffman_encode_speed(self, benchmark, quartic_stream):
        benchmark(huffman_encode, quartic_stream)

    def test_zre_is_faster_than_huffman(self, benchmark, quartic_stream):
        def best_of(fn, repeats=3):
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn(quartic_stream)
                times.append(time.perf_counter() - t0)
            return min(times)

        raw = quartic_stream.tobytes()

        def measure():
            return (
                best_of(zre_encode),
                best_of(huffman_encode),
                best_of(lambda _stream: lz_encode(raw)),
            )

        zre_time, huff_time, lz_time = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        emit(
            "encode time (best of 3)",
            f"ZRE:     {1000 * zre_time:7.2f} ms\n"
            f"Huffman: {1000 * huff_time:7.2f} ms\n"
            f"byte-LZ: {1000 * lz_time:7.2f} ms",
        )
        assert zre_time < huff_time
        assert zre_time < lz_time

    def test_decoders_roundtrip(self, benchmark, quartic_stream):
        """Correctness guard for the speed comparison: both coders must be
        lossless on this stream (decode a slice — the reference Huffman
        decoder is deliberately slow)."""
        head = quartic_stream[:20_000]

        def roundtrips():
            return (
                zre_decode(zre_encode(head)),
                huffman_decode(huffman_encode(head)),
                lz_decode(lz_encode(head.tobytes())),
            )

        via_zre, via_huffman, via_lz = benchmark.pedantic(
            roundtrips, rounds=1, iterations=1
        )
        np.testing.assert_array_equal(via_zre, head)
        np.testing.assert_array_equal(via_huffman, head)
        assert via_lz == head.tobytes()
