"""Extension experiment: barrier relaxation under stragglers (paper §2.1).

The paper's baseline stack (SyncReplicasOptimizer) uses backup workers to
mitigate stragglers; §2.1 explains why. This bench reproduces the
mechanism's effect in the simulator: with heavy stragglers injected,
vanilla BSP's step latency balloons while a one-backup-worker barrier
stays near the straggler-free latency — and training still converges
(dropped pushes cost a little accuracy, the §2.1 trade).
"""

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.distributed import Cluster, ClusterConfig, StragglerSpec

from benchmarks.conftest import BENCH_CONFIG, emit


def _run(backup_workers: int, straggler: StragglerSpec | None, steps: int):
    config = BENCH_CONFIG
    cluster_config = ClusterConfig(
        num_workers=config.num_workers,
        batch_size=config.batch_size,
        shard_size=config.shard_size,
        seed=config.cluster_seed,
        backup_workers=backup_workers,
        straggler=straggler,
    )
    cluster = Cluster(
        config.model_factory(),
        config.dataset(),
        make_compressor("3LC (s=1.00)", seed=0),
        config.schedule(steps),
        cluster_config,
    )
    cluster.train(steps)
    final = cluster.evaluate(test_size=config.eval_size)
    return cluster, final


def test_backup_workers_absorb_stragglers(benchmark):
    steps = max(BENCH_CONFIG.standard_steps // 4, 20)
    straggler = StragglerSpec(
        jitter_sigma=0.1, slowdown_probability=0.1, slowdown_factor=20.0, seed=3
    )

    def run_all():
        bsp_clean, acc_clean = _run(0, None, steps)
        bsp_slow, acc_slow = _run(0, straggler, steps)
        backup, acc_backup = _run(1, straggler, steps)
        return (bsp_clean, acc_clean), (bsp_slow, acc_slow), (backup, acc_backup)

    (clean, acc_clean), (slow, acc_slow), (backup, acc_backup) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    latency_clean = clean.traffic.mean_compute_seconds()
    latency_slow = slow.traffic.mean_compute_seconds()
    latency_backup = backup.traffic.mean_compute_seconds()
    emit(
        "barrier relaxation under stragglers",
        f"BSP, no stragglers:     {1000 * latency_clean:7.1f} ms/step, "
        f"acc {100 * acc_clean.test_accuracy:.1f}%\n"
        f"BSP, stragglers:        {1000 * latency_slow:7.1f} ms/step, "
        f"acc {100 * acc_slow.test_accuracy:.1f}%\n"
        f"1 backup, stragglers:   {1000 * latency_backup:7.1f} ms/step, "
        f"acc {100 * acc_backup.test_accuracy:.1f}%",
    )
    # Stragglers hurt BSP badly; the backup barrier recovers most of it.
    assert latency_slow > 1.5 * latency_clean
    assert latency_backup < latency_slow
    # Dropping ~10% of pushes must not destroy training.
    assert acc_backup.test_accuracy > acc_clean.test_accuracy - 0.15

    # The backup barrier actually dropped pushes.
    dropped = sum(s.dropped_pushes for s in backup.traffic.steps)
    assert dropped > 0
