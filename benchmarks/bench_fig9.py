"""Regenerates Figure 9: per-step compressed size, pushes vs. pulls.

Paper's findings: with ZRE the compressed size stays well under the fixed
1.6-bit quartic floor; compressed pushes are smaller than compressed pulls
early in training (pull deltas aggregate many workers' gradients, so they
have lower variance/sparsity), and 3LC transmits *more* bits per value late
in training as gradients gain variance — the design "does not forcefully
limit how many state changes can be transmitted".
"""

import numpy as np

from repro.harness.figures import figure9_compressed_size

from benchmarks.conftest import emit


def _mean_bits(points, lo=0.0, hi=1.0):
    ys = [y for _, y in points]
    n = len(ys)
    return float(np.mean(ys[int(lo * n) : max(int(hi * n), int(lo * n) + 1)]))


def test_figure9_s100(traffic_runner, benchmark):
    fig = benchmark.pedantic(
        lambda: figure9_compressed_size(traffic_runner, "3LC (s=1.00)"),
        rounds=1,
        iterations=1,
    )
    emit("Figure 9 (s=1.00)", fig.text)
    no_zre, push, pull = fig.series

    # The reference line is the quartic constant.
    assert all(y == 1.6 for _, y in no_zre.points)

    # ZRE keeps traffic below the fixed-length floor on average.
    assert _mean_bits(push.points) < 1.6
    assert _mean_bits(pull.points) < 1.6

    # Early in training, pushes compress better than pulls (pull deltas
    # aggregate all workers and have fewer zeros).
    assert _mean_bits(push.points, 0.0, 0.3) <= _mean_bits(pull.points, 0.0, 0.3) + 0.05


def test_figure9_s175(traffic_runner, benchmark):
    fig = benchmark.pedantic(
        lambda: figure9_compressed_size(traffic_runner, "3LC (s=1.75)"),
        rounds=1,
        iterations=1,
    )
    emit("Figure 9 (s=1.75)", fig.text)
    _, push, pull = fig.series

    # The higher multiplier compresses much harder than s=1.00 everywhere.
    assert _mean_bits(push.points) < 1.0
    assert _mean_bits(pull.points) < 1.0


def test_compressed_size_grows_late_in_training(traffic_runner):
    """Late-training pushes carry at least as many bits as early ones for
    s=1.75 (gradients gain variance as the LR decays; paper Fig. 9 right
    shows the push curve rising after ~70% of training)."""
    fig = figure9_compressed_size(traffic_runner, "3LC (s=1.75)")
    _, push, _ = fig.series
    early = _mean_bits(push.points, 0.05, 0.3)
    late = _mean_bits(push.points, 0.7, 1.0)
    assert late >= 0.8 * early
