"""Topology study: parameter server vs. ring all-reduce, with compression.

The paper's §1 cites in-datacenter studies whose frameworks typically use
all-reduce rather than parameter servers. This bench quantifies the two
claims that make 3LC's server-centric design coherent:

1. An uncompressed ring moves less data *per link* than a parameter
   server's hot uplink — the setting where compression matters less.
2. Compressing per-hop on a ring chains N-1 lossy stages and degrades the
   reduced value, whereas the PS topology quantizes exactly once per
   direction (§3's point-to-point argument).

Rows printed: per-link bytes and reduction fidelity for each transport.
"""

import numpy as np
import pytest

from repro.compression import ThreeLCCompressor, make_compressor
from repro.distributed.allreduce import RingAllReduce
from repro.utils.format import format_table, human_bytes

from benchmarks.conftest import emit

NODES = 8
SIZE = 65536


def _inputs():
    rng = np.random.default_rng(7)
    return [
        rng.normal(0, 0.01, size=SIZE).astype(np.float32) for _ in range(NODES)
    ]


def _ps_exchange(tensors, compressor):
    """One PS round: every worker pushes once, server averages."""
    wire = 0
    decoded = []
    for i, t in enumerate(tensors):
        res = compressor.make_context(t.shape, key=("push", i)).compress(t)
        wire += res.wire_size
        decoded.append(compressor.decompress(res.message))
    mean = np.mean(decoded, axis=0)
    # Shared compressed pull (3LC's §3 optimization): compress once,
    # fan out to every worker.
    pull = compressor.make_context(mean.shape, key=("pull",)).compress(mean)
    uplink = wire + len(tensors) * pull.wire_size  # server's link carries all
    return np.asarray(compressor.decompress(pull.message)), uplink


def test_topology_comparison(benchmark):
    tensors = _inputs()
    expected = np.mean(tensors, axis=0)

    def run():
        rows = []
        # Uncompressed ring vs. uncompressed PS: per-link volume.
        ring = RingAllReduce(NODES, (SIZE,)).reduce(tensors)
        ps_uplink = 2 * NODES * SIZE * 4
        rows.append(("ring / raw float32", ring.max_link_bytes, 0.0))
        rows.append(("PS / raw float32", ps_uplink, 0.0))
        # Compressed variants.
        ring3lc = RingAllReduce(NODES, (SIZE,), ThreeLCCompressor(1.0)).reduce(
            tensors
        )
        err_ring = float(np.linalg.norm(ring3lc.outputs[0] - expected))
        rows.append(("ring / 3LC per hop", ring3lc.max_link_bytes, err_ring))
        ps_out, ps_link = _ps_exchange(tensors, ThreeLCCompressor(1.0))
        err_ps = float(np.linalg.norm(ps_out - expected))
        rows.append(("PS / 3LC point-to-point", ps_link, err_ps))
        ring8 = RingAllReduce(NODES, (SIZE,), make_compressor("8-bit int")).reduce(
            tensors
        )
        rows.append(
            (
                "ring / 8-bit per hop",
                ring8.max_link_bytes,
                float(np.linalg.norm(ring8.outputs[0] - expected)),
            )
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Topology comparison (8 nodes, 64k values)",
        format_table(
            ["Transport", "Hot-link bytes", "L2 error of mean"],
            [[n, human_bytes(b), f"{e:.4f}"] for n, b, e in rows],
        ),
    )
    by_name = {n: (b, e) for n, b, e in rows}

    # Claim 1: the raw ring's hottest link carries a small fraction of the
    # raw PS uplink (2(N-1)/N per node vs 2N at the server).
    assert by_name["ring / raw float32"][0] < by_name["PS / raw float32"][0] / 3

    # Claim 2: chained per-hop ternary quantization is far less faithful
    # than one point-to-point quantization per direction.
    assert by_name["PS / 3LC point-to-point"][1] < by_name["ring / 3LC per hop"][1]

    # Fine-grained per-hop compression keeps fidelity (compounding is mild
    # at 8 bits) while still shrinking the link.
    assert by_name["ring / 8-bit per hop"][1] < by_name["ring / 3LC per hop"][1]
    assert by_name["ring / 8-bit per hop"][0] < by_name["ring / raw float32"][0]


@pytest.mark.parametrize("nodes", [2, 4, 8, 16])
def test_ring_link_volume_scales(benchmark, nodes):
    """Per-node ring traffic approaches 2x tensor size as N grows."""
    rng = np.random.default_rng(0)
    tensors = [rng.normal(size=4096).astype(np.float32) for _ in range(nodes)]
    result = benchmark.pedantic(
        lambda: RingAllReduce(nodes, (4096,)).reduce(tensors),
        rounds=1,
        iterations=1,
    )
    expected_per_node = 2 * (nodes - 1) / nodes * 4096 * 4
    assert result.max_link_bytes == pytest.approx(expected_per_node, rel=0.05)
    np.testing.assert_allclose(
        result.outputs[0], np.mean(tensors, axis=0), rtol=1e-4, atol=1e-5
    )
