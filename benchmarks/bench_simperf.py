#!/usr/bin/env python
"""Fleet-scale simulator performance: vectorized core vs scalar reference.

The netsim layer is the scoring oracle for every sweep, so its throughput
bounds how much configuration space the harness can explore. This benchmark
synthesizes fleet-scale hierarchical runs — a workers × racks × horizon
grid, no training involved — and replays them through both simulator cores:

* the NumPy-vectorized event core (the default), and
* the per-record scalar reference path (``vectorized=False``), measured on
  a capped step subset so the big configs stay tractable.

For every grid point it reports events/sec and wall-clock per path plus the
per-event speedup, asserts scalar/vector parity at 1e-9 on the measured
subset, and (full mode) asserts the ≥10× speedup target on the
1024-worker × 64-rack × 200-step config. ``--json`` writes the
``BENCH_simperf.json`` perf-trajectory baseline; ``--check`` fails if the
vectorized core's events/sec regressed more than 2× against the committed
baseline.

Run:  python benchmarks/bench_simperf.py [--smoke] [--check] [--json PATH]
                                         [--profile]
"""

import argparse
import json
import math
import sys
import time
from pathlib import Path

import numpy as np

from repro.netsim import NetworkSimulator, StepTransmissions, TransmissionRecord
from repro.netsim.links import hierarchical_links
from repro.network.bandwidth import LinkSpec
from repro.network.timing import StepTimeModel
from repro.nn.stats import BackwardTimeline, LayerTiming
from repro.utils.format import format_table
from repro.utils.profiling import maybe_profile

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_simperf.json"

TIME_MODEL = StepTimeModel(
    overlap=0.0, per_message_overhead=25e-6, compute_scale=1.0, codec_scale=1.0
)

#: The scaling grid. ``smoke`` rows run in CI; the full grid adds the
#: fleet-scale acceptance config (1024 workers × 64 racks × 200 steps).
GRID = (
    dict(workers=32, racks=4, steps=20, smoke=True),
    dict(workers=128, racks=8, steps=50, smoke=True),
    dict(workers=256, racks=16, steps=100, smoke=False),
    dict(workers=1024, racks=64, steps=200, smoke=False),
)

#: Scalar reference replays at most this many steps per config (its cost
#: is what this PR removed; measuring a subset keeps the grid tractable).
SCALAR_STEP_CAP = 8

#: Regression gate for ``--check``: fail when the vectorized core's
#: events/sec drops below baseline divided by this factor.
REGRESSION_FACTOR = 2.0

#: Full-mode acceptance: vector core at least this much faster per event
#: than the scalar reference on the fleet-scale config.
TARGET_SPEEDUP = 10.0

PARITY_TOL = 1e-9

_LAYERS = 8


def fleet_timeline(seed: int = 0) -> BackwardTimeline:
    """Synthetic per-layer backward profile (deterministic)."""
    rng = np.random.default_rng(seed)
    seconds = rng.uniform(0.5, 2.0, size=_LAYERS)
    return BackwardTimeline(
        tuple(
            LayerTiming(f"layer{i}", float(seconds[i]), (f"p{i}",))
            for i in range(_LAYERS)
        )
    )


def synthesize_fleet_run(
    *, workers: int, racks: int, steps: int, seed: int = 0
) -> list[StepTransmissions]:
    """Deterministic hier-shaped transmission plans, no training involved.

    Mirrors what the hierarchical engine records: per-worker gradient
    pushes on their rack channel, one cross-rack aggregate per rack that
    depends on its workers' pushes, and a down/bcast pull pipeline per
    rack. Byte counts, frame counts, and compute times vary pseudo-
    randomly (seeded) so link contention and dependency waves are
    non-trivial.
    """
    if workers % racks:
        raise ValueError(f"{workers} workers do not divide into {racks} racks")
    rack_size = workers // racks
    rng = np.random.default_rng(seed)
    plans: list[StepTransmissions] = []
    for step in range(steps):
        records: list[TransmissionRecord] = []
        agg_names: dict[int, tuple[str, ...]] = {}
        for rack in range(racks):
            names = []
            for slot in range(rack_size):
                wid = rack * rack_size + slot
                name = f"w{wid}:grad"
                names.append(name)
                records.append(
                    TransmissionRecord(
                        name=name,
                        params=(f"p{wid % _LAYERS}",),
                        wire_bytes=int(rng.integers(2_000, 40_000)),
                        elements=int(rng.integers(5_000, 100_000)),
                        route=f"rack{rack}",
                        worker=wid,
                        phase="push",
                        frames=1 + wid % 3,
                    )
                )
            agg_names[rack] = tuple(names)
        for rack in range(racks):
            records.append(
                TransmissionRecord(
                    name=f"agg{rack}",
                    params=(),
                    wire_bytes=int(rng.integers(20_000, 120_000)),
                    elements=int(rng.integers(50_000, 400_000)),
                    route=f"cross:rack{rack}",
                    worker=None,
                    phase="push",
                    frames=2,
                    depends_on=agg_names[rack],
                )
            )
        for rack in range(racks):
            records.append(
                TransmissionRecord(
                    name=f"down{rack}",
                    params=(),
                    wire_bytes=int(rng.integers(20_000, 120_000)),
                    elements=int(rng.integers(50_000, 400_000)),
                    route=f"cross:rack{rack}",
                    worker=None,
                    phase="pull",
                    frames=2,
                )
            )
            records.append(
                TransmissionRecord(
                    name=f"bcast{rack}",
                    params=(),
                    wire_bytes=int(rng.integers(10_000, 60_000)),
                    elements=int(rng.integers(50_000, 400_000)),
                    route=f"rack{rack}",
                    worker=None,
                    phase="pull",
                    frames=rack_size - 1,
                    depends_on=(f"down{rack}",),
                )
            )
        plans.append(
            StepTransmissions(
                step=step,
                compute_seconds=float(rng.uniform(0.04, 0.06)),
                push_compress_seconds=float(rng.uniform(0.001, 0.003)),
                server_decompress_seconds=float(rng.uniform(0.0005, 0.001)),
                pull_decompress_seconds=float(rng.uniform(0.0005, 0.001)),
                records=tuple(records),
            )
        )
    return plans


def fleet_links(racks: int, rack_size: int):
    intra = LinkSpec("1Gbps", 1e9)
    cross = LinkSpec("core", 1e8, rtt_seconds=1e-4)
    return hierarchical_links(intra, cross, racks=racks, rack_size=rack_size)


def _simulator(plansless_cfg, *, vectorized: bool) -> NetworkSimulator:
    return NetworkSimulator(
        fleet_timeline(),
        fleet_links(plansless_cfg["racks"], plansless_cfg["workers"] // plansless_cfg["racks"]),
        TIME_MODEL,
        overlap=True,
        serialized_baseline=False,
        vectorized=vectorized,
    )


def _events(plans) -> int:
    return sum(len(st.records) for st in plans)


def assert_parity(vector_steps, scalar_steps) -> None:
    """Scalar and vector cores must schedule identical events (≤1e-9)."""
    for vec, ref in zip(vector_steps, scalar_steps):
        if not math.isclose(
            vec.step_seconds, ref.step_seconds, rel_tol=PARITY_TOL, abs_tol=PARITY_TOL
        ):
            raise AssertionError(
                f"step {ref.step}: vector {vec.step_seconds!r} != "
                f"scalar {ref.step_seconds!r}"
            )
        if not math.isclose(
            vec.comm_seconds, ref.comm_seconds, rel_tol=PARITY_TOL, abs_tol=PARITY_TOL
        ):
            raise AssertionError(f"step {ref.step}: comm_seconds diverged")
        if vec.critical_path != ref.critical_path:
            raise AssertionError(
                f"step {ref.step}: critical path {vec.critical_path!r} != "
                f"{ref.critical_path!r}"
            )


def bench_config(cfg: dict, *, seed: int = 0) -> dict:
    """Measure one grid point; returns the JSON-ready result row."""
    plans = synthesize_fleet_run(
        workers=cfg["workers"], racks=cfg["racks"], steps=cfg["steps"], seed=seed
    )
    events = _events(plans)

    vec_sim = _simulator(cfg, vectorized=True)
    t0 = time.perf_counter()
    vec_run = vec_sim.simulate_run(plans)
    vec_cold_seconds = time.perf_counter() - t0
    # Steady state: a sweep replays one recording under many link and
    # time-model configs, and the per-step caches (record batch,
    # structure signature, numeric rows) live on the plan objects — only
    # the first replay walks the record objects. Throughput and the
    # speedup target are measured on the warmed replay (the sweep
    # regime); the cold first-replay time is reported alongside.
    t0 = time.perf_counter()
    vec_run = vec_sim.simulate_run(plans)
    vec_seconds = time.perf_counter() - t0

    scalar_plans = plans[: min(len(plans), SCALAR_STEP_CAP)]
    scalar_events = _events(scalar_plans)
    scalar_sim = _simulator(cfg, vectorized=False)
    assert not scalar_sim.vectorized, "REPRO_SCALAR_SIM double-negation?"
    scalar_sim.simulate_run(scalar_plans)  # same warm-up discipline
    t0 = time.perf_counter()
    scalar_run = scalar_sim.simulate_run(scalar_plans)
    scalar_seconds = time.perf_counter() - t0

    assert_parity(vec_run.steps[: len(scalar_plans)], scalar_run.steps)

    vec_eps = events / vec_seconds if vec_seconds > 0 else float("inf")
    scalar_eps = (
        scalar_events / scalar_seconds if scalar_seconds > 0 else float("inf")
    )
    speedup = vec_eps / scalar_eps if scalar_eps > 0 else float("inf")
    return {
        "workers": cfg["workers"],
        "racks": cfg["racks"],
        "steps": cfg["steps"],
        "records_per_step": len(plans[0].records),
        "events": events,
        "vector_seconds": vec_seconds,
        "vector_cold_seconds": vec_cold_seconds,
        # Cold/warm ratio: what the first replay of a recording costs
        # relative to the steady-state sweep replay. The extraction
        # amortization work (warm_extraction via SweepReplayCache) keeps
        # this bounded; --check gates it against the baseline.
        "cold_warm_ratio": (
            vec_cold_seconds / vec_seconds if vec_seconds > 0 else float("inf")
        ),
        "vector_events_per_sec": vec_eps,
        "scalar_steps_measured": len(scalar_plans),
        "scalar_seconds": scalar_seconds,
        "scalar_events_per_sec": scalar_eps,
        "speedup": speedup,
    }


def check_against_baseline(rows: list[dict], baseline_path: Path) -> list[str]:
    """Regression gate: >2× events/sec drop vs the committed baseline."""
    baseline = json.loads(baseline_path.read_text())
    by_key = {
        (row["workers"], row["racks"], row["steps"]): row
        for row in baseline["configs"]
    }
    failures = []
    for row in rows:
        key = (row["workers"], row["racks"], row["steps"])
        ref = by_key.get(key)
        if ref is None:
            continue
        floor = ref["vector_events_per_sec"] / REGRESSION_FACTOR
        if row["vector_events_per_sec"] < floor:
            failures.append(
                f"{key}: {row['vector_events_per_sec']:.0f} events/s < "
                f"{floor:.0f} (baseline {ref['vector_events_per_sec']:.0f} "
                f"/ {REGRESSION_FACTOR:g})"
            )
        # Cold-extraction gate (additive: pre-ratio baselines skip it):
        # the first replay of a recording must not get relatively more
        # expensive than the committed cold/warm ratio allows.
        ref_ratio = ref.get("cold_warm_ratio")
        if ref_ratio is not None:
            ceiling = ref_ratio * REGRESSION_FACTOR
            if row["cold_warm_ratio"] > ceiling:
                failures.append(
                    f"{key}: cold/warm ratio {row['cold_warm_ratio']:.1f} > "
                    f"{ceiling:.1f} (baseline {ref_ratio:.1f} x "
                    f"{REGRESSION_FACTOR:g})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI scale: only the small configs"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail on >{REGRESSION_FACTOR:g}x events/sec regression vs "
        f"{BASELINE_PATH.name}",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the results (the committed baseline is "
        "benchmarks/BENCH_simperf.json)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a cProfile top-20 of the simulator hot path "
        "(REPRO_PROFILE=1 works too)",
    )
    parser.add_argument(
        "--profile-out", metavar="PATH", default=None,
        help="dump raw cProfile stats to PATH (pstats/snakeviz-loadable; "
        "implies --profile; REPRO_PROFILE_OUT works too)",
    )
    args = parser.parse_args(argv)

    grid = [cfg for cfg in GRID if cfg["smoke"] or not args.smoke]
    rows = []
    with maybe_profile(
        args.profile or None, label="bench_simperf grid", out=args.profile_out
    ):
        for cfg in grid:
            rows.append(bench_config(cfg))

    table = format_table(
        [
            "workers",
            "racks",
            "steps",
            "events",
            "cold s",
            "vec s",
            "cold/warm",
            "vec ev/s",
            "scalar ev/s",
            "speedup",
        ],
        [
            [
                str(r["workers"]),
                str(r["racks"]),
                str(r["steps"]),
                str(r["events"]),
                f"{r['vector_cold_seconds']:.3f}",
                f"{r['vector_seconds']:.3f}",
                f"{r['cold_warm_ratio']:.1f}x",
                f"{r['vector_events_per_sec']:.0f}",
                f"{r['scalar_events_per_sec']:.0f}",
                f"{r['speedup']:.1f}x",
            ]
            for r in rows
        ],
    )
    mode = "smoke" if args.smoke else "full"
    print(f"=== fleet-scale simulator throughput ({mode}) ===")
    print(table)
    print(
        f"(scalar reference measured on the first {SCALAR_STEP_CAP} steps "
        "per config; parity asserted at 1e-9; 'vec s' is the warmed "
        "replay a sweep pays, 'cold s' the first replay of a recording)"
    )

    if not args.smoke:
        fleet = next(
            r for r in rows if (r["workers"], r["racks"]) == (1024, 64)
        )
        if fleet["speedup"] < TARGET_SPEEDUP:
            print(
                f"FAIL: fleet-scale speedup {fleet['speedup']:.1f}x < "
                f"{TARGET_SPEEDUP:g}x target",
                file=sys.stderr,
            )
            return 1
        print(
            f"fleet-scale config: {fleet['speedup']:.1f}x >= "
            f"{TARGET_SPEEDUP:g}x target"
        )

    payload = {"benchmark": "simperf", "mode": mode, "configs": rows}
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.check:
        if not BASELINE_PATH.exists():
            print(f"FAIL: no baseline at {BASELINE_PATH}", file=sys.stderr)
            return 1
        failures = check_against_baseline(rows, BASELINE_PATH)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"regression check vs {BASELINE_PATH.name}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
