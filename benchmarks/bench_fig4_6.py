"""Regenerates Figures 4, 5, 6: training time vs. accuracy at three links.

Each figure sweeps all compared designs over 25/50/75/100% of standard
training steps and plots modelled total training time against final test
accuracy, at 10 Mbps (Fig. 4), 100 Mbps (Fig. 5), and 1 Gbps (Fig. 6).

Shape claims checked per figure:
* more budget never moves a scheme's point left (time grows with steps);
* at 10 Mbps, 3LC's full-budget point is far left of the baseline's
  (paper: 16-23× less time) at comparable accuracy;
* at 1 Gbps the time spread between designs collapses (traffic reduction
  "becomes less important", §5.3).
"""

import pytest

from repro.harness.figures import (
    BUDGET_FRACTIONS,
    OVERVIEW_SCHEMES,
    figure_time_accuracy,
)

from benchmarks.conftest import emit


def _series_by_label(fig):
    return {s.label: s.points for s in fig.series}


@pytest.mark.parametrize(
    "figure_number, link_name", [(4, "10Mbps"), (5, "100Mbps"), (6, "1Gbps")]
)
def test_figure(runner, benchmark, figure_number, link_name):
    fig = benchmark.pedantic(
        lambda: figure_time_accuracy(
            runner,
            link_name,
            OVERVIEW_SCHEMES,
            BUDGET_FRACTIONS,
            figure_name=f"Figure {figure_number} @ {link_name}",
        ),
        rounds=1,
        iterations=1,
    )
    emit(f"Figure {figure_number} ({link_name})", fig.text)
    series = _series_by_label(fig)

    # Time grows with budget for every design. Modelled totals inherit the
    # jitter of *measured* compute seconds (shared CI machines), so allow
    # each point 20% slack against its predecessor while requiring clear
    # growth across the full 4x budget range.
    for label, points in series.items():
        times = [p[0] for p in points]
        for earlier, later in zip(times, times[1:]):
            assert later >= 0.8 * earlier, label
        assert times[-1] > 1.5 * times[0], label

    baseline_full = series["32-bit float"][-1]
    threelc_full = series["3LC (s=1.00)"][-1]

    if link_name == "10Mbps":
        # 3LC trains many times faster at the same step budget.
        assert baseline_full[0] / threelc_full[0] > 5.0
        # ... at accuracy within a few points of the baseline.
        assert threelc_full[1] > baseline_full[1] - 5.0
    if link_name == "1Gbps":
        # Time spread collapses: the slowest full-budget design is within
        # a small factor of the fastest (paper Fig. 6 x-range is ~2x, vs
        # ~100x in Fig. 4).
        full_times = [points[-1][0] for points in series.values()]
        assert max(full_times) / min(full_times) < 8.0


def test_fast_designs_panel(runner, benchmark):
    """Figure 4b: the zoomed "fast designs" panel at 10 Mbps."""
    from repro.harness.figures import FAST_SCHEMES

    fig = benchmark.pedantic(
        lambda: figure_time_accuracy(
            runner, "10Mbps", FAST_SCHEMES, BUDGET_FRACTIONS,
            figure_name="Figure 4b (fast designs) @ 10Mbps",
        ),
        rounds=1,
        iterations=1,
    )
    emit("Figure 4b (fast designs)", fig.text)
    series = _series_by_label(fig)
    # Every fast design's full run beats the overview baseline's by a wide
    # margin — that is what qualifies them for the zoomed panel.
    baseline_full = _series_by_label(
        figure_time_accuracy(runner, "10Mbps", ("32-bit float",), (1.0,))
    )["32-bit float"][0]
    for label, points in series.items():
        assert points[-1][0] < baseline_full[0] / 3.0, label
