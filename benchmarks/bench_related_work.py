"""Extended comparison: the §6 related-work designs under Table 1's protocol.

The paper positions 3LC against QSGD, Deep Gradient Compression, Gaia, and
sufficient-factor broadcasting qualitatively (§6). This bench measures
those designs — plus this repo's 3LC extensions (adaptive sparsity control,
local-steps composition) — with the same runner, workload, and time model
as Table 1, making the claimed trade-offs checkable:

* QSGD needs more bits than 3LC for the same protocol (no error feedback,
  gamma-coded multi-level output vs. sub-1-bit ZRE output).
* DGC compresses far harder than 3LC but pays in convergence at equal
  steps — the generality-vs-aggressiveness trade §6 describes.
* Composing local steps with 3LC multiplies the traffic saving.
* The adaptive controller holds the measured bits/value near its budget
  without manual tuning.
"""

from repro.harness.tables import related_work_table

from benchmarks.conftest import emit


def test_related_work(runner, benchmark):
    rows, text = benchmark.pedantic(
        lambda: related_work_table(runner), rounds=1, iterations=1
    )
    emit("Related work (§6) under Table 1 protocol", text)
    by_name = {r.scheme: r for r in rows}
    threelc = by_name["3LC (s=1.00)"]

    # 3LC's wire format is tighter than QSGD's at either resolution: error
    # feedback + ZRE beat stochastic multi-level + gamma coding.
    assert threelc.bits_per_value < by_name["QSGD (2-bit)"].bits_per_value
    assert threelc.bits_per_value < by_name["QSGD (4-bit)"].bits_per_value
    # ... and unbiased-but-noisy QSGD converges no better (paper §3.1's
    # error-accumulation-vs-stochastic argument, here at 2 bits).
    assert threelc.accuracy >= by_name["QSGD (2-bit)"].accuracy - 0.005

    # DGC's 0.1% selection compresses (much) harder than 3LC — once its
    # dense warmup phase stops dominating the average (standard-length
    # runs; short REPRO_BENCH_STEPS smoke passes only check it compresses).
    if runner.config.standard_steps >= 100:
        assert by_name["DGC (0.10%)"].compression_ratio > threelc.compression_ratio
        assert by_name["DGC (0.10%)"].speedup_10mbps > threelc.speedup_10mbps
    else:
        assert by_name["DGC (0.10%)"].compression_ratio > 2.0

    # Low-rank factors reduce traffic but cannot compress 1-D tensors at
    # all (§6's generality critique), so they trail 3LC end to end.
    assert 1.0 < by_name["sufficient factors (rank 4)"].compression_ratio
    assert (
        by_name["sufficient factors (rank 4)"].compression_ratio
        < threelc.compression_ratio
    )

    # Composition multiplies savings: halved frequency x 3LC encoding.
    assert (
        by_name["2 local steps + 3LC (s=1.00)"].compression_ratio
        > 1.5 * threelc.compression_ratio
    )

    # The adaptive controller's 0.5-bit budget sits below 3LC (s=1.00)'s
    # natural ~0.8 bits, so its end-to-end traffic must come in tighter.
    # (The absolute bits/value here also carries bypass traffic and frame
    # headers, which is why the row is compared, not bounded; the precise
    # budget-tracking check lives in bench_adaptive.py on the raw stream.)
    adaptive = by_name["3LC (adaptive, 0.5 bits)"]
    assert adaptive.bits_per_value < threelc.bits_per_value
    assert adaptive.compression_ratio > threelc.compression_ratio

    # Gaia's decaying threshold still reduces traffic overall.
    assert by_name["Gaia"].compression_ratio > 2.0
