"""Codec micro-benchmarks: throughput of every 3LC stage and baseline.

Supports the paper's "low computation overhead" claims (§3, §5.3): 3LC uses
only vectorizable operations, so its stages should run at memory-bandwidth-
class speeds, while MQE 1-bit's partition means ("unconventional rounding")
cost more. Also checks the §3.2/§3.3 size claims on a 1M-element tensor.
"""

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.core.codec import ThreeLCCodec
from repro.core.quantization import quantize_3value
from repro.core.quartic import quartic_decode, quartic_encode
from repro.core.twobit import twobit_encode
from repro.core.zre import zre_decode, zre_encode

from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def quantized(gradient_tensor=None):
    rng = np.random.default_rng(0)
    small = rng.normal(0, 0.01, size=1_000_000)
    spikes = rng.normal(0, 0.2, size=1_000_000) * (rng.random(1_000_000) < 0.02)
    tensor = (small + spikes).astype(np.float32)
    return tensor, quantize_3value(tensor, 1.0)


class TestStageThroughput:
    def test_quantize(self, benchmark, quantized):
        tensor, _ = quantized
        benchmark(quantize_3value, tensor, 1.0)

    def test_quartic_encode(self, benchmark, quantized):
        _, q = quantized
        benchmark(quartic_encode, q.values)

    def test_quartic_decode(self, benchmark, quantized):
        _, q = quantized
        encoded = quartic_encode(q.values)
        benchmark(quartic_decode, encoded, q.values.size)

    def test_zre_encode(self, benchmark, quantized):
        _, q = quantized
        encoded = quartic_encode(q.values)
        benchmark(zre_encode, encoded)

    def test_zre_decode(self, benchmark, quantized):
        _, q = quantized
        zre = zre_encode(quartic_encode(q.values))
        benchmark(zre_decode, zre)


class TestEndToEndThroughput:
    @pytest.mark.parametrize(
        "scheme_name",
        [
            "32-bit float",
            "8-bit int",
            "MQE 1-bit int",
            "Stoch 3-value + QE",
            "5% sparsification",
            "3LC (s=1.00)",
            "3LC (s=1.75)",
        ],
        ids=lambda s: s.replace(" ", "_"),
    )
    def test_compress(self, benchmark, scheme_name, quantized):
        tensor, _ = quantized
        scheme = make_compressor(scheme_name, seed=0)
        ctx = scheme.make_context(tensor.shape, key=("bench",))
        benchmark(ctx.compress, tensor)

    def test_threelc_decompress(self, benchmark, quantized):
        tensor, _ = quantized
        codec = ThreeLCCodec(1.0)
        message = codec.compress(tensor).message
        benchmark(codec.decompress, message)


class TestBatchedCodec:
    """The vectorized multi-tensor path (`ThreeLCCodec.compress_batch`)
    shared with the fused engine hot paths: one quantization + quartic pass
    across many small tensors instead of one codec call each."""

    @pytest.fixture(scope="class")
    def small_tensors(self):
        rng = np.random.default_rng(1)
        return [
            rng.normal(0, 0.01, size=size).astype(np.float32)
            for size in rng.integers(8, 2048, size=256)
        ]

    def test_compress_batch(self, benchmark, small_tensors):
        codec = ThreeLCCodec(1.0)
        results = benchmark(codec.compress_batch, small_tensors)
        # The batched path's contract: bit-identical to per-tensor calls.
        for tensor, batched in zip(small_tensors, results):
            single = codec.compress(tensor)
            assert batched.message.payload == single.message.payload
            assert batched.message.scalars == single.message.scalars
            np.testing.assert_array_equal(
                batched.reconstruction, single.reconstruction
            )

    def test_compress_loop(self, benchmark, small_tensors):
        """Per-tensor baseline for the batched path's speedup."""
        codec = ThreeLCCodec(1.0)
        benchmark(lambda: [codec.compress(t) for t in small_tensors])


class TestSizeClaims:
    """Size claims, benchmarked end to end so they run in --benchmark-only
    mode alongside the throughput measurements."""

    def test_280x_on_zero_tensor(self, benchmark):
        """§3.3: the full 3LC pipeline reaches 280× on an all-zero tensor
        (payload accounting, as in the paper)."""
        n = 70 * 10_000
        zeros = np.zeros(n, dtype=np.float32)

        def pipeline():
            q = quantize_3value(zeros, 1.0)
            return zre_encode(quartic_encode(q.values))

        payload = benchmark(pipeline)
        ratio = 4 * n / payload.size
        emit("zero-tensor compression", f"{ratio:.1f}x (paper: 280x)")
        assert ratio == pytest.approx(280.0)

    def test_quartic_within_1_percent_of_entropy_bound(self, benchmark, quantized):
        """§3.2: 1.6 bits/value is 0.95% above log2(3)."""
        _, q = quantized
        encoded = benchmark(quartic_encode, q.values)
        bits = 8 * encoded.size / q.values.size
        assert bits == pytest.approx(1.6, abs=0.001)
        overhead = bits / np.log2(3) - 1
        emit("quartic overhead vs entropy bound", f"{100 * overhead:.2f}% (paper: 0.95%)")
        assert overhead < 0.01

    def test_quartic_20_percent_smaller_than_2bit(self, benchmark, quantized):
        _, q = quantized
        twobit = benchmark(twobit_encode, q.values)
        quartic = quartic_encode(q.values)
        saving = 1 - quartic.size / twobit.size
        emit("quartic vs 2-bit saving", f"{100 * saving:.1f}% (paper: 20%)")
        assert saving == pytest.approx(0.20, abs=0.01)

    def test_zre_at_least_2x_on_gradient_like_data(self, benchmark, quantized):
        """§3.3: "approximately a 2× or higher compression ratio"."""
        _, q = quantized
        quartic = quartic_encode(q.values)
        encoded = benchmark(zre_encode, quartic)
        ratio = quartic.size / encoded.size
        emit("ZRE ratio on gradient-like data", f"{ratio:.2f}x (paper: ~2x or higher)")
        assert ratio >= 2.0
