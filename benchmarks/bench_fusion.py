#!/usr/bin/env python
"""Fused wire plans vs per-tensor exchange on a many-small-tensor model.

The fused-bucket wire plan exists for exactly one regime: models whose
parameter list is dominated by *count* rather than *bytes* — dozens of
batch-norm scales/shifts and biases, each paying a full frame header and a
full Python codec round-trip per step. This benchmark trains the same
deep-narrow MLP (every tensor below the bypass threshold is tiny) through
the unified engine with fusion off and on, and reports per-step codec wall
time, total wire bytes, and frame counts — now across the whole wire-plan
matrix: the single server, a 4-shard service (partition-aware buckets),
the hierarchical cross-rack tier, and async per-worker fused pull streams.

Acceptance (asserted, not just printed): fusion must cut per-step codec
time on the single server, must never increase total wire bytes, must cut
wire frames by >= 5x on the 4-shard sweep, and the lossy bucket mode must
move strictly fewer bytes than the exact mode (its accuracy cost is
reported alongside).

Run:  python benchmarks/bench_fusion.py [--smoke] [--topology T]
      [--sync-mode M] [--fuse-lossy] [--steps N]
(also collectable by pytest: ``pytest benchmarks/bench_fusion.py``)
"""

import argparse
import sys

import numpy as np

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.exchange import EngineConfig, ExchangeEngine
from repro.nn import CosineDecay, build_mlp

try:
    from benchmarks.conftest import emit
except ImportError:  # standalone `python benchmarks/bench_fusion.py` runs
    def emit(title: str, body: str) -> None:
        print(f"\n=== {title} ===\n{body}")

IMAGE_SIZE = 8
STEPS = 12
#: Deep-narrow MLP: 12 hidden layers of width 14 -> 26 parameter tensors,
#: every one of them below the 256-element bypass threshold except the
#: input projection.
HIDDEN = (14,) * 12


def run(
    fuse: bool,
    *,
    topology: str = "single",
    sync_mode: str = "bsp",
    num_shards: int = 4,
    lossy: bool = False,
    steps: int = STEPS,
) -> ExchangeEngine:
    engine = ExchangeEngine(
        lambda: build_mlp(3 * IMAGE_SIZE * IMAGE_SIZE, HIDDEN, num_classes=10, seed=3),
        SyntheticImageDataset(DatasetSpec(image_size=IMAGE_SIZE, seed=0)),
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, steps),
        EngineConfig(
            num_workers=4,
            batch_size=16,
            shard_size=64,
            seed=0,
            topology=topology,
            sync_mode=sync_mode,
            num_shards=num_shards,
            racks=2,
            rack_size=2,
            fuse_small_tensors=fuse,
            fuse_lossy=lossy,
            # Event-driven scheduling orders by compute time; pin it so
            # fused and unfused async runs walk the identical schedule.
            fixed_compute_seconds=0.05 if sync_mode != "bsp" else None,
        ),
    )
    engine.train(steps)
    return engine


def comparison_rows(unfused: ExchangeEngine, fused: ExchangeEngine) -> list[str]:
    codec_unfused = unfused.traffic.mean_codec_seconds()
    codec_fused = fused.traffic.mean_codec_seconds()
    bytes_unfused = unfused.traffic.total_wire_bytes
    bytes_fused = fused.traffic.total_wire_bytes
    frames_unfused = unfused.traffic.total_messages
    frames_fused = fused.traffic.total_messages
    plan = fused.fusion_plan
    return [
        f"{'path':<12} {'codec s/step':>14} {'wire bytes':>12} {'frames':>8}",
        f"{'per-tensor':<12} {codec_unfused:>14.6f} {bytes_unfused:>12} {frames_unfused:>8}",
        f"{'fused':<12} {codec_fused:>14.6f} {bytes_fused:>12} {frames_fused:>8}",
        "",
        f"codec speedup: {codec_unfused / codec_fused:.2f}x, "
        f"byte saving: {100 * (1 - bytes_fused / bytes_unfused):.1f}%, "
        f"frame reduction: {frames_unfused / frames_fused:.1f}x "
        f"({len(plan.fused_names)} tensors in "
        f"{len(plan.buckets)} bucket(s))",
    ]


def test_fused_bucket_hot_path():
    unfused = run(False)
    fused = run(True)

    emit(
        "Fused-bucket vs per-tensor exchange (many-small-tensor MLP)",
        "\n".join(comparison_rows(unfused, fused)),
    )

    # Numerics must be untouched (the fused path is the bypass codec). With
    # more than two workers the barrier orders pushes by *measured* arrival
    # time, so float aggregation order — and hence the last few mantissa
    # bits — varies between any two runs; compare to float tolerance here
    # (tests/exchange/test_fusion.py pins bit-exactness at two workers).
    np.testing.assert_allclose(
        [l.train_loss for l in unfused.step_logs],
        [l.train_loss for l in fused.step_logs],
        rtol=1e-5,
    )
    codec_unfused = unfused.traffic.mean_codec_seconds()
    codec_fused = fused.traffic.mean_codec_seconds()
    # The point of the hot path: fewer codec calls -> less per-step codec
    # wall time, fewer frames -> fewer wire bytes at equal payload.
    assert codec_fused < codec_unfused, (
        f"fused codec path slower: {codec_fused:.6f}s vs {codec_unfused:.6f}s"
    )
    assert fused.traffic.total_wire_bytes <= unfused.traffic.total_wire_bytes
    assert fused.traffic.total_messages < unfused.traffic.total_messages


def test_fused_wire_plan_on_four_shards():
    """The PR's acceptance number: partition-aware buckets cut the 4-shard
    sweep's wire frames by >= 5x at unchanged numerics."""
    unfused = run(False, topology="sharded", num_shards=4)
    fused = run(True, topology="sharded", num_shards=4)

    emit(
        "Fused wire plan on a 4-shard service",
        "\n".join(comparison_rows(unfused, fused)),
    )
    np.testing.assert_allclose(
        [l.train_loss for l in unfused.step_logs],
        [l.train_loss for l in fused.step_logs],
        rtol=1e-5,
    )
    # Buckets are shard-pure by construction.
    for bucket in fused.fusion_plan.buckets:
        owners = {fused.service.shard_of(name) for name in bucket.names}
        assert owners == {bucket.group}
    reduction = unfused.traffic.total_messages / fused.traffic.total_messages
    assert reduction >= 5.0, (
        f"expected >= 5x fewer wire frames on 4 shards, got {reduction:.2f}x"
    )
    assert fused.traffic.total_wire_bytes <= unfused.traffic.total_wire_bytes


def test_fused_wire_plan_on_hier_and_async():
    """Smoke the remaining wire-plan matrix: the hierarchical cross tier
    and the async per-worker fused pull streams."""
    for kwargs in (dict(topology="hier"), dict(sync_mode="async")):
        unfused = run(False, steps=8, **kwargs)
        fused = run(True, steps=8, **kwargs)
        np.testing.assert_allclose(
            [l.train_loss for l in unfused.step_logs],
            [l.train_loss for l in fused.step_logs],
            rtol=1e-5,
        )
        assert fused.traffic.total_messages < unfused.traffic.total_messages
        assert (
            fused.traffic.total_wire_bytes <= unfused.traffic.total_wire_bytes
        )


def test_lossy_fused_accuracy_traffic_trade():
    """Lossy whole-bucket 3LC (one shared scale per bucket) vs the exact
    bypass mode: strictly fewer bytes, measured accuracy cost."""
    exact = run(True)
    lossy = run(True, lossy=True)

    exact_eval = exact.evaluate(test_size=400)
    lossy_eval = lossy.evaluate(test_size=400)
    exact_bytes = exact.traffic.total_wire_bytes
    lossy_bytes = lossy.traffic.total_wire_bytes
    rows = [
        f"{'mode':<8} {'wire bytes':>12} {'accuracy':>10} {'final loss':>12}",
        f"{'exact':<8} {exact_bytes:>12} {100 * exact_eval.test_accuracy:>9.2f}% "
        f"{exact_eval.test_loss:>12.4f}",
        f"{'lossy':<8} {lossy_bytes:>12} {100 * lossy_eval.test_accuracy:>9.2f}% "
        f"{lossy_eval.test_loss:>12.4f}",
        "",
        f"traffic saving: {100 * (1 - lossy_bytes / exact_bytes):.1f}%, "
        f"accuracy delta: "
        f"{100 * (lossy_eval.test_accuracy - exact_eval.test_accuracy):+.2f}pp",
    ]
    emit("Lossy vs exact fused buckets (shared scale per bucket)", "\n".join(rows))

    assert lossy_bytes < exact_bytes
    # Same plan, same framing: lossiness changes payloads, not frames.
    assert lossy.traffic.total_messages == exact.traffic.total_messages
    assert all(np.isfinite(l.train_loss) for l in lossy.step_logs)
    # Error feedback keeps the lossy run training, not diverging.
    assert lossy.model_divergence() < 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny configuration for CI"
    )
    parser.add_argument(
        "--topology", default="single", choices=["single", "sharded", "hier"]
    )
    parser.add_argument("--sync-mode", default="bsp", choices=["bsp", "async"])
    parser.add_argument(
        "--fuse-lossy", action="store_true",
        help="also run (and report) the lossy bucket mode",
    )
    parser.add_argument("--steps", type=int, default=None)
    args = parser.parse_args(argv)

    steps = 6 if args.smoke else STEPS
    if args.steps is not None:
        steps = args.steps

    kwargs = dict(topology=args.topology, sync_mode=args.sync_mode, steps=steps)
    unfused = run(False, **kwargs)
    fused = run(True, **kwargs)
    np.testing.assert_allclose(
        [l.train_loss for l in unfused.step_logs],
        [l.train_loss for l in fused.step_logs],
        rtol=1e-5,
    )
    assert fused.traffic.total_messages < unfused.traffic.total_messages
    assert fused.traffic.total_wire_bytes <= unfused.traffic.total_wire_bytes
    title = (
        f"Fused wire plan ({args.topology}, {args.sync_mode}, {steps} steps)"
    )
    print(f"=== {title} ===")
    print("\n".join(comparison_rows(unfused, fused)))
    if args.fuse_lossy:
        lossy = run(True, lossy=True, **kwargs)
        saved = 1 - lossy.traffic.total_wire_bytes / fused.traffic.total_wire_bytes
        assert lossy.traffic.total_wire_bytes < fused.traffic.total_wire_bytes
        print(
            f"lossy buckets: {lossy.traffic.total_wire_bytes} wire bytes "
            f"({100 * saved:.1f}% below exact fused)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
