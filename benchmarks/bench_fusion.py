"""Fused-bucket vs per-tensor exchange on a many-small-tensor model.

The fused-bucket hot path exists for exactly one regime: models whose
parameter list is dominated by *count* rather than *bytes* — dozens of
batch-norm scales/shifts and biases, each paying a full frame header and a
full Python codec round-trip per step. This benchmark trains the same
deep-narrow MLP (every tensor below the bypass threshold is tiny) through
the unified engine with fusion off and on, and reports per-step codec wall
time, total wire bytes, and frame counts.

Acceptance (asserted, not just printed): fusion must cut per-step codec
time and must not increase total wire bytes.
"""

import numpy as np

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed import Cluster, ClusterConfig
from repro.nn import CosineDecay, build_mlp

from benchmarks.conftest import emit

IMAGE_SIZE = 8
STEPS = 12
#: Deep-narrow MLP: 12 hidden layers of width 14 -> 26 parameter tensors,
#: every one of them below the 256-element bypass threshold except the
#: input projection.
HIDDEN = (14,) * 12


def run(fuse: bool) -> Cluster:
    cluster = Cluster(
        lambda: build_mlp(3 * IMAGE_SIZE * IMAGE_SIZE, HIDDEN, num_classes=10, seed=3),
        SyntheticImageDataset(DatasetSpec(image_size=IMAGE_SIZE, seed=0)),
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, STEPS),
        ClusterConfig(
            num_workers=4,
            batch_size=16,
            shard_size=64,
            seed=0,
            fuse_small_tensors=fuse,
        ),
    )
    cluster.train(STEPS)
    return cluster


def test_fused_bucket_hot_path():
    unfused = run(False)
    fused = run(True)

    codec_unfused = unfused.traffic.mean_codec_seconds()
    codec_fused = fused.traffic.mean_codec_seconds()
    bytes_unfused = unfused.traffic.total_wire_bytes
    bytes_fused = fused.traffic.total_wire_bytes
    frames_unfused = unfused.traffic.total_messages
    frames_fused = fused.traffic.total_messages

    rows = [
        f"{'path':<12} {'codec s/step':>14} {'wire bytes':>12} {'frames':>8}",
        f"{'per-tensor':<12} {codec_unfused:>14.6f} {bytes_unfused:>12} {frames_unfused:>8}",
        f"{'fused':<12} {codec_fused:>14.6f} {bytes_fused:>12} {frames_fused:>8}",
        "",
        f"codec speedup: {codec_unfused / codec_fused:.2f}x, "
        f"byte saving: {100 * (1 - bytes_fused / bytes_unfused):.1f}%, "
        f"frame reduction: {frames_unfused / frames_fused:.1f}x "
        f"({len(fused.fusion_plan.fused_names)} tensors in "
        f"{len(fused.fusion_plan.buckets)} bucket(s))",
    ]
    emit("Fused-bucket vs per-tensor exchange (many-small-tensor MLP)", "\n".join(rows))

    # Numerics must be untouched (the fused path is the bypass codec). With
    # more than two workers the barrier orders pushes by *measured* arrival
    # time, so float aggregation order — and hence the last few mantissa
    # bits — varies between any two runs; compare to float tolerance here
    # (tests/exchange/test_fusion.py pins bit-exactness at two workers).
    np.testing.assert_allclose(
        [l.train_loss for l in unfused.step_logs],
        [l.train_loss for l in fused.step_logs],
        rtol=1e-5,
    )
    # The point of the hot path: fewer codec calls -> less per-step codec
    # wall time, fewer frames -> fewer wire bytes at equal payload.
    assert codec_fused < codec_unfused, (
        f"fused codec path slower: {codec_fused:.6f}s vs {codec_unfused:.6f}s"
    )
    assert bytes_fused <= bytes_unfused
    assert frames_fused < frames_unfused
