"""Barrier-relaxation study: BSP vs. SSP vs. fully asynchronous (§2.1).

The paper's background motivates its synchronous setting with the claim
that "asynchronous state change transmission generally requires more
training steps than BSP to train a model to similar test accuracy". This
bench runs the three consistency models on an identical update budget —
with stragglers injected, since asynchrony exists to tolerate them — and
reports accuracy plus the observed staleness, with and without 3LC.

Shape claims: at an equal number of global updates, accuracy orders
BSP >= SSP >= fully-async (up to small-run noise), while asynchronous
wall-clock per update is lower under stragglers (no barrier waits); and
3LC composes with every consistency model (per-worker pull streams, §3's
"multiple copies of compressed model deltas").
"""

import numpy as np
import pytest

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed import (
    AsyncCluster,
    AsyncConfig,
    Cluster,
    ClusterConfig,
    StragglerSpec,
)
from repro.nn import CosineDecay, build_resnet
from repro.utils.format import format_table

from benchmarks.conftest import emit

WORKERS = 4
UPDATES = 120  # global model updates, identical across consistency models
STRAGGLER = StragglerSpec(slowdown_probability=0.2, slowdown_factor=4.0, seed=11)


def _dataset():
    return SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))


def _model_factory():
    return lambda: build_resnet(8, base_width=4, seed=7)


def _run_async(scheme_name: str, staleness):
    cluster = AsyncCluster(
        _model_factory(),
        _dataset(),
        make_compressor(scheme_name, seed=0),
        CosineDecay(0.05, UPDATES),
        AsyncConfig(
            num_workers=WORKERS,
            batch_size=16,
            shard_size=256,
            staleness=staleness,
            straggler=STRAGGLER,
            seed=3,
        ),
    )
    cluster.run_updates(UPDATES)
    return cluster.evaluate(test_size=500), cluster.max_staleness_observed()


def _run_bsp(scheme_name: str):
    # BSP applies one aggregated update per step: UPDATES steps for parity.
    cluster = Cluster(
        _model_factory(),
        _dataset(),
        make_compressor(scheme_name, seed=0),
        CosineDecay(0.05, UPDATES),
        ClusterConfig(
            num_workers=WORKERS, batch_size=16, shard_size=256, seed=3
        ),
    )
    cluster.train(UPDATES)
    return cluster.evaluate(test_size=500).test_accuracy


@pytest.mark.parametrize("scheme", ["32-bit float", "3LC (s=1.00)"])
def test_consistency_models(benchmark, scheme):
    def run():
        rows = []
        bsp_acc = _run_bsp(scheme)
        rows.append(("BSP", bsp_acc, 0))
        ssp_acc, ssp_stale = _run_async(scheme, staleness=2)
        rows.append(("SSP (staleness 2)", ssp_acc, ssp_stale))
        async_acc, async_stale = _run_async(scheme, staleness=None)
        rows.append(("fully async", async_acc, async_stale))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"Consistency models under stragglers — {scheme} "
        f"({UPDATES} global updates)",
        format_table(
            ["Model", "Accuracy(%)", "Max staleness observed"],
            [[name, f"{100 * acc:.1f}", stale] for name, acc, stale in rows],
        ),
    )
    by_name = {name: (acc, stale) for name, acc, stale in rows}

    # SSP's bound is enforced (a worker may *start* at lead ``staleness``,
    # so the observed lead tops out at ``staleness + 1``); fully-async
    # drifts beyond it under stragglers.
    assert by_name["SSP (staleness 2)"][1] <= 3
    assert by_name["fully async"][1] >= 1

    # §2.1's claim at equal update budget: consistency helps. Small runs
    # are noisy, so the assertion is the paper's qualitative one — BSP is
    # not beaten by a clear margin by either relaxation.
    assert by_name["BSP"][0] >= by_name["fully async"][0] - 0.05
    assert by_name["BSP"][0] >= by_name["SSP (staleness 2)"][0] - 0.05
