"""Ablations of 3LC's design decisions (DESIGN.md §5).

The paper argues three choices (§3.1-§3.3); each ablation isolates one:

1. **Error feedback vs. stochastic quantization** — deterministic rounding
   with error accumulation beats unbiased stochastic rounding on accuracy
   (the reason 3LC rejects TernGrad's approach).
2. **Zero-run encoding on/off** — ZRE buys ~2× traffic on top of quartic
   encoding at no accuracy cost (it is lossless).
3. **Quartic vs. naive 2-bit encoding** — 20% wire savings for ternary
   payloads, measured on real training traffic.
"""

import numpy as np
import pytest

from repro.compression.threelc import ThreeLCCompressor
from repro.core.quantization import quantize_3value
from repro.core.quartic import quartic_encode
from repro.core.twobit import twobit_encode
from repro.data import SyntheticImageDataset
from repro.distributed import Cluster

from benchmarks.conftest import BENCH_CONFIG, emit


def _train(scheme_name_or_compressor, runner, fraction=1.0):
    if isinstance(scheme_name_or_compressor, str):
        return runner.run(scheme_name_or_compressor, fraction)
    # A custom compressor: run a one-off cluster at bench scale.
    config = BENCH_CONFIG
    steps = config.steps_for_fraction(fraction)
    cluster = Cluster(
        config.model_factory(),
        config.dataset(),
        scheme_name_or_compressor,
        config.schedule(steps),
        config.cluster_config(),
    )
    cluster.train(steps)
    final = cluster.evaluate(test_size=config.eval_size)
    return final, cluster.traffic


def test_error_feedback_beats_stochastic(runner, benchmark):
    """§3.1/§5.3: deterministic quantization + error accumulation achieves
    better accuracy than stochastic quantization (Table 1: 93.32 vs 92.06)."""

    def run_both():
        ef = runner.run("3LC (s=1.00)", 1.0)
        stoch = runner.run("Stoch 3-value + QE", 1.0)
        return ef, stoch

    ef, stoch = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "error feedback vs stochastic",
        f"3LC (error feedback): {100 * ef.final_accuracy:.2f}%\n"
        f"Stoch 3-value + QE:   {100 * stoch.final_accuracy:.2f}%",
    )
    assert ef.final_accuracy >= stoch.final_accuracy - 0.005


def test_zre_halves_traffic_without_accuracy_cost(traffic_runner, benchmark):
    """Table 2's first two rows: ZRE ~doubles the ratio; being lossless it
    cannot change training outcomes given the same quantization stream."""

    def run_both():
        with_zre = traffic_runner.run("3LC (s=1.00)", 1.0)
        without = traffic_runner.run("3LC (s=1.00, no ZRE)", 1.0)
        return with_zre, without

    with_zre, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "ZRE ablation",
        f"with ZRE:    ratio {with_zre.compression_ratio:.1f}x, "
        f"acc {100 * with_zre.final_accuracy:.2f}%\n"
        f"without ZRE: ratio {without.compression_ratio:.1f}x, "
        f"acc {100 * without.final_accuracy:.2f}%",
    )
    assert with_zre.compression_ratio >= 1.5 * without.compression_ratio
    # ZRE's losslessness is asserted exactly at the codec level
    # (tests/core/test_zre.py: both pipelines decode to identical
    # tensors). Whole-run trajectories are NOT bit-comparable: with
    # multithreaded BLAS the simulator itself is non-deterministic at
    # ~1e-8 per step (verified by running one scheme twice), which
    # training dynamics amplify. The honest run-level claim is
    # statistical: accuracy matches within run-to-run noise.
    assert with_zre.final_accuracy == pytest.approx(
        without.final_accuracy, abs=0.01
    )


def test_error_feedback_off_hurts_aggressive_compression(benchmark):
    """Disabling 3LC's error accumulation at s=1.90 must not help: the
    deferred state changes are never delivered."""

    def run_both():
        with_ef = _train(ThreeLCCompressor(1.90), None)
        without = _train(ThreeLCCompressor(1.90, error_feedback=False), None)
        return with_ef, without

    (ef_final, _), (no_final, _) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    emit(
        "error feedback at s=1.90",
        f"with feedback:    {100 * ef_final.test_accuracy:.2f}%\n"
        f"without feedback: {100 * no_final.test_accuracy:.2f}%",
    )
    assert ef_final.test_accuracy >= no_final.test_accuracy - 0.02


def test_terngrad_clipping_ablation(runner, benchmark):
    """§5.1 implements TernGrad "without gradient clipping"; the restored
    option (clip at 2.5 sigma, TernGrad's setting) must not *hurt* — on
    heavy-tailed gradients it preserves quantization resolution — while
    the paper's no-clip variant remains the Table 1 baseline."""

    def run_both():
        plain = runner.run("Stoch 3-value + QE", 1.0)
        clipped = runner.run("Stoch 3-value + QE (clip 2.5)", 1.0)
        return plain, clipped

    plain, clipped = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "TernGrad clipping ablation",
        f"no clipping (paper's baseline): {100 * plain.final_accuracy:.2f}%\n"
        f"clip 2.5 sigma (TernGrad):      {100 * clipped.final_accuracy:.2f}%",
    )
    # Clipping keeps the scheme trainable and within noise of the no-clip
    # variant on this workload (gradients here are not outlier-dominated).
    assert clipped.final_accuracy >= plain.final_accuracy - 0.05


def test_quartic_vs_2bit_on_training_traffic(benchmark):
    """§3.2's 20% claim, measured on ternary streams from real gradients."""
    config = BENCH_CONFIG
    dataset = SyntheticImageDataset()
    model = config.model_factory()()
    from repro.nn.loss import SoftmaxCrossEntropy

    images, labels = dataset.train_shard(0, 64)
    loss_fn = SoftmaxCrossEntropy()
    logits = model.forward(images[:16], training=True)
    loss_fn.forward(logits, labels[:16])
    model.zero_grad()
    model.backward(loss_fn.backward())

    def measure():
        quartic_bytes = 0
        twobit_bytes = 0
        for p in model.parameters():
            if p.size < config.small_tensor_threshold:
                continue
            q = quantize_3value(p.grad, 1.0)
            quartic_bytes += quartic_encode(q.values).size
            twobit_bytes += twobit_encode(q.values).size
        return quartic_bytes, twobit_bytes

    quartic_bytes, twobit_bytes = benchmark.pedantic(measure, rounds=1, iterations=1)
    saving = 1 - quartic_bytes / twobit_bytes
    emit("quartic vs 2-bit on real gradients", f"saving {100 * saving:.1f}% (paper: 20%)")
    assert saving == pytest.approx(0.20, abs=0.01)
