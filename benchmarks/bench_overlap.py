#!/usr/bin/env python
"""Barrier granularity vs. achieved overlap (paper §2.1).

The paper credits fine-grained per-layer barriers with hiding communication
behind backward computation. This benchmark measures exactly how much
hiding each granularity buys: it trains a small cluster once, records every
step's transmission plan, then replays the run through the discrete-event
simulator with the backward timeline coarsened to 1, 2, 4, ... barrier
groups. One group means "transmit only when backward finishes" (the
coarse-grained strawman); the full timeline is per-layer scheduling.

Asserted, not just printed: the serialized schedule matches the analytic
closed form, per-layer scheduling achieves at least as much overlap as the
single-barrier schedule, and no overlapped schedule is slower than
serialized.

With ``--sync-mode async`` (or ``ssp`` plus ``--staleness``) the sweep
replays a recorded per-update *event stream* through the event-driven
simulator instead: per-worker virtual clocks, FIFO link interleaving, and
blocking SSP barriers, reporting per-worker throughput, the effective
staleness distribution, and link utilization at each bandwidth.

Run:  python benchmarks/bench_overlap.py [--smoke] [--steps N]
      python benchmarks/bench_overlap.py --smoke --sync-mode async
(also collectable by pytest: ``pytest benchmarks/bench_overlap.py``)
"""

import argparse
import sys
from dataclasses import dataclass

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed.barriers import StragglerSpec
from repro.exchange import EngineConfig, ExchangeEngine
from repro.netsim import EventDrivenSimulator, NetworkSimulator, single_server_links
from repro.network.bandwidth import link
from repro.network.timing import StepTimeModel
from repro.nn import CosineDecay, build_resnet
from repro.nn.stats import profile_backward
from repro.utils.format import format_table
from repro.utils.profiling import maybe_profile

TIME_MODEL = StepTimeModel(
    overlap=0.0, per_message_overhead=25e-6, compute_scale=0.05, codec_scale=0.5
)


@dataclass(frozen=True)
class GranularityRow:
    groups: int
    mean_step_seconds: float
    serialized_seconds: float
    achieved_overlap: float
    hidden_fraction: float

    @property
    def speedup(self) -> float:
        return self.serialized_seconds / self.mean_step_seconds


def run_sweep(
    *,
    steps: int,
    depth: int,
    base_width: int,
    link_name: str = "10Mbps",
    tracer=None,
) -> tuple[list[GranularityRow], float, float]:
    """Train once, then simulate every barrier granularity.

    Returns the per-granularity rows plus (simulated serialized mean,
    analytic closed-form mean) for the calibration check. With a
    :class:`repro.telemetry.Tracer`, each granularity's replay emits
    spans under its own ``groups=N`` trace group (``--trace-out``).
    """
    dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
    engine = ExchangeEngine(
        lambda: build_resnet(depth, base_width=base_width, seed=1),
        dataset,
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, steps),
        EngineConfig(
            num_workers=2,
            batch_size=8,
            shard_size=64,
            seed=0,
            record_transmissions=True,
        ),
    )
    engine.train(steps)

    model = build_resnet(depth, base_width=base_width, seed=1)
    images, labels = dataset.train_shard(0, 8)
    timeline = profile_backward(model, images, labels)
    spec = link(link_name)

    serialized = NetworkSimulator(
        timeline, single_server_links(spec), TIME_MODEL, overlap=False
    ).simulate_run(engine.transmissions)
    analytic = sum(
        TIME_MODEL.step_seconds(s, spec) for s in engine.traffic.steps
    ) / len(engine.traffic.steps)

    granularities = [1, 2, 4, 8, len(timeline.layers)]
    rows = []
    for groups in dict.fromkeys(g for g in granularities if g <= len(timeline.layers)):
        sim = NetworkSimulator(
            timeline.coarsen(groups),
            single_server_links(spec),
            TIME_MODEL,
            overlap=True,
            tracer=tracer,
            trace_group=f"groups={groups}",
        )
        run = sim.simulate_run(engine.transmissions)
        rows.append(
            GranularityRow(
                groups=groups,
                mean_step_seconds=run.mean_step_seconds,
                serialized_seconds=serialized.mean_step_seconds,
                achieved_overlap=run.mean_overlap,
                hidden_fraction=run.mean_hidden_fraction,
            )
        )
    return rows, serialized.mean_step_seconds, analytic


def check_and_render(
    rows: list[GranularityRow], serialized: float, analytic: float, link_name: str
) -> str:
    assert abs(serialized - analytic) / analytic < 0.01, (
        f"serialized simulation {serialized} != analytic {analytic}"
    )
    for row in rows:
        assert row.mean_step_seconds <= row.serialized_seconds * (1 + 1e-9)
        assert 0.0 <= row.achieved_overlap <= 1.0
    finest, coarsest = rows[-1], rows[0]
    assert finest.achieved_overlap >= coarsest.achieved_overlap - 1e-9
    # Per-layer barriers must hide strictly more communication than the
    # coarse single-barrier schedule (the paper's §2.1 claim, measured).
    assert finest.hidden_fraction > coarsest.hidden_fraction
    assert finest.mean_step_seconds <= coarsest.mean_step_seconds * (1 + 1e-9)

    table = format_table(
        ["Barrier groups", "s/step", "Overlap", "Comm hidden", "Speedup vs serialized"],
        [
            [
                str(r.groups),
                f"{r.mean_step_seconds:.4f}",
                f"{r.achieved_overlap:.3f}",
                f"{100 * r.hidden_fraction:.1f}%",
                f"{r.speedup:.2f}x",
            ]
            for r in rows
        ],
        title=f"Per-layer overlap vs barrier granularity @ {link_name}",
    )
    footer = (
        f"serialized {serialized:.4f} s/step == analytic closed form "
        f"{analytic:.4f} s/step (overlap=0)"
    )
    return f"{table}\n{footer}"


def run_event_sweep(
    *,
    updates: int,
    depth: int,
    base_width: int,
    staleness: int | None,
    link_names: tuple[str, ...] = ("10Mbps", "100Mbps", "1Gbps"),
    tracer=None,
) -> str:
    """Train one async/SSP run, then replay its event stream per link.

    Asserted, not just printed: event-driven wall time never exceeds the
    one-global-chain serialized baseline, link utilization stays in
    (0, 1], every worker commits updates, and the replayed schedule
    respects the recording's commit order.
    """
    dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
    engine = ExchangeEngine(
        lambda: build_resnet(depth, base_width=base_width, seed=1),
        dataset,
        make_compressor("3LC (s=1.00)", seed=0),
        CosineDecay(0.05, updates),
        EngineConfig(
            num_workers=2,
            batch_size=8,
            shard_size=64,
            seed=0,
            sync_mode="ssp" if staleness is not None else "async",
            staleness=staleness,
            straggler=StragglerSpec(
                jitter_sigma=0.0,
                slowdown_probability=0.25,
                slowdown_factor=4.0,
                seed=7,
            ),
            record_transmissions=True,
            fixed_compute_seconds=0.05,
        ),
    )
    engine.train(updates)
    events = engine.update_events

    model = build_resnet(depth, base_width=base_width, seed=1)
    images, labels = dataset.train_shard(0, 8)
    timeline = profile_backward(model, images, labels)

    rows = []
    for link_name in link_names:
        sim = EventDrivenSimulator(
            timeline,
            single_server_links(link(link_name)),
            TIME_MODEL,
            staleness=staleness,
            overlap=True,
            tracer=tracer,
            trace_group=f"sim:{link_name}",
        )
        exchange = sim.simulate(events)
        assert exchange.total_seconds <= exchange.serialized_seconds * (1 + 1e-9)
        assert 0.0 < exchange.link_utilization["server"] <= 1.0
        assert len(exchange.per_worker_updates) == 2
        assert all(n > 0 for n in exchange.per_worker_updates.values())
        # Per-worker schedules stay causally ordered (cross-worker commit
        # order may legitimately differ from the recording: the simulated
        # network reorders arrivals the engine's compute-only clocks
        # could not see).
        for worker in exchange.per_worker_updates:
            commits = [
                u.commit_seconds for u in exchange.updates if u.worker == worker
            ]
            assert commits == sorted(commits)
        throughput = "/".join(
            f"{v:.1f}" for v in exchange.per_worker_throughput.values()
        )
        rows.append(
            [
                link_name,
                f"{exchange.mean_update_seconds:.4f}",
                f"{100 * exchange.achieved_overlap:.1f}%",
                f"{exchange.overlap_speedup:.2f}x",
                throughput,
                f"{exchange.link_utilization['server']:.2f}",
            ]
        )
    mode = "fully async" if staleness is None else f"SSP(staleness={staleness})"
    histogram = ", ".join(
        f"{k}:{v}" for k, v in exchange.staleness_histogram.items()
    )
    table = format_table(
        [
            "Link",
            "s/update",
            "Comm hidden",
            "Speedup vs chain",
            "Updates/s per worker",
            "Server util",
        ],
        rows,
        title=f"Event-driven schedule — {mode}, {updates} updates",
    )
    footer = (
        f"observed staleness distribution (versions behind at commit): "
        f"{{{histogram}}}"
    )
    return f"{table}\n{footer}"


def test_overlap_granularity():
    """Pytest entry point: smoke-scale sweep with the assertions on."""
    rows, serialized, analytic = run_sweep(steps=4, depth=8, base_width=4)
    body = check_and_render(rows, serialized, analytic, "10Mbps")
    print(f"\n=== Overlap granularity sweep (smoke) ===\n{body}")


def test_event_driven_async():
    """Pytest entry point: async event-replay smoke with assertions on."""
    body = run_event_sweep(updates=6, depth=8, base_width=4, staleness=None)
    print(f"\n=== Event-driven async schedule (smoke) ===\n{body}")


def test_event_driven_ssp():
    """Pytest entry point: SSP event-replay smoke with a blocking gate."""
    body = run_event_sweep(updates=6, depth=8, base_width=4, staleness=1)
    print(f"\n=== Event-driven SSP schedule (smoke) ===\n{body}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny configuration for CI"
    )
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--link", default="10Mbps", choices=["10Mbps", "100Mbps", "1Gbps"])
    parser.add_argument(
        "--sync-mode", default="bsp", choices=["bsp", "async", "ssp"],
        help="bsp sweeps barrier granularity; async/ssp replay a recorded "
        "per-update event stream through the event-driven simulator",
    )
    parser.add_argument(
        "--staleness", type=int, default=None,
        help="staleness bound for --sync-mode ssp",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a cProfile top-20 of the sweep hot path "
        "(REPRO_PROFILE=1 works too)",
    )
    parser.add_argument(
        "--profile-out", metavar="PATH", default=None,
        help="dump raw cProfile stats to PATH (pstats/snakeviz-loadable; "
        "implies --profile; REPRO_PROFILE_OUT works too)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON timeline of the simulated "
        "replays (one trace group per barrier granularity or link)",
    )
    args = parser.parse_args(argv)

    if args.staleness is not None and args.sync_mode != "ssp":
        parser.error("--staleness requires --sync-mode ssp")
    if args.sync_mode == "ssp" and args.staleness is None:
        parser.error("--sync-mode ssp requires --staleness")

    if args.smoke:
        steps, depth, width = 4, 8, 4
    else:
        steps, depth, width = 24, 14, 8
    if args.steps is not None:
        steps = args.steps

    tracer = None
    if args.trace_out:
        from repro.telemetry import Tracer

        tracer = Tracer()

    if args.sync_mode != "bsp":
        with maybe_profile(
            args.profile or None,
            label="bench_overlap event sweep",
            out=args.profile_out,
        ):
            report = run_event_sweep(
                updates=max(steps, 6),
                depth=depth,
                base_width=width,
                staleness=args.staleness,
                tracer=tracer,
            )
        print(report)
    else:
        with maybe_profile(
            args.profile or None, label="bench_overlap sweep", out=args.profile_out
        ):
            rows, serialized, analytic = run_sweep(
                steps=steps,
                depth=depth,
                base_width=width,
                link_name=args.link,
                tracer=tracer,
            )
        print(check_and_render(rows, serialized, analytic, args.link))

    if tracer is not None:
        from repro.telemetry.export import write_chrome_trace

        events = write_chrome_trace(args.trace_out, [("bench_overlap", tracer)])
        print(f"wrote {events} trace events to {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
