"""Adaptive sparsity control: tracking a bit budget through training.

Extension bench (DESIGN.md §5): Figure 9 shows 3LC's compressed sizes
drifting as training progresses; a static ``s`` therefore over- or
under-spends a metered link's budget at different training stages. The
adaptive controller holds measured bits/value near the target through the
drift. This bench trains with the controller and checks the budget
tracking on the live gradient stream, comparing against static settings.
"""

import numpy as np

from repro.compression import AdaptiveThreeLCCompressor, ThreeLCCompressor
from repro.utils.format import format_table

from benchmarks.conftest import emit


def _gradient_stream(steps, size=32768, seed=3):
    """Synthetic training-like stream: variance decays over training, as
    the paper observes for real gradient pushes (Fig. 9 discussion)."""
    rng = np.random.default_rng(seed)
    for step in range(steps):
        scale = 0.05 * (1.0 + 4.0 * np.exp(-step / 30.0))
        yield rng.normal(0, scale, size=size).astype(np.float32)


def test_budget_tracking(benchmark):
    target = 0.5
    steps = 120

    def run():
        adaptive = AdaptiveThreeLCCompressor(target, gain=0.05).make_context(
            (32768,)
        )
        static_low = ThreeLCCompressor(1.00).make_context((32768,))
        static_high = ThreeLCCompressor(1.90).make_context((32768,))
        series = {"adaptive": [], "s=1.00": [], "s=1.90": []}
        for a, b, c in zip(
            _gradient_stream(steps), _gradient_stream(steps), _gradient_stream(steps)
        ):
            series["adaptive"].append(adaptive.compress(a).bits_per_value())
            series["s=1.00"].append(static_low.compress(b).bits_per_value())
            series["s=1.90"].append(static_high.compress(c).bits_per_value())
        return series, adaptive

    (series, adaptive_ctx) = benchmark.pedantic(run, rounds=1, iterations=1)
    tail = {k: float(np.mean(v[steps // 2 :])) for k, v in series.items()}
    spread = {
        k: float(np.max(v[steps // 2 :]) - np.min(v[steps // 2 :]))
        for k, v in series.items()
    }
    emit(
        "Adaptive sparsity control (target 0.5 bits/value)",
        format_table(
            ["Scheme", "steady-state bits/value", "spread"],
            [[k, f"{tail[k]:.3f}", f"{spread[k]:.3f}"] for k in series],
        ),
    )

    # The controller converges onto the budget...
    assert abs(tail["adaptive"] - target) < 0.1
    # ...between the static envelopes.
    assert tail["s=1.90"] < tail["adaptive"] < tail["s=1.00"]
    # And the controlled s actually moved (it is doing work, not idling at
    # a bound).
    s_values = [s for s, _ in adaptive_ctx.history]
    assert max(s_values) - min(s_values) > 0.05
