"""Regenerates Figure 8: the sparsity-multiplier sensitivity sweep.

Paper's finding (§5.4): "In general, a high sparsity multiplier reduces
training time, but it can also lower convergence speed with fewer training
steps. Most s values lead to high accuracy when using 100% of standard
training steps, but s = 1.90 exhibits lower accuracy than others."
"""

from repro.harness.figures import BUDGET_FRACTIONS, FIGURE8_SCHEMES, figure8_sparsity

from benchmarks.conftest import emit


def test_figure8(runner, benchmark):
    fig = benchmark.pedantic(
        lambda: figure8_sparsity(runner, "10Mbps", FIGURE8_SCHEMES, BUDGET_FRACTIONS),
        rounds=1,
        iterations=1,
    )
    emit("Figure 8 (sparsity sweep @ 10Mbps)", fig.text)
    series = {s.label: s.points for s in fig.series}

    # Higher s -> less traffic -> less total time at every budget.
    full_times = {
        label: points[-1][0] for label, points in series.items()
    }
    ordered = [full_times[f"3LC (s={s})"] for s in ("1.00", "1.50", "1.75", "1.90")]
    assert ordered == sorted(ordered, reverse=True)

    # With the full budget, accuracy is high for moderate s ...
    full_accs = {label: points[-1][1] for label, points in series.items()}
    assert full_accs["3LC (s=1.00)"] > 80.0
    # ... and the most aggressive setting is not the best.
    assert full_accs["3LC (s=1.90)"] <= max(full_accs.values())

    # Convergence-speed effect: at the smallest budget, s=1.00 beats
    # s=1.90 (the paper's "lower convergence speed with fewer steps").
    quarter_accs = {label: points[0][1] for label, points in series.items()}
    assert quarter_accs["3LC (s=1.00)"] >= quarter_accs["3LC (s=1.90)"] - 1.0
