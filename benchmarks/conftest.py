"""Shared benchmark fixtures.

One session-scoped :class:`ExperimentRunner` is shared by every benchmark
module so that table and figure benches reuse training runs exactly the way
the paper reuses its full-measurement results across Table 1 and
Figures 4–7.

The benchmark configuration (`BENCH_CONFIG`) is the reproduction's
"standard training" setting recorded in EXPERIMENTS.md. Set the environment
variable ``REPRO_BENCH_STEPS`` to override the step budget (useful for a
quick smoke pass).
"""

import os

import numpy as np
import pytest

from repro.harness import ExperimentConfig, ExperimentRunner

_STEPS = int(os.environ.get("REPRO_BENCH_STEPS", "200"))

#: Time/accuracy experiment scale: Table 1 and Figures 4-8. A narrower
#: model keeps the 4-budget × 9-scheme sweep tractable (see EXPERIMENTS.md).
BENCH_CONFIG = ExperimentConfig(
    depth=8,
    base_width=8,
    image_size=16,
    num_workers=4,
    batch_size=16,
    shard_size=512,
    standard_steps=_STEPS,
    base_lr=0.02,
    eval_size=1000,
    eval_points=8,
)

#: Traffic-measurement scale: Table 2 and Figure 9. A wider model makes
#: large conv tensors dominate, so compression ratios are not diluted by
#: per-tensor frame headers (the paper's ResNet-110 is header-negligible).
TRAFFIC_CONFIG = BENCH_CONFIG.scaled(base_width=16)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide cached runner for time/accuracy experiments."""
    return ExperimentRunner(BENCH_CONFIG)


@pytest.fixture(scope="session")
def traffic_runner() -> ExperimentRunner:
    """Session-wide cached runner for traffic experiments (wider model)."""
    return ExperimentRunner(TRAFFIC_CONFIG)


@pytest.fixture
def gradient_tensor() -> np.ndarray:
    """A realistic zero-centred gradient-like tensor (1M values)."""
    rng = np.random.default_rng(0)
    # Heavy-tailed mixture: mostly small values plus rare large ones, the
    # shape that makes ZRE productive on real training traffic.
    small = rng.normal(0, 0.01, size=1_000_000)
    spikes = rng.normal(0, 0.2, size=1_000_000) * (rng.random(1_000_000) < 0.02)
    return (small + spikes).astype(np.float32)


def emit(title: str, body: str) -> None:
    """Print a labelled result block to the benchmark log."""
    print(f"\n=== {title} ===\n{body}")
