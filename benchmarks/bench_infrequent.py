"""Infrequent-communication sweep: K local steps (paper §6, federated).

The paper's last related-work paragraph (§6, "Infrequent communication")
claims that federated-learning-style designs — run K local steps, then
transmit — "can lead to lower accuracy when using the same number of
training steps". Table 1 tests only K=2; this bench sweeps K to expose the
full trade-off curve, including the composition with 3LC's encoder (the
traffic saving multiplies: deferral divides *when*, 3LC divides *how
much*).

Shape claims: traffic shrinks roughly as 1/K; accuracy at a fixed step
budget degrades monotonically-ish in K (noise-tolerant assertion on the
endpoints); composing 2-local-steps with 3LC compresses more than either
alone.
"""

from repro.utils.format import format_table

from benchmarks.conftest import emit

SWEEP = ("32-bit float", "2 local steps", "4 local steps", "8 local steps")


def test_local_step_sweep(runner, benchmark):
    def run():
        results = {name: runner.run(name, 1.0) for name in SWEEP}
        results["2 local steps + 3LC (s=1.00)"] = runner.run(
            "2 local steps + 3LC (s=1.00)", 1.0
        )
        results["3LC (s=1.00)"] = runner.run("3LC (s=1.00)", 1.0)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Infrequent communication sweep (standard steps)",
        format_table(
            ["Design", "Compression ratio", "Accuracy(%)"],
            [
                [
                    name,
                    f"{r.compression_ratio:.1f}x",
                    f"{100 * r.final_accuracy:.2f}",
                ]
                for name, r in results.items()
            ],
        ),
    )

    base = results["32-bit float"]
    # Traffic scales ~1/K: each K-local-steps design transmits on 1/K of
    # the steps (frame-size variation gives a loose band).
    for name, k in (("2 local steps", 2), ("4 local steps", 4), ("8 local steps", 8)):
        ratio = results[name].compression_ratio
        assert 0.7 * k < ratio < 1.4 * k, (name, ratio)

    # §6's accuracy claim at the endpoints: deferring 8x costs accuracy
    # relative to the baseline at the same step count.
    assert results["8 local steps"].final_accuracy <= base.final_accuracy + 0.01

    # Composition multiplies savings beyond either component.
    composed = results["2 local steps + 3LC (s=1.00)"]
    assert composed.compression_ratio > results["2 local steps"].compression_ratio
    assert composed.compression_ratio > results["3LC (s=1.00)"].compression_ratio
