"""Regenerates Table 2: average traffic compression of 3LC vs. ``s``.

Paper's Table 2 (ResNet-110 training traffic):

    s        Compression ratio   bits per state change
    No ZRE        20.0x               1.60
    1.00          39.4x               0.812
    1.50          70.9x               0.451
    1.75         107x                 0.298
    1.90         160x                 0.200

Shape assertions: ratio is monotone increasing in ``s``; ZRE roughly
doubles the no-ZRE ratio at s=1.00; bits/value = 32/ratio by construction.
Absolute ratios run lower than the paper's because our model is ~20×
smaller, so per-tensor frame headers take a visible share of the wire —
EXPERIMENTS.md quantifies the gap.
"""

import pytest

from repro.harness.tables import table2

from benchmarks.conftest import emit


def test_table2(traffic_runner, benchmark):
    rows, text = benchmark.pedantic(
        lambda: table2(traffic_runner), rounds=1, iterations=1
    )
    emit("Table 2 (reproduction)", text)
    by_name = {r.scheme: r for r in rows}

    no_zre = by_name["3LC (s=1.00, no ZRE)"]
    sweep = [
        by_name[f"3LC (s={s})"].compression_ratio
        for s in ("1.00", "1.50", "1.75", "1.90")
    ]

    # Monotone in s (paper: 39.4 -> 70.9 -> 107 -> 160).
    assert sweep == sorted(sweep)
    assert sweep[-1] > 1.5 * sweep[0]

    # ZRE approximately doubles the no-ZRE ratio at s=1.00 (paper: 20 -> 39.4).
    assert by_name["3LC (s=1.00)"].compression_ratio >= 1.5 * no_zre.compression_ratio

    # No-ZRE quartic floor: 1.6 bits/value + headers + small-layer bypass.
    assert 1.6 <= no_zre.bits_per_value <= 2.6

    # bits/value is 32/ratio by definition of the accounting.
    for row in rows:
        assert row.bits_per_value == pytest.approx(
            32.0 / row.compression_ratio, rel=1e-6
        )
