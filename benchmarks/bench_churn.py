#!/usr/bin/env python
"""Accuracy and step time under churn: crashes, restarts, uplink flaps.

3LC moves every deferred update into per-tensor error-feedback buffers,
so a worker's residuals ARE training state: lose them on a crash and the
restarted worker silently corrupts convergence. This benchmark measures
that claim. A fixed-seed cluster trains under increasing churn (worker
crash/restart events on the parameter-server topologies, rack uplink
flaps on the hierarchical one) twice per level — once with checkpointed
error-feedback recovery, once with the naive state-reset rejoin — and
reports accuracy-vs-churn and time-vs-churn tables, with step times from
the discrete-event network simulator replaying the recorded faulted
transmission plans (rejoin resync transfers, link-down floors and all).

Asserted, not just printed: at the heaviest churn level the checkpointed
rejoin lands within one accuracy point of the fault-free run while the
naive rejoin measurably does not; the scalar and vectorized simulator
cores agree on every churn step time to 1e-6; the event-driven core
agrees with the step scheduler on the faulted streams; and the churn
fields (``fault_summary``, resync bytes) survive a results_io round
trip while a legacy archive without them still loads.

Run:  python benchmarks/bench_churn.py [--smoke] [--steps N]
(also collectable by pytest: ``pytest benchmarks/bench_churn.py``)
"""

import argparse
import sys

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.distributed.faults import FaultSpec, UplinkFlap, WorkerCrash
from repro.exchange import EngineConfig, ExchangeEngine
from repro.netsim import (
    EventDrivenSimulator,
    NetworkSimulator,
    link_model_for,
    updates_from_bsp_steps,
)
from repro.network.bandwidth import link
from repro.network.timing import StepTimeModel
from repro.nn import CosineDecay, build_resnet
from repro.nn.stats import profile_backward
from repro.utils.format import format_table
from repro.utils.profiling import maybe_profile

TIME_MODEL = StepTimeModel(
    overlap=0.0, per_message_overhead=25e-6, compute_scale=0.05, codec_scale=0.5
)
SCHEME = "3LC (s=1.00)"
CORE_PARITY = 1e-6

#: Crash ladder for the accuracy-vs-churn sweep: level N injects the
#: first N events. Long outages on a short run make the naive rejoin's
#: corruption (zeroed residuals + a stale replica that never resyncs)
#: visible above evaluation noise.
CRASH_LADDER = (
    WorkerCrash(worker=1, step=10, down_steps=12),
    WorkerCrash(worker=2, step=25, down_steps=12),
    WorkerCrash(worker=3, step=40, down_steps=12),
    WorkerCrash(worker=1, step=55, down_steps=12),
)
FLAP_LADDER = (
    UplinkFlap(rack=1, step=10, down_steps=6, rejoin_delay_seconds=0.2),
    UplinkFlap(rack=0, step=25, down_steps=6, rejoin_delay_seconds=0.2),
)


def train_engine(
    topology: str,
    fault: FaultSpec | None,
    *,
    steps: int,
    depth: int,
    base_width: int,
    eval_size: int,
):
    """Train one fixed-seed engine under ``fault``; returns
    ``(engine, final_accuracy, dataset)`` with transmissions recorded."""
    dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
    config = dict(
        num_workers=4,
        batch_size=8,
        shard_size=64,
        seed=0,
        topology=topology,
        fault=fault,
        record_transmissions=True,
    )
    if fault is not None and fault.crashes:
        # The ladder re-crashes workers; keep every event a restart.
        config["fault"] = FaultSpec(
            crashes=fault.crashes,
            flaps=fault.flaps,
            max_restarts=len(fault.crashes) + 1,
            checkpoint_state=fault.checkpoint_state,
        )
    if topology == "hier":
        config.update(racks=2, rack_size=2)
    engine = ExchangeEngine(
        lambda: build_resnet(depth, base_width=base_width, seed=1),
        dataset,
        make_compressor(SCHEME, seed=0),
        CosineDecay(0.05, steps),
        EngineConfig(**config),
    )
    engine.train(steps)
    accuracy = engine.evaluate(test_size=eval_size).test_accuracy
    return engine, accuracy, dataset


def replay_step_seconds(
    engine, timeline, topology: str, link_name: str
) -> float:
    """Replay the recorded (possibly faulted) plan through both simulator
    cores; asserts they agree per step to ``CORE_PARITY`` seconds and
    returns the vectorized mean step seconds."""
    kwargs = {"racks": 2, "rack_size": 2} if topology == "hier" else {}
    lm = link_model_for(topology, link(link_name), num_workers=4, **kwargs)
    runs = {}
    for vectorized in (False, True):
        runs[vectorized] = NetworkSimulator(
            timeline,
            lm,
            TIME_MODEL,
            overlap=True,
            serialized_baseline=False,
            vectorized=vectorized,
        ).simulate_run(engine.transmissions)
    scalar, vector = runs[False], runs[True]
    for a, b in zip(scalar.steps, vector.steps):
        assert abs(a.step_seconds - b.step_seconds) <= CORE_PARITY, (
            f"scalar/vectorized cores disagree on churn step {a.step}: "
            f"{a.step_seconds} vs {b.step_seconds} ({topology} @ {link_name})"
        )
    # Third opinion: the event-driven core must schedule the same faulted
    # stream (link-down floors, resync records) to the same total. The
    # hierarchical BSP fold is out of scope — ``updates_from_bsp_steps``
    # models flat parameter-server streams only.
    if topology != "hier":
        serialized = NetworkSimulator(
            timeline, lm, TIME_MODEL, overlap=False, serialized_baseline=False
        ).simulate_run(engine.transmissions)
        exchange = EventDrivenSimulator(
            timeline, lm, TIME_MODEL, staleness=0, overlap=False
        ).simulate(updates_from_bsp_steps(engine.transmissions, 4))
        assert (
            abs(exchange.total_seconds - serialized.total_seconds)
            <= CORE_PARITY
        ), (
            f"event-driven core disagrees with the step scheduler on the "
            f"faulted stream: {exchange.total_seconds} vs "
            f"{serialized.total_seconds} ({topology} @ {link_name})"
        )
    return vector.mean_step_seconds


def churn_tables(
    *,
    steps: int,
    depth: int,
    base_width: int,
    eval_size: int,
    link_name: str,
    assert_bounds: bool,
) -> str:
    """Accuracy-vs-churn and time-vs-churn on the single-server topology."""
    scale = steps / 80.0
    base_engine, base_acc, dataset = train_engine(
        "single", None, steps=steps, depth=depth,
        base_width=base_width, eval_size=eval_size,
    )
    timeline = profile_backward(
        build_resnet(depth, base_width=base_width, seed=1),
        *dataset.train_shard(0, 8),
    )
    base_seconds = replay_step_seconds(base_engine, timeline, "single", link_name)

    rows = []
    diffs = {}
    for level in range(1, len(CRASH_LADDER) + 1):
        crashes = tuple(
            WorkerCrash(
                worker=c.worker,
                step=max(1, round(c.step * scale)),
                down_steps=max(1, round(c.down_steps * scale)),
            )
            for c in CRASH_LADDER[:level]
        )
        accs, seconds, resync = {}, {}, 0
        for checkpointed in (True, False):
            fault = FaultSpec(crashes=crashes, checkpoint_state=checkpointed)
            engine, acc, _ = train_engine(
                "single", fault, steps=steps, depth=depth,
                base_width=base_width, eval_size=eval_size,
            )
            accs[checkpointed] = acc
            seconds[checkpointed] = replay_step_seconds(
                engine, timeline, "single", link_name
            )
            if checkpointed:
                summary = engine.fault_summary()
                assert summary["crashes"] == level and summary["restarts"] >= 1
                assert summary["resync_bytes"] > 0, (
                    "checkpointed rejoin must pay a full-model resync"
                )
                resync = summary["resync_bytes"]
        diffs[level] = {
            ck: abs(accs[ck] - base_acc) for ck in (True, False)
        }
        rows.append(
            [
                str(level),
                f"{100 * accs[True]:.2f}%",
                f"{100 * accs[False]:.2f}%",
                f"{100 * diffs[level][True]:+.2f}pp",
                f"{100 * diffs[level][False]:+.2f}pp",
                f"{resync / 1e3:.1f} kB",
                f"{1e3 * seconds[True]:.2f} ms",
            ]
        )
    if assert_bounds:
        # The acceptance bar: checkpointed error-feedback rejoin stays
        # within one accuracy point of the fault-free run at the heaviest
        # churn level; the naive state-reset rejoin does not.
        heaviest = diffs[len(CRASH_LADDER)]
        assert heaviest[True] <= 0.01, (
            f"checkpointed rejoin drifted {100 * heaviest[True]:.2f}pp "
            f"from the fault-free accuracy (bound: 1.00pp)"
        )
        assert heaviest[False] > heaviest[True], (
            f"naive state-reset rejoin ({100 * heaviest[False]:.2f}pp) "
            "should corrupt convergence measurably more than the "
            f"checkpointed rejoin ({100 * heaviest[True]:.2f}pp)"
        )
        assert heaviest[False] > 0.01, (
            f"naive rejoin drifted only {100 * heaviest[False]:.2f}pp; "
            "expected > 1pp at the heaviest churn level"
        )
    header = (
        f"fault-free: {100 * base_acc:.2f}% accuracy, "
        f"{1e3 * base_seconds:.2f} ms/step @ {link_name}"
    )
    table = format_table(
        [
            "Crashes",
            "Ckpt acc",
            "Naive acc",
            "Ckpt drift",
            "Naive drift",
            "Resync",
            "Ckpt s/step",
        ],
        rows,
        title=f"Accuracy & step time vs churn (single PS, {steps} steps)",
    )
    return f"{header}\n{table}"


def flap_table(
    *,
    steps: int,
    depth: int,
    base_width: int,
    eval_size: int,
    link_name: str,
) -> str:
    """Elastic rack membership: accuracy and time under uplink flaps."""
    scale = steps / 40.0
    base_engine, base_acc, dataset = train_engine(
        "hier", None, steps=steps, depth=depth,
        base_width=base_width, eval_size=eval_size,
    )
    timeline = profile_backward(
        build_resnet(depth, base_width=base_width, seed=1),
        *dataset.train_shard(0, 8),
    )
    base_seconds = replay_step_seconds(base_engine, timeline, "hier", link_name)
    rows = [["0", f"{100 * base_acc:.2f}%", "0", "0.0 kB",
             f"{1e3 * base_seconds:.2f} ms"]]
    for level in range(1, len(FLAP_LADDER) + 1):
        flaps = tuple(
            UplinkFlap(
                rack=f.rack,
                step=max(1, round(f.step * scale)),
                down_steps=max(1, round(f.down_steps * scale)),
                rejoin_delay_seconds=f.rejoin_delay_seconds,
            )
            for f in FLAP_LADDER[:level]
        )
        engine, acc, _ = train_engine(
            "hier", FaultSpec(flaps=flaps), steps=steps, depth=depth,
            base_width=base_width, eval_size=eval_size,
        )
        summary = engine.fault_summary()
        assert summary["flaps"] == level and summary["rejoins"] == level
        assert summary["degraded_steps"] > 0 and summary["resync_bytes"] > 0
        seconds = replay_step_seconds(engine, timeline, "hier", link_name)
        # A flapped run pays rejoin-delay floors and full-model resyncs;
        # the simulated run must be slower than the fault-free one.
        assert seconds > base_seconds, (
            f"flapped replay ({seconds}) should be slower than the "
            f"fault-free replay ({base_seconds})"
        )
        rows.append(
            [
                str(level),
                f"{100 * acc:.2f}%",
                str(summary["degraded_steps"]),
                f"{summary['resync_bytes'] / 1e3:.1f} kB",
                f"{1e3 * seconds:.2f} ms",
            ]
        )
    return format_table(
        ["Flaps", "Accuracy", "Degraded steps", "Resync", "s/step"],
        rows,
        title=f"Hierarchical exchange under uplink flaps ({steps} steps)",
    )


def roundtrip_check() -> None:
    """Churn fields survive results_io; legacy archives still load."""
    from repro.harness.config import FAST_CONFIG
    from repro.harness.results_io import (
        run_result_from_dict,
        run_result_to_dict,
    )
    from repro.harness.runner import ExperimentRunner

    fault = FaultSpec(crashes=(WorkerCrash(worker=1, step=2, down_steps=2),))
    runner = ExperimentRunner(FAST_CONFIG.scaled(standard_steps=6, fault=fault))
    result = runner.run(SCHEME)
    assert result.fault_summary is not None
    assert result.fault_summary["crashes"] == 1
    restored = run_result_from_dict(run_result_to_dict(result))
    assert restored.fault_summary == result.fault_summary
    assert (
        restored.traffic.total_resync_bytes
        == result.traffic.total_resync_bytes
        > 0
    )
    # A pre-churn archive has neither key; both default to fault-free.
    legacy = run_result_to_dict(result)
    del legacy["fault_summary"]
    for step in legacy["traffic_steps"]:
        del step["resync_bytes"]
    loaded = run_result_from_dict(legacy)
    assert loaded.fault_summary is None
    assert loaded.traffic.total_resync_bytes == 0


def smoke(*, steps: int, depth: int, base_width: int) -> str:
    """One crash/restart and one uplink-flap scenario per topology."""
    crash = FaultSpec(
        crashes=(WorkerCrash(worker=1, step=2, down_steps=2),)
    )
    flap = FaultSpec(
        flaps=(UplinkFlap(rack=1, step=2, down_steps=2,
                          rejoin_delay_seconds=0.3),)
    )
    rows = []
    for topology, fault in (
        ("single", crash),
        ("sharded", crash),
        ("hier", flap),
    ):
        engine, acc, dataset = train_engine(
            topology, fault, steps=steps, depth=depth,
            base_width=base_width, eval_size=200,
        )
        summary = engine.fault_summary()
        if fault.crashes:
            assert summary["crashes"] == 1 and summary["restarts"] == 1
        else:
            assert summary["flaps"] == 1 and summary["rejoins"] == 1
        assert summary["resync_bytes"] > 0
        timeline = profile_backward(
            build_resnet(depth, base_width=base_width, seed=1),
            *dataset.train_shard(0, 8),
        )
        seconds = replay_step_seconds(engine, timeline, topology, "100Mbps")
        rows.append(
            [
                topology,
                "crash" if fault.crashes else "flap",
                f"{100 * acc:.2f}%",
                f"{summary['resync_bytes'] / 1e3:.1f} kB",
                f"{1e3 * seconds:.2f} ms",
            ]
        )
    roundtrip_check()
    return format_table(
        ["Topology", "Fault", "Accuracy", "Resync", "s/step"],
        rows,
        title=f"Churn smoke: one fault per topology ({steps} steps)",
    )


def test_churn_smoke():
    """Pytest entry point: per-topology fault scenarios, core parity,
    and the results_io churn round trip."""
    body = smoke(steps=8, depth=8, base_width=4)
    print(f"\n=== Churn smoke ===\n{body}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny configuration for CI"
    )
    parser.add_argument(
        "--steps", type=int, default=None,
        help="override the per-scenario step budget",
    )
    parser.add_argument(
        "--link", default="100Mbps", choices=["10Mbps", "100Mbps", "1Gbps"]
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a cProfile top-20 of the sweep hot path "
        "(REPRO_PROFILE=1 works too)",
    )
    parser.add_argument(
        "--profile-out", metavar="PATH", default=None,
        help="dump raw cProfile stats to PATH (implies --profile)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        steps = args.steps if args.steps is not None else 8
        report = smoke(steps=steps, depth=8, base_width=4)
        print(report)
        return 0

    crash_steps = args.steps if args.steps is not None else 80
    flap_steps = args.steps if args.steps is not None else 40
    with maybe_profile(
        args.profile or None, label="bench_churn sweep", out=args.profile_out
    ):
        crash_report = churn_tables(
            steps=crash_steps,
            depth=8,
            base_width=4,
            eval_size=2000,
            link_name=args.link,
            # The calibrated drift bounds assume the default budget.
            assert_bounds=args.steps is None,
        )
        flap_report = flap_table(
            steps=flap_steps,
            depth=8,
            base_width=4,
            eval_size=1000,
            link_name=args.link,
        )
    print(crash_report)
    print()
    print(flap_report)
    roundtrip_check()
    return 0


if __name__ == "__main__":
    sys.exit(main())
