#!/usr/bin/env python
"""Hierarchical exchange: compression scheme x cross-rack bandwidth.

3LC's thesis is that traffic compression matters most where bandwidth is
scarcest. The hierarchical topology makes that regime measurable: rack
rings move bytes over fast local links while one compressed aggregate per
rack crosses the scarce core. This benchmark trains a small hierarchical
cluster once per scheme (recording every step's two-tier transmission
plan) and replays the run through the discrete-event simulator while the
cross-rack uplink shrinks from parity with the fabric down to a WAN-like
trickle — the sweep Table 1 cannot show with a flat topology.

Asserted, not just printed: the serialized schedule equals the analytic
per-tier closed form (compute + codec + staged tier transfers) at every
swept point, the overlapped schedule is never slower than serialized, the
cross link is the busiest tier once it is scarcer than the fabric, and
compression's speedup over raw float32 grows as the core shrinks.

Run:  python benchmarks/bench_hier.py [--smoke] [--steps N]
(also collectable by pytest: ``pytest benchmarks/bench_hier.py``)
"""

import argparse
import sys

from repro.compression import make_compressor
from repro.data import DatasetSpec, SyntheticImageDataset
from repro.exchange import EngineConfig, ExchangeEngine
from repro.netsim import (
    NetworkSimulator,
    link_model_for,
    per_tier_serialized_seconds,
)
from repro.network.bandwidth import link
from repro.network.timing import StepTimeModel
from repro.nn import CosineDecay, build_resnet
from repro.nn.stats import profile_backward
from repro.utils.format import format_table
from repro.utils.profiling import maybe_profile

TIME_MODEL = StepTimeModel(
    overlap=0.0, per_message_overhead=25e-6, compute_scale=0.05, codec_scale=0.5
)
CROSS_FRACTIONS = (1.0, 0.25, 0.1, 0.02)
SCHEMES = ("32-bit float", "3LC (s=1.00)")


def train_recorded(scheme: str, *, steps: int, depth: int, base_width: int):
    dataset = SyntheticImageDataset(DatasetSpec(image_size=12, seed=0))
    engine = ExchangeEngine(
        lambda: build_resnet(depth, base_width=base_width, seed=1),
        dataset,
        make_compressor(scheme, seed=0),
        CosineDecay(0.05, steps),
        EngineConfig(
            num_workers=4,
            batch_size=8,
            shard_size=64,
            seed=0,
            topology="hier",
            racks=2,
            rack_size=2,
            record_transmissions=True,
        ),
    )
    engine.train(steps)
    return engine, dataset


def run_sweep(
    *,
    steps: int,
    depth: int,
    base_width: int,
    link_name: str = "100Mbps",
    tracer=None,
) -> str:
    """Sweep cross-rack bandwidth fractions for each scheme.

    With a :class:`repro.telemetry.Tracer`, each (fraction, scheme)
    overlapped replay emits spans under its own trace group
    (``--trace-out``); the serialized baselines stay untraced.
    """
    engines = {
        scheme: train_recorded(
            scheme, steps=steps, depth=depth, base_width=base_width
        )
        for scheme in SCHEMES
    }
    _, dataset = engines[SCHEMES[0]]
    timeline = profile_backward(
        build_resnet(depth, base_width=base_width, seed=1),
        *dataset.train_shard(0, 8),
    )

    rows = []
    speedups = []
    for fraction in CROSS_FRACTIONS:
        lm = link_model_for(
            "hier",
            link(link_name),
            racks=2,
            rack_size=2,
            cross_bw_fraction=fraction,
        )
        means = {}
        for scheme, (engine, _) in engines.items():
            serialized = NetworkSimulator(
                timeline, lm, TIME_MODEL, overlap=False
            ).simulate_run(engine.transmissions)
            overlapped = NetworkSimulator(
                timeline,
                lm,
                TIME_MODEL,
                overlap=True,
                tracer=tracer,
                trace_group=f"cross={fraction:.2f} {scheme}",
            ).simulate_run(engine.transmissions)
            analytic = sum(
                per_tier_serialized_seconds(st, lm, TIME_MODEL)
                for st in engine.transmissions
            ) / len(engine.transmissions)
            assert abs(serialized.mean_step_seconds - analytic) < 1e-9, (
                f"serialized {serialized.mean_step_seconds} != "
                f"per-tier closed form {analytic} at cross-bw {fraction}"
            )
            assert overlapped.mean_step_seconds <= (
                serialized.mean_step_seconds * (1 + 1e-9)
            )
            utilization = overlapped.mean_link_utilization
            cross_util = max(
                v for k, v in utilization.items() if k.startswith("cross")
            )
            if fraction < 1.0:
                # The scarce core must be the busy tier.
                assert cross_util >= utilization["rack0"]
            means[scheme] = (
                overlapped.mean_step_seconds, cross_util, utilization
            )
        raw_seconds = means["32-bit float"][0]
        lossy_seconds, lossy_cross, lossy_util = means["3LC (s=1.00)"]
        speedups.append(raw_seconds / lossy_seconds)
        rows.append(
            [
                f"{fraction:.2f}",
                f"{1e3 * raw_seconds:.2f} ms",
                f"{1e3 * lossy_seconds:.2f} ms",
                f"{speedups[-1]:.2f}x",
                f"{lossy_cross:.2f}",
                f"{lossy_util['rack0']:.2f}",
            ]
        )
    # The paper's claim, measured: compression buys more as the core
    # shrinks (speedup at the scarcest point beats the parity point).
    assert speedups[-1] > speedups[0], (
        f"3LC speedup should grow as the core shrinks, got {speedups}"
    )
    return format_table(
        [
            "Cross-bw fraction",
            "float32 s/step",
            "3LC s/step",
            "3LC speedup",
            "Cross util",
            "Rack util",
        ],
        rows,
        title=f"Hierarchical exchange vs cross-rack bandwidth @ {link_name}",
    )


def test_hier_sweep():
    """Pytest entry point: smoke-scale sweep with the assertions on."""
    body = run_sweep(steps=4, depth=8, base_width=4)
    print(f"\n=== Hierarchical cross-bandwidth sweep (smoke) ===\n{body}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny configuration for CI"
    )
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument(
        "--link", default="100Mbps", choices=["10Mbps", "100Mbps", "1Gbps"]
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a cProfile top-20 of the sweep hot path "
        "(REPRO_PROFILE=1 works too)",
    )
    parser.add_argument(
        "--profile-out", metavar="PATH", default=None,
        help="dump raw cProfile stats to PATH (pstats/snakeviz-loadable; "
        "implies --profile; REPRO_PROFILE_OUT works too)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON timeline of the overlapped "
        "replays (one trace group per cross-bw fraction and scheme)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        steps, depth, width = 4, 8, 4
    else:
        steps, depth, width = 16, 14, 8
    if args.steps is not None:
        steps = args.steps

    tracer = None
    if args.trace_out:
        from repro.telemetry import Tracer

        tracer = Tracer()

    with maybe_profile(
        args.profile or None, label="bench_hier sweep", out=args.profile_out
    ):
        report = run_sweep(
            steps=steps,
            depth=depth,
            base_width=width,
            link_name=args.link,
            tracer=tracer,
        )
    print(report)
    if tracer is not None:
        from repro.telemetry.export import write_chrome_trace

        events = write_chrome_trace(args.trace_out, [("bench_hier", tracer)])
        print(f"wrote {events} trace events to {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
