"""Regeneration of the paper's tables.

* :func:`table1` — speedup over the 32-bit float baseline at 10 Mbps,
  100 Mbps, and 1 Gbps plus final test accuracy (paper Table 1).
* :func:`table2` — average traffic compression of 3LC for varied sparsity
  multipliers, with and without zero-run encoding (paper Table 2).
* :func:`related_work_table` — the §6 designs (QSGD, DGC, Gaia, sufficient
  factors) and this repo's 3LC extensions, measured under the identical
  protocol (an extension beyond the paper's own evaluation).

All return structured rows and a formatted text table; the benchmark
harness prints the text and EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.registry import RELATED_WORK_SCHEMES, TABLE1_SCHEMES
from repro.harness.runner import ExperimentRunner, RunResult
from repro.utils.format import format_table

__all__ = [
    "Table1Row",
    "Table2Row",
    "RelatedWorkRow",
    "table1",
    "table2",
    "related_work_table",
    "TABLE2_SCHEMES",
]

BASELINE = "32-bit float"

#: 3LC variants of Table 2, in paper order (no-ZRE first).
TABLE2_SCHEMES: tuple[str, ...] = (
    "3LC (s=1.00, no ZRE)",
    "3LC (s=1.00)",
    "3LC (s=1.50)",
    "3LC (s=1.75)",
    "3LC (s=1.90)",
)


@dataclass(frozen=True)
class Table1Row:
    """One design's speedups and accuracy (paper Table 1)."""

    scheme: str
    speedup_10mbps: float
    speedup_100mbps: float
    speedup_1gbps: float
    accuracy: float
    accuracy_difference: float
    #: Mean wire megabytes per step — measured, not modelled; the traffic
    #: half of the paper's cost story.
    wire_mb_per_step: float = 0.0
    #: Mean physical wire frames per step (shared pulls counted once per
    #: subscriber). Fused wire plans shrink this without moving bytes;
    #: the per-frame protocol overhead the time model charges scales
    #: with it.
    frames_per_step: float = 0.0
    #: Simulator-measured overlap fraction at 10 Mbps (None for analytic
    #: runs using the calibrated constant).
    achieved_overlap: float | None = None
    #: Mean per-step traffic split of hierarchical runs, in megabytes
    #: (None for flat topologies): bytes that stayed on rack-local links
    #: vs. bytes that crossed the scarce rack uplinks — the column pair
    #: that shows where compression actually pays.
    intra_rack_mb: float | None = None
    cross_rack_mb: float | None = None


@dataclass(frozen=True)
class Table2Row:
    """One 3LC variant's traffic statistics (paper Table 2)."""

    scheme: str
    compression_ratio: float
    bits_per_value: float


def table1(
    runner: ExperimentRunner, schemes: tuple[str, ...] = TABLE1_SCHEMES
) -> tuple[list[Table1Row], str]:
    """Regenerate Table 1: per-link speedups and test accuracy.

    Speedup at a link is the ratio of modelled mean per-step times
    (baseline / scheme) — identical to the paper's training-time ratio
    because both runs execute the same number of steps.
    """
    if BASELINE not in schemes:
        raise ValueError(f"schemes must include the {BASELINE!r} baseline")
    results = {name: runner.run(name, 1.0) for name in schemes}
    base = results[BASELINE]
    rows = []
    for name in schemes:
        result = results[name]
        meter = result.traffic
        hierarchical = meter.total_cross_rack_bytes > 0
        steps = max(1, len(meter.steps))
        rows.append(
            Table1Row(
                scheme=name,
                speedup_10mbps=_speedup(base, result, "10Mbps"),
                speedup_100mbps=_speedup(base, result, "100Mbps"),
                speedup_1gbps=_speedup(base, result, "1Gbps"),
                accuracy=result.final_accuracy,
                accuracy_difference=result.final_accuracy - base.final_accuracy,
                wire_mb_per_step=meter.total_wire_bytes / steps / 1e6,
                frames_per_step=sum(s.frames for s in meter.steps) / steps,
                achieved_overlap=(
                    result.achieved_overlap["10Mbps"]
                    if result.achieved_overlap is not None
                    else None
                ),
                intra_rack_mb=(
                    meter.total_intra_rack_bytes / steps / 1e6
                    if hierarchical
                    else None
                ),
                cross_rack_mb=(
                    meter.total_cross_rack_bytes / steps / 1e6
                    if hierarchical
                    else None
                ),
            )
        )
    simulated = any(r.achieved_overlap is not None for r in rows)
    event_driven = any(
        results[name].staleness_distribution is not None for name in schemes
    )
    tiered = any(r.cross_rack_mb is not None for r in rows)
    headers = [
        "Design", "@10Mbps", "@100Mbps", "@1Gbps", "Accuracy(%)", "Diff",
        "MB/step", "Frames/step",
    ]
    if simulated:
        headers.append("Ovl@10M")
    if tiered:
        headers.extend(["Intra(MB/step)", "Cross(MB/step)"])
    body = []
    for r in rows:
        cells = [
            r.scheme,
            f"{r.speedup_10mbps:.2f}x",
            f"{r.speedup_100mbps:.2f}x",
            f"{r.speedup_1gbps:.2f}x",
            f"{100 * r.accuracy:.2f}",
            f"{100 * r.accuracy_difference:+.2f}",
            f"{r.wire_mb_per_step:.3f}",
            f"{r.frames_per_step:.0f}",
        ]
        if simulated:
            cells.append(
                f"{r.achieved_overlap:.2f}" if r.achieved_overlap is not None else "-"
            )
        if tiered:
            cells.append(
                f"{r.intra_rack_mb:.3f}" if r.intra_rack_mb is not None else "-"
            )
            cells.append(
                f"{r.cross_rack_mb:.3f}" if r.cross_rack_mb is not None else "-"
            )
        body.append(cells)
    title = "Table 1: speedup over baseline and test accuracy (standard steps)"
    if event_driven:
        # Async/SSP quanta are updates, not global steps; the overlap
        # column is the measured hidden-communication fraction from the
        # event-driven replay, not the calibrated constant.
        title += " [simulated event-driven updates]"
    elif simulated:
        title += " [simulated per-layer overlap]"
    text = format_table(headers, body, title=title)
    if runner.replay_cache is not None:
        # Footer: how much of the sweep the replay cache absorbed — the
        # reuse a tuner or repeated-command invocation banks on.
        stats = runner.replay_cache.stats()
        text += (
            "\nReplay cache: "
            f"{stats['recordings']} recordings "
            f"({stats['recording_hits']} hits), "
            f"{stats['simulations']} simulations "
            f"({stats['simulation_hits']} hits), "
            f"{stats['extraction_hits']}/"
            f"{stats['extraction_hits'] + stats['extraction_misses']} "
            "warm extractions"
        )
    return rows, text


def _speedup(base: RunResult, result: RunResult, link_name: str) -> float:
    return base.mean_step_seconds[link_name] / result.mean_step_seconds[link_name]


def table2(
    runner: ExperimentRunner, schemes: tuple[str, ...] = TABLE2_SCHEMES
) -> tuple[list[Table2Row], str]:
    """Regenerate Table 2: average 3LC traffic compression vs. ``s``."""
    rows = []
    for name in schemes:
        result = runner.run(name, 1.0)
        rows.append(
            Table2Row(
                scheme=name,
                compression_ratio=result.compression_ratio,
                bits_per_value=result.bits_per_value,
            )
        )
    text = format_table(
        ["Design", "Compression ratio", "bits per state change"],
        [
            [r.scheme, f"{r.compression_ratio:.1f}x", f"{r.bits_per_value:.3f}"]
            for r in rows
        ],
        title="Table 2: average traffic compression of 3LC (standard steps)",
    )
    return rows, text


@dataclass(frozen=True)
class RelatedWorkRow:
    """One §6 design's traffic, speed, and accuracy under our protocol."""

    scheme: str
    compression_ratio: float
    bits_per_value: float
    speedup_10mbps: float
    accuracy: float
    accuracy_difference: float


def related_work_table(
    runner: ExperimentRunner, schemes: tuple[str, ...] = RELATED_WORK_SCHEMES
) -> tuple[list[RelatedWorkRow], str]:
    """Extended comparison: related-work designs under the Table 1 protocol.

    The paper compares against re-implementations of these designs only
    qualitatively (§6); this table puts them through the same measured
    pipeline as Table 1 so the trade-off space — traffic vs. accuracy vs.
    speed — is directly inspectable.
    """
    if BASELINE not in schemes:
        raise ValueError(f"schemes must include the {BASELINE!r} baseline")
    results = {name: runner.run(name, 1.0) for name in schemes}
    base = results[BASELINE]
    rows = []
    for name in schemes:
        result = results[name]
        rows.append(
            RelatedWorkRow(
                scheme=name,
                compression_ratio=result.compression_ratio,
                bits_per_value=result.bits_per_value,
                speedup_10mbps=_speedup(base, result, "10Mbps"),
                accuracy=result.final_accuracy,
                accuracy_difference=result.final_accuracy - base.final_accuracy,
            )
        )
    text = format_table(
        ["Design", "Ratio", "bits/value", "@10Mbps", "Accuracy(%)", "Diff"],
        [
            [
                r.scheme,
                f"{r.compression_ratio:.1f}x",
                f"{r.bits_per_value:.3f}",
                f"{r.speedup_10mbps:.2f}x",
                f"{100 * r.accuracy:.2f}",
                f"{100 * r.accuracy_difference:+.2f}",
            ]
            for r in rows
        ],
        title="Related work (§6) under the Table 1 protocol",
    )
    return rows, text
