"""Terminal plotting for figure regeneration.

The benchmarks print the paper's figures as ASCII scatter/line charts plus
the underlying series, so results are inspectable without matplotlib
(unavailable offline). Multiple series share one canvas, each with its own
glyph and a legend line.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Series", "render_plot"]

_GLYPHS = "o*x+#@%&^~"


@dataclass(frozen=True)
class Series:
    """One named sequence of (x, y) points."""

    label: str
    points: tuple[tuple[float, float], ...]

    @classmethod
    def from_xy(cls, label: str, xs: Sequence[float], ys: Sequence[float]) -> "Series":
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        return cls(label, tuple(zip(map(float, xs), map(float, ys))))


def _bounds(series: Sequence[Series]) -> tuple[float, float, float, float]:
    xs = [p[0] for s in series for p in s.points]
    ys = [p[1] for s in series for p in s.points]
    if not xs:
        return 0.0, 1.0, 0.0, 1.0
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_min == x_max:
        x_min, x_max = x_min - 0.5, x_max + 0.5
    if y_min == y_max:
        y_min, y_max = y_min - 0.5, y_max + 0.5
    return x_min, x_max, y_min, y_max


def render_plot(
    series: Sequence[Series],
    *,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    width: int = 72,
    height: int = 20,
) -> str:
    """Render series on a character canvas with axes and a legend."""
    if width < 16 or height < 6:
        raise ValueError("canvas too small")
    x_min, x_max, y_min, y_max = _bounds(series)
    canvas = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, glyph: str) -> None:
        if math.isnan(x) or math.isnan(y):
            return
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        canvas[height - 1 - row][col] = glyph

    for index, s in enumerate(series):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in s.points:
            place(x, y, glyph)

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} ({y_min:.4g} .. {y_max:.4g})")
    border = "+" + "-" * width + "+"
    lines.append(border)
    lines.extend("|" + "".join(row) + "|" for row in canvas)
    lines.append(border)
    lines.append(f"{x_label} ({x_min:.4g} .. {x_max:.4g})")
    for index, s in enumerate(series):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        lines.append(f"  {glyph} {s.label}")
    return "\n".join(lines)
