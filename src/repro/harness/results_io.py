"""Persisting experiment results to JSON.

The benchmark harness and CLI can archive every :class:`RunResult` so that
EXPERIMENTS.md numbers are regenerable and diffable. The format is plain
JSON: one document per run with scalar metrics, curves, and the per-step
traffic log (bytes and element counts only — reconstructions are not
state worth archiving).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.harness.runner import RunResult
from repro.distributed.cluster import EvalResult
from repro.network.traffic import StepTraffic, TrafficMeter

__all__ = [
    "run_result_to_dict",
    "run_result_from_dict",
    "save_results",
    "load_results",
    "save_plan",
    "load_plan",
]

_FORMAT_VERSION = 1


def run_result_to_dict(result: RunResult) -> dict:
    """Convert a run to a JSON-serializable dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "scheme": result.scheme,
        "fraction": result.fraction,
        "steps": result.steps,
        "final_accuracy": result.final_accuracy,
        "final_loss": result.final_loss,
        "eval_curve": [asdict(e) for e in result.eval_curve],
        "loss_curve": list(result.loss_curve),
        "compression_ratio": result.compression_ratio,
        "bits_per_value": result.bits_per_value,
        "mean_step_seconds": dict(result.mean_step_seconds),
        "total_seconds": dict(result.total_seconds),
        "traffic_steps": [asdict(s) for s in result.traffic.steps],
        # None means "the simulator didn't run" and must survive the round
        # trip as None (not 0.0 or {}) — consumers branch on it.
        "achieved_overlap": (
            dict(result.achieved_overlap)
            if result.achieved_overlap is not None
            else None
        ),
        "per_worker_throughput": (
            {
                link: {str(worker): value for worker, value in throughput.items()}
                for link, throughput in result.per_worker_throughput.items()
            }
            if result.per_worker_throughput is not None
            else None
        ),
        "staleness_distribution": (
            {str(k): v for k, v in result.staleness_distribution.items()}
            if result.staleness_distribution is not None
            else None
        ),
        "link_utilization": (
            {link: dict(util) for link, util in result.link_utilization.items()}
            if result.link_utilization is not None
            else None
        ),
        # Additive field: already JSON-shaped (Telemetry.summary()), and
        # absent from pre-telemetry archives — from_dict tolerates both.
        "telemetry_summary": result.telemetry_summary,
        # Additive field: churn rollup (fault-injected runs only); None
        # for fault-free runs and absent from pre-churn archives.
        "fault_summary": result.fault_summary,
    }


def run_result_from_dict(data: dict) -> RunResult:
    """Reconstruct a run from :func:`run_result_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported results format version {version!r}")
    meter = TrafficMeter(steps=[StepTraffic(**s) for s in data["traffic_steps"]])
    # JSON object keys are strings; worker ids and staleness values are ints.
    per_worker = data.get("per_worker_throughput")
    if per_worker is not None:
        per_worker = {
            link: {int(worker): value for worker, value in throughput.items()}
            for link, throughput in per_worker.items()
        }
    staleness = data.get("staleness_distribution")
    if staleness is not None:
        staleness = {int(k): v for k, v in staleness.items()}
    return RunResult(
        scheme=data["scheme"],
        fraction=data["fraction"],
        steps=data["steps"],
        final_accuracy=data["final_accuracy"],
        final_loss=data["final_loss"],
        eval_curve=tuple(EvalResult(**e) for e in data["eval_curve"]),
        loss_curve=tuple(data["loss_curve"]),
        compression_ratio=data["compression_ratio"],
        bits_per_value=data["bits_per_value"],
        mean_step_seconds=data["mean_step_seconds"],
        total_seconds=data["total_seconds"],
        traffic=meter,
        achieved_overlap=data.get("achieved_overlap"),
        per_worker_throughput=per_worker,
        staleness_distribution=staleness,
        link_utilization=data.get("link_utilization"),
        telemetry_summary=data.get("telemetry_summary"),
        fault_summary=data.get("fault_summary"),
    )


def save_results(results: list[RunResult], path: str | Path) -> None:
    """Write runs to a JSON file (one array of run documents)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump([run_result_to_dict(r) for r in results], fh)


def load_results(path: str | Path) -> list[RunResult]:
    """Load runs written by :func:`save_results`."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return [run_result_from_dict(d) for d in json.load(fh)]


def save_plan(path: str | Path, data: dict) -> None:
    """Write a validated ``repro.plan/v1`` tuner artifact.

    Thin alias for :func:`repro.tuner.artifact.save_plan` so harness
    consumers have one results-IO entry point (imported lazily: loading
    archived runs must not require the tuner package's dependencies).
    """
    from repro.tuner.artifact import save_plan as _save_plan

    _save_plan(path, data)


def load_plan(path: str | Path) -> dict:
    """Load and validate a ``repro.plan/v1`` tuner artifact."""
    from repro.tuner.artifact import load_plan as _load_plan

    return _load_plan(path)
