"""Experiment configuration: the reproduction's counterpart of §5.2.

One :class:`ExperimentConfig` pins everything an experiment needs — model,
dataset, cluster shape, step budget, learning-rate schedule, and the
hardware-substitution time model — so that every table and figure is
regenerated from a single declarative object recorded in EXPERIMENTS.md.

Scale notes (DESIGN.md substitutions): the paper trains ResNet-110 on
CIFAR-10 with 10 GPU workers for 25,600 steps; the reproduction defaults to
a ResNet-14 on the synthetic 16×16 task with 4 workers and a few hundred
steps, preserving the architecture family, optimizer, schedule, and
measurement protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.data.synthetic import DatasetSpec, SyntheticImageDataset
from repro.distributed.barriers import StragglerSpec
from repro.distributed.cluster import ClusterConfig
from repro.distributed.defaults import FUSION_BUCKET_ELEMENTS, SMALL_TENSOR_THRESHOLD
from repro.distributed.faults import FaultSpec
from repro.exchange.engine import EngineConfig
from repro.exchange.sync import SYNC_MODES
from repro.exchange.topology import TOPOLOGIES
from repro.exchange.wireplan import fusion_incompatibility
from repro.network.timing import StepTimeModel
from repro.nn.resnet import build_mlp, build_resnet
from repro.nn.schedule import CosineDecay, scale_lr_for_workers

__all__ = ["ExperimentConfig", "DEFAULT_CONFIG", "FAST_CONFIG"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Declarative description of one experiment family."""

    # Model (paper: ResNet-110, base width 16). ``model_family`` selects
    # the architecture: "resnet" (depth/base_width) or "mlp" (the bench
    # MLP over flattened inputs, hidden widths = ``mlp_hidden``).
    model_family: str = "resnet"
    depth: int = 14
    base_width: int = 8
    mlp_hidden: tuple[int, ...] = (64, 64)
    model_seed: int = 42

    # Dataset (paper: CIFAR-10)
    num_classes: int = 10
    image_size: int = 16
    structured_noise: float = 0.55
    pixel_noise: float = 0.25
    dataset_seed: int = 0

    # Cluster (paper: 10 workers, batch 32/worker, momentum 0.9, wd 1e-4)
    num_workers: int = 4
    batch_size: int = 16
    shard_size: int = 512
    momentum: float = 0.9
    weight_decay: float = 1e-4
    small_tensor_threshold: int = SMALL_TENSOR_THRESHOLD
    augment_pad: int = 2
    cluster_seed: int = 0

    # Exchange plan (paper: single parameter server, BSP). The unified
    # engine also runs sharded, ring, and hierarchical topologies and
    # async/SSP modes.
    topology: str = "single"
    sync_mode: str = "bsp"
    num_shards: int = 2
    backup_workers: int = 0
    staleness: int | None = None
    #: Per-step compute-time jitter / straggler injection (None = uniform
    #: compute). Changes what the engine records, so it is part of the
    #: sweep-replay fingerprint — never canonicalized away.
    straggler: StragglerSpec | None = None
    #: Injected churn (worker crash/restart, rack uplink flaps, permanent
    #: departures). Validated against topology/sync mode by the engine;
    #: like ``straggler`` it invalidates cached recordings.
    fault: FaultSpec | None = None
    #: Hierarchical topology shape: ``racks`` racks of ``rack_size``
    #: workers (must multiply to ``num_workers``), with the cross-rack
    #: tier reusing the single or sharded parameter service.
    racks: int = 2
    rack_size: int = 2
    hier_upper: str = "single"
    #: Cross-rack uplink rate as a fraction of the swept link rate (the
    #: Table 1 columns keep meaning "the fabric's per-link rate"; the
    #: core is this much scarcer — the regime the paper targets).
    cross_bw_fraction: float = 0.1
    #: Per-frame propagation delay on the cross-rack uplinks.
    cross_rtt_seconds: float = 0.0
    #: Fused-bucket hot path for the small-tensor bypass set. Composes
    #: with the sharded and hierarchical topologies (partition-aware wire
    #: plans) and with async/SSP (per-worker fused pull streams).
    fuse_small_tensors: bool = False
    #: Fused-bucket capacity in elements (``--bucket-elements``).
    bucket_elements: int = FUSION_BUCKET_ELEMENTS
    #: Lossy fused buckets: the scheme's codec over each whole bucket with
    #: one shared scale, instead of the exact float32 bypass.
    fuse_lossy: bool = False
    #: Parameter names that force-close the open fusion bucket *before*
    #: packing them — per-layer bucket boundaries the tuner searches over.
    #: Only meaningful with ``fuse_small_tensors``.
    bucket_boundaries: tuple[str, ...] = ()
    #: Simulator service order within a transmission wave:
    #: "registration" (the engine's record order) or "smallest"
    #: (smallest-gradient-first, so short messages clear the link ahead of
    #: large ones). Simulation-only: recordings are shared across
    #: priorities by the replay cache.
    transmission_priority: str = "registration"
    #: Per-link timing via the discrete-event simulator (``repro.netsim``):
    #: per-layer overlap scheduling replaces the analytic model's
    #: calibrated overlap constant, and sharded/ring runs are charged
    #: per-link instead of through a fictitious shared server NIC.
    #: Async/SSP runs replay per-update event streams through the
    #: event-driven scheduler (per-worker virtual clocks, FIFO links,
    #: blocking SSP barriers) instead of BSP step plans.
    sim_overlap: bool = False
    #: Telemetry (``--telemetry`` / ``--trace-out`` / ``--metrics-out``):
    #: the engine and simulators report into a per-run
    #: :class:`repro.telemetry.Telemetry` session — labeled metric series,
    #: simulated-clock spans — and ``RunResult.telemetry_summary`` carries
    #: the rollup. Off by default: the instrumented paths stay no-op.
    telemetry: bool = False

    # Training budget and schedule (paper: 25,600 steps, cosine 0.1 -> 0.001
    # scaled by worker count)
    standard_steps: int = 240
    base_lr: float = 0.02
    min_lr: float = 0.001

    # Evaluation
    eval_size: int = 1000
    eval_points: int = 8

    # Scheme seed (stochastic ternary, top-k sampling)
    scheme_seed: int = 0

    # Hardware-substitution time model (calibration in EXPERIMENTS.md).
    # per_message_overhead is charged per wire *frame*: an unfused
    # ResNet-14 step moves a few hundred frames (~= the old flat 2 ms
    # per-step constant), a fused run proportionally fewer.
    time_model: StepTimeModel = field(
        default_factory=lambda: StepTimeModel(
            overlap=0.9,
            per_message_overhead=25e-6,
            compute_scale=0.05,
            codec_scale=0.5,
        )
    )

    def __post_init__(self) -> None:
        if self.standard_steps < 4:
            raise ValueError("standard_steps must be >= 4")
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; expected one of {TOPOLOGIES}"
            )
        if self.sync_mode not in SYNC_MODES:
            raise ValueError(
                f"unknown sync mode {self.sync_mode!r}; expected one of {SYNC_MODES}"
            )
        if self.sync_mode == "ssp" and self.staleness is None:
            raise ValueError("sync_mode='ssp' requires a staleness bound")
        if self.bucket_elements < 1:
            raise ValueError(
                f"bucket_elements must be >= 1, got {self.bucket_elements}"
            )
        if self.fuse_lossy and not self.fuse_small_tensors:
            raise ValueError("fuse_lossy requires fuse_small_tensors")
        if self.bucket_boundaries and not self.fuse_small_tensors:
            raise ValueError("bucket_boundaries requires fuse_small_tensors")
        if self.model_family not in ("resnet", "mlp"):
            raise ValueError(
                f"unknown model_family {self.model_family!r}; "
                "expected 'resnet' or 'mlp'"
            )
        if self.transmission_priority not in ("registration", "smallest"):
            raise ValueError(
                "unknown transmission_priority "
                f"{self.transmission_priority!r}; "
                "expected 'registration' or 'smallest'"
            )
        if self.fuse_small_tensors:
            reason = fusion_incompatibility(
                self.topology,
                racks=self.racks if self.topology == "hier" else None,
            )
            if reason is not None:
                raise ValueError(reason)
        if self.topology == "hier":
            if self.racks < 1:
                raise ValueError(f"racks must be >= 1, got {self.racks}")
            if self.rack_size < 2:
                raise ValueError(
                    f"a rack ring needs >= 2 workers, got rack_size={self.rack_size}"
                )
            if self.hier_upper not in ("single", "sharded"):
                raise ValueError(
                    f"unknown upper tier {self.hier_upper!r}; "
                    "expected 'single' or 'sharded'"
                )
            if self.racks * self.rack_size != self.num_workers:
                raise ValueError(
                    f"num_workers={self.num_workers} is not divisible into "
                    f"{self.racks} racks of {self.rack_size} "
                    "(racks * rack_size must equal num_workers)"
                )
            if self.cross_bw_fraction <= 0:
                raise ValueError(
                    f"cross_bw_fraction must be > 0, got {self.cross_bw_fraction!r}"
                )
            if self.cross_rtt_seconds < 0:
                raise ValueError(
                    f"cross_rtt_seconds must be >= 0, got {self.cross_rtt_seconds!r}"
                )

    # -- factories ---------------------------------------------------------

    def dataset(self) -> SyntheticImageDataset:
        return SyntheticImageDataset(
            DatasetSpec(
                num_classes=self.num_classes,
                image_size=self.image_size,
                structured_noise=self.structured_noise,
                pixel_noise=self.pixel_noise,
                seed=self.dataset_seed,
            )
        )

    def model_factory(self):
        classes, seed = self.num_classes, self.model_seed
        if self.model_family == "mlp":
            in_features = 3 * self.image_size * self.image_size
            hidden = self.mlp_hidden

            def factory():
                return build_mlp(
                    in_features, hidden, num_classes=classes, seed=seed
                )

            return factory

        depth, width = self.depth, self.base_width

        def factory():
            return build_resnet(
                depth, num_classes=classes, base_width=width, seed=seed
            )

        return factory

    def cluster_config(self) -> ClusterConfig:
        return ClusterConfig(
            num_workers=self.num_workers,
            batch_size=self.batch_size,
            shard_size=self.shard_size,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            small_tensor_threshold=self.small_tensor_threshold,
            augment_pad=self.augment_pad,
            seed=self.cluster_seed,
            backup_workers=self.backup_workers,
            fuse_small_tensors=self.fuse_small_tensors,
        )

    def engine_config(self) -> EngineConfig:
        """The unified-engine configuration for this experiment family."""
        return EngineConfig(
            num_workers=self.num_workers,
            batch_size=self.batch_size,
            shard_size=self.shard_size,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            small_tensor_threshold=self.small_tensor_threshold,
            augment_pad=self.augment_pad,
            seed=self.cluster_seed,
            topology=self.topology,
            sync_mode=self.sync_mode,
            num_shards=self.num_shards,
            backup_workers=self.backup_workers,
            staleness=self.staleness,
            straggler=self.straggler,
            fault=self.fault,
            racks=self.racks,
            rack_size=self.rack_size,
            hier_upper=self.hier_upper,
            fuse_small_tensors=self.fuse_small_tensors,
            bucket_elements=self.bucket_elements,
            fuse_lossy=self.fuse_lossy,
            bucket_boundaries=self.bucket_boundaries,
            record_transmissions=self.sim_overlap,
        )

    def schedule(self, total_steps: int) -> CosineDecay:
        """Cosine decay over the *adjusted* budget (paper §5.2: shorter
        runs still sweep the entire learning-rate range)."""
        return CosineDecay(
            scale_lr_for_workers(self.base_lr, self.num_workers),
            total_steps,
            self.min_lr,
        )

    def steps_for_fraction(self, fraction: float) -> int:
        """Step budget for a 25/50/75/100% experiment."""
        if not (0.0 < fraction <= 1.0):
            raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
        return max(1, round(self.standard_steps * fraction))

    def scaled(self, **overrides) -> "ExperimentConfig":
        """Copy with overridden fields (used by tests and the CLI)."""
        return replace(self, **overrides)


#: Benchmark-scale configuration (regenerates the tables/figures).
DEFAULT_CONFIG = ExperimentConfig()

#: Miniature configuration for tests and quick demos.
FAST_CONFIG = ExperimentConfig(
    depth=8,
    base_width=4,
    image_size=12,
    num_workers=2,
    batch_size=8,
    shard_size=64,
    standard_steps=24,
    eval_size=200,
    eval_points=2,
)
