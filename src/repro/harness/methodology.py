"""The paper's two-phase measurement methodology (§5.2), made explicit.

The paper cannot afford full slow-network runs ("obtaining a single
datapoint on a slow network takes approximately 10 days"), so it:

1. runs **full measurement** at 1 Gbps — total training time ``t_full``,
   per-step time ``s_full``, and accuracy;
2. runs **accelerated measurement** on the target link — only enough steps
   for a stable per-step time ``s_short`` (100 steps at 10 Mbps, 1000 at
   100 Mbps; designs with zero-run encoding run 10% of standard steps "to
   faithfully reflect its compression ratios changing over time");
3. estimates ``t_link = t_full · s_short / s_full`` and reuses the full
   measurement's accuracy.

Our simulator can evaluate any link directly, which is exactly what makes
this module useful: :func:`two_phase_estimate` runs the paper's protocol,
and tests verify it agrees with the direct computation — validating the
methodology itself, not just our numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.runner import ExperimentRunner, RunResult
from repro.network.bandwidth import link
from repro.network.timing import extrapolate_training_time

__all__ = ["TwoPhaseEstimate", "accelerated_fraction", "two_phase_estimate"]

#: Step budgets of the paper's accelerated measurements.
_ACCELERATED_STEPS = {"10Mbps": 100, "100Mbps": 1000}


def accelerated_fraction(
    scheme_name: str, link_name: str, standard_steps: int
) -> float:
    """Fraction of standard steps the accelerated phase runs.

    ZRE-bearing designs (any 3LC variant with ZRE) run 10% of standard
    steps; others run the fixed 100/1000-step budget, capped at the
    standard budget.
    """
    if link_name not in _ACCELERATED_STEPS:
        raise ValueError(f"accelerated measurement targets 10/100 Mbps, not {link_name}")
    if scheme_name.startswith("3LC") and "no ZRE" not in scheme_name:
        return 0.1
    steps = min(_ACCELERATED_STEPS[link_name], standard_steps)
    return steps / standard_steps


@dataclass(frozen=True)
class TwoPhaseEstimate:
    """Outcome of the paper's estimation protocol for one (scheme, link)."""

    scheme: str
    link_name: str
    estimated_total_seconds: float
    direct_total_seconds: float
    accuracy: float
    accelerated_steps: int

    @property
    def relative_error(self) -> float:
        """Estimate vs. the simulator's direct computation."""
        if self.direct_total_seconds == 0:
            return 0.0
        return (
            abs(self.estimated_total_seconds - self.direct_total_seconds)
            / self.direct_total_seconds
        )


def two_phase_estimate(
    runner: ExperimentRunner, scheme_name: str, link_name: str
) -> TwoPhaseEstimate:
    """Run the paper's full + accelerated protocol for one design.

    The full phase reuses the runner's cached 100% run; the accelerated
    phase runs the scheme for the paper-prescribed short budget and takes
    its per-step time on the target link.
    """
    config = runner.config
    full: RunResult = runner.run(scheme_name, 1.0)
    fraction = accelerated_fraction(scheme_name, link_name, config.standard_steps)
    short: RunResult = runner.run(scheme_name, fraction)

    t_full = full.total_seconds["1Gbps"]
    s_full = full.mean_step_seconds["1Gbps"]
    s_short = short.mean_step_seconds[link_name]
    estimated = extrapolate_training_time(t_full, s_full, s_short)
    # Scale: the estimate predicts the standard-step training time.
    direct = full.total_seconds[link_name]
    return TwoPhaseEstimate(
        scheme=scheme_name,
        link_name=link_name,
        estimated_total_seconds=estimated,
        direct_total_seconds=direct,
        accuracy=full.final_accuracy,
        accelerated_steps=short.steps,
    )
