"""Experiment harness: configs, runner, and table/figure regeneration."""

from repro.harness.config import DEFAULT_CONFIG, FAST_CONFIG, ExperimentConfig
from repro.harness.figures import (
    BUDGET_FRACTIONS,
    FigureData,
    figure7_curves,
    figure8_sparsity,
    figure9_compressed_size,
    figure_time_accuracy,
)
from repro.harness.methodology import TwoPhaseEstimate, two_phase_estimate
from repro.harness.results_io import load_results, save_results
from repro.harness.runner import ExperimentRunner, RunResult
from repro.harness.tables import (
    RelatedWorkRow,
    Table1Row,
    Table2Row,
    related_work_table,
    table1,
    table2,
)

__all__ = [
    "ExperimentConfig",
    "DEFAULT_CONFIG",
    "FAST_CONFIG",
    "ExperimentRunner",
    "RunResult",
    "Table1Row",
    "Table2Row",
    "RelatedWorkRow",
    "table1",
    "table2",
    "related_work_table",
    "FigureData",
    "figure_time_accuracy",
    "figure7_curves",
    "figure8_sparsity",
    "figure9_compressed_size",
    "BUDGET_FRACTIONS",
    "TwoPhaseEstimate",
    "two_phase_estimate",
    "save_results",
    "load_results",
]
