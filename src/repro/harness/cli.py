"""Command-line interface: regenerate any table or figure.

Usage::

    repro-3lc table1 [--fast]
    repro-3lc table2 [--fast]
    repro-3lc fig4 | fig5 | fig6 | fig7 | fig8 | fig9 [--fast]
    repro-3lc related-work [--fast]     # §6 designs under Table 1 protocol
    repro-3lc all [--fast]

``--fast`` uses the miniature configuration (seconds instead of minutes;
noisier numbers). ``--steps N`` overrides the standard step budget.
``--topology`` / ``--sync-mode`` (plus ``--shards`` / ``--staleness``,
and ``--racks`` / ``--rack-size`` / ``--cross-bw`` / ``--cross-rtt`` for
the hierarchical topology) swap the exchange plan; ``--fuse`` turns on
the fused-bucket wire plan for small tensors (``--bucket-elements``
sizes the buckets, ``--fuse-lossy`` compresses each whole bucket through
the scheme's codec with one shared scale); ``--sim-overlap`` times
steps with the discrete-event network simulator (per-layer overlap,
per-topology links — two dependent tiers for ``hier``) instead of the
calibrated overlap constant; ``--priority smallest`` serves the
smallest compressed gradient first inside the simulator. ``--plan
FILE`` overlays a tuned ``repro.plan/v1`` artifact from
``python -m repro.tuner`` (the plan's fields win, its scheme joins
every sweep).

Churn: ``--backup-workers N`` arms the paper's §2.1 backup-worker
barrier; ``--crash W:STEP[:DOWN][:depart]`` and
``--flap RACK:STEP[:DOWN[:DELAY]]`` inject worker crashes and rack
uplink flaps (``--max-restarts`` caps restarts before permanent
departure, ``--no-checkpoint-state`` ablates error-feedback recovery).

Observability: ``--telemetry`` records per-run metric series and
simulated-clock spans; ``--trace-out PATH`` writes a Chrome
``trace_event`` JSON timeline (load in Perfetto / ``chrome://tracing``;
one track per worker, link, and server tier) and ``--metrics-out PATH``
writes JSONL per-step metric snapshots — both imply ``--telemetry``.
``--report-out PATH`` runs critical-path attribution over every traced
run and writes the ranked ``repro.bottleneck-report/v1`` artifact;
``--serve-metrics PORT`` exposes live Prometheus text (``/metrics``)
and an NDJSON snapshot feed (``/stream``) while the command runs —
all imply ``--telemetry``. ``--log-level`` tunes the shared stderr
logger (default ``info``).
"""

from __future__ import annotations

import argparse
import sys

from repro.compression.registry import (
    RELATED_WORK_SCHEMES,
    TABLE1_SCHEMES,
    make_compressor,
)
from repro.distributed.faults import FaultSpec, UplinkFlap, WorkerCrash
from repro.exchange.wireplan import fusion_incompatibility
from repro.harness.config import DEFAULT_CONFIG, FAST_CONFIG
from repro.harness.figures import (
    FAST_SCHEMES,
    FIGURE7_SCHEMES,
    OVERVIEW_SCHEMES,
    figure7_curves,
    figure8_sparsity,
    figure9_compressed_size,
    figure_time_accuracy,
)
from repro.harness.runner import ExperimentRunner
from repro.netsim.replay import SweepReplayCache
from repro.harness.tables import related_work_table, table1, table2
from repro.utils.logging import LOG_LEVELS, set_level

__all__ = ["main"]

_FIGURE_LINKS = {"fig4": "10Mbps", "fig5": "100Mbps", "fig6": "1Gbps"}


def _drop_deferring(schemes: tuple[str, ...]) -> tuple[str, ...]:
    """Schemes that transmit every step (collective/event-recording subset).

    A ring hop must carry *something* for the reduction to proceed — this
    covers the flat ring and the hierarchical topology's rack rings — and
    an async/SSP *event stream* records a push per update, so
    schedule-changing schemes (``defers_transmission``) are dropped from
    those sweeps and from simulated (``--sim-overlap``) async/SSP sweeps
    instead of crashing mid-command. Plain async/SSP training tolerates
    deferral (updates ride the error buffers), so unsimulated sweeps keep
    those rows.
    """
    return tuple(
        name
        for name in schemes
        if not make_compressor(name, seed=0).defers_transmission
    )


def _parse_crash(text: str) -> WorkerCrash:
    """``WORKER:STEP[:DOWN_STEPS][:depart]`` → :class:`WorkerCrash`.

    Raises :class:`ValueError` naming the malformed flag value; range
    errors come from the spec's own validation.
    """
    parts = text.split(":")
    depart = False
    if parts and parts[-1] == "depart":
        depart = True
        parts = parts[:-1]
    if not 2 <= len(parts) <= 3:
        raise ValueError(
            f"--crash {text!r}: expected WORKER:STEP[:DOWN_STEPS][:depart]"
        )
    try:
        numbers = [int(part) for part in parts]
    except ValueError:
        raise ValueError(
            f"--crash {text!r}: WORKER/STEP/DOWN_STEPS must be integers"
        ) from None
    down_steps = numbers[2] if len(numbers) == 3 else 1
    return WorkerCrash(
        worker=numbers[0], step=numbers[1], down_steps=down_steps, depart=depart
    )


def _parse_flap(text: str) -> UplinkFlap:
    """``RACK:STEP[:DOWN_STEPS[:DELAY_SECONDS]]`` → :class:`UplinkFlap`."""
    parts = text.split(":")
    if not 2 <= len(parts) <= 4:
        raise ValueError(
            f"--flap {text!r}: expected RACK:STEP[:DOWN_STEPS[:DELAY_SECONDS]]"
        )
    try:
        rack, step = int(parts[0]), int(parts[1])
        down_steps = int(parts[2]) if len(parts) >= 3 else 1
        delay = float(parts[3]) if len(parts) == 4 else 0.0
    except ValueError:
        raise ValueError(
            f"--flap {text!r}: RACK/STEP/DOWN_STEPS must be integers, "
            "DELAY_SECONDS a number"
        ) from None
    return UplinkFlap(
        rack=rack, step=step, down_steps=down_steps, rejoin_delay_seconds=delay
    )


def _emit_time_accuracy(
    runner: ExperimentRunner,
    command: str,
    overview_schemes: tuple[str, ...],
    fast_schemes: tuple[str, ...],
) -> None:
    link = _FIGURE_LINKS[command]
    number = command.removeprefix("fig")
    overview = figure_time_accuracy(
        runner,
        link,
        overview_schemes,
        figure_name=f"Figure {number}a (overview) @ {link}",
    )
    fast = figure_time_accuracy(
        runner,
        link,
        fast_schemes,
        figure_name=f"Figure {number}b (fast designs) @ {link}",
    )
    print(overview.text)
    print()
    print(fast.text)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-3lc",
        description="Regenerate tables and figures of the 3LC paper (MLSys 2019).",
    )
    parser.add_argument(
        "command",
        choices=[
            "table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "related-work", "all",
        ],
    )
    parser.add_argument(
        "--fast", action="store_true", help="miniature configuration (quick, noisy)"
    )
    parser.add_argument(
        "--steps", type=int, default=None, help="override the standard step budget"
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="override the worker count (e.g. to shape --fast runs into "
        "multiple racks: --workers 4 --racks 2 --rack-size 2)",
    )
    parser.add_argument(
        "--topology", choices=["single", "sharded", "ring", "hier"], default=None,
        help="exchange topology (default: single parameter server)",
    )
    parser.add_argument(
        "--sync-mode", choices=["bsp", "async", "ssp"], default=None,
        help="synchronization mode (default: BSP)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="server count for --topology sharded",
    )
    parser.add_argument(
        "--staleness", type=int, default=None,
        help="staleness bound for --sync-mode ssp",
    )
    parser.add_argument(
        "--backup-workers", type=int, default=None, metavar="N",
        help="backup workers (paper §2.1, BSP parameter-server topologies "
        "only): each step proceeds once num_workers - N pushes arrive and "
        "drops the stragglers",
    )
    parser.add_argument(
        "--crash", action="append", default=None, metavar="W:STEP[:DOWN]",
        help="inject a worker crash: worker W goes down at STEP for DOWN "
        "steps (default 1) and then restarts; append ':depart' to make "
        "the departure permanent; repeatable; BSP single/sharded only",
    )
    parser.add_argument(
        "--flap", action="append", default=None,
        metavar="RACK:STEP[:DOWN[:DELAY]]",
        help="inject a rack uplink flap: rack RACK loses its cross-rack "
        "uplink at STEP for DOWN steps (default 1), degrading to "
        "local-only steps, then rejoins (resync floored by DELAY "
        "seconds); repeatable; --topology hier only",
    )
    parser.add_argument(
        "--max-restarts", type=int, default=None, metavar="N",
        help="per-worker restart budget before a crash becomes a "
        "permanent departure (default 2; requires --crash/--flap)",
    )
    parser.add_argument(
        "--no-checkpoint-state", action="store_true",
        help="disable error-feedback checkpointing on crash recovery "
        "(restarted workers rejoin with zeroed residuals and a stale "
        "replica -- the ablation bench_churn measures)",
    )
    parser.add_argument(
        "--racks", type=int, default=None,
        help="rack count for --topology hier (racks * rack-size must "
        "equal the worker count)",
    )
    parser.add_argument(
        "--rack-size", type=int, default=None,
        help="workers per rack for --topology hier (>= 2: each rack runs "
        "a local ring all-reduce)",
    )
    parser.add_argument(
        "--cross-bw", type=float, default=None, metavar="FRACTION",
        help="cross-rack uplink rate as a fraction of the swept link rate "
        "(default 0.1; --topology hier only)",
    )
    parser.add_argument(
        "--cross-rtt", type=float, default=None, metavar="SECONDS",
        help="per-frame propagation delay on cross-rack uplinks "
        "(default 0; --topology hier only)",
    )
    parser.add_argument(
        "--fuse", action="store_true",
        help="exchange small tensors through fused buckets (one frame per "
        "bucket per destination; buckets never span shard or rack-uplink "
        "boundaries, and async/SSP runs pull through per-worker fused "
        "streams)",
    )
    parser.add_argument(
        "--bucket-elements", type=int, default=None, metavar="N",
        help="fused-bucket capacity in elements (>= 1; --fuse only)",
    )
    parser.add_argument(
        "--fuse-lossy", action="store_true",
        help="compress each fused bucket through the scheme's own codec "
        "with one shared scale (instead of the exact float32 bypass); "
        "--fuse only",
    )
    parser.add_argument(
        "--priority", choices=["registration", "smallest"], default=None,
        help="transmission service order inside the simulator "
        "(simulation-side only): 'registration' (default) serves "
        "gradients in backward-pass order, 'smallest' drains the "
        "smallest compressed gradient first at equal readiness",
    )
    parser.add_argument(
        "--plan", metavar="PATH", default=None,
        help="load a repro.plan/v1 artifact (python -m repro.tuner) and "
        "overlay its tuned plan on the configuration — the plan's "
        "topology/fusion/priority fields win over flags, sim-overlap is "
        "forced on, and the plan's scheme joins every sweep",
    )
    parser.add_argument(
        "--sim-overlap", action="store_true",
        help="derive per-link step times from the discrete-event network "
        "simulator (per-layer overlap scheduling, honest per-topology "
        "link bottlenecks) instead of the calibrated overlap constant; "
        "with --sync-mode async|ssp this replays per-update event streams "
        "(per-worker virtual clocks, blocking SSP barriers)",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="record labeled metric series and simulated-clock spans for "
        "every run; RunResult.telemetry_summary (and --save archives) "
        "carry the rollup",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON timeline of every run "
        "(Perfetto-loadable; one track per worker/link/server tier); "
        "implies --telemetry",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write JSONL per-step metric snapshots (one row per step "
        "plus a final rollup per run); implies --telemetry",
    )
    parser.add_argument(
        "--report-out", metavar="PATH", default=None,
        help="write a repro.bottleneck-report/v1 JSON artifact (ranked "
        "critical-path attribution of every traced run) and print the "
        "ranked bucket tables; implies --telemetry",
    )
    parser.add_argument(
        "--serve-metrics", type=int, default=None, metavar="PORT",
        help="serve live metrics on 127.0.0.1:PORT while the command "
        "runs (Prometheus text on /metrics, NDJSON snapshots on "
        "/stream); implies --telemetry",
    )
    parser.add_argument(
        "--log-level", choices=list(LOG_LEVELS), default=None,
        help="stderr logger verbosity (default: info)",
    )
    parser.add_argument(
        "--save", metavar="PATH", default=None,
        help="archive every training run to a JSON file after the command",
    )
    args = parser.parse_args(argv)

    if args.log_level is not None:
        set_level(args.log_level)

    config = FAST_CONFIG if args.fast else DEFAULT_CONFIG
    if args.steps is not None:
        config = config.scaled(standard_steps=args.steps)
    if args.workers is not None:
        if args.workers < 1:
            parser.error(f"--workers must be >= 1, got {args.workers}")
        config = config.scaled(num_workers=args.workers)
    # Flag/topology coherence checks name the offending value so a long
    # sweep command fails with an actionable message, not a bare rule.
    if args.shards is not None and args.topology != "sharded":
        parser.error(
            f"--shards {args.shards} requires --topology sharded "
            f"(got --topology {args.topology or 'single'})"
        )
    if args.staleness is not None and args.sync_mode != "ssp":
        parser.error(
            f"--staleness {args.staleness} requires --sync-mode ssp "
            f"(got --sync-mode {args.sync_mode or 'bsp'})"
        )
    if args.sync_mode == "ssp" and args.staleness is None:
        parser.error("--sync-mode ssp requires --staleness")
    if args.backup_workers is not None:
        # The engine would reject these too, but only after the sweep
        # starts training; fail at parse time with the value spelled out.
        if not (0 <= args.backup_workers < config.num_workers):
            parser.error(
                f"--backup-workers {args.backup_workers} must be in "
                f"[0, num_workers={config.num_workers})"
            )
        if args.topology == "ring":
            parser.error(
                f"--backup-workers {args.backup_workers} is incompatible "
                "with --topology ring (a ring reduction needs every "
                "node's chunk)"
            )
    if (args.max_restarts is not None or args.no_checkpoint_state) and not (
        args.crash or args.flap
    ):
        offender = (
            f"--max-restarts {args.max_restarts}"
            if args.max_restarts is not None
            else "--no-checkpoint-state"
        )
        parser.error(f"{offender} requires --crash or --flap")
    if (args.crash or args.flap) and args.sync_mode not in (None, "bsp"):
        parser.error(
            "--crash/--flap require BSP (the barrier is where membership "
            f"changes are decided; got --sync-mode {args.sync_mode})"
        )
    if args.crash and (args.topology or "single") not in ("single", "sharded"):
        parser.error(
            f"--crash requires --topology single|sharded "
            f"(got --topology {args.topology})"
        )
    if args.flap and args.topology != "hier":
        parser.error(
            f"--flap requires --topology hier "
            f"(got --topology {args.topology or 'single'})"
        )
    fault = None
    if args.crash or args.flap:
        fault_kwargs = {}
        if args.max_restarts is not None:
            fault_kwargs["max_restarts"] = args.max_restarts
        try:
            fault = FaultSpec(
                crashes=tuple(_parse_crash(text) for text in args.crash or ()),
                flaps=tuple(_parse_flap(text) for text in args.flap or ()),
                checkpoint_state=not args.no_checkpoint_state,
                **fault_kwargs,
            )
        except ValueError as error:
            parser.error(str(error))
    for flag, value in (
        ("--racks", args.racks),
        ("--rack-size", args.rack_size),
        ("--cross-bw", args.cross_bw),
        ("--cross-rtt", args.cross_rtt),
    ):
        if value is not None and args.topology != "hier":
            parser.error(
                f"{flag} {value} requires --topology hier "
                f"(got --topology {args.topology or 'single'})"
            )
    # Fusion compatibility fails at parse time with the engine's own
    # wording, so an overnight sweep command dies immediately — not three
    # topologies deep — and names the offending flags.
    if args.fuse:
        reason = fusion_incompatibility(
            args.topology or "single", racks=args.racks
        )
        if reason is not None:
            offender = f"--topology {args.topology}" + (
                f" --racks {args.racks}" if args.racks is not None else ""
            )
            parser.error(f"--fuse is incompatible with {offender}: {reason}")
    if args.bucket_elements is not None:
        if not args.fuse:
            parser.error(
                f"--bucket-elements {args.bucket_elements} requires --fuse "
                "(it sizes the fused-bucket plan)"
            )
        if args.bucket_elements < 1:
            parser.error(
                f"--bucket-elements must be >= 1, got {args.bucket_elements}"
            )
    if args.fuse_lossy and not args.fuse:
        parser.error(
            "--fuse-lossy selects the fused-bucket codec mode; it requires --fuse"
        )
    overrides = {}
    if args.topology is not None:
        overrides["topology"] = args.topology
    if args.sync_mode is not None:
        overrides["sync_mode"] = args.sync_mode
    if args.shards is not None:
        overrides["num_shards"] = args.shards
    if args.staleness is not None:
        overrides["staleness"] = args.staleness
    if args.backup_workers is not None:
        overrides["backup_workers"] = args.backup_workers
    if fault is not None:
        overrides["fault"] = fault
    if args.racks is not None:
        overrides["racks"] = args.racks
    if args.rack_size is not None:
        overrides["rack_size"] = args.rack_size
    if args.cross_bw is not None:
        overrides["cross_bw_fraction"] = args.cross_bw
    if args.cross_rtt is not None:
        overrides["cross_rtt_seconds"] = args.cross_rtt
    if args.fuse:
        overrides["fuse_small_tensors"] = True
    if args.bucket_elements is not None:
        overrides["bucket_elements"] = args.bucket_elements
    if args.fuse_lossy:
        overrides["fuse_lossy"] = True
    if args.sim_overlap:
        overrides["sim_overlap"] = True
    if args.priority is not None:
        overrides["transmission_priority"] = args.priority
    if (
        args.telemetry
        or args.trace_out
        or args.metrics_out
        or args.report_out
        or args.serve_metrics is not None
    ):
        overrides["telemetry"] = True
    if overrides:
        try:
            config = config.scaled(**overrides)
        except ValueError as error:
            # e.g. a worker count not divisible into racks of rack-size.
            parser.error(str(error))
    plan_scheme = None
    if args.plan is not None:
        from repro.tuner.artifact import apply_plan, load_plan

        try:
            config, plan_scheme = apply_plan(config, load_plan(args.plan))
        except OSError as error:
            parser.error(f"--plan {args.plan}: {error}")
        except ValueError as error:
            # Malformed artifact, or a plan the config's cluster shape
            # rejects (ExperimentConfig validation wording).
            parser.error(f"--plan {args.plan}: {error}")
        print(
            f"loaded plan {args.plan}: scheme={plan_scheme!r} "
            f"topology={config.topology} "
            f"priority={config.transmission_priority} "
            f"fuse={config.fuse_small_tensors}"
        )
    # One sweep replay cache per invocation: commands sharing a scheme and
    # budget reuse the training recording and per-link simulations.
    runner = ExperimentRunner(config, replay_cache=SweepReplayCache())

    metrics_server = None
    if args.serve_metrics is not None:
        from repro.telemetry.analysis.serve import MetricsServer

        metrics_server = MetricsServer(
            lambda: list(runner.telemetry_sessions), port=args.serve_metrics
        ).start()
        print(
            f"serving metrics on {metrics_server.url}/metrics "
            f"(NDJSON feed on {metrics_server.url}/stream)"
        )

    commands = (
        ["table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "related-work"]
        if args.command == "all"
        else [args.command]
    )
    table1_schemes = TABLE1_SCHEMES
    related_schemes = RELATED_WORK_SCHEMES
    overview_schemes = OVERVIEW_SCHEMES
    fast_schemes = FAST_SCHEMES
    figure7_schemes = FIGURE7_SCHEMES
    if plan_scheme is not None:
        # The tuned scheme joins every sweep (the plan is pointless
        # without it); deferring-scheme filtering below still applies.
        def _with_plan(schemes: tuple[str, ...]) -> tuple[str, ...]:
            return schemes if plan_scheme in schemes else schemes + (plan_scheme,)

        table1_schemes = _with_plan(table1_schemes)
        related_schemes = _with_plan(related_schemes)
        overview_schemes = _with_plan(overview_schemes)
        fast_schemes = _with_plan(fast_schemes)
        figure7_schemes = _with_plan(figure7_schemes)
    if config.topology in ("ring", "hier") or (
        config.sim_overlap and config.sync_mode in ("async", "ssp")
    ):
        table1_schemes = _drop_deferring(table1_schemes)
        related_schemes = _drop_deferring(related_schemes)
        overview_schemes = _drop_deferring(overview_schemes)
        fast_schemes = _drop_deferring(fast_schemes)
        figure7_schemes = _drop_deferring(figure7_schemes)

    for command in commands:
        if command == "table1":
            _, text = table1(runner, table1_schemes)
            print(text)
        elif command == "table2":
            _, text = table2(runner)
            print(text)
        elif command in _FIGURE_LINKS:
            _emit_time_accuracy(runner, command, overview_schemes, fast_schemes)
        elif command == "fig7":
            loss_fig, acc_fig = figure7_curves(runner, figure7_schemes)
            print(loss_fig.text)
            print()
            print(acc_fig.text)
        elif command == "fig8":
            print(figure8_sparsity(runner).text)
        elif command == "fig9":
            print(figure9_compressed_size(runner, "3LC (s=1.00)").text)
            print()
            print(figure9_compressed_size(runner, "3LC (s=1.75)").text)
        elif command == "related-work":
            _, text = related_work_table(runner, related_schemes)
            print(text)
        print()

    stats = runner.replay_cache.stats()
    print(
        "replay cache: "
        f"{stats['recordings']} recordings "
        f"({stats['recording_hits']} hits / "
        f"{stats['recording_misses']} misses), "
        f"{stats['simulations']} simulations "
        f"({stats['simulation_hits']} hits / "
        f"{stats['simulation_misses']} misses), "
        f"{stats['extraction_hits']} warm extractions"
    )

    if args.trace_out or args.metrics_out:
        from repro.telemetry.export import (
            write_chrome_trace,
            write_metric_snapshots,
        )

        sessions = runner.telemetry_sessions
        if args.trace_out:
            events = write_chrome_trace(args.trace_out, sessions)
            print(f"wrote {events} trace events to {args.trace_out}")
        if args.metrics_out:
            rows = write_metric_snapshots(args.metrics_out, sessions)
            print(f"wrote {rows} metric rows to {args.metrics_out}")
    if args.report_out:
        import json as _json
        from pathlib import Path as _Path

        from repro.telemetry.analysis.attribution import (
            attribute_trace,
            bottleneck_report,
            report_text,
            spans_from_tracer,
        )

        spans = []
        for label, session in runner.telemetry_sessions:
            spans.extend(spans_from_tracer(session.tracer, label))
        report = bottleneck_report(attribute_trace(spans))
        out = _Path(args.report_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(_json.dumps(report, indent=2) + "\n")
        print(report_text(report))
        print(f"wrote bottleneck report to {args.report_out}")
    if metrics_server is not None:
        metrics_server.stop()
    if args.save:
        from repro.harness.results_io import save_results

        results = list(runner._cache.values())
        save_results(results, args.save)
        print(f"archived {len(results)} runs to {args.save}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
