"""Regeneration of the paper's figures (4 through 9).

Each ``figure*`` function trains (or reuses) the relevant runs, returns the
underlying data series, and renders an ASCII chart. The series are the
reproduction's ground truth; EXPERIMENTS.md compares their shape against
the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.ascii_plot import Series, render_plot
from repro.harness.runner import ExperimentRunner, RunResult

__all__ = [
    "FigureData",
    "figure_time_accuracy",
    "figure7_curves",
    "figure8_sparsity",
    "figure9_compressed_size",
    "OVERVIEW_SCHEMES",
    "FAST_SCHEMES",
    "FIGURE7_SCHEMES",
    "FIGURE8_SCHEMES",
    "BUDGET_FRACTIONS",
]

#: Figure 4a/5a/6a "Overview" design set.
OVERVIEW_SCHEMES: tuple[str, ...] = (
    "32-bit float",
    "8-bit int",
    "Stoch 3-value + QE",
    "MQE 1-bit int",
    "25% sparsification",
    "5% sparsification",
    "2 local steps",
    "3LC (s=1.00)",
    "3LC (s=1.75)",
)

#: Figure 4b/5b/6b "Fast designs" subset.
FAST_SCHEMES: tuple[str, ...] = (
    "Stoch 3-value + QE",
    "MQE 1-bit int",
    "5% sparsification",
    "3LC (s=1.00)",
    "3LC (s=1.75)",
)

#: Figure 7's representative designs.
FIGURE7_SCHEMES: tuple[str, ...] = (
    "32-bit float",
    "MQE 1-bit int",
    "5% sparsification",
    "2 local steps",
    "3LC (s=1.00)",
)

#: Figure 8's sparsity-multiplier sweep.
FIGURE8_SCHEMES: tuple[str, ...] = (
    "3LC (s=1.00)",
    "3LC (s=1.50)",
    "3LC (s=1.75)",
    "3LC (s=1.90)",
)

#: The paper's 25/50/75/100% step budgets.
BUDGET_FRACTIONS: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class FigureData:
    """A rendered figure plus its raw series."""

    name: str
    series: tuple[Series, ...]
    text: str


def figure_time_accuracy(
    runner: ExperimentRunner,
    link_name: str,
    schemes: tuple[str, ...] = OVERVIEW_SCHEMES,
    fractions: tuple[float, ...] = BUDGET_FRACTIONS,
    *,
    figure_name: str | None = None,
) -> FigureData:
    """Figures 4/5/6: total training time vs. test accuracy at one link.

    Each scheme contributes one point per step budget: x is the modelled
    total training time in minutes, y the final test accuracy.
    """
    series = []
    for scheme in schemes:
        points = []
        for fraction in fractions:
            result = runner.run(scheme, fraction)
            points.append(
                (result.total_minutes(link_name), 100 * result.final_accuracy)
            )
        series.append(Series(scheme, tuple(points)))
    name = figure_name or f"Training time vs accuracy @ {link_name}"
    text = render_plot(
        series,
        title=name,
        x_label="Total training time (minutes, modelled)",
        y_label="Test accuracy (%)",
    )
    return FigureData(name, tuple(series), text)


def figure7_curves(
    runner: ExperimentRunner, schemes: tuple[str, ...] = FIGURE7_SCHEMES
) -> tuple[FigureData, FigureData]:
    """Figure 7: runtime training loss (left) and test accuracy (right)."""
    loss_series = []
    acc_series = []
    for scheme in schemes:
        result = runner.run(scheme, 1.0)
        steps = range(len(result.loss_curve))
        loss_series.append(Series.from_xy(scheme, list(steps), result.loss_curve))
        acc_series.append(
            Series(
                scheme,
                tuple(
                    (float(e.step), 100 * e.test_accuracy) for e in result.eval_curve
                ),
            )
        )
    loss_fig = FigureData(
        "Figure 7 (left): training loss",
        tuple(loss_series),
        render_plot(
            loss_series,
            title="Figure 7 (left): training loss",
            x_label="Training steps",
            y_label="Training loss",
        ),
    )
    acc_fig = FigureData(
        "Figure 7 (right): test accuracy",
        tuple(acc_series),
        render_plot(
            acc_series,
            title="Figure 7 (right): test accuracy",
            x_label="Training steps",
            y_label="Test accuracy (%)",
        ),
    )
    return loss_fig, acc_fig


def figure8_sparsity(
    runner: ExperimentRunner,
    link_name: str = "10Mbps",
    schemes: tuple[str, ...] = FIGURE8_SCHEMES,
    fractions: tuple[float, ...] = BUDGET_FRACTIONS,
) -> FigureData:
    """Figure 8: the sparsity-multiplier sweep at 10 Mbps."""
    return figure_time_accuracy(
        runner,
        link_name,
        schemes,
        fractions,
        figure_name=f"Figure 8: 3LC sparsity multiplier sweep @ {link_name}",
    )


def figure9_compressed_size(
    runner: ExperimentRunner, scheme: str = "3LC (s=1.00)", *, stride: int = 1
) -> FigureData:
    """Figure 9: per-step compressed bits per state change, push vs. pull.

    Adds the constant 1.6-bit "Without ZRE" reference line of the paper.
    """
    result = runner.run(scheme, 1.0)
    steps = result.traffic.steps[::stride]
    push = Series(
        "With ZRE (push)",
        tuple((float(s.step), s.push_bits_per_value()) for s in steps),
    )
    pull = Series(
        "With ZRE (pull)",
        tuple((float(s.step), s.pull_bits_per_value()) for s in steps),
    )
    no_zre = Series(
        "Without ZRE",
        tuple((float(s.step), 1.6) for s in steps),
    )
    name = f"Figure 9: compressed size per state change — {scheme}"
    text = render_plot(
        [no_zre, push, pull],
        title=name,
        x_label="Training steps",
        y_label="Bits per state change",
    )
    return FigureData(name, (no_zre, push, pull), text)
