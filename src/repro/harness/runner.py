"""Experiment runner: trains one (scheme, step-budget) cell and caches it.

The paper's measurement methodology (§5.2) runs each configuration as a
separate experiment because the cosine schedule depends on the total step
budget. :class:`ExperimentRunner` does the same: ``run(scheme, fraction)``
trains a fresh cluster for ``fraction`` of the standard steps, evaluates
the global model, and derives per-link timing from measured traffic through
the step-time model. Results are cached so the Table 1 and Figure 4–9
generators can share runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.compression.registry import make_compressor
from repro.exchange.engine import EvalResult, ExchangeEngine
from repro.harness.config import ExperimentConfig
from repro.netsim import (
    EventDrivenSimulator,
    NetworkSimulator,
    RecordedTraining,
    RecordingKey,
    SweepReplayCache,
    link_model_for,
)
from repro.network.timing import StepTimeModel
from repro.network.bandwidth import LINKS
from repro.network.traffic import TrafficMeter
from repro.nn.stats import BackwardTimeline, profile_backward
from repro.telemetry import Telemetry
from repro.utils.logging import get_logger

__all__ = ["RunResult", "ExperimentRunner"]

logger = get_logger("repro.harness.runner")


@dataclass(frozen=True)
class RunResult:
    """Outcome of one training run.

    Attributes
    ----------
    scheme / fraction / steps:
        What was run.
    final_accuracy / final_loss:
        Global-model test metrics at the end of training.
    eval_curve:
        Periodic evaluations (Figure 7's accuracy curve).
    loss_curve:
        Per-step mean training loss across workers (Figure 7, left).
    compression_ratio / bits_per_value:
        End-to-end traffic statistics (Table 2).
    mean_step_seconds / total_seconds:
        Modelled per-link timing (Table 1, Figures 4–6). Keyed by link
        name ("10Mbps", "100Mbps", "1Gbps"). With ``config.sim_overlap``
        these come from the discrete-event simulator instead of the
        analytic closed form.
    traffic:
        Full per-step traffic log (Figure 9).
    achieved_overlap:
        Per-link *measured* overlap fraction from the simulator, and
        ``None`` — never 0.0 — when the simulator didn't run: downstream
        consumers (Table 1's ``Ovl`` column, results archives) use the
        ``None`` to tell "not simulated" apart from "simulated, nothing
        hid". For BSP runs this is the compute-normalized per-layer
        fraction; for event-driven runs it is the measured share of
        link-busy time that ran under some worker's compute.
    per_worker_throughput / staleness_distribution / link_utilization:
        Event-driven (async/SSP) simulator reports, ``None`` otherwise:
        committed updates per simulated second per worker (keyed by link
        then worker id; under the hierarchical topology the scheduling
        unit — and therefore the "worker" key — is a rack), the observed
        effective-staleness histogram (global model versions between pull
        and commit — link independent), and per-link busy fractions.
        ``link_utilization`` is also populated for simulated *BSP* runs
        (mean per-link busy fraction over steps), which is how the
        hierarchical topology reports per-tier utilization.
    telemetry_summary:
        ``Telemetry.summary()`` rollup (counter totals, gauge values,
        histogram stats, per-track span counts/busy seconds) when the run
        executed with ``config.telemetry``; ``None`` otherwise. A plain
        JSON-ready dict so it round-trips through ``results_io``.
    fault_summary:
        Churn rollup from the engine's fault-injection layer (crash /
        restart / departure / flap / rejoin counts, resync bytes,
        degraded steps) when the run had a ``config.fault`` spec;
        ``None`` otherwise — including for legacy archives.
    """

    scheme: str
    fraction: float
    steps: int
    final_accuracy: float
    final_loss: float
    eval_curve: tuple[EvalResult, ...]
    loss_curve: tuple[float, ...]
    compression_ratio: float
    bits_per_value: float
    mean_step_seconds: dict[str, float]
    total_seconds: dict[str, float]
    traffic: TrafficMeter
    achieved_overlap: dict[str, float] | None = None
    per_worker_throughput: dict[str, dict[int, float]] | None = None
    staleness_distribution: dict[int, int] | None = None
    link_utilization: dict[str, dict[str, float]] | None = None
    telemetry_summary: dict | None = None
    fault_summary: dict | None = None

    def total_minutes(self, link_name: str) -> float:
        return self.total_seconds[link_name] / 60.0


class ExperimentRunner:
    """Caches training runs for one :class:`ExperimentConfig`.

    Pass one shared :class:`~repro.netsim.SweepReplayCache` to every
    runner of a parameter sweep to enable **incremental replay**: sweep
    points that differ only in network-model knobs (link rate, cross-rack
    bandwidth fraction, cross-rack RTT, time model) reuse the recorded
    transmission plans and traffic accounting of the first point instead
    of re-training, and re-run only the (vectorized) simulator. Any knob
    that can change what the engine records — scheme, step budget,
    topology, sync mode, staleness, fusion settings including bucket
    capacity, cluster shape, seeds — is part of the recording key and
    invalidates the cache.
    """

    #: Simulation-only knobs canonicalized out of the recording key:
    #: they change per-link timing, never the recorded plans.
    _SIM_ONLY_CANONICAL = {
        "cross_bw_fraction": 1.0,
        "cross_rtt_seconds": 0.0,
        "time_model": StepTimeModel(),
        # Telemetry observes a run; it never changes what gets recorded.
        "telemetry": False,
        # Service order within a simulated wave; recordings are shared
        # across priorities (the plan tuner's cache-efficiency anchor).
        "transmission_priority": "registration",
    }

    def __init__(
        self,
        config: ExperimentConfig,
        replay_cache: SweepReplayCache | None = None,
        *,
        recording_filter=None,
    ):
        self.config = config
        self.replay_cache = replay_cache
        #: Optional callable applied to a freshly trained
        #: :class:`~repro.netsim.RecordedTraining` before it is stored or
        #: simulated. The plan tuner normalizes the recording's *measured*
        #: seconds (compute, codec) to modeled values so same-seed runs
        #: are bit-identical. A filtered recording lands in the replay
        #: cache under the same key an unfiltered run would use, so one
        #: cache must only ever see runners with one consistent filter
        #: (the tuner uses private cache instances).
        self.recording_filter = recording_filter
        self._cache: dict[tuple[str, float], RunResult] = {}
        self._dataset = config.dataset()
        self._timeline: BackwardTimeline | None = None
        #: With ``config.telemetry``, one labeled
        #: :class:`~repro.telemetry.Telemetry` session per executed run,
        #: in run order — exporters (``--trace-out`` / ``--metrics-out``)
        #: consume this list after the command finishes.
        self.telemetry_sessions: list[tuple[str, Telemetry]] = []

    def _recording_key(self, scheme_name: str, steps: int) -> RecordingKey:
        """Invalidation key for this config's training recording.

        The frozen config itself is the fingerprint, with the
        simulation-only knobs replaced by fixed canonical values so sweep
        points differing only in those knobs share one recording.
        """
        canonical = replace(self.config, **self._SIM_ONLY_CANONICAL)
        return RecordingKey(scheme_name, steps, canonical)

    def _simulate_cached(self, rec_key, kind: str, link, produce):
        """Run ``produce`` through the sweep cache's simulation level."""
        if self.replay_cache is None or rec_key is None:
            return produce()
        # The recording key covers everything else; add back the
        # network-model knobs it canonicalized away, plus the LinkSpec.
        sim_key = (
            rec_key,
            kind,
            link,
            self.config.time_model,
            self.config.cross_bw_fraction,
            self.config.cross_rtt_seconds,
            self.config.transmission_priority,
        )
        sim = self.replay_cache.simulation(sim_key)
        if sim is None:
            sim = produce()
            self.replay_cache.store_simulation(sim_key, sim)
        return sim

    def backward_timeline(self) -> BackwardTimeline:
        """Per-layer backward profile of the experiment's model (cached).

        The timeline depends only on the architecture and batch shape, so
        one profile serves every scheme and budget the runner simulates.
        With a sweep replay cache it is shared *across* runners as well:
        the profile is measured, so sweep points must reuse one profile
        for their simulated timings to be comparable point to point.
        """
        if self._timeline is None:
            if self.replay_cache is not None:
                key = replace(self.config, **self._SIM_ONLY_CANONICAL)
                timeline = self.replay_cache.timeline(key)
                if timeline is None:
                    timeline = self._profile_timeline()
                    self.replay_cache.store_timeline(key, timeline)
                self._timeline = timeline
            else:
                self._timeline = self._profile_timeline()
        return self._timeline

    def _profile_timeline(self) -> BackwardTimeline:
        model = self.config.model_factory()()
        images, labels = self._dataset.train_shard(0, self.config.batch_size)
        return profile_backward(model, images, labels)

    def _link_model(self, link):
        """The simulated topology's link model at one swept link rate."""
        config = self.config
        return link_model_for(
            config.topology,
            link,
            num_shards=config.num_shards,
            num_workers=config.num_workers,
            racks=config.racks,
            rack_size=config.rack_size,
            cross_bw_fraction=config.cross_bw_fraction,
            cross_rtt_seconds=config.cross_rtt_seconds,
            hier_upper=config.hier_upper,
        )

    def run(self, scheme_name: str, fraction: float = 1.0) -> RunResult:
        """Train (or fetch the cached run of) one scheme at one budget."""
        key = (scheme_name, round(float(fraction), 6))
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        config = self.config
        steps = config.steps_for_fraction(fraction)
        tel: Telemetry | None = None
        if config.telemetry:
            tel = Telemetry()
            self.telemetry_sessions.append(
                (f"{scheme_name} @{int(round(100 * fraction))}%", tel)
            )
        rec_key = None
        recording = None
        if self.replay_cache is not None:
            rec_key = self._recording_key(scheme_name, steps)
            recording = self.replay_cache.recording(rec_key)
        if recording is None:
            scheme = make_compressor(scheme_name, seed=config.scheme_seed)
            # The unified engine: the default single-server BSP configuration
            # reproduces the historical Cluster byte-for-byte; the topology /
            # sync_mode knobs swap the exchange plan without touching the
            # measurement protocol.
            cluster = ExchangeEngine(
                config.model_factory(),
                self._dataset,
                scheme,
                config.schedule(steps),
                config.engine_config(),
                telemetry=tel,
            )
            eval_every = max(1, steps // max(1, config.eval_points))
            logger.info(
                "running %s at %.0f%% budget (%d steps)",
                scheme_name,
                100 * fraction,
                steps,
            )
            evals = cluster.train(
                steps, eval_every=eval_every, test_size=config.eval_size
            )
            final = cluster.evaluate(test_size=config.eval_size)
            if not evals or evals[-1].step != final.step:
                evals.append(final)
            recording = RecordedTraining(
                transmissions=tuple(cluster.transmissions),
                update_events=tuple(cluster.update_events),
                evals=tuple(evals),
                final=final,
                loss_curve=tuple(log.train_loss for log in cluster.step_logs),
                traffic=cluster.traffic,
                synchronous=cluster.sync.synchronous,
                fault_summary=cluster.fault_summary(),
            )
            if self.recording_filter is not None:
                recording = self.recording_filter(recording)
            if self.replay_cache is not None:
                self.replay_cache.store_recording(rec_key, recording)
        else:
            logger.info(
                "replaying cached recording for %s (%d steps)", scheme_name, steps
            )
        final = recording.final

        meter = recording.traffic
        achieved: dict[str, float] | None = None
        per_worker: dict[str, dict[int, float]] | None = None
        staleness_distribution: dict[int, int] | None = None
        link_utilization: dict[str, dict[str, float]] | None = None
        if config.sim_overlap and not recording.synchronous:
            # Event-driven modes: replay the recorded per-update event
            # stream (virtual clocks, FIFO links, blocking SSP barriers).
            # "Step" here is the scheduling quantum — one update.
            timeline = self.backward_timeline()
            mean_step, total, achieved = {}, {}, {}
            per_worker, link_utilization = {}, {}
            for name, link in LINKS.items():

                def run_event_sim(link=link, name=name):
                    simulator = EventDrivenSimulator(
                        timeline,
                        self._link_model(link),
                        config.time_model,
                        staleness=(
                            config.staleness if config.sync_mode == "ssp" else None
                        ),
                        overlap=True,
                        tracer=tel.tracer if tel is not None else None,
                        trace_group=f"sim:{name}",
                        priority=config.transmission_priority,
                    )
                    return simulator.simulate(recording.update_events)

                if tel is not None:
                    # A cached simulation carries no spans; tracing
                    # forces a live replay so the timeline is complete.
                    exchange = run_event_sim()
                else:
                    exchange = self._simulate_cached(
                        rec_key, "event", link, run_event_sim
                    )
                mean_step[name] = exchange.mean_update_seconds
                total[name] = exchange.total_seconds
                achieved[name] = exchange.achieved_overlap
                per_worker[name] = exchange.per_worker_throughput
                link_utilization[name] = exchange.link_utilization
                if staleness_distribution is None:
                    # Observed staleness comes from the recording; it does
                    # not depend on the link rate.
                    staleness_distribution = exchange.staleness_histogram
        elif config.sim_overlap:
            # Honest per-link timing: replay each step's recorded
            # transmissions through the discrete-event simulator.
            timeline = self.backward_timeline()
            if self.replay_cache is not None and rec_key is not None:
                # Warm the recording's replay artifacts once per recording
                # key: every link config below (and every later sweep or
                # tuner point sharing the recording) then replays warm.
                self.replay_cache.prepare_extraction(
                    rec_key, recording.transmissions
                )
            mean_step, total, achieved = {}, {}, {}
            link_utilization = {}
            for name, link in LINKS.items():

                def run_bsp_sim(link=link, name=name):
                    simulator = NetworkSimulator(
                        timeline,
                        self._link_model(link),
                        config.time_model,
                        overlap=True,
                        # Tables consume only the overlapped times; skip the
                        # serialized-baseline replay (it would double sim
                        # cost).
                        serialized_baseline=False,
                        tracer=tel.tracer if tel is not None else None,
                        trace_group=f"sim:{name}",
                        priority=config.transmission_priority,
                    )
                    return simulator.simulate_run(recording.transmissions)

                if tel is not None:
                    # A cached simulation carries no spans; tracing
                    # forces a live replay so the timeline is complete.
                    sim_run = run_bsp_sim()
                else:
                    sim_run = self._simulate_cached(
                        rec_key, "bsp", link, run_bsp_sim
                    )
                mean_step[name] = sim_run.mean_step_seconds
                total[name] = sim_run.total_seconds
                achieved[name] = sim_run.mean_overlap
                link_utilization[name] = sim_run.mean_link_utilization
        else:
            mean_step = {
                name: config.time_model.mean_step_seconds(meter, link)
                for name, link in LINKS.items()
            }
            total = {
                name: config.time_model.total_seconds(meter, link)
                for name, link in LINKS.items()
            }
        result = RunResult(
            scheme=scheme_name,
            fraction=fraction,
            steps=steps,
            final_accuracy=final.test_accuracy,
            final_loss=final.test_loss,
            eval_curve=recording.evals,
            loss_curve=recording.loss_curve,
            compression_ratio=meter.compression_ratio(),
            bits_per_value=meter.average_bits_per_value(),
            mean_step_seconds=mean_step,
            total_seconds=total,
            traffic=meter,
            achieved_overlap=achieved,
            per_worker_throughput=per_worker,
            staleness_distribution=staleness_distribution,
            link_utilization=link_utilization,
            telemetry_summary=tel.summary() if tel is not None else None,
            fault_summary=recording.fault_summary,
        )
        self._cache[key] = result
        logger.info(
            "%s: accuracy %.2f%%, ratio %.1fx, %.3g s/step @10Mbps",
            scheme_name,
            100 * result.final_accuracy,
            result.compression_ratio,
            result.mean_step_seconds["10Mbps"],
        )
        return result

    def run_many(
        self, scheme_names: list[str], fractions: tuple[float, ...] = (1.0,)
    ) -> dict[tuple[str, float], RunResult]:
        """Run a grid of scheme × budget cells."""
        return {
            (name, fraction): self.run(name, fraction)
            for name in scheme_names
            for fraction in fractions
        }
