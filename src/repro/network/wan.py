"""Geo-distributed (WAN) topology model (paper §1 motivation).

The paper motivates 3LC with deployments whose workers are pinned to
regulatory regions or mobile devices and communicate over slow wide-area
links ([5, 10, 17, 22, 36] in §1). This module models that setting: a set
of regions, each with a worker count and an intra-region bandwidth, plus
pairwise inter-region bandwidths; the parameter server lives in one region
and every worker exchanges push/pull traffic with it across the narrowest
link on its path.

Used by ``examples/geo_distributed.py`` to answer the deployment question
the intro poses — *which region should host the server, and which
compression level does a given WAN budget require?* — from traffic that is
measured, not assumed: callers feed per-step push/pull byte counts taken
from a real (simulated-cluster) training run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.bandwidth import LinkSpec

__all__ = ["Region", "WanTopology", "WanStepCost"]


@dataclass(frozen=True)
class Region:
    """A regulatory/geographic region hosting workers.

    Attributes
    ----------
    name:
        Region label (e.g. ``"eu-west"``).
    workers:
        Number of workers pinned to the region (data residency: their
        training data never leaves, only state changes do).
    intra_bps:
        Bandwidth between nodes inside the region.
    """

    name: str
    workers: int
    intra_bps: float

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.intra_bps <= 0:
            raise ValueError(f"intra_bps must be > 0, got {self.intra_bps}")


@dataclass(frozen=True)
class WanStepCost:
    """Communication cost of one training step for a server placement.

    Attributes
    ----------
    server_region:
        Where the parameter server was placed.
    seconds:
        Slowest worker's push+pull transfer time — the step's barrier wait.
    bottleneck_region:
        The region whose workers set ``seconds``.
    inter_region_bytes:
        Bytes that crossed a regional boundary (what a metered WAN bills).
    """

    server_region: str
    seconds: float
    bottleneck_region: str
    inter_region_bytes: int


class WanTopology:
    """Regions plus pairwise inter-region bandwidths.

    Parameters
    ----------
    regions:
        The participating regions.
    inter_bps:
        Mapping from unordered region-name pairs (as ``frozenset`` or
        2-tuples in either order) to available bandwidth between them.
        Pairs not listed fall back to ``default_inter_bps``.
    default_inter_bps:
        Bandwidth assumed for unlisted region pairs (the paper's WAN
        setting: 10 Mbps).
    """

    def __init__(
        self,
        regions: list[Region],
        inter_bps: dict[tuple[str, str], float] | None = None,
        *,
        default_inter_bps: float = 10e6,
    ):
        if not regions:
            raise ValueError("need at least one region")
        names = [r.name for r in regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names in {names}")
        if default_inter_bps <= 0:
            raise ValueError("default_inter_bps must be > 0")
        self.regions = {r.name: r for r in regions}
        self.default_inter_bps = float(default_inter_bps)
        self._inter: dict[frozenset[str], float] = {}
        for pair, bps in (inter_bps or {}).items():
            a, b = pair
            if a not in self.regions or b not in self.regions:
                raise KeyError(f"unknown region in pair {pair!r}")
            if a == b:
                raise ValueError(f"pair {pair!r} is not inter-region")
            if bps <= 0:
                raise ValueError(f"bandwidth for {pair!r} must be > 0")
            self._inter[frozenset(pair)] = float(bps)

    @property
    def total_workers(self) -> int:
        return sum(r.workers for r in self.regions.values())

    def bandwidth_between(self, a: str, b: str) -> float:
        """Worker-to-server bandwidth between regions ``a`` and ``b``."""
        if a not in self.regions or b not in self.regions:
            raise KeyError(f"unknown region {a!r} or {b!r}")
        if a == b:
            return self.regions[a].intra_bps
        return self._inter.get(frozenset((a, b)), self.default_inter_bps)

    def step_cost(
        self,
        server_region: str,
        push_bytes_per_worker: float,
        pull_bytes_per_worker: float,
    ) -> WanStepCost:
        """Cost of one BSP step with the server in ``server_region``.

        Workers in each region share that region's path to the server, so
        the per-region transfer time scales with its worker count — the
        BSP barrier waits for the slowest region.
        """
        if server_region not in self.regions:
            raise KeyError(f"unknown region {server_region!r}")
        if push_bytes_per_worker < 0 or pull_bytes_per_worker < 0:
            raise ValueError("byte counts must be >= 0")
        per_worker = push_bytes_per_worker + pull_bytes_per_worker
        worst = 0.0
        worst_region = server_region
        inter_bytes = 0
        for region in self.regions.values():
            if region.workers == 0:
                continue
            bps = self.bandwidth_between(region.name, server_region)
            seconds = 8.0 * per_worker * region.workers / bps
            if seconds > worst:
                worst = seconds
                worst_region = region.name
            if region.name != server_region:
                inter_bytes += int(per_worker * region.workers)
        return WanStepCost(
            server_region=server_region,
            seconds=worst,
            bottleneck_region=worst_region,
            inter_region_bytes=inter_bytes,
        )

    def best_server_placement(
        self, push_bytes_per_worker: float, pull_bytes_per_worker: float
    ) -> WanStepCost:
        """The placement minimizing step time (ties: fewest WAN bytes)."""
        costs = [
            self.step_cost(name, push_bytes_per_worker, pull_bytes_per_worker)
            for name in self.regions
        ]
        return min(costs, key=lambda c: (c.seconds, c.inter_region_bytes, c.server_region))

    def as_link(self, a: str, b: str) -> LinkSpec:
        """The ``a``–``b`` path as a :class:`LinkSpec` for the time model."""
        return LinkSpec(f"{a}<->{b}", self.bandwidth_between(a, b))
