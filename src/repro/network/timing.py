"""Step-time model and the paper's training-time extrapolation.

The paper measures full training at 1 Gbps and *predicts* training time at
10/100 Mbps by scaling with per-step time ratios (§5.2):
``t_link = t_full * s_link / s_full``. We implement both that estimator
(:func:`extrapolate_training_time`) and the underlying per-step model.

Per-step wall-clock at link rate ``R``::

    comm   = 8 * (push_bytes + pull_bytes_total) / R      (server NIC is
             the shared bottleneck: it receives every push and sends the
             shared pull to every worker)
    hidden = overlap * compute                            (fine-grained
             per-layer barriers overlap transfers with computation, §2.1)
    step   = compute + codec + max(0, comm - hidden)
             + per_message_overhead * wire_frames

``compute`` and ``codec`` are *measured* from the NumPy substrate; only the
transfer term is modelled. ``overlap`` defaults to 0.9: modern frameworks
hide most but not all communication behind the backward pass (the paper's
baseline is TensorFlow's already-optimized SyncReplicasOptimizer). The
discrete-event simulator in :mod:`repro.netsim` replaces the constant with
a replayed per-layer timeline; its serialized schedule reproduces this
closed form at ``overlap=0`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.network.bandwidth import LinkSpec
from repro.network.traffic import StepTraffic, TrafficMeter

__all__ = ["StepTimeModel", "extrapolate_training_time"]


@dataclass(frozen=True)
class StepTimeModel:
    """Analytic per-step wall-clock model.

    Parameters
    ----------
    overlap:
        Fraction of compute time under which communication can hide
        (0 = fully serialized, 1 = perfect overlap).
    per_message_overhead:
        Protocol overhead in seconds *per wire frame* (header parse, RPC
        dispatch, per-message bookkeeping), charged for every frame the
        traffic meter counted — so a fused run, which moves the same bytes
        in far fewer frames, pays proportionally less. Keeps 1 Gbps
        speedups bounded, as in the paper where even "free" compression
        cannot exceed ~1.55×. Steps recorded without frame counts pay no
        overhead.
    compute_scale / codec_scale:
        Hardware-substitution factors (DESIGN.md): the paper's workers are
        GPUs, ours is NumPy on CPU, so measured compute seconds are scaled
        down to restore the paper's communication-to-computation ratio;
        codec seconds (CPU-bound in both settings) get their own factor.
        Defaults of 1.0 report raw measurements; the harness installs
        calibrated values recorded in EXPERIMENTS.md.
    """

    overlap: float = 0.9
    per_message_overhead: float = 25e-6
    compute_scale: float = 1.0
    codec_scale: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.overlap <= 1.0):
            raise ValueError(f"overlap must be in [0, 1], got {self.overlap!r}")
        if not self.per_message_overhead >= 0:
            raise ValueError(
                f"per_message_overhead must be >= 0, got "
                f"{self.per_message_overhead!r}"
            )
        if not self.compute_scale > 0 or not self.codec_scale > 0:
            raise ValueError(
                "hardware scales must be positive, got "
                f"compute_scale={self.compute_scale!r}, "
                f"codec_scale={self.codec_scale!r}"
            )

    def comm_seconds(self, step: StepTraffic, link: LinkSpec) -> float:
        """Serialized transfer time through the server NIC."""
        return link.transfer_seconds(step.wire_bytes)

    def overhead_seconds(self, step: StepTraffic) -> float:
        """Per-frame protocol overhead for one step's wire frames."""
        return self.per_message_overhead * step.frames

    def with_overlap(self, overlap: float) -> "StepTimeModel":
        """Copy of this model with a different overlap fraction — the hook
        the network simulator uses to install its *measured* value in
        place of the calibrated constant."""
        return replace(self, overlap=overlap)

    def step_seconds(self, step: StepTraffic, link: LinkSpec) -> float:
        """Modelled wall-clock for one training step."""
        compute = self.compute_scale * step.compute_seconds
        codec = self.codec_scale * step.codec_seconds
        comm = self.comm_seconds(step, link)
        hidden = self.overlap * compute
        exposed = max(0.0, comm - hidden)
        return compute + codec + exposed + self.overhead_seconds(step)

    def mean_step_seconds(self, meter: TrafficMeter, link: LinkSpec) -> float:
        """Average modelled step time over a recorded run."""
        if not meter.steps:
            return 0.0
        return sum(self.step_seconds(s, link) for s in meter.steps) / len(meter.steps)

    def total_seconds(self, meter: TrafficMeter, link: LinkSpec) -> float:
        """Modelled wall-clock for the whole recorded run."""
        return sum(self.step_seconds(s, link) for s in meter.steps)


def extrapolate_training_time(
    t_full: float, s_full: float, s_short: float
) -> float:
    """The paper's estimator: ``t_link = t_full * s_short / s_full``.

    Parameters
    ----------
    t_full:
        Total training time measured in the full run (1 Gbps).
    s_full:
        Per-step time in the full run.
    s_short:
        Per-step time in the accelerated measurement on the target link.
    """
    if t_full < 0 or s_short < 0:
        raise ValueError("times must be non-negative")
    if s_full <= 0:
        raise ValueError("s_full must be positive")
    return t_full * s_short / s_full
