"""Link bandwidth specifications.

The paper emulates constrained networks with Linux Traffic Control at
10 Mbps, 100 Mbps, and 1 Gbps (§5.2). The reproduction replaces emulation
with an analytic model: wire bytes are *measured* from the real codecs and
converted to seconds by these link specs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LinkSpec", "LINKS", "link"]


@dataclass(frozen=True)
class LinkSpec:
    """A symmetric point-to-point link with a fixed data rate.

    ``rtt_seconds`` is the propagation delay charged once per wire frame
    by the discrete-event simulators (a ring hop pipeline pays it per
    hop; a WAN uplink pays it per message). Pure-bandwidth links keep
    the default of 0.0, preserving the paper's tc-emulated testbed.
    """

    name: str
    bits_per_second: float
    rtt_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a link needs a non-empty name")
        rate = self.bits_per_second
        if not isinstance(rate, (int, float)) or isinstance(rate, bool):
            raise TypeError(
                f"link {self.name!r}: bits_per_second must be a number, "
                f"got {type(rate).__name__}"
            )
        if not math.isfinite(rate) or rate <= 0:
            raise ValueError(
                f"link {self.name!r}: bits_per_second must be a positive "
                f"finite rate, got {rate!r}"
            )
        rtt = self.rtt_seconds
        if not isinstance(rtt, (int, float)) or isinstance(rtt, bool):
            raise TypeError(
                f"link {self.name!r}: rtt_seconds must be a number, "
                f"got {type(rtt).__name__}"
            )
        if not math.isfinite(rtt) or rtt < 0:
            raise ValueError(
                f"link {self.name!r}: rtt_seconds must be >= 0 and finite, "
                f"got {rtt!r}"
            )

    def transfer_seconds(self, payload_bytes: float) -> float:
        """Time to move ``payload_bytes`` across the link."""
        if payload_bytes < 0:
            raise ValueError(
                f"link {self.name!r}: payload_bytes must be non-negative, "
                f"got {payload_bytes!r}"
            )
        return 8.0 * payload_bytes / self.bits_per_second


#: The paper's three evaluated bandwidths.
LINKS: dict[str, LinkSpec] = {
    "10Mbps": LinkSpec("10Mbps", 10e6),
    "100Mbps": LinkSpec("100Mbps", 100e6),
    "1Gbps": LinkSpec("1Gbps", 1e9),
}


def link(name: str) -> LinkSpec:
    """Look up one of the paper's links by name."""
    try:
        return LINKS[name]
    except KeyError:
        known = ", ".join(LINKS)
        raise KeyError(f"unknown link {name!r}; known links: {known}") from None
