"""Per-step traffic accounting for the parameter-server cluster.

Records, for every training step, the wire bytes of gradient pushes and
model-delta pulls alongside the float32-equivalent baseline, giving exact
compression ratios (Table 2) and per-step bits-per-state-change series
(Figure 9) without any modelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StepTraffic", "TrafficMeter"]

FLOAT32_BYTES = 4


@dataclass
class StepTraffic:
    """Wire accounting for one BSP training step.

    Attributes
    ----------
    push_bytes:
        Compressed gradient bytes summed over all workers and tensors
        (what the server's downlink carries).
    pull_bytes_shared:
        Compressed model-delta bytes produced once by the server (3LC's
        shared pull compression).
    pull_fanout:
        Number of workers the shared pull is sent to; the server uplink
        carries ``pull_bytes_shared * pull_fanout``.
    push_elements / pull_elements:
        State-change element counts behind those bytes (for bits/value).
    model_elements:
        Total parameter-element count of the model. The float32 baseline
        transmits the full model in both directions every step, so this —
        not the transmitted-element count — anchors compression ratios
        (otherwise schemes that *skip* transmissions, like N-local-steps,
        would show no traffic reduction).
    num_workers:
        Worker count (the baseline pushes one gradient set per worker).
    compute_seconds:
        Max per-worker forward+backward time this step (workers run in
        parallel in the modelled cluster).
    codec_seconds:
        Serialized compression/decompression CPU time on the critical path.
    """

    step: int
    push_bytes: int = 0
    pull_bytes_shared: int = 0
    pull_fanout: int = 0
    push_elements: int = 0
    pull_elements: int = 0
    model_elements: int = 0
    num_workers: int = 0
    compute_seconds: float = 0.0
    codec_seconds: float = 0.0
    # Accounting restricted to tensors that actually went through the lossy
    # codec (excludes the small-layer float32 bypass). Figure 9 plots these.
    push_bytes_main: int = 0
    push_elements_main: int = 0
    pull_bytes_main: int = 0
    pull_elements_main: int = 0
    #: Pushes discarded by a backup-worker barrier this step (§2.1).
    dropped_pushes: int = 0
    #: Wire frames transmitted this step (a fused bucket counts as one
    #: frame); the per-message header overhead fusion eliminates is
    #: proportional to these counts.
    push_messages: int = 0
    pull_messages: int = 0
    #: Two-tier byte split (hierarchical topology only; zero elsewhere):
    #: bytes that stayed on fast rack-local links (ring collectives plus
    #: the intra-rack re-broadcast of pulled deltas) vs. bytes that
    #: crossed the scarce rack uplinks (compressed rack aggregates up,
    #: one shared-delta copy per rack down). When set, they partition
    #: ``wire_bytes`` exactly — Table 1's intra/cross columns sum these.
    intra_rack_bytes: int = 0
    cross_rack_bytes: int = 0
    #: Full-model float32 state transferred to workers/racks rejoining
    #: after an injected fault this step (already fan-out inclusive — NOT
    #: multiplied by ``pull_fanout``). Part of ``wire_bytes`` but outside
    #: the compressed push/pull streams.
    resync_bytes: int = 0

    @property
    def pull_bytes_total(self) -> int:
        return self.pull_bytes_shared * self.pull_fanout

    @property
    def frames(self) -> int:
        """Physical wire frames this step — what the per-frame overhead
        charges.

        A shared pull is *compressed* once (``pull_messages`` counts it
        once, mirroring the byte fields) but transmitted to every
        subscribed worker, so each counted pull message crosses the wire
        ``pull_fanout`` times.
        """
        return self.push_messages + self.pull_messages * self.pull_fanout

    @property
    def wire_bytes(self) -> int:
        """Bytes crossing the server NIC this step (in + out)."""
        return self.push_bytes + self.pull_bytes_total + self.resync_bytes

    @property
    def baseline_bytes(self) -> int:
        """Bytes the 32-bit float baseline would move this step.

        Full model per worker inbound (pushes) plus full model per worker
        outbound (pulls), uncompressed.
        """
        return FLOAT32_BYTES * self.model_elements * (
            self.num_workers + self.pull_fanout
        )

    def push_bits_per_value(self) -> float:
        """Wire bits per compressed push value (bypass excluded), as in
        Figure 9's "compressed size per state change"."""
        if self.push_elements_main == 0:
            return 0.0
        return 8.0 * self.push_bytes_main / self.push_elements_main

    def pull_bits_per_value(self) -> float:
        """Wire bits per compressed pull value (bypass excluded)."""
        if self.pull_elements_main == 0:
            return 0.0
        return 8.0 * self.pull_bytes_main / self.pull_elements_main


@dataclass
class TrafficMeter:
    """Accumulates :class:`StepTraffic` records over a training run."""

    steps: list[StepTraffic] = field(default_factory=list)

    def record(self, step_traffic: StepTraffic) -> None:
        self.steps.append(step_traffic)

    @property
    def total_wire_bytes(self) -> int:
        return sum(s.wire_bytes for s in self.steps)

    @property
    def total_intra_rack_bytes(self) -> int:
        """Bytes that stayed on rack-local links (hierarchical runs)."""
        return sum(s.intra_rack_bytes for s in self.steps)

    @property
    def total_cross_rack_bytes(self) -> int:
        """Bytes that crossed rack uplinks (hierarchical runs)."""
        return sum(s.cross_rack_bytes for s in self.steps)

    @property
    def total_resync_bytes(self) -> int:
        """Full-model rejoin-resync bytes (fault-injected runs)."""
        return sum(s.resync_bytes for s in self.steps)

    @property
    def total_baseline_bytes(self) -> int:
        return sum(s.baseline_bytes for s in self.steps)

    def compression_ratio(self) -> float:
        """End-to-end traffic reduction vs. uncompressed float32."""
        wire = self.total_wire_bytes
        if wire == 0:
            return float("inf")
        return self.total_baseline_bytes / wire

    def average_bits_per_value(self) -> float:
        """Mean wire bits per baseline state-change value.

        Defined so that ``32 / compression_ratio == bits_per_value``,
        matching Table 2's accounting (e.g. ratio 39.4× ↔ 0.812 bits).
        """
        elements = sum(
            s.model_elements * (s.num_workers + s.pull_fanout) for s in self.steps
        )
        if elements == 0:
            return 0.0
        return 8.0 * self.total_wire_bytes / elements

    def mean_compute_seconds(self) -> float:
        if not self.steps:
            return 0.0
        return sum(s.compute_seconds for s in self.steps) / len(self.steps)

    def mean_codec_seconds(self) -> float:
        if not self.steps:
            return 0.0
        return sum(s.codec_seconds for s in self.steps) / len(self.steps)

    def mean_wire_bytes(self) -> float:
        if not self.steps:
            return 0.0
        return self.total_wire_bytes / len(self.steps)

    @property
    def total_messages(self) -> int:
        """Total wire frames over the run (fused buckets count once)."""
        return sum(s.push_messages + s.pull_messages for s in self.steps)
