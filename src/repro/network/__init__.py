"""Network substrate: link specs, traffic metering, step-time model."""

from repro.network.bandwidth import LINKS, LinkSpec, link
from repro.network.timing import StepTimeModel, extrapolate_training_time
from repro.network.traffic import StepTraffic, TrafficMeter
from repro.network.wan import Region, WanStepCost, WanTopology

__all__ = [
    "LinkSpec",
    "LINKS",
    "link",
    "StepTraffic",
    "TrafficMeter",
    "StepTimeModel",
    "extrapolate_training_time",
    "Region",
    "WanTopology",
    "WanStepCost",
]
