"""The ``repro.plan/v1`` artifact: winning plans as loadable JSON.

A tuner run's outcome is a plan, not a table — so the winning point is
emitted in a small versioned schema the harness CLI loads back with
``--plan <file>``. The artifact carries no timestamps or wall-clock
numbers: two same-seed tuner runs write byte-identical files (the
reproducibility guarantee asserted in ``tests/tuner``); trajectory
wall-clock lives in ``BENCH_tuner.json`` instead.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness.config import ExperimentConfig

__all__ = [
    "PLAN_SCHEMA",
    "plan_to_dict",
    "save_plan",
    "load_plan",
    "validate_plan",
    "apply_plan",
]

PLAN_SCHEMA = "repro.plan/v1"

_PLAN_FIELDS = {
    "scheme": str,
    "topology": str,
    "num_shards": int,
    "racks": int,
    "rack_size": int,
    "cross_bw_fraction": (int, float),
    "transmission_priority": str,
    "fuse_small_tensors": bool,
    "fuse_lossy": bool,
    "bucket_elements": int,
    "bucket_boundaries": list,
}


def plan_to_dict(result, space, *, link: str = "10Mbps") -> dict:
    """Serialize a :class:`~repro.tuner.search.TunerResult` as a plan.

    ``objective`` records what was optimized (link, both step times, the
    fractional improvement) and ``search`` how (strategy, budget, spent
    evaluations, seed) — enough provenance to rerun the search, nothing
    run-dependent.
    """
    best, default = result.best, result.default
    return {
        "schema": PLAN_SCHEMA,
        "plan": best.point.as_dict(),
        "objective": {
            "link": link,
            "mean_step_seconds": best.step_seconds,
            "default_step_seconds": default.step_seconds,
            "improvement": result.improvement,
        },
        "accuracy": {
            "plan": best.accuracy,
            "default": default.accuracy,
        },
        "search": {
            "strategy": result.strategy,
            "budget": result.budget,
            "evaluations": result.evaluations,
            "seed": result.seed,
        },
        "base": {
            "num_workers": space.base.num_workers,
            "standard_steps": space.base.standard_steps,
            "model_family": space.base.model_family,
        },
    }


def validate_plan(data: dict) -> None:
    """Raise ``ValueError`` unless ``data`` is a well-formed v1 plan."""
    if not isinstance(data, dict):
        raise ValueError("plan artifact must be a JSON object")
    schema = data.get("schema")
    if schema != PLAN_SCHEMA:
        raise ValueError(
            f"unsupported plan schema {schema!r}; expected {PLAN_SCHEMA!r}"
        )
    plan = data.get("plan")
    if not isinstance(plan, dict):
        raise ValueError("plan artifact is missing the 'plan' object")
    for key, types in _PLAN_FIELDS.items():
        if key not in plan:
            raise ValueError(f"plan is missing required field {key!r}")
        value = plan[key]
        if isinstance(value, bool) and types is int:
            raise ValueError(f"plan field {key!r} must be an integer")
        if not isinstance(value, types):
            raise ValueError(
                f"plan field {key!r} has type {type(value).__name__}"
            )
    if not all(isinstance(n, str) for n in plan["bucket_boundaries"]):
        raise ValueError("bucket_boundaries must be a list of names")
    for section in ("objective", "search"):
        if not isinstance(data.get(section), dict):
            raise ValueError(f"plan artifact is missing {section!r}")


def save_plan(path, data: dict) -> None:
    """Validate and write (sorted keys: same plan -> same bytes)."""
    validate_plan(data)
    Path(path).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def load_plan(path) -> dict:
    data = json.loads(Path(path).read_text())
    validate_plan(data)
    return data


def apply_plan(config: ExperimentConfig, data: dict):
    """Overlay a loaded plan onto a config.

    Returns ``(config, scheme)``: the plan's fields override the config's
    (the plan wins — it is the tuned object), ``sim_overlap`` is forced
    on (plans are simulator-scored; analytic timing would misrepresent
    them), and the plan's scheme comes back for the caller to run.
    ``ExperimentConfig`` validation applies, so a plan incompatible with
    the config's cluster shape fails loudly here.
    """
    validate_plan(data)
    plan = data["plan"]
    applied = config.scaled(
        topology=plan["topology"],
        num_shards=int(plan["num_shards"]),
        racks=int(plan["racks"]),
        rack_size=int(plan["rack_size"]),
        cross_bw_fraction=float(plan["cross_bw_fraction"]),
        transmission_priority=plan["transmission_priority"],
        fuse_small_tensors=bool(plan["fuse_small_tensors"]),
        fuse_lossy=bool(plan["fuse_lossy"]),
        bucket_elements=int(plan["bucket_elements"]),
        bucket_boundaries=tuple(plan["bucket_boundaries"]),
        sim_overlap=True,
    )
    return applied, plan["scheme"]
