"""Wire-plan autotuner: cost-model search over the simulator oracle.

Layering (see ARCHITECTURE.md "Plan autotuner"):

* :mod:`repro.tuner.space` — the joint plan space (points, legality,
  canonical form, features);
* :mod:`repro.tuner.evaluator` — deterministic scoring through the
  replay cache;
* :mod:`repro.tuner.search` — random / successive-halving / cost-model
  strategies under one fixed-budget contract;
* :mod:`repro.tuner.parallel` — the process pool (bit-identical to
  serial at any ``--jobs``);
* :mod:`repro.tuner.artifact` — the ``repro.plan/v1`` JSON the harness
  loads back with ``--plan``.
"""

from repro.tuner.artifact import (
    PLAN_SCHEMA,
    apply_plan,
    load_plan,
    plan_to_dict,
    save_plan,
    validate_plan,
)
from repro.tuner.evaluator import (
    PlanEvaluator,
    PlanScore,
    deterministic_timeline,
    normalize_recording,
)
from repro.tuner.parallel import ParallelScorer
from repro.tuner.search import (
    STRATEGIES,
    TrajectoryPoint,
    TunerResult,
    cost_model_search,
    random_search,
    successive_halving,
    tune,
)
from repro.tuner.space import (
    PlanPoint,
    PlanSpace,
    boundary_candidates,
    default_space,
)

__all__ = [
    "PLAN_SCHEMA",
    "PlanEvaluator",
    "PlanPoint",
    "PlanScore",
    "PlanSpace",
    "ParallelScorer",
    "STRATEGIES",
    "TrajectoryPoint",
    "TunerResult",
    "apply_plan",
    "boundary_candidates",
    "cost_model_search",
    "default_space",
    "deterministic_timeline",
    "load_plan",
    "normalize_recording",
    "plan_to_dict",
    "random_search",
    "save_plan",
    "successive_halving",
    "tune",
    "validate_plan",
]
