"""The joint wire-plan search space: points, legality, canonical form.

A :class:`PlanPoint` pins every knob the autotuner optimizes over —
scheme, topology shape, cross-rack bandwidth, fused-bucket geometry,
per-layer bucket boundaries, and the simulator's transmission priority.
:class:`PlanSpace` couples the point type to one base
:class:`~repro.harness.config.ExperimentConfig` and supplies the four
operations every search strategy needs:

* ``legal_reason(point)`` — the constraint set as *data* (one message per
  illegal combination), built from the same rules the engine enforces
  (:func:`~repro.exchange.wireplan.fusion_incompatibility`, hier rack
  arithmetic, deferring schemes on collective topologies);
* ``sample(rng)`` — rejection sampling of legal, *canonical* points;
* ``apply(point)`` — the point as a runnable ``ExperimentConfig``
  (``sim_overlap=True``: the simulator is the scoring oracle);
* ``encode(points)`` — a one-hot + numeric feature matrix for the
  cost-model search.

Canonicalization is the cache-efficiency anchor: fields irrelevant to a
point's topology (shard count on ``single``, rack shape on ``sharded``,
bucket geometry with fusion off …) are reset to the base config's values,
so equivalent points collapse to one representative — and
``recording_signature`` further projects out the simulation-only knobs
(cross-bandwidth, priority), grouping points that share one training
recording in the replay cache.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.compression.registry import available_schemes, make_compressor
from repro.exchange.wireplan import fusion_incompatibility
from repro.harness.config import ExperimentConfig

__all__ = ["PlanPoint", "PlanSpace", "default_space", "boundary_candidates"]

TOPOLOGY_CHOICES = ("single", "sharded", "ring", "hier")
PRIORITY_CHOICES = ("registration", "smallest")

_DEFERS: dict[str, bool] = {}


def _defers(scheme: str) -> bool:
    """Does the scheme defer transmission (local-steps style)?"""
    cached = _DEFERS.get(scheme)
    if cached is None:
        cached = bool(make_compressor(scheme, seed=0).defers_transmission)
        _DEFERS[scheme] = cached
    return cached


@dataclass(frozen=True)
class PlanPoint:
    """One candidate wire plan (hashable, orderable for deterministic
    tie-breaks)."""

    scheme: str
    topology: str
    num_shards: int
    racks: int
    rack_size: int
    cross_bw_fraction: float
    transmission_priority: str
    fuse: bool
    fuse_lossy: bool
    bucket_elements: int
    bucket_boundaries: tuple[str, ...]

    def as_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "topology": self.topology,
            "num_shards": self.num_shards,
            "racks": self.racks,
            "rack_size": self.rack_size,
            "cross_bw_fraction": self.cross_bw_fraction,
            "transmission_priority": self.transmission_priority,
            "fuse_small_tensors": self.fuse,
            "fuse_lossy": self.fuse_lossy,
            "bucket_elements": self.bucket_elements,
            "bucket_boundaries": list(self.bucket_boundaries),
        }


@dataclass(frozen=True)
class PlanSpace:
    """Choice grid over :class:`PlanPoint`, bound to one base config.

    ``base`` supplies everything a point does not override (cluster
    shape, model, step budget, seeds). The choice tuples bound the
    search; rejection sampling in :meth:`sample` never proposes an
    illegal combination (asserted by ``tests/tuner/test_space.py``).
    """

    base: ExperimentConfig
    schemes: tuple[str, ...]
    topologies: tuple[str, ...] = TOPOLOGY_CHOICES
    shard_choices: tuple[int, ...] = (2, 4)
    rack_shapes: tuple[tuple[int, int], ...] = ()
    cross_bw_choices: tuple[float, ...] = (0.05, 0.1, 0.25, 1.0)
    priority_choices: tuple[str, ...] = PRIORITY_CHOICES
    bucket_choices: tuple[int, ...] = (256, 1024, 4096, 16384)
    boundary_choices: tuple[tuple[str, ...], ...] = ((),)

    def __post_init__(self) -> None:
        known = set(available_schemes())
        for scheme in self.schemes:
            if scheme not in known:
                raise ValueError(f"unknown scheme {scheme!r}")
        for topology in self.topologies:
            if topology not in TOPOLOGY_CHOICES:
                raise ValueError(f"unknown topology {topology!r}")
        if "hier" in self.topologies and not self.rack_shapes:
            raise ValueError(
                "topology 'hier' in the space requires rack_shapes"
            )

    # -- legality ----------------------------------------------------------

    def legal_reason(self, point: PlanPoint) -> str | None:
        """Why the point cannot run, or ``None`` when it is legal.

        Mirrors the engine's own constraint set so an illegal point is
        rejected here — cheaply, before any training — with the same
        rules ``EngineConfig`` enforces at construction time.
        """
        if point.fuse_lossy and not point.fuse:
            return "fuse_lossy requires fuse"
        if point.bucket_boundaries and not point.fuse:
            return "bucket_boundaries require fuse"
        if point.fuse:
            reason = fusion_incompatibility(
                point.topology,
                racks=point.racks if point.topology == "hier" else None,
            )
            if reason is not None:
                return reason
        if point.topology == "hier":
            if point.rack_size < 2:
                return "a rack ring needs rack_size >= 2"
            if point.racks * point.rack_size != self.base.num_workers:
                return (
                    f"racks x rack_size must equal num_workers="
                    f"{self.base.num_workers}"
                )
        if point.topology in ("ring", "hier") and _defers(point.scheme):
            return (
                f"scheme {point.scheme!r} defers transmission; collective "
                "topologies exchange every step"
            )
        if point.topology == "sharded" and point.num_shards < 1:
            return "sharded topology needs num_shards >= 1"
        return None

    # -- canonical form ----------------------------------------------------

    def canonical(self, point: PlanPoint) -> PlanPoint:
        """Reset fields the point's topology/fusion cannot observe.

        Two points differing only in an irrelevant field (shard count on
        a ring, bucket geometry with fusion off) run identically;
        canonicalizing them to one representative dedupes the search and
        maximizes recording reuse in the replay cache.
        """
        base = self.base
        overrides: dict = {}
        if point.topology != "sharded":
            overrides["num_shards"] = base.num_shards
        if point.topology != "hier":
            overrides["racks"] = base.racks
            overrides["rack_size"] = base.rack_size
            overrides["cross_bw_fraction"] = 1.0
        if not point.fuse:
            overrides["fuse_lossy"] = False
            overrides["bucket_elements"] = base.bucket_elements
            overrides["bucket_boundaries"] = ()
        return replace(point, **overrides) if overrides else point

    def recording_signature(self, point: PlanPoint):
        """Projection of the point onto the knobs the *engine* sees.

        Points sharing a signature share one training recording in the
        replay cache: cross-rack bandwidth and transmission priority are
        simulation-only (``ExperimentRunner._SIM_ONLY_CANONICAL``), so
        the parallel scorer groups candidates by this signature to keep
        each worker process's cache hot.
        """
        canon = self.canonical(point)
        return replace(
            canon, cross_bw_fraction=1.0, transmission_priority="registration"
        )

    # -- sampling ----------------------------------------------------------

    def sample(self, rng: np.random.Generator, *, attempts: int = 200) -> PlanPoint:
        """One legal canonical point, by rejection sampling."""
        for _ in range(attempts):
            topology = self.topologies[rng.integers(len(self.topologies))]
            if topology == "hier":
                racks, rack_size = self.rack_shapes[
                    rng.integers(len(self.rack_shapes))
                ]
            else:
                racks, rack_size = self.base.racks, self.base.rack_size
            fuse = bool(rng.integers(2))
            point = PlanPoint(
                scheme=self.schemes[rng.integers(len(self.schemes))],
                topology=topology,
                num_shards=int(
                    self.shard_choices[rng.integers(len(self.shard_choices))]
                ),
                racks=int(racks),
                rack_size=int(rack_size),
                cross_bw_fraction=float(
                    self.cross_bw_choices[
                        rng.integers(len(self.cross_bw_choices))
                    ]
                ),
                transmission_priority=self.priority_choices[
                    rng.integers(len(self.priority_choices))
                ],
                fuse=fuse,
                fuse_lossy=bool(rng.integers(2)) if fuse else False,
                bucket_elements=int(
                    self.bucket_choices[rng.integers(len(self.bucket_choices))]
                ),
                bucket_boundaries=self.boundary_choices[
                    rng.integers(len(self.boundary_choices))
                ],
            )
            point = self.canonical(point)
            if self.legal_reason(point) is None:
                return point
        raise RuntimeError(
            f"no legal plan point found in {attempts} sampling attempts — "
            "is the space over-constrained?"
        )

    # -- config construction -----------------------------------------------

    def apply(self, point: PlanPoint) -> ExperimentConfig:
        """The point as a runnable simulated-overlap experiment config."""
        reason = self.legal_reason(point)
        if reason is not None:
            raise ValueError(f"illegal plan point: {reason}")
        return self.base.scaled(
            topology=point.topology,
            num_shards=point.num_shards,
            racks=point.racks,
            rack_size=point.rack_size,
            cross_bw_fraction=point.cross_bw_fraction,
            transmission_priority=point.transmission_priority,
            fuse_small_tensors=point.fuse,
            fuse_lossy=point.fuse_lossy,
            bucket_elements=point.bucket_elements,
            bucket_boundaries=point.bucket_boundaries,
            sim_overlap=True,
        )

    def default_point(self, scheme: str) -> PlanPoint:
        """The base config as a plan point (the tuner's comparison anchor)."""
        base = self.base
        return self.canonical(
            PlanPoint(
                scheme=scheme,
                topology=base.topology,
                num_shards=base.num_shards,
                racks=base.racks,
                rack_size=base.rack_size,
                cross_bw_fraction=base.cross_bw_fraction,
                transmission_priority="registration",
                fuse=base.fuse_small_tensors,
                fuse_lossy=base.fuse_lossy,
                bucket_elements=base.bucket_elements,
                bucket_boundaries=base.bucket_boundaries,
            )
        )

    def point_from_dict(self, plan: dict) -> PlanPoint:
        """Inverse of :meth:`PlanPoint.as_dict` (artifact loading)."""
        return PlanPoint(
            scheme=plan["scheme"],
            topology=plan["topology"],
            num_shards=int(plan["num_shards"]),
            racks=int(plan["racks"]),
            rack_size=int(plan["rack_size"]),
            cross_bw_fraction=float(plan["cross_bw_fraction"]),
            transmission_priority=plan["transmission_priority"],
            fuse=bool(plan["fuse_small_tensors"]),
            fuse_lossy=bool(plan["fuse_lossy"]),
            bucket_elements=int(plan["bucket_elements"]),
            bucket_boundaries=tuple(plan["bucket_boundaries"]),
        )

    # -- features ----------------------------------------------------------

    def encode(self, points) -> np.ndarray:
        """Feature matrix for the regression cost model.

        One-hot scheme/topology/priority columns plus scaled numerics; a
        leading constant column gives the ridge model an intercept.
        """
        points = list(points)
        scheme_ix = {s: i for i, s in enumerate(self.schemes)}
        topo_ix = {t: i for i, t in enumerate(self.topologies)}
        rows = np.zeros(
            (len(points), 1 + len(scheme_ix) + len(topo_ix) + 8),
            dtype=np.float64,
        )
        for r, p in enumerate(points):
            rows[r, 0] = 1.0
            rows[r, 1 + scheme_ix[p.scheme]] = 1.0
            rows[r, 1 + len(scheme_ix) + topo_ix[p.topology]] = 1.0
            o = 1 + len(scheme_ix) + len(topo_ix)
            rows[r, o + 0] = p.num_shards / 4.0
            rows[r, o + 1] = p.racks / 4.0
            rows[r, o + 2] = p.rack_size / 4.0
            rows[r, o + 3] = p.cross_bw_fraction
            rows[r, o + 4] = 1.0 if p.transmission_priority == "smallest" else 0.0
            rows[r, o + 5] = 1.0 if p.fuse else 0.0
            rows[r, o + 6] = 1.0 if p.fuse_lossy else 0.0
            rows[r, o + 7] = np.log2(float(p.bucket_elements)) / 16.0
        return rows


def boundary_candidates(
    config: ExperimentConfig, *, max_names: int = 4
) -> tuple[tuple[str, ...], ...]:
    """Candidate bucket-boundary sets for one model.

    Boundaries only matter for below-threshold (fusable) parameters;
    offer the empty set, a few evenly spaced single-name boundaries, and
    one two-name split so the search can discover whether cutting the
    packing at a layer edge beats pure capacity-driven packing.
    """
    model = config.model_factory()()
    fusable = [
        p.name
        for p in model.parameters()
        if p.size < config.small_tensor_threshold
    ]
    # The first fusable tensor never makes a useful boundary (the packer
    # starts a fresh bucket there anyway).
    names = fusable[1:]
    if not names:
        return ((),)
    if len(names) > max_names:
        idx = np.linspace(0, len(names) - 1, max_names).astype(int)
        names = [names[i] for i in dict.fromkeys(idx)]
    candidates: list[tuple[str, ...]] = [()]
    candidates.extend((name,) for name in names)
    if len(names) >= 2:
        candidates.append((names[0], names[-1]))
    return tuple(candidates)


def default_space(
    base: ExperimentConfig,
    *,
    schemes: tuple[str, ...] | None = None,
) -> PlanSpace:
    """The standard search space over one base config.

    Rack shapes are every ``racks x rack_size == num_workers`` split with
    ``rack_size >= 2`` and ``racks >= 2`` (the fusion-legal hier shapes);
    ``hier`` drops out of the topology choices when no such split exists.
    """
    if schemes is None:
        schemes = (
            "32-bit float",
            "8-bit int",
            "3LC (s=1.00)",
            "3LC (s=1.75)",
            "MQE 1-bit int",
            "25% sparsification",
        )
    shapes = tuple(
        (racks, base.num_workers // racks)
        for racks in range(2, base.num_workers // 2 + 1)
        if base.num_workers % racks == 0 and base.num_workers // racks >= 2
    )
    topologies = tuple(
        t for t in TOPOLOGY_CHOICES if t != "hier" or shapes
    )
    shard_choices = tuple(
        s for s in (2, 4) if s <= max(2, base.num_workers)
    )
    return PlanSpace(
        base=base,
        schemes=schemes,
        topologies=topologies,
        shard_choices=shard_choices or (2,),
        rack_shapes=shapes,
        boundary_choices=boundary_candidates(base),
    )

