"""Deterministic plan scoring through the simulator and replay cache.

:class:`PlanEvaluator` turns one :class:`~repro.tuner.space.PlanPoint`
into a simulated mean step time at the target link, with two properties
the search layers above depend on:

* **Cache reuse.** Every evaluation goes through one shared
  :class:`~repro.netsim.SweepReplayCache`: plan points differing only in
  simulation-side knobs (cross-rack bandwidth, transmission priority,
  time model) share a recording, and re-scored points hit the simulation
  level outright — one training run is scored across hundreds of
  candidate plans with only timeline-level recomputation.
* **Bit-determinism.** The engine records *measured* seconds (wall-clock
  compute and codec timings) and the runner profiles a *measured*
  backward timeline; both would make same-seed tuner runs differ. The
  evaluator therefore (a) pre-seeds a deterministic synthetic timeline
  under each candidate's canonical cache key, and (b) installs
  :func:`normalize_recording` as the runner's ``recording_filter``,
  replacing every recorded seconds field with a modeled value (constant
  compute, per-element codec rate). Training math, byte counts, and
  accuracy are already seed-deterministic for BSP, so two same-seed
  tuner runs produce identical scores — the satellite reproducibility
  guarantee, asserted in ``tests/tuner``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.harness.config import ExperimentConfig
from repro.harness.runner import ExperimentRunner
from repro.netsim import RecordedTraining, SweepReplayCache
from repro.nn.stats import BackwardTimeline, LayerTiming, profile_backward
from repro.tuner.space import PlanPoint, PlanSpace

__all__ = [
    "PlanScore",
    "PlanEvaluator",
    "normalize_recording",
    "deterministic_timeline",
]

#: Modeled codec throughput (seconds per element) substituted for the
#: engine's wall-clock codec measurements.
CODEC_RATE = 5e-9
#: Modeled per-step compute time (seconds) substituted for measured
#: backward wall-clock.
COMPUTE_SECONDS = 0.05
#: Synthetic per-layer timing: a floor plus a per-element rate, so larger
#: layers take longer and the timeline's ready fractions stay non-trivial.
_LAYER_FLOOR = 1e-6
_LAYER_RATE = 1e-9


@dataclass(frozen=True)
class PlanScore:
    """One scored plan point."""

    point: PlanPoint
    step_seconds: float
    accuracy: float
    steps: int
    feasible: bool = True
    reason: str | None = None

    @property
    def objective(self) -> float:
        """Minimized by every search strategy; infeasible plans sort last."""
        return self.step_seconds if self.feasible else math.inf


def normalize_recording(recording: RecordedTraining) -> RecordedTraining:
    """Replace the recording's measured seconds with modeled values.

    Byte counts, record structure, evaluation metrics, and loss curves
    are untouched — only the wall-clock-derived seconds fields become
    deterministic functions of the element counts they correspond to.
    """
    steps = tuple(
        _normalize_step(st) for st in recording.transmissions
    )
    updates = tuple(
        _normalize_update(up) for up in recording.update_events
    )
    return replace(recording, transmissions=steps, update_events=updates)


def _phase_elements(records) -> tuple[int, int]:
    push = pull = 0
    for r in records:
        if r.phase == "pull":
            pull += r.elements
        else:
            push += r.elements
    return push, pull


def _normalize_step(st):
    push, pull = _phase_elements(st.records)
    return replace(
        st,
        compute_seconds=COMPUTE_SECONDS,
        push_compress_seconds=CODEC_RATE * push,
        server_decompress_seconds=CODEC_RATE * push,
        server_compress_seconds=CODEC_RATE * pull,
        pull_decompress_seconds=CODEC_RATE * pull,
    )


def _normalize_update(up):
    push, pull = _phase_elements(up.records)
    return replace(
        up,
        clock_seconds=COMPUTE_SECONDS * (up.local_step + 1),
        compute_seconds=COMPUTE_SECONDS,
        push_compress_seconds=CODEC_RATE * push,
        server_seconds=CODEC_RATE * push,
        pull_compress_seconds=CODEC_RATE * pull,
        pull_decompress_seconds=CODEC_RATE * pull,
    )


def deterministic_timeline(config: ExperimentConfig) -> BackwardTimeline:
    """Synthetic backward timeline with modeled per-layer seconds.

    The layer *structure* (labels, parameter ownership, backward order)
    comes from one profiling pass — it is deterministic, asserted stable
    by :func:`~repro.nn.stats.profile_backward` itself — while each
    measured duration is replaced by a floor-plus-rate function of the
    layer's parameter element count, so ready fractions (and therefore
    every simulated schedule) are identical across runs and processes.
    """
    model = config.model_factory()()
    dataset = config.dataset()
    images, labels = dataset.train_shard(0, config.batch_size)
    profiled = profile_backward(model, images, labels, repeats=1)
    sizes = {p.name: p.size for p in model.parameters()}
    layers = tuple(
        LayerTiming(
            layer.label,
            _LAYER_FLOOR
            + _LAYER_RATE * sum(sizes.get(name, 0) for name in layer.params),
            layer.params,
        )
        for layer in profiled.layers
    )
    return BackwardTimeline(layers)


class PlanEvaluator:
    """Score plan points deterministically against one base config.

    Parameters
    ----------
    space:
        The plan space (supplies ``apply`` and the base config).
    link:
        Objective link name (a :data:`repro.network.bandwidth.LINKS` key);
        the objective is the simulated mean step seconds at this link.
    accuracy_floor_delta:
        Feasibility bound: a plan whose final accuracy falls more than
        this below ``baseline_accuracy`` is scored infeasible (lossy
        plans must not buy speed with model quality).
    baseline_accuracy:
        Anchor for the accuracy bound. ``None`` defers the bound until
        :meth:`set_baseline` is called (the driver scores the default
        plan first and anchors on it).
    cache:
        Shared replay cache; a fresh private one by default. Never share
        a tuner cache with unfiltered runners — the evaluator stores
        *normalized* recordings under the standard keys.
    """

    def __init__(
        self,
        space: PlanSpace,
        *,
        link: str = "10Mbps",
        accuracy_floor_delta: float = 0.05,
        baseline_accuracy: float | None = None,
        cache: SweepReplayCache | None = None,
    ):
        self.space = space
        self.link = link
        self.accuracy_floor_delta = float(accuracy_floor_delta)
        self.baseline_accuracy = baseline_accuracy
        self.cache = cache if cache is not None else SweepReplayCache()
        self._runners: dict[ExperimentConfig, ExperimentRunner] = {}
        self._timelines: dict[tuple, BackwardTimeline] = {}
        #: Simulator evaluations performed (the search budget's unit).
        self.evaluations = 0

    def set_baseline(self, accuracy: float) -> None:
        self.baseline_accuracy = float(accuracy)

    def _timeline_key(self, config: ExperimentConfig) -> tuple:
        return (
            config.model_family,
            config.depth,
            config.base_width,
            config.mlp_hidden,
            config.image_size,
            config.num_classes,
            config.model_seed,
            config.batch_size,
            config.dataset_seed,
        )

    def _runner(self, config: ExperimentConfig) -> ExperimentRunner:
        runner = self._runners.get(config)
        if runner is None:
            runner = ExperimentRunner(
                config,
                replay_cache=self.cache,
                recording_filter=normalize_recording,
            )
            # Pre-seed the deterministic timeline under the runner's
            # canonical key so the measured profile never runs: every
            # process (and every same-seed rerun) simulates the same
            # schedule.
            canonical = replace(config, **ExperimentRunner._SIM_ONLY_CANONICAL)
            if self.cache.timeline(canonical) is None:
                tkey = self._timeline_key(config)
                timeline = self._timelines.get(tkey)
                if timeline is None:
                    timeline = deterministic_timeline(config)
                    self._timelines[tkey] = timeline
                self.cache.store_timeline(canonical, timeline)
            self._runners[config] = runner
        return runner

    def evaluate(self, point: PlanPoint, fraction: float = 1.0) -> PlanScore:
        """Train-or-replay the point and score it at the objective link."""
        config = self.space.apply(point)
        runner = self._runner(config)
        result = runner.run(point.scheme, fraction)
        self.evaluations += 1
        step_seconds = result.mean_step_seconds[self.link]
        accuracy = result.final_accuracy
        feasible = True
        reason = None
        if (
            self.baseline_accuracy is not None
            and accuracy < self.baseline_accuracy - self.accuracy_floor_delta
        ):
            feasible = False
            reason = (
                f"accuracy {accuracy:.4f} fell more than "
                f"{self.accuracy_floor_delta:.3f} below the baseline "
                f"{self.baseline_accuracy:.4f}"
            )
        return PlanScore(
            point=point,
            step_seconds=step_seconds,
            accuracy=accuracy,
            steps=result.steps,
            feasible=feasible,
            reason=reason,
        )

    def evaluate_batch(self, points, fraction: float = 1.0) -> list[PlanScore]:
        """Serial batch scoring (the parallel pool mirrors this order)."""
        return [self.evaluate(p, fraction) for p in points]
