import sys

from repro.tuner.cli import main

if __name__ == "__main__":
    sys.exit(main())
