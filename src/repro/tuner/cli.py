"""``python -m repro.tuner``: search the wire-plan space, emit a plan.

Examples
--------
Smoke-scale search on the bench MLP (fast config), 2 processes::

    python -m repro.tuner --fast --model mlp --budget 40 --jobs 2 \\
        --seed 0 --out plan.json

The emitted ``repro.plan/v1`` artifact loads back into the harness::

    python -m repro.harness.cli fig9 --fast --plan plan.json
"""

from __future__ import annotations

import argparse
import time

from repro.harness.config import DEFAULT_CONFIG, FAST_CONFIG
from repro.network.bandwidth import LINKS
from repro.tuner.artifact import plan_to_dict, save_plan
from repro.tuner.parallel import ParallelScorer
from repro.tuner.search import STRATEGIES, tune
from repro.tuner.space import default_space
from repro.utils.logging import get_logger

logger = get_logger("repro.tuner")


def base_config(args) -> "ExperimentConfig":
    """The tuner's base config from CLI flags (seed threads everywhere)."""
    config = FAST_CONFIG if args.fast else DEFAULT_CONFIG
    overrides: dict = {
        # One --seed reaches every stochastic layer: model init, dataset,
        # batch order, stochastic codecs — and (below) plan sampling.
        "model_seed": args.seed,
        "dataset_seed": args.seed,
        "cluster_seed": args.seed,
        "scheme_seed": args.seed,
        "model_family": args.model,
    }
    if args.workers is not None:
        overrides["num_workers"] = args.workers
    if args.steps is not None:
        overrides["standard_steps"] = args.steps
    return config.scaled(**overrides)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tuner",
        description="Wire-plan autotuner: minimize simulated step time "
        "over the joint plan space.",
    )
    parser.add_argument(
        "--fast", action="store_true", help="miniature base config"
    )
    parser.add_argument(
        "--model",
        choices=("resnet", "mlp"),
        default="mlp",
        help="model family of the base config (default: the bench MLP)",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--steps", type=int, default=None, help="standard step budget"
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=64,
        help="simulator evaluation budget (default 64)",
    )
    parser.add_argument(
        "--strategy",
        choices=tuple(sorted(STRATEGIES)),
        default="model",
        help="search strategy (default: the cost-model loop)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel scoring processes (results are bit-identical "
        "to --jobs 1)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--link",
        choices=tuple(LINKS),
        default="10Mbps",
        help="objective link (default 10Mbps)",
    )
    parser.add_argument(
        "--accuracy-delta",
        type=float,
        default=0.05,
        help="feasibility bound: max accuracy drop vs the default plan",
    )
    parser.add_argument(
        "--out", default="plan.json", help="plan artifact output path"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = base_config(args)
    space = default_space(config)
    t0 = time.perf_counter()
    with ParallelScorer(
        space,
        jobs=args.jobs,
        link=args.link,
        accuracy_floor_delta=args.accuracy_delta,
    ) as scorer:
        result = tune(
            space,
            scorer,
            strategy=args.strategy,
            budget=args.budget,
            seed=args.seed,
        )
    wall = time.perf_counter() - t0
    artifact = plan_to_dict(result, space, link=args.link)
    save_plan(args.out, artifact)
    best = result.best
    print(
        f"best plan: {best.point.scheme} / {best.point.topology} "
        f"(priority={best.point.transmission_priority}, "
        f"fuse={best.point.fuse})"
    )
    print(
        f"step time @{args.link}: {best.step_seconds:.4g}s vs default "
        f"{result.default.step_seconds:.4g}s "
        f"({100 * result.improvement:+.1f}% improvement)"
    )
    print(
        f"{result.evaluations}/{result.budget} evaluations, "
        f"strategy={result.strategy}, seed={result.seed}, "
        f"wall {wall:.1f}s, jobs={args.jobs}"
    )
    print(f"plan written to {args.out}")
    return 0
