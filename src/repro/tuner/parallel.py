"""Parallel plan scoring: a process pool with per-process replay caches.

The search layer hands :class:`ParallelScorer` deterministic candidate
batches; the scorer shards them across a
:class:`concurrent.futures.ProcessPoolExecutor` and merges results back
by the candidates' original indices. Bit-identity with serial scoring
holds by construction:

* every evaluation is deterministic (the evaluator normalizes measured
  seconds and pre-seeds a synthetic timeline — see
  :mod:`repro.tuner.evaluator`), so *where* a point is scored cannot
  change its score;
* the candidate sequence is fixed by the search seed, and the merge is
  by index, so the search sees the same scores in the same order at any
  ``jobs`` — only wall-clock changes.

Each worker process holds its own :class:`~repro.netsim.SweepReplayCache`
(recordings cannot be shared across processes cheaply), so the chunking
is cache-aware: candidates are grouped by
:meth:`~repro.tuner.space.PlanSpace.recording_signature` — points
differing only in simulation-side knobs — and whole groups are packed
onto workers, keeping each process's recording reuse as high as the
serial evaluator's within its share.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.tuner.evaluator import PlanEvaluator
from repro.tuner.space import PlanSpace

__all__ = ["ParallelScorer"]

# Per-process evaluator, built once by the pool initializer: recordings
# and simulations then persist across every chunk the process scores.
_EVALUATOR: PlanEvaluator | None = None


def _init_worker(space: PlanSpace, eval_kwargs: dict) -> None:
    global _EVALUATOR
    _EVALUATOR = PlanEvaluator(space, **eval_kwargs)


def _score_chunk(items, fraction: float):
    """Score ``[(index, point), ...]`` in the per-process evaluator."""
    assert _EVALUATOR is not None, "pool initializer did not run"
    return [
        (index, _EVALUATOR.evaluate(point, fraction)) for index, point in items
    ]


class ParallelScorer:
    """``evaluate_batch`` across processes, bit-identical to serial.

    ``jobs <= 1`` degrades to an in-process
    :class:`~repro.tuner.evaluator.PlanEvaluator` (no pool, no pickling).
    Use as a context manager — or call :meth:`close` — to shut the pool
    down.
    """

    def __init__(self, space: PlanSpace, *, jobs: int = 1, **eval_kwargs):
        self.space = space
        self.jobs = max(1, int(jobs))
        self._eval_kwargs = dict(eval_kwargs)
        self._serial: PlanEvaluator | None = None
        self._pool: ProcessPoolExecutor | None = None
        self.evaluations = 0
        if self.jobs == 1:
            self._serial = PlanEvaluator(space, **self._eval_kwargs)

    # -- lifecycle ---------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self.space, self._eval_kwargs),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelScorer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- scoring -----------------------------------------------------------

    def set_baseline(self, accuracy: float) -> None:
        """Anchor the accuracy-feasibility floor in every evaluator.

        Serial: set directly. Parallel: recorded in the init kwargs and
        the pool is restarted so worker evaluators pick it up — called
        once per tuner run (right after the default plan is scored), so
        the restart cost is paid once.
        """
        self._eval_kwargs["baseline_accuracy"] = float(accuracy)
        if self._serial is not None:
            self._serial.set_baseline(accuracy)
        elif self._pool is not None:
            self.close()

    def evaluate_batch(self, points, fraction: float = 1.0):
        points = list(points)
        self.evaluations += len(points)
        if self._serial is not None:
            return self._serial.evaluate_batch(points, fraction)
        if not points:
            return []
        pool = self._ensure_pool()
        chunks = self._chunk(points)
        futures = [
            pool.submit(_score_chunk, chunk, fraction)
            for chunk in chunks
            if chunk
        ]
        merged = [None] * len(points)
        for future in futures:
            for index, score in future.result():
                merged[index] = score
        return merged

    def _chunk(self, points):
        """Pack recording-signature groups onto ``jobs`` balanced chunks.

        Groups (points sharing one training recording) stay whole so no
        recording is trained twice; greedy largest-first balancing keeps
        the chunks' evaluation counts even. Deterministic: group order
        follows first appearance, sizes break ties by that order.
        """
        groups: dict = {}
        for index, point in enumerate(points):
            sig = self.space.recording_signature(point)
            groups.setdefault(sig, []).append((index, point))
        ordered = sorted(
            groups.values(), key=lambda items: (-len(items), items[0][0])
        )
        chunks = [[] for _ in range(min(self.jobs, len(ordered)) or 1)]
        loads = [0] * len(chunks)
        for items in ordered:
            target = loads.index(min(loads))
            chunks[target].extend(items)
            loads[target] += len(items)
        return chunks
