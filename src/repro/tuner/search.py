"""Search strategies over the wire-plan space.

Three strategies share one fixed-budget contract (every call to the
scorer counts one simulator evaluation, the budget is never exceeded)
and one determinism contract (candidate sequences depend only on the
seed, never on timing or the parallel pool's job count):

* :func:`random_search` — the baseline: sample legal points, score in
  fixed-size rounds.
* :func:`successive_halving` — multi-fidelity: a wide first rung at a
  small step-budget fraction, survivors promoted to higher fractions
  (the runner's ``fraction`` axis is the fidelity knob — fewer trained
  steps, same plan).
* :func:`cost_model_search` — the CAMAL-style active-learning loop: a
  ridge-regression cost model (plain ``numpy`` least squares, no
  external deps) fit on evaluated points proposes the next batch from a
  large sampled pool, the simulator labels them, the model refits.

Scoring goes through a ``scorer`` exposing ``evaluate_batch(points,
fraction)`` — either a :class:`~repro.tuner.evaluator.PlanEvaluator` or
the :class:`~repro.tuner.parallel.ParallelScorer` — in deterministic
batches, so serial and parallel runs walk the identical evaluation
sequence and return bit-identical results.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.tuner.evaluator import PlanScore
from repro.tuner.space import PlanPoint, PlanSpace

__all__ = [
    "TrajectoryPoint",
    "TunerResult",
    "random_search",
    "successive_halving",
    "cost_model_search",
    "tune",
    "STRATEGIES",
]

#: Fixed scoring round size. Independent of the parallel pool's job
#: count by design: the evaluation sequence (and therefore the result)
#: is identical at any ``--jobs``.
ROUND_SIZE = 8


@dataclass(frozen=True)
class TrajectoryPoint:
    """Best-so-far snapshot after one evaluation."""

    evaluations: int
    wall_seconds: float
    best_step_seconds: float


@dataclass(frozen=True)
class TunerResult:
    """Outcome of one tuner run."""

    best: PlanScore
    default: PlanScore
    trajectory: tuple[TrajectoryPoint, ...]
    evaluations: int
    strategy: str
    budget: int
    seed: int

    @property
    def improvement(self) -> float:
        """Fractional step-time reduction vs the default plan."""
        if self.default.step_seconds <= 0:
            return 0.0
        return 1.0 - self.best.step_seconds / self.default.step_seconds


class _Tracker:
    """Budget accounting plus the best-so-far trajectory.

    The deterministic tie-break is (objective, arrival index): a later
    point must be *strictly* better to displace the incumbent, so ties
    resolve identically in any arrival grouping.
    """

    def __init__(self, budget: int):
        self.budget = int(budget)
        self.evaluations = 0
        self.best: PlanScore | None = None
        self.trajectory: list[TrajectoryPoint] = []
        self._t0 = time.perf_counter()

    @property
    def remaining(self) -> int:
        return self.budget - self.evaluations

    def record(self, scores) -> None:
        for score in scores:
            self.evaluations += 1
            if self.best is None or score.objective < self.best.objective:
                self.best = score
                self.trajectory.append(
                    TrajectoryPoint(
                        evaluations=self.evaluations,
                        wall_seconds=time.perf_counter() - self._t0,
                        best_step_seconds=score.step_seconds,
                    )
                )


def _sample_unique(space: PlanSpace, rng, count: int, seen: set) -> list[PlanPoint]:
    """Up to ``count`` fresh legal canonical points (dedup vs ``seen``)."""
    out: list[PlanPoint] = []
    # Bounded retries: small spaces exhaust, and the sampler must not
    # spin forever once every legal point has been proposed.
    attempts = 0
    while len(out) < count and attempts < count * 50:
        attempts += 1
        point = space.sample(rng)
        if point in seen:
            continue
        seen.add(point)
        out.append(point)
    return out


def random_search(
    space: PlanSpace, scorer, *, budget: int, seed: int, default: PlanScore
) -> TunerResult:
    """Uniform sampling in fixed rounds — the comparison baseline."""
    rng = np.random.default_rng(seed)
    tracker = _Tracker(budget)
    tracker.record([default])
    seen: set[PlanPoint] = {default.point}
    while tracker.remaining > 0:
        batch = _sample_unique(
            space, rng, min(ROUND_SIZE, tracker.remaining), seen
        )
        if not batch:
            break
        tracker.record(scorer.evaluate_batch(batch, 1.0))
    return TunerResult(
        best=tracker.best,
        default=default,
        trajectory=tuple(tracker.trajectory),
        evaluations=tracker.evaluations,
        strategy="random",
        budget=budget,
        seed=seed,
    )


def successive_halving(
    space: PlanSpace,
    scorer,
    *,
    budget: int,
    seed: int,
    default: PlanScore,
    eta: int = 3,
    fractions: tuple[float, ...] = (0.25, 0.5, 1.0),
) -> TunerResult:
    """Multi-fidelity elimination over the runner's step-budget fractions.

    The initial rung width ``n0`` is the largest satisfying
    ``sum(ceil(n0 / eta**k) for k rungs) <= budget - 1`` (one evaluation
    is reserved for the default plan), so the budget is honored exactly;
    each rung keeps its top ``1/eta`` by (objective, arrival index) and
    promotes them to the next fraction. Only full-fraction scores can
    become the returned best — low-fidelity scores use a shorter cosine
    schedule and are not comparable to the default plan's.
    """
    if eta < 2:
        raise ValueError(f"eta must be >= 2, got {eta}")
    rungs = len(fractions)
    n0 = 1
    while True:
        cost = sum(math.ceil((n0 + 1) / eta**k) for k in range(rungs))
        if cost > budget - 1:
            break
        n0 += 1
    rng = np.random.default_rng(seed)
    tracker = _Tracker(budget)
    tracker.record([default])
    seen: set[PlanPoint] = {default.point}
    candidates = _sample_unique(space, rng, n0, seen)
    full_best: PlanScore | None = None
    for k, fraction in enumerate(fractions):
        if not candidates or tracker.remaining <= 0:
            break
        candidates = candidates[: tracker.remaining]
        scores: list[PlanScore] = []
        for lo in range(0, len(candidates), ROUND_SIZE):
            batch = candidates[lo : lo + ROUND_SIZE]
            got = scorer.evaluate_batch(batch, fraction)
            scores.extend(got)
            if fraction >= 1.0:
                tracker.record(got)
            else:
                # Low-fidelity evaluations spend budget but cannot set
                # the best (their schedules differ); count them only.
                tracker.evaluations += len(got)
        if fraction >= 1.0:
            for score in scores:
                if full_best is None or score.objective < full_best.objective:
                    full_best = score
        keep = max(1, math.ceil(len(scores) / eta))
        ranked = sorted(
            range(len(scores)), key=lambda i: (scores[i].objective, i)
        )
        candidates = [scores[i].point for i in ranked[:keep]]
    best = tracker.best if full_best is None else (
        full_best if full_best.objective < default.objective else default
    )
    if best is None or default.objective <= best.objective:
        best = default
    return TunerResult(
        best=best,
        default=default,
        trajectory=tuple(tracker.trajectory),
        evaluations=tracker.evaluations,
        strategy="halving",
        budget=budget,
        seed=seed,
    )


def _fit_ridge(X: np.ndarray, y: np.ndarray, lam: float = 1e-3) -> np.ndarray:
    """Ridge weights via the normal equations (numpy only)."""
    d = X.shape[1]
    return np.linalg.solve(X.T @ X + lam * np.eye(d), X.T @ y)


def cost_model_search(
    space: PlanSpace,
    scorer,
    *,
    budget: int,
    seed: int,
    default: PlanScore,
    pool_size: int = 256,
) -> TunerResult:
    """CAMAL-style active learning: model proposes, simulator labels.

    Seeded with two random rounds, then each iteration fits a ridge
    cost model on every labeled point, samples a fresh candidate pool,
    and sends the model's top picks to the simulator. Infeasible labels
    train the model with a 2x-worst penalty so it learns to avoid the
    region without distorting the feasible landscape.
    """
    rng = np.random.default_rng(seed)
    tracker = _Tracker(budget)
    tracker.record([default])
    seen: set[PlanPoint] = {default.point}
    labeled: list[PlanScore] = [default]

    init = _sample_unique(space, rng, min(2 * ROUND_SIZE, tracker.remaining), seen)
    for lo in range(0, len(init), ROUND_SIZE):
        got = scorer.evaluate_batch(init[lo : lo + ROUND_SIZE], 1.0)
        tracker.record(got)
        labeled.extend(got)

    while tracker.remaining > 0:
        finite = [s.step_seconds for s in labeled if s.feasible]
        penalty = 2.0 * max(finite) if finite else 1.0
        y = np.array(
            [s.step_seconds if s.feasible else penalty for s in labeled]
        )
        X = space.encode([s.point for s in labeled])
        weights = _fit_ridge(X, y)
        # Propose from a fresh pool; `seen` dedups against everything
        # already labeled so the pool never re-spends budget.
        pool = _sample_unique(space, rng, pool_size, seen)
        if not pool:
            break
        preds = space.encode(pool) @ weights
        take = min(ROUND_SIZE, tracker.remaining, len(pool))
        picks = np.lexsort((np.arange(len(pool)), preds))[:take]
        # Points the model did not pick return to the sampling pool.
        chosen = [pool[i] for i in picks]
        for i, point in enumerate(pool):
            if i not in set(int(j) for j in picks):
                seen.discard(point)
        got = scorer.evaluate_batch(chosen, 1.0)
        tracker.record(got)
        labeled.extend(got)
    return TunerResult(
        best=tracker.best,
        default=default,
        trajectory=tuple(tracker.trajectory),
        evaluations=tracker.evaluations,
        strategy="model",
        budget=budget,
        seed=seed,
    )


STRATEGIES = {
    "random": random_search,
    "halving": successive_halving,
    "model": cost_model_search,
}


def tune(
    space: PlanSpace,
    scorer,
    *,
    strategy: str = "model",
    budget: int = 64,
    seed: int = 0,
    default_scheme: str | None = None,
) -> TunerResult:
    """Score the default plan, anchor the accuracy bound, run a strategy.

    The default plan (the base config under registration order) is
    evaluated first — it both spends the budget's first evaluation and
    anchors the accuracy-feasibility floor every candidate is held to.
    """
    try:
        run = STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of: {known}"
        ) from None
    if budget < 2:
        raise ValueError(f"budget must be >= 2, got {budget}")
    scheme = default_scheme or space.schemes[0]
    default_point = space.default_point(scheme)
    default = scorer.evaluate_batch([default_point], 1.0)[0]
    scorer.set_baseline(default.accuracy)
    return run(space, scorer, budget=budget, seed=seed, default=default)
