"""Minimal logging setup shared by the harness and examples."""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "set_level", "LOG_LEVELS"]

_CONFIGURED = False

#: Accepted ``--log-level`` names, in increasing verbosity order.
LOG_LEVELS = ("critical", "error", "warning", "info", "debug")


def get_logger(name: str = "repro") -> logging.Logger:
    """Return a logger writing single-line records to stderr.

    The first call installs a stream handler on the ``repro`` root logger;
    subsequent calls reuse it. Level defaults to INFO and can be tuned via
    :func:`set_level` (the CLI's ``--log-level``) or the standard
    :mod:`logging` API.
    """
    global _CONFIGURED
    root = logging.getLogger("repro")
    if not _CONFIGURED:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s", "%H:%M:%S")
        )
        root.addHandler(handler)
        root.setLevel(logging.INFO)
        root.propagate = False
        _CONFIGURED = True
    if name == "repro":
        return root
    return root.getChild(name.removeprefix("repro."))


def set_level(level: int | str) -> None:
    """Set the ``repro`` root logger level.

    Accepts a :mod:`logging` constant or a (case-insensitive) name from
    :data:`LOG_LEVELS`. Installs the handler first if needed so an early
    ``set_level("debug")`` is not undone by the first ``get_logger``.
    """
    if isinstance(level, str):
        name = level.lower()
        if name not in LOG_LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; expected one of {LOG_LEVELS}"
            )
        level = getattr(logging, name.upper())
    get_logger().setLevel(level)
