"""Minimal logging setup shared by the harness and examples."""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger"]

_CONFIGURED = False


def get_logger(name: str = "repro") -> logging.Logger:
    """Return a logger writing single-line records to stderr.

    The first call installs a stream handler on the ``repro`` root logger;
    subsequent calls reuse it. Level defaults to INFO and can be tuned by
    callers via the standard :mod:`logging` API.
    """
    global _CONFIGURED
    root = logging.getLogger("repro")
    if not _CONFIGURED:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s", "%H:%M:%S")
        )
        root.addHandler(handler)
        root.setLevel(logging.INFO)
        root.propagate = False
        _CONFIGURED = True
    if name == "repro":
        return root
    return root.getChild(name.removeprefix("repro."))
