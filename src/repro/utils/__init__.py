"""Shared utilities: seeding, logging, formatting, and profiling."""

from repro.utils.seeding import SeedSequenceFactory, derive_rng
from repro.utils.format import human_bytes, human_rate, format_table
from repro.utils.logging import get_logger
from repro.utils.profiling import maybe_profile, profiling_requested

__all__ = [
    "SeedSequenceFactory",
    "derive_rng",
    "human_bytes",
    "human_rate",
    "format_table",
    "get_logger",
    "maybe_profile",
    "profiling_requested",
]
