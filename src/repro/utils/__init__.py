"""Shared utilities: seeding, logging, and human-readable formatting."""

from repro.utils.seeding import SeedSequenceFactory, derive_rng
from repro.utils.format import human_bytes, human_rate, format_table
from repro.utils.logging import get_logger

__all__ = [
    "SeedSequenceFactory",
    "derive_rng",
    "human_bytes",
    "human_rate",
    "format_table",
    "get_logger",
]
