"""Lightweight cProfile hook for the simulator hot path.

Perf PRs need a standard entry point: every bench CLI accepts
``--profile`` (and every code path honors ``REPRO_PROFILE=1``) and wraps
its hot section in :func:`maybe_profile`, which prints a cumulative-time
top-20 when enabled and costs nothing when not.

Usage::

    with maybe_profile(args.profile, label="sweep replay"):
        run_sweep(...)

    REPRO_PROFILE=1 python benchmarks/bench_simperf.py --smoke
"""

from __future__ import annotations

import cProfile
import os
import pstats
import sys
from contextlib import contextmanager

__all__ = ["maybe_profile", "profiling_requested"]


def profiling_requested() -> bool:
    """True when ``REPRO_PROFILE`` is set to a non-empty, non-zero value."""
    value = os.environ.get("REPRO_PROFILE", "")
    return value not in ("", "0")


@contextmanager
def maybe_profile(
    enabled: bool | None = None,
    *,
    top: int = 20,
    label: str = "profile",
    stream=None,
):
    """Profile the enclosed block and print the top ``top`` entries.

    Parameters
    ----------
    enabled:
        ``True`` forces profiling on, ``False`` off; ``None`` (the
        default) defers to the ``REPRO_PROFILE`` environment variable so
        any invocation can be profiled without a CLI flag.
    top:
        Number of rows of the cumulative-time report to print.
    label:
        Heading for the report, naming the profiled section.
    stream:
        Output stream (default ``sys.stderr``, keeping benchmark stdout
        machine-parseable).
    """
    if enabled is None:
        enabled = profiling_requested()
    if not enabled:
        yield None
        return
    out = stream if stream is not None else sys.stderr
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        print(f"\n-- cProfile top {top}: {label} --", file=out)
        stats = pstats.Stats(profiler, stream=out)
        stats.sort_stats("cumulative").print_stats(top)
