"""Lightweight cProfile hook for the simulator hot path.

Perf PRs need a standard entry point: every bench CLI accepts
``--profile`` (and every code path honors ``REPRO_PROFILE=1``) and wraps
its hot section in :func:`maybe_profile`, which prints a cumulative-time
top-20 when enabled and costs nothing when not.

Usage::

    with maybe_profile(args.profile, label="sweep replay"):
        run_sweep(...)

    REPRO_PROFILE=1 python benchmarks/bench_simperf.py --smoke

Pass ``out=`` (the bench CLIs' ``--profile-out``, or the
``REPRO_PROFILE_OUT`` environment variable) to additionally dump the raw
profiler stats to a file loadable with :mod:`pstats` or snakeviz.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import sys
from contextlib import contextmanager
from pathlib import Path

from repro.utils.logging import get_logger

__all__ = ["maybe_profile", "profiling_requested"]

logger = get_logger("repro.utils.profiling")


def profiling_requested() -> bool:
    """True when ``REPRO_PROFILE`` is set to a non-empty, non-zero value."""
    value = os.environ.get("REPRO_PROFILE", "")
    return value not in ("", "0")


@contextmanager
def maybe_profile(
    enabled: bool | None = None,
    *,
    top: int = 20,
    label: str = "profile",
    stream=None,
    out: str | os.PathLike | None = None,
):
    """Profile the enclosed block and print the top ``top`` entries.

    Parameters
    ----------
    enabled:
        ``True`` forces profiling on, ``False`` off; ``None`` (the
        default) defers to the ``REPRO_PROFILE`` environment variable so
        any invocation can be profiled without a CLI flag. Passing
        ``out`` (or setting ``REPRO_PROFILE_OUT``) also turns profiling
        on unless ``enabled`` is explicitly ``False``.
    top:
        Number of rows of the cumulative-time report to print.
    label:
        Heading for the report, naming the profiled section.
    stream:
        Output stream (default ``sys.stderr``, keeping benchmark stdout
        machine-parseable).
    out:
        Optional path for the raw profiler stats (``pstats`` /
        snakeviz-loadable); defaults to the ``REPRO_PROFILE_OUT``
        environment variable. The destination is logged once written.
    """
    if out is None:
        out = os.environ.get("REPRO_PROFILE_OUT") or None
    if enabled is None:
        enabled = profiling_requested() or out is not None
    if not enabled:
        yield None
        return
    report = stream if stream is not None else sys.stderr
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        print(f"\n-- cProfile top {top}: {label} --", file=report)
        stats = pstats.Stats(profiler, stream=report)
        stats.sort_stats("cumulative").print_stats(top)
        if out is not None:
            path = Path(out)
            path.parent.mkdir(parents=True, exist_ok=True)
            stats.dump_stats(path)
            logger.info("profile stats for %s written to %s", label, path)
