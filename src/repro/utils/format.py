"""Human-readable formatting helpers for harness output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["human_bytes", "human_rate", "format_table"]

_BYTE_UNITS = ["B", "KiB", "MiB", "GiB", "TiB"]


def human_bytes(n: float) -> str:
    """Format a byte count with a binary-prefix unit, e.g. ``1.50 MiB``."""
    n = float(n)
    for unit in _BYTE_UNITS[:-1]:
        if abs(n) < 1024.0:
            return f"{n:.2f} {unit}"
        n /= 1024.0
    return f"{n:.2f} {_BYTE_UNITS[-1]}"


def human_rate(bits_per_second: float) -> str:
    """Format a link rate with a decimal-prefix unit, e.g. ``10.0 Mbps``."""
    value = float(bits_per_second)
    for unit in ["bps", "Kbps", "Mbps", "Gbps"]:
        if abs(value) < 1000.0:
            return f"{value:.1f} {unit}"
        value /= 1000.0
    return f"{value:.1f} Tbps"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a fixed-width text table.

    Columns are sized to their widest cell; numeric-looking cells are
    right-aligned, text cells left-aligned. Used by the harness to print
    paper-style tables in the terminal.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if _is_numeric(cell):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("x×%"))
        return True
    except ValueError:
        return False
