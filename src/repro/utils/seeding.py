"""Deterministic random-number seeding.

Every stochastic component in the reproduction (data synthesis, weight
initialization, augmentation, stochastic quantization, threshold sampling)
draws from a generator derived here, so that experiments are exactly
repeatable across runs and machines.

The scheme is hierarchical: a root seed plus a tuple of string/integer keys
(e.g. ``("worker", 3, "augment")``) maps to an independent
``numpy.random.Generator``. Key order matters; distinct key tuples give
statistically independent streams via ``numpy.random.SeedSequence.spawn``
semantics (we hash the key tuple into entropy words).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["derive_rng", "SeedSequenceFactory"]


def _key_entropy(key: Iterable[object]) -> list[int]:
    """Hash a key tuple into a list of 32-bit entropy words."""
    digest = hashlib.sha256(repr(tuple(key)).encode("utf-8")).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


def derive_rng(root_seed: int, *key: object) -> np.random.Generator:
    """Return an independent Generator for ``(root_seed, *key)``.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    key:
        Arbitrary hashable components naming the stream, e.g.
        ``derive_rng(0, "worker", 2, "data")``.
    """
    seq = np.random.SeedSequence([root_seed & 0xFFFFFFFF, *_key_entropy(key)])
    return np.random.Generator(np.random.PCG64(seq))


class SeedSequenceFactory:
    """Factory bound to a root seed that hands out named generators.

    Examples
    --------
    >>> factory = SeedSequenceFactory(42)
    >>> rng = factory.rng("init")
    >>> rng2 = factory.rng("worker", 0)
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def rng(self, *key: object) -> np.random.Generator:
        """Return the generator for the given stream key."""
        return derive_rng(self.root_seed, *key)

    def child(self, *key: object) -> "SeedSequenceFactory":
        """Return a factory whose streams are nested under ``key``."""
        sub = int(self.rng(*key, "__child__").integers(0, 2**31 - 1))
        return SeedSequenceFactory(sub)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SeedSequenceFactory(root_seed={self.root_seed})"
