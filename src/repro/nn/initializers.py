"""Weight initialization schemes.

ResNet training uses He (Kaiming) normal initialization for convolutions
and linear layers, ones/zeros for batch-norm scale/shift, matching the
original paper's setup.
"""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "xavier_uniform", "zeros", "ones"]


def he_normal(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He normal: N(0, sqrt(2 / fan_in)) — suited to ReLU networks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in!r}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot uniform: U(±sqrt(6 / (fan_in + fan_out)))."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fans must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero tensor (biases, batch-norm shift)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-one tensor (batch-norm scale)."""
    return np.ones(shape, dtype=np.float32)
