"""Layer-graph building blocks with explicit backward passes.

A :class:`Module` is a differentiable transform that caches whatever its
backward pass needs during :meth:`Module.forward`. There is no autograd
tape: each layer implements its own analytic gradient, which keeps the
substrate small, auditable against textbook formulas, and fast enough in
NumPy (all heavy math is matrix products, per the ml-systems guide's
"vectorize, don't loop" rule).

Training-mode state (batch-norm batch statistics) is selected by the
``training`` flag threaded through ``forward``.
"""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Module", "Sequential"]


class Module(abc.ABC):
    """Base class for all layers and containers."""

    def __init__(self):
        self._parameters: list[Parameter] = []
        self._children: list[Module] = []

    # -- construction helpers -------------------------------------------

    def register_parameter(self, param: Parameter) -> Parameter:
        """Attach a parameter owned directly by this module."""
        self._parameters.append(param)
        return param

    def register_child(self, child: "Module") -> "Module":
        """Attach a sub-module whose parameters this module exposes."""
        self._children.append(child)
        return child

    # -- parameter access -------------------------------------------------

    def parameters(self) -> list[Parameter]:
        """All parameters in this subtree, in deterministic order."""
        return list(self._iter_parameters())

    def iter_modules(self) -> Iterator["Module"]:
        """Depth-first traversal: this module, then every descendant."""
        yield self
        for child in self._children:
            yield from child.iter_modules()

    def _iter_parameters(self) -> Iterator[Parameter]:
        yield from self._parameters
        for child in self._children:
            yield from child._iter_parameters()

    def zero_grad(self) -> None:
        """Clear all gradient slots in the subtree."""
        for param in self._iter_parameters():
            param.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter tensors keyed by name."""
        return {p.name: p.data.copy() for p in self._iter_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Overwrite parameter values from a state dict (must be complete)."""
        params = {p.name: p for p in self._iter_parameters()}
        missing = params.keys() - state.keys()
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"{name}: shape {value.shape} != {param.data.shape}"
                )
            param.data[...] = value

    # -- computation -------------------------------------------------------

    @abc.abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output, caching activations for backward."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate ``dL/d(output)`` to ``dL/d(input)``.

        Side effect: accumulates ``dL/d(param)`` into each owned
        parameter's ``grad`` slot. Must be called after ``forward`` with
        ``training=True`` in the same step.
        """

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)
        for module in self.modules:
            self.register_child(module)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for module in self.modules:
            x = module.forward(x, training=training)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad_output = module.backward(grad_output)
        return grad_output

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]
