"""Layer-graph building blocks with explicit backward passes.

A :class:`Module` is a differentiable transform that caches whatever its
backward pass needs during :meth:`Module.forward`. There is no autograd
tape: each layer implements its own analytic gradient, which keeps the
substrate small, auditable against textbook formulas, and fast enough in
NumPy (all heavy math is matrix products, per the ml-systems guide's
"vectorize, don't loop" rule).

Training-mode state (batch-norm batch statistics) is selected by the
``training`` flag threaded through ``forward``.
"""

from __future__ import annotations

import abc
import functools
import time
from typing import Callable, Iterator

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Module", "Sequential", "BackwardHookHandle"]


class BackwardHookHandle:
    """Removable registration of one backward hook on one module."""

    __slots__ = ("_module", "_hook")

    def __init__(self, module: "Module", hook: Callable):
        self._module = module
        self._hook = hook

    def remove(self) -> None:
        hooks = getattr(self._module, "_backward_hooks", None)
        if hooks and self._hook in hooks:
            hooks.remove(self._hook)


def _dispatch_backward_hooks(backward):
    """Wrap a subclass ``backward`` so registered hooks observe each call.

    The wrapper is installed by :meth:`Module.__init_subclass__` on every
    class that *defines* ``backward``, so existing call sites
    (``module.backward(grad)``) need no changes. With no hooks registered
    the cost is one attribute lookup and a truthiness check.
    """

    @functools.wraps(backward)
    def wrapped(self, grad_output):
        hooks = getattr(self, "_backward_hooks", None)
        if not hooks:
            return backward(self, grad_output)
        t0 = time.perf_counter()
        out = backward(self, grad_output)
        seconds = time.perf_counter() - t0
        for hook in tuple(hooks):
            hook(self, seconds)
        return out

    wrapped._hook_dispatch = True
    return wrapped


class Module(abc.ABC):
    """Base class for all layers and containers."""

    def __init__(self):
        self._parameters: list[Parameter] = []
        self._children: list[Module] = []
        self._backward_hooks: list[Callable] = []

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        backward = cls.__dict__.get("backward")
        if backward is not None and not getattr(backward, "_hook_dispatch", False):
            cls.backward = _dispatch_backward_hooks(backward)

    # -- construction helpers -------------------------------------------

    def register_parameter(self, param: Parameter) -> Parameter:
        """Attach a parameter owned directly by this module."""
        self._parameters.append(param)
        return param

    def register_child(self, child: "Module") -> "Module":
        """Attach a sub-module whose parameters this module exposes."""
        self._children.append(child)
        return child

    # -- parameter access -------------------------------------------------

    def parameters(self) -> list[Parameter]:
        """All parameters in this subtree, in deterministic order."""
        return list(self._iter_parameters())

    def iter_modules(self) -> Iterator["Module"]:
        """Depth-first traversal: this module, then every descendant."""
        yield self
        for child in self._children:
            yield from child.iter_modules()

    def _iter_parameters(self) -> Iterator[Parameter]:
        yield from self._parameters
        for child in self._children:
            yield from child._iter_parameters()

    # -- backward hooks ----------------------------------------------------

    def register_backward_hook(
        self, hook: Callable[["Module", float], None]
    ) -> BackwardHookHandle:
        """Observe this module's backward calls.

        ``hook(module, seconds)`` fires after each :meth:`backward` returns,
        with the wall-clock seconds that call took. Hooks are what the
        network simulator's per-layer profiler
        (:func:`repro.nn.stats.profile_backward`) builds on: backward
        execution order *is* gradient production order, so the recorded
        sequence doubles as the per-layer readiness timeline.
        """
        if not callable(hook):
            raise TypeError(f"hook must be callable, got {type(hook).__name__}")
        # Modules constructed before hooks existed (unpickled instances)
        # may lack the slot; create it lazily.
        if not hasattr(self, "_backward_hooks"):
            self._backward_hooks = []
        self._backward_hooks.append(hook)
        return BackwardHookHandle(self, hook)

    def zero_grad(self) -> None:
        """Clear all gradient slots in the subtree."""
        for param in self._iter_parameters():
            param.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter tensors keyed by name."""
        return {p.name: p.data.copy() for p in self._iter_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Overwrite parameter values from a state dict (must be complete)."""
        params = {p.name: p for p in self._iter_parameters()}
        missing = params.keys() - state.keys()
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"{name}: shape {value.shape} != {param.data.shape}"
                )
            param.data[...] = value

    # -- computation -------------------------------------------------------

    @abc.abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output, caching activations for backward."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate ``dL/d(output)`` to ``dL/d(input)``.

        Side effect: accumulates ``dL/d(param)`` into each owned
        parameter's ``grad`` slot. Must be called after ``forward`` with
        ``training=True`` in the same step.
        """

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)
        for module in self.modules:
            self.register_child(module)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for module in self.modules:
            x = module.forward(x, training=training)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad_output = module.backward(grad_output)
        return grad_output

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]
