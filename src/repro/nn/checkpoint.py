"""Model and optimizer checkpointing.

Training runs at paper scale take long enough that a library users would
adopt must be able to pause and resume. Checkpoints are plain ``.npz``
archives: parameter tensors under ``param/<name>``, optimizer slots under
``slot/<name>``, batch-norm running statistics under ``bnstat/<index>/...``,
and a ``meta/step`` scalar.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.nn.optimizer import MomentumSGD

__all__ = ["save_checkpoint", "load_checkpoint"]

_PARAM = "param/"
_SLOT = "slot/"
_BNSTAT = "bnstat/"
_STEP = "meta/step"


def _batchnorms(module: Module) -> list[BatchNorm2d]:
    return [m for m in module.iter_modules() if isinstance(m, BatchNorm2d)]


def save_checkpoint(
    path: str | Path,
    model: Module,
    optimizer: MomentumSGD | None = None,
    *,
    step: int = 0,
) -> None:
    """Write model (and optionally optimizer) state to ``path``."""
    arrays: dict[str, np.ndarray] = {
        _PARAM + name: value for name, value in model.state_dict().items()
    }
    for index, bn in enumerate(_batchnorms(model)):
        stats = bn.stats_dict()
        arrays[f"{_BNSTAT}{index}/running_mean"] = stats["running_mean"]
        arrays[f"{_BNSTAT}{index}/running_var"] = stats["running_var"]
    if optimizer is not None:
        for name, slot in optimizer.state_dict().items():
            arrays[_SLOT + name] = slot
    arrays[_STEP] = np.array(step, dtype=np.int64)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)


def load_checkpoint(
    path: str | Path,
    model: Module,
    optimizer: MomentumSGD | None = None,
) -> int:
    """Restore state written by :func:`save_checkpoint`; returns the step.

    The model architecture must match the checkpoint exactly (parameter
    names and shapes are validated by ``load_state_dict``).
    """
    with np.load(Path(path)) as archive:
        params = {
            key.removeprefix(_PARAM): archive[key]
            for key in archive.files
            if key.startswith(_PARAM)
        }
        model.load_state_dict(params)
        bns = _batchnorms(model)
        for index, bn in enumerate(bns):
            mean_key = f"{_BNSTAT}{index}/running_mean"
            if mean_key in archive:
                bn.load_stats(
                    {
                        "running_mean": archive[mean_key],
                        "running_var": archive[f"{_BNSTAT}{index}/running_var"],
                    }
                )
        if optimizer is not None:
            optimizer.reset()
            for key in archive.files:
                if key.startswith(_SLOT):
                    name = key.removeprefix(_SLOT)
                    optimizer._slots[name] = archive[key].astype(np.float32)
        return int(archive[_STEP]) if _STEP in archive.files else 0
