"""Learning-rate schedules.

The paper trains with cosine decay without restarts (Loshchilov & Hutter)
over the *adjusted* total step budget — when an experiment runs 25/50/75%
of standard steps, the schedule still sweeps the full learning-rate range
(paper §5.2, Measurement Methodology). The stepwise schedule of the
original ResNet paper is included for the ablation comparison.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

__all__ = ["Schedule", "CosineDecay", "StepwiseDecay", "ConstantLR", "scale_lr_for_workers"]

Schedule = Callable[[int], float]


class CosineDecay:
    """Cosine decay from ``base_lr`` to ``min_lr`` over ``total_steps``.

    ``lr(t) = min + 0.5 (base - min) (1 + cos(pi t / T))``. The paper's
    range is 0.1 → 0.001.
    """

    def __init__(self, base_lr: float, total_steps: int, min_lr: float = 0.001):
        if total_steps < 1:
            raise ValueError(f"total_steps must be >= 1, got {total_steps!r}")
        if base_lr < min_lr:
            raise ValueError("base_lr must be >= min_lr")
        self.base_lr = float(base_lr)
        self.min_lr = float(min_lr)
        self.total_steps = int(total_steps)

    def __call__(self, step: int) -> float:
        t = min(max(step, 0), self.total_steps)
        cos = 0.5 * (1.0 + math.cos(math.pi * t / self.total_steps))
        return self.min_lr + (self.base_lr - self.min_lr) * cos


class StepwiseDecay:
    """Piecewise-constant decay: multiply by ``factor`` at each boundary."""

    def __init__(
        self, base_lr: float, boundaries: Sequence[int], factor: float = 0.1
    ):
        if sorted(boundaries) != list(boundaries):
            raise ValueError("boundaries must be sorted ascending")
        self.base_lr = float(base_lr)
        self.boundaries = tuple(int(b) for b in boundaries)
        self.factor = float(factor)

    def __call__(self, step: int) -> float:
        lr = self.base_lr
        for boundary in self.boundaries:
            if step >= boundary:
                lr *= self.factor
        return lr


class ConstantLR:
    """Fixed learning rate."""

    def __init__(self, lr: float):
        self.lr = float(lr)

    def __call__(self, step: int) -> float:
        return self.lr


def scale_lr_for_workers(base_lr: float, num_workers: int) -> float:
    """Linear LR scaling rule (Goyal et al.; paper §5.2).

    The paper scales the learning rate proportionally to the worker count
    for large-batch distributed training.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers!r}")
    return base_lr * num_workers
