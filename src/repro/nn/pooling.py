"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["GlobalAvgPool2d", "AvgPool2d"]


class GlobalAvgPool2d(Module):
    """Average over all spatial positions: ``(N,C,H,W) -> (N,C)``.

    The classifier head of CIFAR ResNets.
    """

    def __init__(self):
        super().__init__()
        self._in_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._in_shape = x.shape
        return x.mean(axis=(2, 3)).astype(np.float32, copy=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward before forward(training=True)")
        n, c, h, w = self._in_shape
        self._in_shape = None
        grad = grad_output.reshape(n, c, 1, 1) / np.float32(h * w)
        return np.broadcast_to(grad, (n, c, h, w)).astype(np.float32)


class AvgPool2d(Module):
    """Non-overlapping average pooling with square windows."""

    def __init__(self, window: int):
        super().__init__()
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        self.window = int(window)
        self._in_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.window
        if h % k or w % k:
            raise ValueError(f"spatial dims {(h, w)} not divisible by window {k}")
        if training:
            self._in_shape = x.shape
        return (
            x.reshape(n, c, h // k, k, w // k, k)
            .mean(axis=(3, 5))
            .astype(np.float32, copy=False)
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward before forward(training=True)")
        n, c, h, w = self._in_shape
        self._in_shape = None
        k = self.window
        grad = grad_output.reshape(n, c, h // k, 1, w // k, 1) / np.float32(k * k)
        return np.broadcast_to(
            grad, (n, c, h // k, k, w // k, k)
        ).reshape(n, c, h, w).astype(np.float32)
