"""Fully-connected layer and flattening."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_normal, zeros
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["Linear", "Flatten"]


class Linear(Module):
    """Affine map ``y = x W^T + b`` on ``(N, in_features)`` inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        name: str = "fc",
        rng: np.random.Generator,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            Parameter(
                f"{name}/weight",
                he_normal((out_features, in_features), in_features, rng),
            )
        )
        self.bias = (
            self.register_parameter(
                Parameter(f"{name}/bias", zeros((out_features,)), weight_decay=False)
            )
            if bias
            else None
        )
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected (N, {self.in_features}), got {x.shape}")
        if training:
            self._input = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out.astype(np.float32, copy=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward before forward(training=True)")
        x, self._input = self._input, None
        self.weight.accumulate_grad(grad_output.T @ x)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        return (grad_output @ self.weight.data).astype(np.float32, copy=False)


class Flatten(Module):
    """Collapse all non-batch dimensions: ``(N, ...) -> (N, prod(...))``."""

    def __init__(self):
        super().__init__()
        self._in_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward before forward(training=True)")
        shape, self._in_shape = self._in_shape, None
        return grad_output.reshape(shape)
