"""Loss functions."""

from __future__ import annotations

import numpy as np

__all__ = ["SoftmaxCrossEntropy", "softmax", "accuracy"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    if logits.shape[0] == 0:
        return 0.0
    return float(np.mean(logits.argmax(axis=1) == labels))


class SoftmaxCrossEntropy:
    """Mean softmax cross-entropy over a batch of integer labels.

    ``forward`` returns the scalar loss; ``backward`` returns
    ``dL/dlogits`` with the ``1/N`` batch averaging folded in (so gradient
    magnitudes are independent of batch size, as in TensorFlow's reduction
    behaviour the paper's training setup relies on).
    """

    def __init__(self):
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"expected (N, classes) logits, got {logits.shape}")
        labels = np.asarray(labels)
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} incompatible with logits {logits.shape}"
            )
        probs = softmax(logits)
        n = logits.shape[0]
        picked = probs[np.arange(n), labels]
        loss = float(-np.log(np.maximum(picked, 1e-12)).mean())
        self._cache = (probs, labels)
        return loss

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        probs, labels = self._cache
        self._cache = None
        n = probs.shape[0]
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        return (grad / n).astype(np.float32)
