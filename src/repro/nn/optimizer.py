"""Momentum SGD, matching TensorFlow's ``MomentumOptimizer`` semantics.

Update rule (the paper's local optimizer, §5.2, momentum 0.9 and weight
decay 1e-4)::

    g     = grad + weight_decay * param        (L2, where enabled)
    accum = momentum * accum + g
    param = param - lr * accum

The optimizer keeps one accumulator slot per parameter name. In the
distributed setup the *server* owns the optimizer (gradient aggregation and
model update happen there, paper §2), so the class also exposes
:meth:`apply_named` operating on plain name→array dicts.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["MomentumSGD"]


class MomentumSGD:
    """Momentum SGD with optional decoupled L2 weight decay.

    Parameters
    ----------
    momentum:
        Momentum factor (paper: 0.9).
    weight_decay:
        L2 coefficient applied to parameters flagged ``weight_decay=True``
        (paper: 1e-4).
    """

    def __init__(self, momentum: float = 0.9, weight_decay: float = 1e-4):
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum!r}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay!r}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._slots: dict[str, np.ndarray] = {}

    def _slot(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        slot = self._slots.get(name)
        if slot is None:
            slot = self._slots[name] = np.zeros(shape, dtype=np.float32)
        return slot

    def step(self, parameters: list[Parameter], lr: float) -> None:
        """Apply one update to Parameter objects in place."""
        for param in parameters:
            if param.grad is None:
                raise RuntimeError(f"parameter {param.name} has no gradient")
            grad = param.grad
            if param.weight_decay and self.weight_decay:
                grad = grad + self.weight_decay * param.data
            slot = self._slot(param.name, param.data.shape)
            slot *= self.momentum
            slot += grad
            param.data -= np.float32(lr) * slot

    def apply_named(
        self,
        params: dict[str, np.ndarray],
        grads: dict[str, np.ndarray],
        lr: float,
        *,
        decay_names: frozenset[str] | set[str] = frozenset(),
    ) -> None:
        """Apply one update to name→array dicts in place (server-side API)."""
        for name, value in params.items():
            grad = grads[name]
            if name in decay_names and self.weight_decay:
                grad = grad + self.weight_decay * value
            slot = self._slot(name, value.shape)
            slot *= self.momentum
            slot += grad
            value -= np.float32(lr) * slot

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of accumulator slots (for checkpointing)."""
        return {name: slot.copy() for name, slot in self._slots.items()}

    def reset(self) -> None:
        """Drop all accumulator slots."""
        self._slots.clear()
