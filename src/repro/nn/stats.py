"""Model statistics: parameter counts, FLOP estimates, backward timelines.

The paper motivates its choice of workload with ResNet's low
parameter-to-computation ratio (§5.2): compared to VGG-style networks,
ResNets generate little state-change traffic per unit of computation,
making them a *challenging* target for communication reduction. These
utilities quantify that ratio for any model built from this package's
layers, so experiments can report the same characterization.

FLOPs are multiply-accumulate pairs counted as 2 operations, forward pass
only, for a single example.

:func:`profile_backward` measures the *per-layer* backward timeline the
discrete-event network simulator (``repro.netsim``) replays: backward
visits layers in reverse registration order, so the order in which leaf
modules report their backward durations is exactly the order in which
gradient tensors become available for transmission (the paper's
fine-grained per-layer barriers, §2.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.nn.conv import Conv2d
from repro.nn.functional import conv_output_size
from repro.nn.linear import Linear
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d

__all__ = [
    "ModelStats",
    "model_stats",
    "LayerTiming",
    "BackwardTimeline",
    "profile_backward",
]


@dataclass(frozen=True)
class ModelStats:
    """Size and compute characterization of a model.

    Attributes
    ----------
    parameters:
        Trainable parameter count.
    flops:
        Forward-pass floating-point operations per example.
    bytes_per_step:
        State-change bytes one worker pushes per step at float32.
    params_per_mflop:
        The paper's parameter-to-computation ratio (parameters per
        million FLOPs) — lower means less traffic per unit compute.
    """

    parameters: int
    flops: int

    @property
    def bytes_per_step(self) -> int:
        return 4 * self.parameters

    @property
    def params_per_mflop(self) -> float:
        if self.flops == 0:
            return float("inf")
        return self.parameters / (self.flops / 1e6)


def model_stats(model: Module, input_shape: tuple[int, int, int]) -> ModelStats:
    """Compute :class:`ModelStats` for NCHW models built from repro layers.

    Parameters
    ----------
    model:
        Any module tree composed of this package's layers.
    input_shape:
        Single-example shape ``(channels, height, width)``.
    """
    parameters = sum(p.size for p in model.parameters())
    flops = 0
    channels, height, width = input_shape

    # Walk the tree in construction (pre-)order via Module.iter_modules.
    # Residual blocks register conv1, bn1, relu, conv2, bn2, relu,
    # shortcut; the parameter-free shortcut path contributes no FLOPs, and
    # the geometry after visiting the main path is the block's output
    # geometry, which is what downstream layers see.
    for module in model.iter_modules():
        if isinstance(module, Conv2d):
            out_h = conv_output_size(height, module.kernel, module.stride, module.pad)
            out_w = conv_output_size(width, module.kernel, module.stride, module.pad)
            macs = (
                module.out_channels
                * out_h
                * out_w
                * module.in_channels
                * module.kernel
                * module.kernel
            )
            flops += 2 * macs
            channels, height, width = module.out_channels, out_h, out_w
        elif isinstance(module, Linear):
            flops += 2 * module.in_features * module.out_features
        elif isinstance(module, BatchNorm2d):
            flops += 4 * channels * height * width  # normalize + affine

    return ModelStats(parameters=parameters, flops=flops)


# -- per-layer backward timelines -----------------------------------------


@dataclass(frozen=True)
class LayerTiming:
    """One leaf module's backward cost and the gradients it produces."""

    label: str
    seconds: float
    params: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"{self.label}: seconds must be >= 0")


@dataclass(frozen=True)
class BackwardTimeline:
    """Per-layer backward durations in *execution* (gradient-ready) order.

    Entry 0 is the first layer backward visits (the last layer of the
    forward pass); a parameter's gradient becomes available when its
    layer's entry completes. The simulator scales the timeline's
    *fractions* by each step's measured compute seconds, so one profile
    serves a whole training run.
    """

    layers: tuple[LayerTiming, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a backward timeline needs at least one layer")

    @property
    def total_seconds(self) -> float:
        return sum(layer.seconds for layer in self.layers)

    @property
    def fractions(self) -> tuple[float, ...]:
        """Each layer's share of the total backward time.

        A degenerate all-zero profile (clock resolution) degrades to a
        uniform split rather than dividing by zero.
        """
        total = self.total_seconds
        if total <= 0:
            return tuple(1.0 / len(self.layers) for _ in self.layers)
        return tuple(layer.seconds / total for layer in self.layers)

    def ready_fraction(self) -> dict[str, float]:
        """Map each parameter to the compute fraction at which its
        gradient is ready (cumulative timeline up to its layer)."""
        out: dict[str, float] = {}
        cumulative = 0.0
        for layer, fraction in zip(self.layers, self.fractions):
            cumulative += fraction
            for name in layer.params:
                out[name] = min(1.0, cumulative)
        return out

    def coarsen(self, groups: int) -> "BackwardTimeline":
        """Merge consecutive layers into ``groups`` barrier groups.

        ``groups=1`` models coarse-grained synchronization (every gradient
        ready only when the whole backward pass ends — nothing overlaps);
        ``groups=len(layers)`` is the identity. The overlap benchmark
        sweeps this knob to show how barrier granularity buys overlap.
        """
        if groups < 1:
            raise ValueError(f"groups must be >= 1, got {groups}")
        groups = min(groups, len(self.layers))
        bounds = np.linspace(0, len(self.layers), groups + 1).round().astype(int)
        merged = []
        for index in range(groups):
            chunk = self.layers[bounds[index] : bounds[index + 1]]
            if not chunk:
                continue
            merged.append(
                LayerTiming(
                    label=f"group{index}[{chunk[0].label}..{chunk[-1].label}]",
                    seconds=sum(l.seconds for l in chunk),
                    params=tuple(n for l in chunk for n in l.params),
                )
            )
        return BackwardTimeline(tuple(merged))


def profile_backward(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    *,
    loss_fn: SoftmaxCrossEntropy | None = None,
    repeats: int = 3,
) -> BackwardTimeline:
    """Measure the model's per-layer backward timeline on one minibatch.

    Registers backward hooks on every *leaf* module (containers report the
    sum of their children and would double-count), runs ``repeats``
    forward/backward passes, and averages each layer's duration by
    position. Hooks are removed before returning.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    loss_fn = loss_fn or SoftmaxCrossEntropy()
    leaves = [m for m in model.iter_modules() if not m._children]
    records: list[list[tuple[Module, float]]] = []
    current: list[tuple[Module, float]] = []

    def hook(module: Module, seconds: float) -> None:
        current.append((module, seconds))

    handles = [leaf.register_backward_hook(hook) for leaf in leaves]
    try:
        for _ in range(repeats):
            current = []
            logits = model.forward(images, training=True)
            loss_fn.forward(logits, labels)
            model.zero_grad()
            model.backward(loss_fn.backward())
            records.append(current)
    finally:
        for handle in handles:
            handle.remove()

    order = records[0]
    for other in records[1:]:
        if [m for m, _ in other] != [m for m, _ in order]:
            raise RuntimeError("backward visited layers in an unstable order")

    layers = []
    for position, (module, _) in enumerate(order):
        mean_seconds = float(
            np.mean([records[r][position][1] for r in range(repeats)])
        )
        layers.append(
            LayerTiming(
                label=f"{type(module).__name__.lower()}:{position}",
                seconds=mean_seconds,
                # A module invoked more than once per step (shared
                # activation instances) contributes its parameters at its
                # *last* backward call — only then are its grads final.
                params=(
                    tuple(p.name for p in module.parameters())
                    if position == _last_call(order, module)
                    else ()
                ),
            )
        )
    return BackwardTimeline(tuple(layers))


def _last_call(order: list[tuple[Module, float]], module: Module) -> int:
    """Position of a module's final backward call within one pass."""
    for position in range(len(order) - 1, -1, -1):
        if order[position][0] is module:
            return position
    raise ValueError("module not in backward order")
