"""Model statistics: parameter counts and FLOP estimates.

The paper motivates its choice of workload with ResNet's low
parameter-to-computation ratio (§5.2): compared to VGG-style networks,
ResNets generate little state-change traffic per unit of computation,
making them a *challenging* target for communication reduction. These
utilities quantify that ratio for any model built from this package's
layers, so experiments can report the same characterization.

FLOPs are multiply-accumulate pairs counted as 2 operations, forward pass
only, for a single example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.conv import Conv2d
from repro.nn.functional import conv_output_size
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d

__all__ = ["ModelStats", "model_stats"]


@dataclass(frozen=True)
class ModelStats:
    """Size and compute characterization of a model.

    Attributes
    ----------
    parameters:
        Trainable parameter count.
    flops:
        Forward-pass floating-point operations per example.
    bytes_per_step:
        State-change bytes one worker pushes per step at float32.
    params_per_mflop:
        The paper's parameter-to-computation ratio (parameters per
        million FLOPs) — lower means less traffic per unit compute.
    """

    parameters: int
    flops: int

    @property
    def bytes_per_step(self) -> int:
        return 4 * self.parameters

    @property
    def params_per_mflop(self) -> float:
        if self.flops == 0:
            return float("inf")
        return self.parameters / (self.flops / 1e6)


def model_stats(model: Module, input_shape: tuple[int, int, int]) -> ModelStats:
    """Compute :class:`ModelStats` for NCHW models built from repro layers.

    Parameters
    ----------
    model:
        Any module tree composed of this package's layers.
    input_shape:
        Single-example shape ``(channels, height, width)``.
    """
    parameters = sum(p.size for p in model.parameters())
    flops = 0
    channels, height, width = input_shape

    # Walk the tree in construction (pre-)order via Module.iter_modules.
    # Residual blocks register conv1, bn1, relu, conv2, bn2, relu,
    # shortcut; the parameter-free shortcut path contributes no FLOPs, and
    # the geometry after visiting the main path is the block's output
    # geometry, which is what downstream layers see.
    for module in model.iter_modules():
        if isinstance(module, Conv2d):
            out_h = conv_output_size(height, module.kernel, module.stride, module.pad)
            out_w = conv_output_size(width, module.kernel, module.stride, module.pad)
            macs = (
                module.out_channels
                * out_h
                * out_w
                * module.in_channels
                * module.kernel
                * module.kernel
            )
            flops += 2 * macs
            channels, height, width = module.out_channels, out_h, out_w
        elif isinstance(module, Linear):
            flops += 2 * module.in_features * module.out_features
        elif isinstance(module, BatchNorm2d):
            flops += 4 * channels * height * width  # normalize + affine

    return ModelStats(parameters=parameters, flops=flops)
