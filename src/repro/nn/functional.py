"""Vectorized building blocks for convolution: im2col / col2im.

Convolution is implemented as one big matrix product over patch columns —
the standard im2col lowering that GPU frameworks use — so all FLOPs land in
BLAS rather than Python loops. ``col2im`` is its adjoint (scatter-add),
used by the conv backward pass.

Data layout is NCHW throughout.
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv_output_size", "im2col_indices", "im2col", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output extent of a convolution along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output ({out}) for size={size}, "
            f"kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


def im2col_indices(
    channels: int,
    height: int,
    width: int,
    kernel: int,
    stride: int,
    pad: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index arrays ``(k, i, j)`` mapping patches to padded-image positions.

    Shapes: ``k`` is ``(C*kh*kw, 1)`` channel indices; ``i``/``j`` are
    ``(C*kh*kw, out_h*out_w)`` row/column indices. Computed once per layer
    geometry and cached by the caller.
    """
    out_h = conv_output_size(height, kernel, stride, pad)
    out_w = conv_output_size(width, kernel, stride, pad)

    i0 = np.repeat(np.arange(kernel), kernel)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel), kernel * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)

    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel * kernel).reshape(-1, 1)
    return k, i, j


def im2col(
    x: np.ndarray,
    kernel: int,
    stride: int,
    pad: int,
    indices: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Extract sliding patches as columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    indices:
        Optional precomputed :func:`im2col_indices` for this geometry.

    Returns
    -------
    numpy.ndarray
        Shape ``(C*kernel*kernel, N*out_h*out_w)``.
    """
    n, c, h, w = x.shape
    if indices is None:
        indices = im2col_indices(c, h, w, kernel, stride, pad)
    k, i, j = indices
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else x
    cols = padded[:, k, i, j]  # (N, C*kh*kw, out_h*out_w)
    return cols.transpose(1, 2, 0).reshape(c * kernel * kernel, -1)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
    indices: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to image shape."""
    n, c, h, w = x_shape
    if indices is None:
        indices = im2col_indices(c, h, w, kernel, stride, pad)
    k, i, j = indices
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    reshaped = cols.reshape(c * kernel * kernel, -1, n).transpose(2, 0, 1)
    np.add.at(padded, (slice(None), k, i, j), reshaped)
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded
