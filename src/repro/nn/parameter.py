"""Trainable parameter container.

The distributed simulator treats a model as a flat, ordered collection of
named tensors — exactly how a parameter server partitions state (paper §2).
``Parameter`` carries the metadata the experiments need:

* ``name`` — globally unique, used as the compression-context key;
* ``weight_decay`` — whether L2 regularization applies (disabled for batch
  norm scale/shift, as in standard ResNet training);
* ``small`` flag is *derived* (``data.size``) by the cluster when deciding
  the small-layer compression bypass (paper §5.1 excludes batch-norm
  tensors from compression).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A named trainable tensor with its gradient slot.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"stage2/block1/conv2/weight"``.
    data:
        The float32 value tensor. Mutated in place by optimizers.
    grad:
        Gradient accumulated by the most recent backward pass, or None.
    weight_decay:
        Whether this parameter receives L2 regularization.
    """

    __slots__ = ("name", "data", "grad", "weight_decay")

    def __init__(
        self, name: str, data: np.ndarray, *, weight_decay: bool = True
    ):
        self.name = str(name)
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.weight_decay = bool(weight_decay)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Clear the gradient slot."""
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add a gradient contribution (parameters shared across modules)."""
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} != parameter shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Parameter({self.name!r}, shape={self.data.shape})"
