"""Pure-NumPy neural-network substrate.

Implements everything the paper's workload needs without TensorFlow:
convolution (im2col), batch normalization, ReLU, pooling, linear layers,
identity-mapping residual networks, softmax cross-entropy, momentum SGD
with weight decay, and cosine/stepwise LR schedules. Each layer carries an
analytic backward pass; there is no autograd tape.
"""

from repro.nn.activations import Identity, ReLU
from repro.nn.checkpoint import load_checkpoint, save_checkpoint
from repro.nn.conv import Conv2d
from repro.nn.linear import Flatten, Linear
from repro.nn.loss import SoftmaxCrossEntropy, accuracy, softmax
from repro.nn.module import BackwardHookHandle, Module, Sequential
from repro.nn.norm import BatchNorm2d
from repro.nn.optimizer import MomentumSGD
from repro.nn.parameter import Parameter
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d
from repro.nn.resnet import BasicBlock, PadShortcut, build_mlp, build_resnet
from repro.nn.schedule import (
    ConstantLR,
    CosineDecay,
    StepwiseDecay,
    scale_lr_for_workers,
)
from repro.nn.stats import (
    BackwardTimeline,
    LayerTiming,
    ModelStats,
    model_stats,
    profile_backward,
)
from repro.nn.vgg import build_vgg

__all__ = [
    "Module",
    "Sequential",
    "Parameter",
    "Conv2d",
    "Linear",
    "Flatten",
    "BatchNorm2d",
    "ReLU",
    "Identity",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BasicBlock",
    "PadShortcut",
    "build_resnet",
    "build_mlp",
    "build_vgg",
    "SoftmaxCrossEntropy",
    "softmax",
    "accuracy",
    "MomentumSGD",
    "CosineDecay",
    "StepwiseDecay",
    "ConstantLR",
    "scale_lr_for_workers",
    "save_checkpoint",
    "load_checkpoint",
    "ModelStats",
    "model_stats",
    "BackwardHookHandle",
    "BackwardTimeline",
    "LayerTiming",
    "profile_backward",
]
