"""Identity-mapping residual networks (He et al. 2015), CIFAR style.

The paper trains ResNet-110 for CIFAR-10 — a depth-``6n+2`` network with
three stages of ``n`` basic blocks at widths (16, 32, 64), stride-2
transitions, and option-A shortcuts (parameter-free subsample +
zero-channel padding). :func:`build_resnet` reproduces that topology at any
depth/width, so the reproduction uses the *same architecture family* at a
scale NumPy can train (e.g. ResNet-8/14/20 on smaller synthetic images).

An MLP factory is included for fast unit tests and examples.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import Identity, ReLU
from repro.nn.conv import Conv2d
from repro.nn.linear import Flatten, Linear
from repro.nn.module import Module, Sequential
from repro.nn.norm import BatchNorm2d
from repro.nn.pooling import GlobalAvgPool2d
from repro.utils.seeding import SeedSequenceFactory

__all__ = ["PadShortcut", "BasicBlock", "build_resnet", "build_mlp", "resnet_depth_blocks"]


class PadShortcut(Module):
    """Option-A ResNet shortcut: subsample spatially, zero-pad channels.

    Parameter-free, so it adds no state-change traffic — the reason the
    original CIFAR ResNets (and ours) prefer it over 1×1 projections.
    """

    def __init__(self, in_channels: int, out_channels: int, stride: int):
        super().__init__()
        if out_channels < in_channels:
            raise ValueError("PadShortcut cannot shrink channels")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self._in_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._in_shape = x.shape
        out = x[:, :, :: self.stride, :: self.stride]
        pad = self.out_channels - self.in_channels
        if pad:
            out = np.pad(out, ((0, 0), (0, pad), (0, 0), (0, 0)))
        return out.astype(np.float32, copy=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward before forward(training=True)")
        shape, self._in_shape = self._in_shape, None
        grad = np.zeros(shape, dtype=np.float32)
        grad[:, :, :: self.stride, :: self.stride] = grad_output[
            :, : self.in_channels
        ]
        return grad


class BasicBlock(Module):
    """Post-activation basic residual block: ``relu(F(x) + shortcut(x))``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        *,
        stride: int = 1,
        name: str = "block",
        rng: np.random.Generator,
    ):
        super().__init__()
        self.conv1 = self.register_child(
            Conv2d(
                in_channels, out_channels, 3, stride=stride, name=f"{name}/conv1", rng=rng
            )
        )
        self.bn1 = self.register_child(BatchNorm2d(out_channels, name=f"{name}/bn1"))
        self.relu1 = self.register_child(ReLU())
        self.conv2 = self.register_child(
            Conv2d(out_channels, out_channels, 3, name=f"{name}/conv2", rng=rng)
        )
        self.bn2 = self.register_child(BatchNorm2d(out_channels, name=f"{name}/bn2"))
        self.relu_out = self.register_child(ReLU())
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module = self.register_child(
                PadShortcut(in_channels, out_channels, stride)
            )
        else:
            self.shortcut = self.register_child(Identity())

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        main = self.conv1.forward(x, training)
        main = self.bn1.forward(main, training)
        main = self.relu1.forward(main, training)
        main = self.conv2.forward(main, training)
        main = self.bn2.forward(main, training)
        residual = self.shortcut.forward(x, training)
        return self.relu_out.forward(main + residual, training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_sum = self.relu_out.backward(grad_output)
        grad_main = self.bn2.backward(grad_sum)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        grad_residual = self.shortcut.backward(grad_sum)
        return grad_main + grad_residual


def resnet_depth_blocks(depth: int) -> int:
    """Blocks per stage for a CIFAR ResNet of the given depth (6n+2)."""
    if depth % 6 != 2 or depth < 8:
        raise ValueError(f"CIFAR ResNet depth must be 6n+2 with n >= 1, got {depth}")
    return (depth - 2) // 6


def build_resnet(
    depth: int = 20,
    *,
    num_classes: int = 10,
    in_channels: int = 3,
    base_width: int = 16,
    seed: int = 0,
) -> Sequential:
    """Build a CIFAR-style ResNet of depth ``6n+2``.

    Parameters
    ----------
    depth:
        Total weighted-layer count (8, 14, 20, ..., 110). The paper's
        workload is depth 110; the reproduction defaults to depths NumPy
        trains in reasonable time while preserving the topology.
    num_classes:
        Output classes.
    in_channels:
        Image channels (3 for CIFAR-like inputs).
    base_width:
        Width of the first stage; stages use (w, 2w, 4w).
    seed:
        Weight-initialization seed.
    """
    n = resnet_depth_blocks(depth)
    rng = SeedSequenceFactory(seed).rng("resnet-init")
    layers: list[Module] = [
        Conv2d(in_channels, base_width, 3, name="stem/conv", rng=rng),
        BatchNorm2d(base_width, name="stem/bn"),
        ReLU(),
    ]
    widths = [base_width, base_width * 2, base_width * 4]
    current = base_width
    for stage, width in enumerate(widths):
        for block in range(n):
            stride = 2 if (stage > 0 and block == 0) else 1
            layers.append(
                BasicBlock(
                    current,
                    width,
                    stride=stride,
                    name=f"stage{stage}/block{block}",
                    rng=rng,
                )
            )
            current = width
    layers += [
        GlobalAvgPool2d(),
        Linear(current, num_classes, name="head/fc", rng=rng),
    ]
    return Sequential(*layers)


def build_mlp(
    in_features: int,
    hidden: tuple[int, ...] = (64, 64),
    *,
    num_classes: int = 10,
    seed: int = 0,
) -> Sequential:
    """Small ReLU MLP over flattened inputs (fast tests and examples)."""
    rng = SeedSequenceFactory(seed).rng("mlp-init")
    layers: list[Module] = [Flatten()]
    prev = in_features
    for i, width in enumerate(hidden):
        layers.append(Linear(prev, width, name=f"fc{i}", rng=rng))
        layers.append(ReLU())
        prev = width
    layers.append(Linear(prev, num_classes, name="head/fc", rng=rng))
    return Sequential(*layers)
