"""VGG-style plain convolutional networks (Simonyan & Zisserman).

The paper motivates its ResNet workload by contrast with VGG (§5.2):
"Compared to traditional neural network architectures such as VGG, ResNet
models typically have small parameter count to computation ratios,
generating less state change traffic for the same amount of communication"
— i.e. VGG is the *easy* case for traffic compression and ResNet the
challenging one. This builder exists so that claim is measurable with
:func:`repro.nn.stats.model_stats` (see the architecture-ratio test and
bench), and so users can evaluate compression on a high-traffic model.

The CIFAR-scale variant stacks 3×3 conv/BN/ReLU groups with 2× average-
pool downsampling and finishes with the classic large fully-connected
head — the FC head is what gives VGG its parameter bulk.
"""

from __future__ import annotations

from repro.nn.activations import ReLU
from repro.nn.conv import Conv2d
from repro.nn.linear import Flatten, Linear
from repro.nn.module import Module, Sequential
from repro.nn.norm import BatchNorm2d
from repro.nn.pooling import AvgPool2d
from repro.utils.seeding import SeedSequenceFactory

__all__ = ["build_vgg"]


def build_vgg(
    *,
    num_classes: int = 10,
    in_channels: int = 3,
    image_size: int = 16,
    base_width: int = 16,
    convs_per_stage: tuple[int, ...] = (2, 2, 2),
    fc_width: int = 256,
    seed: int = 0,
) -> Sequential:
    """Build a CIFAR-scale VGG-style network.

    Parameters
    ----------
    num_classes / in_channels / image_size:
        Task geometry. ``image_size`` must be divisible by
        ``2 ** len(convs_per_stage)``.
    base_width:
        Channels of the first stage; doubles per stage (VGG convention).
    convs_per_stage:
        Number of 3×3 conv layers in each stage (VGG-11 ≈ (1,1,2,2,2)).
    fc_width:
        Width of the two fully-connected head layers — the parameter-heavy
        part that drives VGG's high params-per-FLOP ratio.
    seed:
        Weight-initialization seed.
    """
    stages = len(convs_per_stage)
    if image_size % (2**stages):
        raise ValueError(
            f"image_size {image_size} not divisible by 2**{stages}"
        )
    rng = SeedSequenceFactory(seed).rng("vgg-init")
    layers: list[Module] = []
    channels = in_channels
    width = base_width
    size = image_size
    for stage, conv_count in enumerate(convs_per_stage):
        for index in range(conv_count):
            name = f"stage{stage}/conv{index}"
            layers += [
                Conv2d(channels, width, 3, name=name, rng=rng),
                BatchNorm2d(width, name=f"stage{stage}/bn{index}"),
                ReLU(),
            ]
            channels = width
        layers.append(AvgPool2d(2))
        size //= 2
        width *= 2
    layers += [
        Flatten(),
        Linear(channels * size * size, fc_width, name="head/fc0", rng=rng),
        ReLU(),
        Linear(fc_width, num_classes, name="head/fc1", rng=rng),
    ]
    return Sequential(*layers)
