"""2-D convolution layer (im2col lowering, NCHW layout)."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import col2im, conv_output_size, im2col, im2col_indices
from repro.nn.initializers import he_normal, zeros
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["Conv2d"]


class Conv2d(Module):
    """Square-kernel 2-D convolution.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel:
        Kernel side length (square kernels only — all ResNet convs are
        3×3 or 1×1).
    stride, pad:
        Spatial stride and symmetric zero padding.
    bias:
        Whether to add a per-filter bias. ResNet convs are bias-free
        because batch norm immediately follows.
    name:
        Parameter-name prefix, e.g. ``"stage1/block0/conv1"``.
    rng:
        Generator for He-normal weight init.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        *,
        stride: int = 1,
        pad: int | None = None,
        bias: bool = False,
        name: str = "conv",
        rng: np.random.Generator,
    ):
        super().__init__()
        if pad is None:
            pad = kernel // 2  # "same" padding for odd kernels at stride 1
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        fan_in = in_channels * kernel * kernel
        self.weight = self.register_parameter(
            Parameter(
                f"{name}/weight",
                he_normal((out_channels, in_channels, kernel, kernel), fan_in, rng),
            )
        )
        self.bias = (
            self.register_parameter(
                Parameter(f"{name}/bias", zeros((out_channels,)), weight_decay=False)
            )
            if bias
            else None
        )
        self._indices_cache: dict[tuple[int, int], tuple] = {}
        self._cache: tuple | None = None

    def _indices(self, h: int, w: int) -> tuple:
        key = (h, w)
        if key not in self._indices_cache:
            self._indices_cache[key] = im2col_indices(
                self.in_channels, h, w, self.kernel, self.stride, self.pad
            )
        return self._indices_cache[key]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        indices = self._indices(h, w)
        cols = im2col(x, self.kernel, self.stride, self.pad, indices)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out = w_mat @ cols  # (F, out_h*out_w*N)
        out_h = conv_output_size(h, self.kernel, self.stride, self.pad)
        out_w = conv_output_size(w, self.kernel, self.stride, self.pad)
        out = out.reshape(self.out_channels, out_h * out_w, n).transpose(2, 0, 1)
        out = out.reshape(n, self.out_channels, out_h, out_w)
        if self.bias is not None:
            out = out + self.bias.data.reshape(1, -1, 1, 1)
        if training:
            self._cache = (x.shape, cols, indices, (out_h, out_w))
        return out.astype(np.float32, copy=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward(training=True)")
        x_shape, cols, indices, (out_h, out_w) = self._cache
        self._cache = None
        n = x_shape[0]
        # (N, F, OH, OW) -> (F, OH*OW, N) -> (F, OH*OW*N), matching im2col
        # column order (spatial-major, batch-minor).
        grad_mat = (
            grad_output.reshape(n, self.out_channels, out_h * out_w)
            .transpose(1, 2, 0)
            .reshape(self.out_channels, -1)
        )
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        self.weight.accumulate_grad(
            (grad_mat @ cols.T).reshape(self.weight.data.shape)
        )
        if self.bias is not None:
            self.bias.accumulate_grad(grad_mat.sum(axis=1))
        grad_cols = w_mat.T @ grad_mat
        return col2im(
            grad_cols, x_shape, self.kernel, self.stride, self.pad, indices
        ).astype(np.float32, copy=False)
