"""Pointwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["ReLU", "Identity"]


class ReLU(Module):
    """Rectified linear unit, ``max(x, 0)``."""

    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return np.where(mask, x, np.float32(0.0)).astype(np.float32, copy=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward(training=True)")
        mask, self._mask = self._mask, None
        return (grad_output * mask).astype(np.float32, copy=False)


class Identity(Module):
    """No-op layer (placeholder shortcut branch)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output
