"""Batch normalization (Ioffe & Szegedy 2015), 2-D (per-channel) variant.

Batch-norm parameters are the paper's canonical "small layers": §5.1
excludes them from compression because the computation overhead outweighs
compacting already-tiny tensors. The distributed cluster uses
``weight_decay=False`` + the small-tensor bypass for these parameters, and
(following the large-batch training guideline the paper cites) makes one
worker responsible for updating batch-norm statistics.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import ones, zeros
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["BatchNorm2d"]


class BatchNorm2d(Module):
    """Per-channel batch normalization over ``(N, H, W)``.

    Parameters
    ----------
    channels:
        Number of feature channels.
    momentum:
        EMA factor for running statistics (used at evaluation time).
    eps:
        Numerical floor inside the square root.
    name:
        Parameter-name prefix.
    """

    def __init__(
        self,
        channels: int,
        *,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: str = "bn",
    ):
        super().__init__()
        self.channels = channels
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = self.register_parameter(
            Parameter(f"{name}/gamma", ones((channels,)), weight_decay=False)
        )
        self.beta = self.register_parameter(
            Parameter(f"{name}/beta", zeros((channels,)), weight_decay=False)
        )
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ValueError(f"expected (N, {self.channels}, H, W), got {x.shape}")
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            ).astype(np.float32)
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(1, -1, 1, 1)) * inv_std.reshape(1, -1, 1, 1)
        out = self.gamma.data.reshape(1, -1, 1, 1) * x_hat + self.beta.data.reshape(
            1, -1, 1, 1
        )
        if training:
            self._cache = (x_hat, inv_std)
        return out.astype(np.float32, copy=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward(training=True)")
        x_hat, inv_std = self._cache
        self._cache = None
        n, _, h, w = grad_output.shape
        m = n * h * w  # reduction size per channel
        self.gamma.accumulate_grad((grad_output * x_hat).sum(axis=(0, 2, 3)))
        self.beta.accumulate_grad(grad_output.sum(axis=(0, 2, 3)))
        # Standard batch-norm input gradient:
        # dx = (gamma * inv_std / m) * (m*dy - sum(dy) - x_hat * sum(dy*x_hat))
        gamma = self.gamma.data.reshape(1, -1, 1, 1)
        sum_dy = grad_output.sum(axis=(0, 2, 3), keepdims=True)
        sum_dy_xhat = (grad_output * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        dx = (
            gamma
            * inv_std.reshape(1, -1, 1, 1)
            / m
            * (m * grad_output - sum_dy - x_hat * sum_dy_xhat)
        )
        return dx.astype(np.float32, copy=False)

    def stats_dict(self) -> dict[str, np.ndarray]:
        """Running statistics (broadcast from server to workers if desired)."""
        return {
            "running_mean": self.running_mean.copy(),
            "running_var": self.running_var.copy(),
        }

    def load_stats(self, stats: dict[str, np.ndarray]) -> None:
        self.running_mean = np.asarray(stats["running_mean"], dtype=np.float32).copy()
        self.running_var = np.asarray(stats["running_var"], dtype=np.float32).copy()
