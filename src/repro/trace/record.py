"""Trace capture: archive a training run's state-change stream to disk.

The on-disk format is a single compressed ``.npz``: one float32 array per
record under the key ``{index:06d}|{step}|{direction}|{name}``, plus a
``__manifest__`` array carrying the format version. ``.npz`` keeps the
loader dependency-free (NumPy only) and memory-maps nothing — records are
decompressed lazily per access, so multi-GB traces stream fine.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = ["StateChangeRecord", "TraceRecorder", "TraceReader"]

_FORMAT_VERSION = 1
_MANIFEST_KEY = "__manifest__"
_DIRECTIONS = ("push", "pull")


@dataclass(frozen=True)
class StateChangeRecord:
    """One captured state-change tensor.

    Attributes
    ----------
    step:
        Global training step the change belongs to.
    direction:
        ``"push"`` (gradient, worker to server) or ``"pull"`` (model
        delta, server to workers).
    name:
        Tensor name (layer parameter), unique within a step+direction.
    tensor:
        The float32 state-change values.
    """

    step: int
    direction: str
    name: str
    tensor: np.ndarray

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}, got {self.direction!r}"
            )
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")
        if "|" in self.name:
            raise ValueError(f"tensor name may not contain '|': {self.name!r}")


class TraceRecorder:
    """Accumulates records in memory and writes one ``.npz`` archive.

    Examples
    --------
    >>> recorder = TraceRecorder()
    >>> recorder.record(0, "push", "conv1/kernel", gradient)   # doctest: +SKIP
    >>> recorder.save("run42.npz")                             # doctest: +SKIP
    """

    def __init__(self) -> None:
        self._records: list[StateChangeRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def record(
        self, step: int, direction: str, name: str, tensor: np.ndarray
    ) -> None:
        """Append one state-change tensor to the trace."""
        self._records.append(
            StateChangeRecord(
                step=int(step),
                direction=direction,
                name=name,
                tensor=np.asarray(tensor, dtype=np.float32).copy(),
            )
        )

    def save(self, path: str | Path) -> Path:
        """Write the trace; returns the path written."""
        path = Path(path)
        arrays = {
            _MANIFEST_KEY: np.array([_FORMAT_VERSION, len(self._records)], dtype=np.int64)
        }
        for index, rec in enumerate(self._records):
            key = f"{index:06d}|{rec.step}|{rec.direction}|{rec.name}"
            arrays[key] = rec.tensor
        np.savez_compressed(path, **arrays)
        # numpy appends .npz if missing; report the real location.
        return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


class TraceReader:
    """Streams :class:`StateChangeRecord` back from a saved trace."""

    def __init__(self, path: str | Path):
        self._archive = np.load(Path(path))
        if _MANIFEST_KEY not in self._archive:
            raise ValueError(f"{path}: not a state-change trace (no manifest)")
        version, count = (int(v) for v in self._archive[_MANIFEST_KEY])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        self._count = count
        self._keys = sorted(k for k in self._archive.files if k != _MANIFEST_KEY)
        if len(self._keys) != count:
            raise ValueError(
                f"trace manifest says {count} records, archive has {len(self._keys)}"
            )

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[StateChangeRecord]:
        for key in self._keys:
            _index, step, direction, name = key.split("|", 3)
            yield StateChangeRecord(
                step=int(step),
                direction=direction,
                name=name,
                tensor=self._archive[key],
            )

    def steps(self) -> list[int]:
        """Distinct step numbers present, in order."""
        seen: list[int] = []
        for key in self._keys:
            step = int(key.split("|", 2)[1])
            if not seen or seen[-1] != step:
                if step not in seen:
                    seen.append(step)
        return seen
