"""State-change trace capture and offline codec replay.

Figure 9's analysis — compressed bits per value, per step, per direction —
needs the *stream* of state-change tensors a training run produces. This
package captures that stream once and replays it through any codec
offline, so codec experiments (new ``s`` values, new schemes, entropy
coders) do not pay for re-training:

* :class:`TraceRecorder` hooks a training loop and archives every
  (step, direction, tensor name, tensor) record to a compressed ``.npz``.
* :class:`TraceReader` streams records back in order.
* :func:`replay` pushes a trace through a
  :class:`~repro.compression.base.Compressor` with proper per-tensor
  contexts and returns the per-step wire statistics Figure 9 plots.
"""

from repro.trace.record import StateChangeRecord, TraceReader, TraceRecorder
from repro.trace.replay import ReplayStats, replay

__all__ = [
    "StateChangeRecord",
    "TraceRecorder",
    "TraceReader",
    "replay",
    "ReplayStats",
]
