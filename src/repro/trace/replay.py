"""Offline codec replay over captured state-change traces.

Replays a trace through any :class:`~repro.compression.base.Compressor`
exactly as the live cluster would: one persistent context per
(direction, tensor) pair, so error accumulation behaves identically and
the resulting per-step byte series matches what a re-run would measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.compression.base import Compressor, CompressorContext
from repro.trace.record import StateChangeRecord

__all__ = ["ReplayStats", "replay"]


@dataclass
class ReplayStats:
    """Wire statistics of one codec over one trace.

    Attributes
    ----------
    scheme:
        Compressor label the trace was replayed through.
    wire_bytes / element_count:
        Totals over all transmitted records.
    deferred:
        Records the scheme chose not to transmit (N-local-steps designs).
    per_step_bits:
        ``{(step, direction): bits per value}`` series — Figure 9's y-axis,
        computed from this replay's wire sizes.
    """

    scheme: str
    wire_bytes: int = 0
    element_count: int = 0
    deferred: int = 0
    per_step_bits: dict[tuple[int, str], float] = field(default_factory=dict)
    _step_bytes: dict[tuple[int, str], int] = field(default_factory=dict)
    _step_elements: dict[tuple[int, str], int] = field(default_factory=dict)

    @property
    def bits_per_value(self) -> float:
        """Mean wire bits per captured state-change element."""
        if self.element_count == 0:
            return 0.0
        return 8.0 * self.wire_bytes / self.element_count

    @property
    def compression_ratio(self) -> float:
        """Against raw float32 transmission of every captured element."""
        if self.wire_bytes == 0:
            return float("inf") if self.element_count else 1.0
        return 4.0 * self.element_count / self.wire_bytes

    def _add(self, step: int, direction: str, nbytes: int, elements: int) -> None:
        key = (step, direction)
        self._step_bytes[key] = self._step_bytes.get(key, 0) + nbytes
        self._step_elements[key] = self._step_elements.get(key, 0) + elements
        self.per_step_bits[key] = (
            8.0 * self._step_bytes[key] / self._step_elements[key]
        )
        self.wire_bytes += nbytes
        self.element_count += elements


def replay(
    records: Iterable[StateChangeRecord], compressor: Compressor
) -> ReplayStats:
    """Push every record through ``compressor`` with live-like contexts.

    Element counts accumulate for deferred records too (the live meter
    charges a scheme for the state it *represents*, not what it sends),
    so ``compression_ratio`` is comparable with the cluster's.
    """
    stats = ReplayStats(scheme=compressor.name)
    contexts: dict[tuple[str, str], CompressorContext] = {}
    for rec in records:
        key = (rec.direction, rec.name)
        ctx = contexts.get(key)
        if ctx is None:
            ctx = compressor.make_context(rec.tensor.shape, key=key)
            contexts[key] = ctx
        result = ctx.compress(rec.tensor)
        if result is None:
            stats.deferred += 1
            stats._add(rec.step, rec.direction, 0, rec.tensor.size)
        else:
            stats._add(
                rec.step, rec.direction, result.wire_size, rec.tensor.size
            )
    return stats
