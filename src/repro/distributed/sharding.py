"""Sharded parameter service: the multi-server half of Figure 1.

The paper's architecture diagram shows several parameter servers, each
storing "a partition of the global model" (§2), though its evaluation uses
a single server machine (§5.2). This module supplies the multi-server
generality: parameters are partitioned across ``num_shards`` independent
:class:`~repro.distributed.server.ParameterServer` instances, each running
its own aggregation, optimizer state, and shared pull compression for its
subset — exactly the per-tensor independence that makes 3LC's
point-to-point contexts shard-trivial (a compression context never spans
servers, so sharding needs no codec changes at all).

What sharding buys, and what this module measures, is *uplink load
spreading*: the single server's hot link carries all push and pull bytes;
K shards divide that by roughly the partition balance. The greedy
largest-first partitioner keeps shard loads within one largest-tensor of
each other — adequate for DNN models whose tensor-size distribution is a
few large conv/FC tensors plus many small ones.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Compressor, CompressionResult
from repro.compression.fusion import FusedCompressionResult, FusionPlan
from repro.distributed.defaults import SMALL_TENSOR_THRESHOLD
from repro.distributed.server import ParameterServer, PullBatch
from repro.nn.optimizer import MomentumSGD
from repro.nn.parameter import Parameter
from repro.nn.schedule import Schedule

__all__ = [
    "partition_parameters",
    "shard_owner_map",
    "ShardedParameterService",
    "ShardLoad",
]


def partition_parameters(
    sizes: dict[str, int], num_shards: int
) -> list[list[str]]:
    """Greedy largest-first partition of tensors across shards.

    Returns ``num_shards`` name lists (some possibly empty when there are
    fewer tensors than shards). Deterministic: ties break on name.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    for name, size in sizes.items():
        if size < 0:
            raise ValueError(f"tensor {name!r} has negative size {size}")
    loads = [0] * num_shards
    shards: list[list[str]] = [[] for _ in range(num_shards)]
    for name in sorted(sizes, key=lambda n: (-sizes[n], n)):
        target = min(range(num_shards), key=lambda i: (loads[i], i))
        shards[target].append(name)
        loads[target] += sizes[name]
    return shards


def shard_owner_map(sizes: dict[str, int], num_shards: int) -> dict[str, int]:
    """Tensor name → owning shard index, from the greedy partition.

    The single derivation shared by the sharded service itself and by the
    wire-plan layer's partition functions — shard-purity of fused buckets
    depends on both sides agreeing on this map exactly.
    """
    return {
        name: idx
        for idx, names in enumerate(partition_parameters(sizes, num_shards))
        for name in names
    }


class ShardLoad:
    """Per-shard byte accounting for one training step."""

    __slots__ = ("push_bytes", "pull_bytes_shared")

    def __init__(self, push_bytes: int = 0, pull_bytes_shared: int = 0):
        self.push_bytes = push_bytes
        self.pull_bytes_shared = pull_bytes_shared

    def uplink_bytes(self, pull_fanout: int) -> int:
        """Bytes this shard's network link carries in one step."""
        return self.push_bytes + self.pull_bytes_shared * pull_fanout


class ShardedParameterService:
    """``num_shards`` parameter servers behind one aggregate interface.

    Drop-in equivalent of a single :class:`ParameterServer` for BSP-style
    stepping: :meth:`step` fans each worker's pushes out to the owning
    shards, steps every shard, and merges the pull batches. Shards step in
    lock-step (the paper's fine-grained barriers, §2.1, permit per-layer
    progress, which per-shard stepping models at shard granularity).

    Parameters
    ----------
    parameters:
        Initial global model parameters.
    optimizer_factory:
        Zero-argument callable producing one optimizer *per shard*
        (optimizer slots are per-parameter, so sharding them is exact).
    schedule / scheme / num_workers / small_tensor_threshold:
        As for :class:`ParameterServer`.
    num_shards:
        Number of server nodes to partition the model across.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        optimizer_factory,
        schedule: Schedule,
        scheme: Compressor,
        *,
        num_workers: int,
        num_shards: int = 2,
        small_tensor_threshold: int = SMALL_TENSOR_THRESHOLD,
        fusion_plan: FusionPlan | None = None,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.schedule = schedule
        self.scheme = scheme
        by_name = {p.name: p for p in parameters}
        if len(by_name) != len(parameters):
            raise ValueError("duplicate parameter names")
        self.partition = partition_parameters(
            {p.name: p.size for p in parameters}, num_shards
        )
        self.num_shards = num_shards
        self._owner: dict[str, int] = shard_owner_map(
            {p.name: p.size for p in parameters}, num_shards
        )
        # A fused frame has one wire destination, so a bucket must be
        # shard-pure: the wire-plan layer builds plans partitioned on the
        # identical greedy owner map, and this check catches any caller
        # handing in an unpartitioned (or differently partitioned) plan.
        self.fusion_plan = fusion_plan
        self._bucket_owner: dict[int, int] = {}
        if fusion_plan is not None:
            for bucket in fusion_plan.buckets:
                owners = {self._owner[name] for name in bucket.names}
                if len(owners) != 1:
                    raise ValueError(
                        f"fused bucket {bucket.index} spans shards "
                        f"{sorted(owners)}; build the plan with the sharded "
                        "topology's partition (see exchange.wireplan)"
                    )
                self._bucket_owner[bucket.index] = owners.pop()
        self.shards: list[ParameterServer] = [
            ParameterServer(
                [by_name[name] for name in shard_names],
                optimizer_factory(),
                schedule,
                scheme,
                num_workers=num_workers,
                small_tensor_threshold=small_tensor_threshold,
                fusion_plan=(
                    fusion_plan.restrict(
                        index
                        for index, owner in self._bucket_owner.items()
                        if owner == idx
                    )
                    if fusion_plan is not None
                    else None
                ),
            )
            for idx, shard_names in enumerate(self.partition)
        ]
        self.last_loads: list[ShardLoad] = [ShardLoad() for _ in range(num_shards)]
        #: Merged name → parameter view across all shards. Shard membership
        #: is fixed at construction and Parameter objects are stable, so
        #: the merge is computed once (the engine reads this per step).
        self.params: dict[str, Parameter] = {}
        for shard in self.shards:
            self.params.update(shard.params)

    @property
    def bypassed(self) -> set[str]:
        out: set[str] = set()
        for shard in self.shards:
            out |= shard.bypassed
        return out

    @property
    def global_step(self) -> int:
        return self.shards[0].global_step if self.shards else 0

    def shard_of(self, name: str) -> int:
        """Index of the server owning ``name``."""
        try:
            return self._owner[name]
        except KeyError:
            raise KeyError(f"unknown parameter {name!r}") from None

    def shard_of_bucket(self, index: int) -> int:
        """Index of the server owning fused bucket ``index``."""
        try:
            return self._bucket_owner[index]
        except KeyError:
            raise KeyError(f"unknown fused bucket {index!r}") from None

    def state_dict(self) -> dict[str, np.ndarray]:
        """Merged snapshot of the partitioned global model."""
        merged: dict[str, np.ndarray] = {}
        for shard in self.shards:
            merged.update(shard.state_dict())
        return merged

    def step(
        self,
        pushes: list[dict[str, CompressionResult | None]],
        divisor: int | None = None,
        fused_pushes: list[dict[int, FusedCompressionResult | None]] | None = None,
    ) -> PullBatch:
        """Aggregate, update, and compress pulls across every shard.

        ``fused_pushes`` (per worker, keyed by global bucket index) fan out
        to the owning shards exactly like named pushes do — the wire plan
        guarantees a bucket has one owner, so the split is a dict lookup.
        """
        per_shard_pushes: list[list[dict[str, CompressionResult | None]]] = [
            [] for _ in range(self.num_shards)
        ]
        loads = [ShardLoad() for _ in range(self.num_shards)]
        for worker_push in pushes:
            split: list[dict[str, CompressionResult | None]] = [
                {} for _ in range(self.num_shards)
            ]
            for name, result in worker_push.items():
                owner = self.shard_of(name)
                split[owner][name] = result
                if result is not None:
                    loads[owner].push_bytes += result.wire_size
            for idx in range(self.num_shards):
                per_shard_pushes[idx].append(split[idx])

        per_shard_fused: list[
            list[dict[int, FusedCompressionResult | None]] | None
        ] = [None] * self.num_shards
        if fused_pushes is not None:
            if len(fused_pushes) != len(pushes):
                raise ValueError("fused_pushes must align with pushes")
            per_shard_fused = [[] for _ in range(self.num_shards)]
            for worker_fused in fused_pushes:
                split_fused: list[dict[int, FusedCompressionResult | None]] = [
                    {} for _ in range(self.num_shards)
                ]
                for index, result in worker_fused.items():
                    owner = self.shard_of_bucket(index)
                    split_fused[owner][index] = result
                    if result is not None:
                        loads[owner].push_bytes += result.wire_size
                for idx in range(self.num_shards):
                    per_shard_fused[idx].append(split_fused[idx])

        messages: dict[str, CompressionResult | None] = {}
        fused: dict[int, FusedCompressionResult | None] = {}
        decompress = compress = 0.0
        for idx, shard in enumerate(self.shards):
            if not shard.params:
                continue
            batch = shard.step(
                per_shard_pushes[idx], divisor, fused_pushes=per_shard_fused[idx]
            )
            messages.update(batch.messages)
            fused.update(batch.fused)
            decompress += batch.decompress_seconds
            compress += batch.compress_seconds
            loads[idx].pull_bytes_shared = sum(
                r.wire_size for r in batch.messages.values() if r is not None
            ) + sum(r.wire_size for r in batch.fused.values() if r is not None)
        self.last_loads = loads
        return PullBatch(messages, decompress, compress, fused)

    def decompress_pull(self, name: str, message) -> np.ndarray:
        return self.shards[self.shard_of(name)].decompress_pull(name, message)

    def decompress_fused_pull(self, index: int, message) -> dict[str, np.ndarray]:
        """Decode one fused pull bucket via its owning shard."""
        return self.shards[self.shard_of_bucket(index)].decompress_fused_pull(
            index, message
        )

    def hot_link_bytes(self, pull_fanout: int) -> int:
        """The most-loaded server link's bytes for the last step — the
        quantity sharding exists to divide."""
        return max(load.uplink_bytes(pull_fanout) for load in self.last_loads)
