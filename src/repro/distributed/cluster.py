"""BSP training cluster: workers + parameter server + traffic metering.

Reproduces the paper's distributed training loop (§2): per step, every
worker computes gradients on its shard (forward + backward), pushes
compressed gradients, the server aggregates and updates the global model,
and workers pull compressed model deltas. Synchronization is bulk-
synchronous — the paper's experiments use TensorFlow's synchronous
``SyncReplicasOptimizer`` as the baseline, with fine-grained barrier
overlap captured by the :class:`~repro.network.timing.StepTimeModel`
rather than simulated explicitly.

Everything runs in-process; *simulated* wall-clock comes from measured
compute/codec seconds plus the link model, so a full Table-1 sweep runs in
minutes instead of the paper's 10 days per slow-network datapoint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.compression.base import Compressor
from repro.data.augment import Augmenter
from repro.data.batcher import ShardBatcher
from repro.data.synthetic import SyntheticImageDataset
from repro.distributed.barriers import (
    BackupWorkerBarrier,
    FullBarrier,
    StragglerSpec,
)
from repro.distributed.server import ParameterServer
from repro.distributed.worker import Worker
from repro.network.traffic import StepTraffic, TrafficMeter
from repro.nn.loss import accuracy
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.nn.optimizer import MomentumSGD
from repro.nn.schedule import Schedule
from repro.utils.seeding import SeedSequenceFactory

__all__ = ["ClusterConfig", "Cluster", "EvalResult"]


@dataclass(frozen=True)
class ClusterConfig:
    """Static configuration of a simulated training cluster.

    Attributes mirror the paper's setup (§5.2): per-worker batch size 32,
    momentum 0.9, weight decay 1e-4, one parameter-server node. The
    reproduction scales worker count and model size down (see DESIGN.md).
    """

    num_workers: int = 4
    batch_size: int = 32
    shard_size: int = 512
    momentum: float = 0.9
    weight_decay: float = 1e-4
    small_tensor_threshold: int = 256
    augment_pad: int = 2
    seed: int = 0
    #: Backup workers (paper §2.1): a global step proceeds once
    #: ``num_workers - backup_workers`` pushes arrive; the rest are dropped.
    backup_workers: int = 0
    #: Per-step compute-time jitter / straggler injection (None = uniform).
    straggler: StragglerSpec | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.shard_size < self.batch_size:
            raise ValueError("shard_size must be >= batch_size")
        if not (0 <= self.backup_workers < self.num_workers):
            raise ValueError("backup_workers must be in [0, num_workers)")


@dataclass(frozen=True)
class EvalResult:
    """Global-model evaluation snapshot."""

    step: int
    test_accuracy: float
    test_loss: float


@dataclass
class StepLog:
    """Per-step training telemetry."""

    step: int
    train_loss: float
    learning_rate: float


class Cluster:
    """A simulated parameter-server training cluster.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh model ``Module``. Called
        once per worker plus once for evaluation; every instance must
        produce identical initial parameters (use a fixed seed inside).
    dataset:
        Source of per-worker shards and the held-out test set.
    scheme:
        Compression scheme applied to both pushes and pulls.
    schedule:
        Learning-rate schedule (already worker-scaled where applicable).
    config:
        Cluster shape and hyperparameters.
    """

    def __init__(
        self,
        model_factory,
        dataset: SyntheticImageDataset,
        scheme: Compressor,
        schedule: Schedule,
        config: ClusterConfig | None = None,
    ):
        self.config = config or ClusterConfig()
        self.dataset = dataset
        self.scheme = scheme
        self.seeds = SeedSequenceFactory(self.config.seed)

        reference_model = model_factory()
        self.workers: list[Worker] = []
        for worker_id in range(self.config.num_workers):
            model = model_factory()
            # All replicas start from identical weights.
            model.load_state_dict(reference_model.state_dict())
            images, labels = dataset.train_shard(worker_id, self.config.shard_size)
            batcher = ShardBatcher(
                images, labels, self.config.batch_size, self.seeds.rng("batch", worker_id)
            )
            augmenter = Augmenter(
                self.seeds.rng("augment", worker_id), pad=self.config.augment_pad
            )
            self.workers.append(
                Worker(
                    worker_id,
                    model,
                    batcher,
                    augmenter,
                    scheme,
                    small_tensor_threshold=self.config.small_tensor_threshold,
                )
            )
        self.server = ParameterServer(
            reference_model.parameters(),
            MomentumSGD(self.config.momentum, self.config.weight_decay),
            schedule,
            scheme,
            self.config.num_workers,
            small_tensor_threshold=self.config.small_tensor_threshold,
        )
        self._eval_model = model_factory()
        self.barrier = (
            FullBarrier()
            if self.config.backup_workers == 0
            else BackupWorkerBarrier(
                self.config.num_workers - self.config.backup_workers
            )
        )
        self.traffic = TrafficMeter()
        self.step_logs: list[StepLog] = []
        self._test_cache: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def global_step(self) -> int:
        return self.server.global_step

    def train_step(self) -> StepLog:
        """Run one full BSP step across all workers; returns telemetry."""
        step = self.server.global_step

        batches = [worker.train_step() for worker in self.workers]

        # Barrier: decide whose pushes enter aggregation. Straggler-scaled
        # compute time determines arrival order; dropped pushes were still
        # transmitted (they consumed bandwidth) but are discarded.
        straggler = self.config.straggler
        arrivals = {
            worker.worker_id: batches[i].compute_seconds
            * (straggler.multiplier(worker.worker_id, step) if straggler else 1.0)
            for i, worker in enumerate(self.workers)
        }
        decision = self.barrier.decide(arrivals)
        accepted_pushes = [batches[i].messages for i in decision.accepted]
        pull_batch = self.server.step(accepted_pushes, divisor=len(decision.accepted))

        # Workers pull the *shared* compressed deltas and apply them.
        t0 = time.perf_counter()
        deltas: dict[str, np.ndarray] = {}
        for name, result in pull_batch.messages.items():
            if result is None:
                continue
            deltas[name] = self.server.decompress_pull(name, result.message)
        pull_decompress_seconds = time.perf_counter() - t0
        for worker in self.workers:
            worker.apply_pull(deltas)

        # -- traffic + timing accounting -------------------------------------
        record = StepTraffic(
            step=step,
            pull_fanout=self.config.num_workers,
            num_workers=self.config.num_workers,
            model_elements=sum(p.size for p in self.server.params.values()),
        )
        bypassed = self.server.bypassed
        for batch in batches:
            for name, result in batch.messages.items():
                if result is None:
                    continue
                record.push_bytes += result.message.wire_size
                record.push_elements += result.message.element_count
                if name not in bypassed:
                    record.push_bytes_main += result.message.wire_size
                    record.push_elements_main += result.message.element_count
        for name, result in pull_batch.messages.items():
            if result is None:
                continue
            record.pull_bytes_shared += result.message.wire_size
            record.pull_elements += result.message.element_count
            if name not in bypassed:
                record.pull_bytes_main += result.message.wire_size
                record.pull_elements_main += result.message.element_count
        # Workers run in parallel: the barrier charges the slowest worker it
        # actually waited for (straggler-scaled; backup workers excluded).
        record.compute_seconds = decision.compute_seconds
        record.dropped_pushes = len(decision.dropped)
        # Codec work on the critical path: slowest worker's push compression,
        # the server's serialized decompress + compress, and one worker's
        # pull decompression (workers decompress in parallel).
        record.codec_seconds = (
            max(b.compress_seconds for b in batches)
            + pull_batch.decompress_seconds
            + pull_batch.compress_seconds
            + pull_decompress_seconds
        )
        self.traffic.record(record)

        log = StepLog(
            step=step,
            train_loss=float(np.mean([b.loss for b in batches])),
            learning_rate=self.server.schedule(step),
        )
        self.step_logs.append(log)
        return log

    def train(self, steps: int, *, eval_every: int | None = None, test_size: int = 1000) -> list[EvalResult]:
        """Run ``steps`` BSP steps, optionally evaluating along the way."""
        evals: list[EvalResult] = []
        for _ in range(steps):
            self.train_step()
            if eval_every and self.global_step % eval_every == 0:
                evals.append(self.evaluate(test_size=test_size))
        return evals

    def _test_set(self, test_size: int) -> tuple[np.ndarray, np.ndarray]:
        if self._test_cache is None or self._test_cache[0].shape[0] != test_size:
            self._test_cache = self.dataset.test_set(test_size)
        return self._test_cache

    def evaluate(self, *, test_size: int = 1000) -> EvalResult:
        """Evaluate the *global* model on the held-out test set.

        Batch-norm running statistics come from worker 0's replica — the
        paper makes one worker responsible for batch-norm updates (§5.2).
        """
        self._eval_model.load_state_dict(self.server.state_dict())
        self._sync_bn_stats(self.workers[0].model, self._eval_model)
        images, labels = self._test_set(test_size)
        from repro.nn.loss import SoftmaxCrossEntropy

        logits = self._eval_model.forward(images, training=False)
        loss = SoftmaxCrossEntropy().forward(logits, labels)
        return EvalResult(
            step=self.global_step,
            test_accuracy=accuracy(logits, labels),
            test_loss=loss,
        )

    @staticmethod
    def _sync_bn_stats(source: Module, target: Module) -> None:
        src_bns = [m for m in _iter_modules(source) if isinstance(m, BatchNorm2d)]
        dst_bns = [m for m in _iter_modules(target) if isinstance(m, BatchNorm2d)]
        if len(src_bns) != len(dst_bns):
            raise RuntimeError("model topology mismatch between replicas")
        for src, dst in zip(src_bns, dst_bns):
            dst.load_stats(src.stats_dict())

    def model_divergence(self) -> float:
        """Max L2 distance between any worker replica and the global model.

        Lossy pull compression lets replicas drift; error feedback should
        keep this bounded. Exposed for tests and diagnostics.
        """
        global_state = self.server.state_dict()
        worst = 0.0
        for worker in self.workers:
            local = worker.model.state_dict()
            dist = float(
                np.sqrt(
                    sum(
                        np.sum((local[k] - global_state[k]) ** 2)
                        for k in global_state
                    )
                )
            )
            worst = max(worst, dist)
        return worst


def _iter_modules(module: Module):
    yield module
    for child in module._children:
        yield from _iter_modules(child)
