"""BSP training cluster: a thin facade over the unified exchange engine.

Reproduces the paper's distributed training loop (§2): per step, every
worker computes gradients on its shard (forward + backward), pushes
compressed gradients, the server aggregates and updates the global model,
and workers pull compressed model deltas. Synchronization is bulk-
synchronous — the paper's experiments use TensorFlow's synchronous
``SyncReplicasOptimizer`` as the baseline, with fine-grained barrier
overlap captured by the :class:`~repro.network.timing.StepTimeModel`
rather than simulated explicitly.

The orchestration itself lives in
:class:`~repro.exchange.engine.ExchangeEngine`; :class:`Cluster` pins the
engine to the paper's evaluated configuration (single parameter server,
BSP with optional backup workers) and preserves the historical construction
surface. The BSP single-server path is op-for-op identical to the original
implementation — ``tests/exchange/test_engine_parity.py`` holds the engine
to the seed's exact loss trajectory and wire bytes.

Everything runs in-process; *simulated* wall-clock comes from measured
compute/codec seconds plus the link model, so a full Table-1 sweep runs in
minutes instead of the paper's 10 days per slow-network datapoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.base import Compressor
from repro.data.synthetic import SyntheticImageDataset
from repro.distributed.barriers import StragglerSpec
from repro.distributed.defaults import SMALL_TENSOR_THRESHOLD
from repro.exchange.engine import EngineConfig, EvalResult, ExchangeEngine, StepLog
from repro.nn.schedule import Schedule

__all__ = ["ClusterConfig", "Cluster", "EvalResult", "StepLog"]


@dataclass(frozen=True)
class ClusterConfig:
    """Static configuration of a simulated training cluster.

    Attributes mirror the paper's setup (§5.2): per-worker batch size 32,
    momentum 0.9, weight decay 1e-4, one parameter-server node. The
    reproduction scales worker count and model size down (see DESIGN.md).
    """

    num_workers: int = 4
    batch_size: int = 32
    shard_size: int = 512
    momentum: float = 0.9
    weight_decay: float = 1e-4
    small_tensor_threshold: int = SMALL_TENSOR_THRESHOLD
    augment_pad: int = 2
    seed: int = 0
    #: Backup workers (paper §2.1): a global step proceeds once
    #: ``num_workers - backup_workers`` pushes arrive; the rest are dropped.
    backup_workers: int = 0
    #: Per-step compute-time jitter / straggler injection (None = uniform).
    straggler: StragglerSpec | None = None
    #: Fused-bucket hot path: exchange small tensors in fused buckets
    #: (one codec call and one frame per bucket) instead of one message
    #: per tensor. Numerically exact; changes only framing and call count.
    fuse_small_tensors: bool = False

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.shard_size < self.batch_size:
            raise ValueError("shard_size must be >= batch_size")
        if not (0 <= self.backup_workers < self.num_workers):
            raise ValueError("backup_workers must be in [0, num_workers)")

    def engine_config(self) -> EngineConfig:
        """The equivalent unified-engine configuration."""
        return EngineConfig(
            num_workers=self.num_workers,
            batch_size=self.batch_size,
            shard_size=self.shard_size,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            small_tensor_threshold=self.small_tensor_threshold,
            augment_pad=self.augment_pad,
            seed=self.seed,
            topology="single",
            sync_mode="bsp",
            backup_workers=self.backup_workers,
            straggler=self.straggler,
            fuse_small_tensors=self.fuse_small_tensors,
        )


class Cluster(ExchangeEngine):
    """A simulated parameter-server training cluster (BSP, single server).

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh model ``Module``. Called
        once per worker plus once for evaluation; every instance must
        produce identical initial parameters (use a fixed seed inside).
    dataset:
        Source of per-worker shards and the held-out test set.
    scheme:
        Compression scheme applied to both pushes and pulls.
    schedule:
        Learning-rate schedule (already worker-scaled where applicable).
    config:
        Cluster shape and hyperparameters.
    """

    def __init__(
        self,
        model_factory,
        dataset: SyntheticImageDataset,
        scheme: Compressor,
        schedule: Schedule,
        config: ClusterConfig | None = None,
    ):
        self.config = config or ClusterConfig()
        super().__init__(
            model_factory, dataset, scheme, schedule, self.config.engine_config()
        )

    @property
    def server(self):
        """The parameter service (historical name for the single server)."""
        return self.service
