"""Shared defaults of the distributed substrate.

Single source of truth for knobs that several layers must agree on. The
small-tensor threshold (paper §5.1: batch-norm scale/shift and similar
tensors bypass lossy compression) was previously copy-pasted across the
cluster, worker, sharding, and harness configs; every consumer now imports
it from here so a change propagates consistently.
"""

from __future__ import annotations

__all__ = ["SMALL_TENSOR_THRESHOLD", "FUSION_BUCKET_ELEMENTS"]

#: Tensors with fewer elements than this bypass lossy compression and
#: travel as raw float32 (paper §5.1's small-layer exclusion).
SMALL_TENSOR_THRESHOLD = 256

#: Capacity of one fused bucket, in elements: small tensors are packed
#: into buckets of at most this many elements before the fused-bucket
#: codec path compresses each bucket with a single codec call.
FUSION_BUCKET_ELEMENTS = 16384
