"""Distributed substrate: in-process parameter-server training simulator."""

from repro.distributed.allreduce import ReduceResult, RingAllReduce, chunk_bounds
from repro.distributed.async_cluster import AsyncCluster, AsyncConfig
from repro.distributed.barriers import (
    BackupWorkerBarrier,
    BarrierDecision,
    FullBarrier,
    StragglerSpec,
)
from repro.distributed.cluster import Cluster, ClusterConfig, EvalResult
from repro.distributed.server import ParameterServer, PullBatch
from repro.distributed.sharding import (
    ShardedParameterService,
    ShardLoad,
    partition_parameters,
)
from repro.distributed.worker import GradientBatch, Worker

__all__ = [
    "Cluster",
    "ClusterConfig",
    "EvalResult",
    "ParameterServer",
    "PullBatch",
    "Worker",
    "GradientBatch",
    "StragglerSpec",
    "FullBarrier",
    "BackupWorkerBarrier",
    "BarrierDecision",
    "AsyncCluster",
    "AsyncConfig",
    "ShardedParameterService",
    "ShardLoad",
    "partition_parameters",
    "RingAllReduce",
    "ReduceResult",
    "chunk_bounds",
]
