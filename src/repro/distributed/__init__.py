"""Distributed substrate: in-process parameter-server training simulator.

Exports resolve lazily (PEP 562): the trainer facades in this package are
built on :mod:`repro.exchange`, whose engine in turn imports the worker /
server / barrier primitives defined here. Deferring submodule imports until
first attribute access lets either package be imported first without a
circular-import failure, and keeps ``import repro.distributed`` cheap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    "Cluster": "repro.distributed.cluster",
    "ClusterConfig": "repro.distributed.cluster",
    "EvalResult": "repro.distributed.cluster",
    "ParameterServer": "repro.distributed.server",
    "PullBatch": "repro.distributed.server",
    "Worker": "repro.distributed.worker",
    "GradientBatch": "repro.distributed.worker",
    "RawGradientBatch": "repro.distributed.worker",
    "StragglerSpec": "repro.distributed.barriers",
    "FullBarrier": "repro.distributed.barriers",
    "BackupWorkerBarrier": "repro.distributed.barriers",
    "BarrierDecision": "repro.distributed.barriers",
    "AsyncCluster": "repro.distributed.async_cluster",
    "AsyncConfig": "repro.distributed.async_cluster",
    "ShardedParameterService": "repro.distributed.sharding",
    "ShardLoad": "repro.distributed.sharding",
    "partition_parameters": "repro.distributed.sharding",
    "RingAllReduce": "repro.distributed.allreduce",
    "ReduceResult": "repro.distributed.allreduce",
    "chunk_bounds": "repro.distributed.allreduce",
    "SMALL_TENSOR_THRESHOLD": "repro.distributed.defaults",
    "FUSION_BUCKET_ELEMENTS": "repro.distributed.defaults",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.distributed.allreduce import ReduceResult, RingAllReduce, chunk_bounds
    from repro.distributed.async_cluster import AsyncCluster, AsyncConfig
    from repro.distributed.barriers import (
        BackupWorkerBarrier,
        BarrierDecision,
        FullBarrier,
        StragglerSpec,
    )
    from repro.distributed.cluster import Cluster, ClusterConfig, EvalResult
    from repro.distributed.defaults import (
        FUSION_BUCKET_ELEMENTS,
        SMALL_TENSOR_THRESHOLD,
    )
    from repro.distributed.server import ParameterServer, PullBatch
    from repro.distributed.sharding import (
        ShardedParameterService,
        ShardLoad,
        partition_parameters,
    )
    from repro.distributed.worker import GradientBatch, RawGradientBatch, Worker
