"""Worker node: local model replica, gradient computation, push compression.

Each worker (paper §2, Figure 1) holds a full local copy of the model and a
disjoint training-data shard. Per step it runs the forward and backward
passes, compresses each gradient tensor through its own per-tensor
compression context (paper Figure 2a), and later applies the decompressed
model deltas pulled from the server to its local replica.

Small tensors (batch-norm scale/shift and similar) bypass compression via a
float32 context, reproducing the paper's §5.1 exclusion.
"""

from __future__ import annotations

import time

import numpy as np

from repro.compression.base import Compressor, CompressorContext, CompressionResult
from repro.data.augment import Augmenter
from repro.data.batcher import ShardBatcher
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.module import Module

__all__ = ["Worker", "GradientBatch"]


class GradientBatch:
    """One step's compressed pushes plus local measurements."""

    __slots__ = ("messages", "loss", "compute_seconds", "compress_seconds")

    def __init__(
        self,
        messages: dict[str, CompressionResult | None],
        loss: float,
        compute_seconds: float,
        compress_seconds: float,
    ):
        self.messages = messages
        self.loss = loss
        self.compute_seconds = compute_seconds
        self.compress_seconds = compress_seconds


class Worker:
    """A simulated worker node.

    Parameters
    ----------
    worker_id:
        Index within the cluster (also the RNG stream key).
    model:
        This worker's model replica (its parameters are mutated by pulls).
    batcher:
        Minibatch stream over the worker's data shard.
    augmenter:
        Training-time augmentation pipeline.
    scheme:
        Compression scheme for gradient pushes.
    small_tensor_threshold:
        Tensors with fewer elements bypass compression (paper §5.1).
    """

    def __init__(
        self,
        worker_id: int,
        model: Module,
        batcher: ShardBatcher,
        augmenter: Augmenter,
        scheme: Compressor,
        *,
        small_tensor_threshold: int = 256,
    ):
        self.worker_id = int(worker_id)
        self.model = model
        self.batcher = batcher
        self.augmenter = augmenter
        self.scheme = scheme
        self.loss_fn = SoftmaxCrossEntropy()
        self.small_tensor_threshold = int(small_tensor_threshold)
        self._params = {p.name: p for p in model.parameters()}
        self.push_contexts: dict[str, CompressorContext] = {}
        self.bypassed: set[str] = set()
        for name, param in self._params.items():
            key = ("push", self.worker_id, name)
            if param.size < self.small_tensor_threshold:
                self.push_contexts[name] = scheme.make_bypass_context(
                    param.shape, key=key
                )
                self.bypassed.add(name)
            else:
                self.push_contexts[name] = scheme.make_context(param.shape, key=key)

    def train_step(self) -> GradientBatch:
        """Forward/backward on one minibatch, then compress all gradients."""
        images, labels = self.batcher.next_batch()
        images = self.augmenter(images)

        t0 = time.perf_counter()
        logits = self.model.forward(images, training=True)
        loss = self.loss_fn.forward(logits, labels)
        self.model.zero_grad()
        self.model.backward(self.loss_fn.backward())
        compute_seconds = time.perf_counter() - t0

        t1 = time.perf_counter()
        messages: dict[str, CompressionResult | None] = {}
        for name, param in self._params.items():
            if param.grad is None:
                raise RuntimeError(f"missing gradient for {name}")
            messages[name] = self.push_contexts[name].compress(param.grad)
        compress_seconds = time.perf_counter() - t1
        return GradientBatch(messages, loss, compute_seconds, compress_seconds)

    def apply_pull(self, deltas: dict[str, np.ndarray]) -> float:
        """Apply decompressed model deltas to the local replica.

        Returns the wall-clock seconds spent (decompression time is
        accounted separately by the cluster; this is the apply cost).
        """
        t0 = time.perf_counter()
        for name, delta in deltas.items():
            self._params[name].data += delta
        return time.perf_counter() - t0

    def parameter_names(self) -> tuple[str, ...]:
        return tuple(self._params)

    def residual_norms(self) -> dict[str, float]:
        """Per-tensor push-side error-buffer norms (diagnostics)."""
        return {
            name: ctx.residual_norm() for name, ctx in self.push_contexts.items()
        }
