"""Worker node: local model replica, gradient computation, push compression.

Each worker (paper §2, Figure 1) holds a full local copy of the model and a
disjoint training-data shard. Per step it runs the forward and backward
passes, compresses each gradient tensor through its own per-tensor
compression context (paper Figure 2a), and later applies the decompressed
model deltas pulled from the server to its local replica.

Small tensors (batch-norm scale/shift and similar) bypass compression via a
float32 context, reproducing the paper's §5.1 exclusion. When a
:class:`~repro.compression.fusion.FusionPlan` is supplied, those bypass
tensors are instead packed into fused buckets and compressed with one codec
call per bucket — the many-small-tensors hot path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.compression.base import (
    Compressor,
    CompressorContext,
    CompressionResult,
    restore_contexts,
    snapshot_contexts,
)
from repro.compression.fusion import (
    FusedBucketContext,
    FusedCompressionResult,
    FusionPlan,
    compress_fused_batch,
)
from repro.data.augment import Augmenter
from repro.data.batcher import ShardBatcher
from repro.distributed.defaults import SMALL_TENSOR_THRESHOLD
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.module import Module

__all__ = ["Worker", "GradientBatch", "RawGradientBatch"]


class GradientBatch:
    """One step's compressed pushes plus local measurements."""

    __slots__ = ("messages", "fused", "loss", "compute_seconds", "compress_seconds")

    def __init__(
        self,
        messages: dict[str, CompressionResult | None],
        loss: float,
        compute_seconds: float,
        compress_seconds: float,
        fused: dict[int, FusedCompressionResult | None] | None = None,
    ):
        self.messages = messages
        #: Per-bucket fused pushes (empty when fusion is off).
        self.fused = fused or {}
        self.loss = loss
        self.compute_seconds = compute_seconds
        self.compress_seconds = compress_seconds


class RawGradientBatch:
    """One step's *uncompressed* gradients (all-reduce topologies compress
    per hop, not per worker, so the worker hands over raw tensors)."""

    __slots__ = ("grads", "loss", "compute_seconds")

    def __init__(
        self, grads: dict[str, np.ndarray], loss: float, compute_seconds: float
    ):
        self.grads = grads
        self.loss = loss
        self.compute_seconds = compute_seconds


class Worker:
    """A simulated worker node.

    Parameters
    ----------
    worker_id:
        Index within the cluster (also the RNG stream key).
    model:
        This worker's model replica (its parameters are mutated by pulls).
    batcher:
        Minibatch stream over the worker's data shard.
    augmenter:
        Training-time augmentation pipeline.
    scheme:
        Compression scheme for gradient pushes.
    small_tensor_threshold:
        Tensors with fewer elements bypass compression (paper §5.1).
    fusion_plan:
        Optional fused-bucket plan; members of the plan share per-bucket
        fused contexts instead of individual bypass contexts.
    push_compression:
        When False the worker builds no push contexts at all — used by
        collective topologies (ring all-reduce) where compression happens
        per hop inside the collective and only :meth:`train_step_raw` is
        ever called; skipping context construction avoids allocating a
        full set of model-sized error-feedback buffers per worker.
    """

    def __init__(
        self,
        worker_id: int,
        model: Module,
        batcher: ShardBatcher,
        augmenter: Augmenter,
        scheme: Compressor,
        *,
        small_tensor_threshold: int = SMALL_TENSOR_THRESHOLD,
        fusion_plan: FusionPlan | None = None,
        push_compression: bool = True,
    ):
        self.worker_id = int(worker_id)
        self.model = model
        self.batcher = batcher
        self.augmenter = augmenter
        self.scheme = scheme
        self.loss_fn = SoftmaxCrossEntropy()
        self.small_tensor_threshold = int(small_tensor_threshold)
        self.fusion_plan = fusion_plan
        self.push_compression = bool(push_compression)
        self._params = {p.name: p for p in model.parameters()}
        fused_names = fusion_plan.fused_names if fusion_plan else frozenset()
        self.push_contexts: dict[str, CompressorContext] = {}
        self.bypassed: set[str] = {
            name
            for name, param in self._params.items()
            if name in fused_names or param.size < self.small_tensor_threshold
        }
        self.fused_contexts: dict[int, FusedBucketContext] = {}
        if not self.push_compression:
            return
        for name, param in self._params.items():
            if name in fused_names:
                continue
            key = ("push", self.worker_id, name)
            if param.size < self.small_tensor_threshold:
                self.push_contexts[name] = scheme.make_bypass_context(
                    param.shape, key=key
                )
            else:
                self.push_contexts[name] = scheme.make_context(param.shape, key=key)
        if fusion_plan is not None:
            for bucket in fusion_plan.buckets:
                self.fused_contexts[bucket.index] = scheme.make_fused_context(
                    bucket,
                    key=("push-fused", self.worker_id, bucket.index),
                    lossy=fusion_plan.lossy,
                )

    def _forward_backward(self) -> tuple[float, float]:
        """One minibatch forward/backward; returns (loss, compute_seconds)."""
        images, labels = self.batcher.next_batch()
        images = self.augmenter(images)

        t0 = time.perf_counter()
        logits = self.model.forward(images, training=True)
        loss = self.loss_fn.forward(logits, labels)
        self.model.zero_grad()
        self.model.backward(self.loss_fn.backward())
        return loss, time.perf_counter() - t0

    def train_step(self) -> GradientBatch:
        """Forward/backward on one minibatch, then compress all gradients."""
        if not self.push_compression:
            raise RuntimeError(
                "worker was built with push_compression=False; "
                "use train_step_raw()"
            )
        loss, compute_seconds = self._forward_backward()

        t1 = time.perf_counter()
        messages: dict[str, CompressionResult | None] = {}
        for name, param in self._params.items():
            if param.grad is None:
                raise RuntimeError(f"missing gradient for {name}")
            context = self.push_contexts.get(name)
            if context is not None:
                messages[name] = context.compress(param.grad)
        fused: dict[int, FusedCompressionResult | None] = {}
        if self.fusion_plan is not None:
            # One vectorized codec pass across all of this step's buckets
            # (bit-identical to per-bucket compression).
            buckets = self.fusion_plan.buckets
            results = compress_fused_batch(
                (
                    self.fused_contexts[bucket.index],
                    {name: self._params[name].grad for name in bucket.names},
                )
                for bucket in buckets
            )
            for bucket, result in zip(buckets, results):
                fused[bucket.index] = result
        compress_seconds = time.perf_counter() - t1
        return GradientBatch(messages, loss, compute_seconds, compress_seconds, fused)

    def train_step_raw(self) -> RawGradientBatch:
        """Forward/backward only; hand back raw gradients uncompressed.

        Used by topologies where compression is not point-to-point (ring
        all-reduce compresses per hop inside the collective).
        """
        loss, compute_seconds = self._forward_backward()
        grads: dict[str, np.ndarray] = {}
        for name, param in self._params.items():
            if param.grad is None:
                raise RuntimeError(f"missing gradient for {name}")
            grads[name] = param.grad
        return RawGradientBatch(grads, loss, compute_seconds)

    def apply_pull(self, deltas: dict[str, np.ndarray]) -> float:
        """Apply decompressed model deltas to the local replica.

        Returns the wall-clock seconds spent (decompression time is
        accounted separately by the cluster; this is the apply cost).
        """
        t0 = time.perf_counter()
        for name, delta in deltas.items():
            self._params[name].data += delta
        return time.perf_counter() - t0

    def parameter_names(self) -> tuple[str, ...]:
        return tuple(self._params)

    def snapshot_state(self) -> dict:
        """Checkpoint this worker's push-side error-feedback state.

        Residuals are *training state* (every deferred update lives
        there); the fault-recovery layer snapshots them at crash time so
        a restarted worker rejoins without corrupting convergence.
        """
        return {
            "push": snapshot_contexts(self.push_contexts),
            "fused": snapshot_contexts(self.fused_contexts),
        }

    def restore_state(self, snapshot: dict) -> None:
        """Restore a :meth:`snapshot_state` checkpoint (bit-exact)."""
        restore_contexts(self.push_contexts, snapshot["push"])
        restore_contexts(self.fused_contexts, snapshot["fused"])

    def residual_norms(self) -> dict[str, float]:
        """Per-tensor push-side error-buffer norms (diagnostics)."""
        norms = {
            name: ctx.residual_norm() for name, ctx in self.push_contexts.items()
        }
        for index, ctx in self.fused_contexts.items():
            norms[f"fused-bucket:{index}"] = ctx.residual_norm()
        return norms
