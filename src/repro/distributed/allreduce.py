"""Ring all-reduce topology with per-hop tensor compression.

The paper's parameter-server architecture (§2, Figure 1) is one of two
dominant gradient-exchange topologies; the other — bandwidth-optimal ring
all-reduce — is what the in-datacenter frameworks the paper cites in §1
(performance studies [3, 25, 39, 41]) typically use. This module implements
the ring so the repository can answer the natural follow-up question the
paper leaves open: *does point-to-point compression compose with
all-reduce?*

A ring all-reduce over ``N`` nodes splits each tensor into ``N`` chunks
and runs two phases of ``N-1`` hops each:

* **reduce-scatter** — hop ``t`` sends chunk ``(rank - t) mod N`` to the
  right neighbour, which adds it to its local copy; after ``N-1`` hops
  node ``r`` holds the full sum of chunk ``(r+1) mod N``.
* **all-gather** — the completed chunks circulate unreduced so every node
  ends with the whole reduced tensor.

Each node transmits ``2 (N-1)/N`` of the tensor per reduction versus the
parameter server's ``2×`` per *worker* plus ``2N×`` at the server — the
ring has no bandwidth hotspot, which is exactly why compression matters
less there and why the paper's server-centric setting is where 3LC shines
(the comparison ``benchmarks/bench_allreduce.py`` quantifies this).

Compression composes per-hop: every (sender, chunk) pair owns a persistent
compression context, so error feedback corrects each link's quantization
error across *training steps*. Lossy re-encoding of partial sums at every
hop compounds (N-1 lossy stages versus 3LC's one), which the tests and
bench surface as a reduced-fidelity sum — the quantitative argument for
the paper's point-to-point design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.base import Compressor, CompressorContext

__all__ = ["RingAllReduce", "ReduceResult", "chunk_bounds"]


def chunk_bounds(size: int, parts: int) -> list[tuple[int, int]]:
    """Split ``size`` elements into ``parts`` contiguous chunks.

    Sizes differ by at most one element (the first ``size % parts`` chunks
    are one longer), matching the standard ring-allreduce partitioning.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    base, extra = divmod(size, parts)
    bounds = []
    start = 0
    for i in range(parts):
        length = base + (1 if i < extra else 0)
        bounds.append((start, start + length))
        start += length
    return bounds


@dataclass
class ReduceResult:
    """Outcome of one all-reduce invocation.

    Attributes
    ----------
    outputs:
        Per-node reduced tensors (averaged when ``average=True``). With a
        lossless compressor all entries are identical; lossy per-hop
        compression makes them *approximately* equal — the divergence is
        part of what the topology comparison measures.
    wire_bytes:
        Total bytes transmitted around the ring, all hops and nodes.
    baseline_bytes:
        Bytes an uncompressed float32 ring would have moved.
    max_link_bytes:
        The largest per-link volume — the quantity that sets step time on
        a bandwidth-bound network (every ring link carries roughly this).
    """

    outputs: list[np.ndarray]
    wire_bytes: int
    baseline_bytes: int
    max_link_bytes: int = 0

    @property
    def compression_ratio(self) -> float:
        """Baseline bytes over wire bytes (1.0 when uncompressed)."""
        if self.wire_bytes == 0:
            return float("inf") if self.baseline_bytes else 1.0
        return self.baseline_bytes / self.wire_bytes


class RingAllReduce:
    """Simulated ring all-reduce with optional per-hop compression.

    Parameters
    ----------
    num_nodes:
        Ring size (the paper's cluster would be 10).
    shape:
        Shape of the tensor each node contributes.
    compressor:
        Scheme applied to every hop's payload; ``None`` transmits raw
        float32 chunks. Contexts persist across calls, so error feedback
        works exactly as in the parameter-server cluster.

    Notes
    -----
    Deferred transmission (``compress`` returning ``None``, as the
    N-local-steps scheme does) cannot be modelled on a ring — a hop must
    carry *something* for the reduction to proceed — so such schemes are
    rejected at the first deferral.

    Error feedback's contract is *integral*: residual left on a link at
    step ``t`` is transmitted at ``t+1``, which corrects consumers that
    accumulate outputs over time (SGD does: parameter updates integrate
    state changes). Repeated *standalone* reductions through one ring
    instance do not satisfy that assumption — leftover residual from one
    call leaks into the next, independent result — so build a fresh ring
    per reduction in that usage, or use a fine-grained codec.
    """

    def __init__(
        self,
        num_nodes: int,
        shape: tuple[int, ...],
        compressor: Compressor | None = None,
    ):
        if num_nodes < 2:
            raise ValueError(f"a ring needs >= 2 nodes, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        self.shape = tuple(int(d) for d in shape)
        self.compressor = compressor
        size = int(np.prod(self.shape)) if self.shape else 1
        self.bounds = chunk_bounds(size, self.num_nodes)
        # One persistent context per (sender, phase, chunk): reduce-scatter
        # payloads and all-gather payloads have different statistics.
        self._contexts: dict[tuple[int, str, int], CompressorContext] = {}

    def _transmit(
        self, sender: int, phase: str, chunk: int, payload: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Send one chunk across one link; returns (received, wire_bytes)."""
        if self.compressor is None:
            return payload.copy(), payload.size * 4
        key = (sender, phase, chunk)
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = self.compressor.make_context(
                payload.shape, key=("ring", phase, sender, chunk)
            )
            self._contexts[key] = ctx
        result = ctx.compress(payload)
        if result is None:
            raise ValueError(
                f"{self.compressor.name!r} deferred a hop transmission; "
                "schedule-changing schemes cannot run on a ring"
            )
        return (
            np.asarray(self.compressor.decompress(result.message), dtype=np.float32),
            result.wire_size,
        )

    def reduce(
        self, tensors: list[np.ndarray], *, average: bool = True
    ) -> ReduceResult:
        """All-reduce one tensor per node around the ring."""
        if len(tensors) != self.num_nodes:
            raise ValueError(
                f"expected {self.num_nodes} tensors, got {len(tensors)}"
            )
        flats = []
        for t in tensors:
            arr = np.asarray(t, dtype=np.float32)
            if arr.shape != self.shape:
                raise ValueError(f"tensor shape {arr.shape} != ring {self.shape}")
            flats.append(arr.reshape(-1).copy())

        n = self.num_nodes
        wire = 0
        link_bytes = [0] * n  # link i: node i -> node (i+1) % n
        # Phase 1: reduce-scatter.
        for hop in range(n - 1):
            updates = []
            for rank in range(n):
                chunk = (rank - hop) % n
                lo, hi = self.bounds[chunk]
                received, nbytes = self._transmit(
                    rank, "reduce", chunk, flats[rank][lo:hi]
                )
                wire += nbytes
                link_bytes[rank] += nbytes
                updates.append(((rank + 1) % n, chunk, received))
            for dest, chunk, received in updates:
                lo, hi = self.bounds[chunk]
                flats[dest][lo:hi] += received
        # Phase 2: all-gather the completed chunks.
        for hop in range(n - 1):
            updates = []
            for rank in range(n):
                chunk = (rank + 1 - hop) % n
                lo, hi = self.bounds[chunk]
                received, nbytes = self._transmit(
                    rank, "gather", chunk, flats[rank][lo:hi]
                )
                wire += nbytes
                link_bytes[rank] += nbytes
                updates.append(((rank + 1) % n, chunk, received))
            for dest, chunk, received in updates:
                lo, hi = self.bounds[chunk]
                flats[dest][lo:hi] = received

        if average:
            for flat in flats:
                flat /= np.float32(n)
        size = flats[0].size
        baseline = 2 * (n - 1) * size * 4  # sum of per-node chunk traffic
        return ReduceResult(
            outputs=[flat.reshape(self.shape) for flat in flats],
            wire_bytes=wire,
            baseline_bytes=baseline,
            max_link_bytes=max(link_bytes) if link_bytes else 0,
        )
