"""Barrier relaxation: backup workers and straggler modelling (paper §2.1).

The paper's baseline is TensorFlow's ``SyncReplicasOptimizer``, whose
*backup workers* mechanism lets a global step proceed once a sufficient
number of gradient updates arrived, dropping late pushes so stragglers do
not stall the cluster (Chen et al. 2016, cited as [6]).

This module reproduces that machinery for the simulator:

* :class:`StragglerSpec` — a deterministic per-(worker, step) compute-time
  multiplier distribution: occasional heavy slowdowns on top of mild
  log-normal jitter, the empirical straggler shape the systems literature
  reports.
* :class:`FullBarrier` — vanilla BSP: wait for everyone, aggregate all.
* :class:`BackupWorkerBarrier` — accept the first ``required`` pushes by
  arrival time; late pushes are *discarded* (their state changes are lost,
  exactly as in SyncReplicasOptimizer — a real cost that compression
  contexts cannot recover because the sender already subtracted the
  reconstruction from its error buffer).

Arrival time is the straggler-scaled compute time plus compression time;
the barrier returns both the accepted worker set and the step's effective
compute latency (the slowest *accepted* worker), which is what the step-
time model should charge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.seeding import derive_rng

__all__ = ["StragglerSpec", "BarrierDecision", "FullBarrier", "BackupWorkerBarrier"]


@dataclass(frozen=True)
class StragglerSpec:
    """Per-step compute-time jitter with occasional heavy stragglers.

    Attributes
    ----------
    jitter_sigma:
        Sigma of the always-on log-normal jitter (0 disables).
    slowdown_probability:
        Per-worker, per-step probability of a straggler event.
    slowdown_factor:
        Multiplier applied during a straggler event (e.g. 10 = 10× slower).
    seed:
        Stream seed; multipliers are deterministic in (worker, step).
    """

    jitter_sigma: float = 0.1
    slowdown_probability: float = 0.05
    slowdown_factor: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be >= 0")
        if not (0.0 <= self.slowdown_probability <= 1.0):
            raise ValueError("slowdown_probability must be in [0, 1]")
        if self.slowdown_factor < 1.0:
            raise ValueError("slowdown_factor must be >= 1")

    def multiplier(self, worker_id: int, step: int) -> float:
        """Deterministic compute-time multiplier for one worker-step."""
        rng = derive_rng(self.seed, "straggler", worker_id, step)
        value = float(np.exp(rng.normal(0.0, self.jitter_sigma))) if self.jitter_sigma else 1.0
        if rng.random() < self.slowdown_probability:
            value *= self.slowdown_factor
        return value


@dataclass(frozen=True)
class BarrierDecision:
    """Outcome of one barrier round.

    Attributes
    ----------
    accepted:
        Worker ids whose pushes enter aggregation, in arrival order.
    dropped:
        Worker ids whose pushes were discarded.
    compute_seconds:
        Effective step latency: the arrival time of the last accepted push.
    """

    accepted: tuple[int, ...]
    dropped: tuple[int, ...]
    compute_seconds: float


class FullBarrier:
    """Vanilla BSP: every worker's push is awaited and aggregated."""

    name = "bsp"

    def decide(self, arrival_seconds: dict[int, float]) -> BarrierDecision:
        if not arrival_seconds:
            raise ValueError("no workers")
        order = sorted(arrival_seconds, key=arrival_seconds.__getitem__)
        return BarrierDecision(
            accepted=tuple(order),
            dropped=(),
            compute_seconds=max(arrival_seconds.values()),
        )


class BackupWorkerBarrier:
    """Proceed after the first ``required`` pushes; drop the rest.

    Parameters
    ----------
    required:
        Number of gradient updates a global step waits for. With ``N``
        workers and ``b`` backup workers this is ``N - b``.
    """

    def __init__(self, required: int):
        if required < 1:
            raise ValueError("required must be >= 1")
        self.required = int(required)
        self.name = f"backup(required={required})"

    def decide(self, arrival_seconds: dict[int, float]) -> BarrierDecision:
        if len(arrival_seconds) < self.required:
            raise ValueError(
                f"barrier needs {self.required} workers, got {len(arrival_seconds)}"
            )
        order = sorted(arrival_seconds, key=arrival_seconds.__getitem__)
        accepted = tuple(order[: self.required])
        return BarrierDecision(
            accepted=accepted,
            dropped=tuple(order[self.required :]),
            compute_seconds=arrival_seconds[accepted[-1]],
        )
