"""Asynchronous and stale-synchronous training (paper §2.1).

The paper's background section contrasts synchronous training with two
relaxations it chooses *not* to use, because "asynchronous state change
transmission generally requires more training steps than BSP to train a
model to similar test accuracy":

* **fully asynchronous** (Hogwild-style via a parameter server): a worker
  pushes a gradient computed against whatever model version it last
  pulled, with unbounded staleness;
* **stale synchronous parallel** (SSP, Ho et al.): asynchrony bounded by a
  staleness threshold — a worker may run at most ``staleness`` steps ahead
  of the slowest worker.

:class:`AsyncCluster` is a facade over the unified
:class:`~repro.exchange.engine.ExchangeEngine` running the ``async`` or
``ssp`` sync mode. The event model: each worker has a virtual clock that
advances by its (straggler-scaled) compute time per local step; the engine
repeatedly picks the *eligible* worker with the earliest finish time,
applies its (compressed) gradient to the global model immediately, and
hands back compressed deltas of everything that changed since that
worker's last pull. SSP eligibility blocks workers that are
``staleness + 1`` local steps ahead of the slowest worker.

Unlike the BSP cluster there is no shared pull: each worker's delta stream
is individual (their local models legitimately diverge), which is exactly
why the paper notes that loosely-synchronized systems "may require
multiple copies of compressed model deltas" (§3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.base import Compressor
from repro.data.synthetic import SyntheticImageDataset
from repro.distributed.barriers import StragglerSpec
from repro.distributed.defaults import SMALL_TENSOR_THRESHOLD
from repro.exchange.engine import EngineConfig, ExchangeEngine
from repro.nn.schedule import Schedule

__all__ = ["AsyncConfig", "AsyncCluster"]


@dataclass(frozen=True)
class AsyncConfig:
    """Configuration of an asynchronous/SSP cluster.

    ``staleness=None`` means fully asynchronous; ``staleness=k`` bounds a
    worker to at most ``k`` local steps ahead of the slowest worker
    (``k=0`` degenerates to lock-step execution).
    """

    num_workers: int = 4
    batch_size: int = 16
    shard_size: int = 256
    momentum: float = 0.9
    weight_decay: float = 1e-4
    small_tensor_threshold: int = SMALL_TENSOR_THRESHOLD
    augment_pad: int = 2
    seed: int = 0
    staleness: int | None = None
    straggler: StragglerSpec | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.staleness is not None and self.staleness < 0:
            raise ValueError("staleness must be >= 0 or None")

    def engine_config(self) -> EngineConfig:
        """The equivalent unified-engine configuration."""
        return EngineConfig(
            num_workers=self.num_workers,
            batch_size=self.batch_size,
            shard_size=self.shard_size,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            small_tensor_threshold=self.small_tensor_threshold,
            augment_pad=self.augment_pad,
            seed=self.seed,
            topology="single",
            sync_mode="async" if self.staleness is None else "ssp",
            staleness=self.staleness,
            straggler=self.straggler,
        )


class AsyncCluster(ExchangeEngine):
    """Event-driven asynchronous parameter-server trainer (engine facade)."""

    def __init__(
        self,
        model_factory,
        dataset: SyntheticImageDataset,
        scheme: Compressor,
        schedule: Schedule,
        config: AsyncConfig | None = None,
    ):
        self.config = config or AsyncConfig()
        super().__init__(
            model_factory, dataset, scheme, schedule, self.config.engine_config()
        )

    @property
    def server(self):
        """The parameter service (historical name)."""
        return self.service

    def evaluate(self, *, test_size: int = 1000) -> float:  # type: ignore[override]
        """Top-1 accuracy of the global model on the held-out set.

        (The engine returns a full :class:`~repro.exchange.engine.EvalResult`;
        this facade preserves the historical float return.)
        """
        return super().evaluate(test_size=test_size).test_accuracy
