"""Asynchronous and stale-synchronous training (paper §2.1).

The paper's background section contrasts synchronous training with two
relaxations it chooses *not* to use, because "asynchronous state change
transmission generally requires more training steps than BSP to train a
model to similar test accuracy":

* **fully asynchronous** (Hogwild-style via a parameter server): a worker
  pushes a gradient computed against whatever model version it last
  pulled, with unbounded staleness;
* **stale synchronous parallel** (SSP, Ho et al.): asynchrony bounded by a
  staleness threshold — a worker may run at most ``staleness`` steps ahead
  of the slowest worker.

:class:`AsyncCluster` reproduces both in the simulator so that the §2.1
claim is measurable (see ``tests/distributed/test_async.py`` and the
barrier benchmark). The event model: each worker has a virtual clock that
advances by its (straggler-scaled) compute time per local step; the
cluster repeatedly picks the *eligible* worker with the earliest finish
time, applies its (compressed) gradient to the global model immediately,
and hands back compressed deltas of everything that changed since that
worker's last pull. SSP eligibility blocks workers that are
``staleness + 1`` local steps ahead of the slowest worker.

Unlike the BSP cluster there is no shared pull: each worker's delta stream
is individual (their local models legitimately diverge), which is exactly
why the paper notes that loosely-synchronized systems "may require
multiple copies of compressed model deltas" (§3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import Compressor
from repro.data.augment import Augmenter
from repro.data.batcher import ShardBatcher
from repro.data.synthetic import SyntheticImageDataset
from repro.distributed.barriers import StragglerSpec
from repro.distributed.server import ParameterServer
from repro.distributed.worker import Worker
from repro.network.traffic import StepTraffic, TrafficMeter
from repro.nn.loss import SoftmaxCrossEntropy, accuracy
from repro.nn.optimizer import MomentumSGD
from repro.nn.schedule import Schedule
from repro.utils.seeding import SeedSequenceFactory

__all__ = ["AsyncConfig", "AsyncCluster"]


@dataclass(frozen=True)
class AsyncConfig:
    """Configuration of an asynchronous/SSP cluster.

    ``staleness=None`` means fully asynchronous; ``staleness=k`` bounds a
    worker to at most ``k`` local steps ahead of the slowest worker
    (``k=0`` degenerates to lock-step execution).
    """

    num_workers: int = 4
    batch_size: int = 16
    shard_size: int = 256
    momentum: float = 0.9
    weight_decay: float = 1e-4
    small_tensor_threshold: int = 256
    augment_pad: int = 2
    seed: int = 0
    staleness: int | None = None
    straggler: StragglerSpec | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.staleness is not None and self.staleness < 0:
            raise ValueError("staleness must be >= 0 or None")


class AsyncCluster:
    """Event-driven asynchronous parameter-server trainer."""

    def __init__(
        self,
        model_factory,
        dataset: SyntheticImageDataset,
        scheme: Compressor,
        schedule: Schedule,
        config: AsyncConfig | None = None,
    ):
        self.config = config or AsyncConfig()
        self.dataset = dataset
        self.scheme = scheme
        seeds = SeedSequenceFactory(self.config.seed)

        reference = model_factory()
        self.workers: list[Worker] = []
        for worker_id in range(self.config.num_workers):
            model = model_factory()
            model.load_state_dict(reference.state_dict())
            images, labels = dataset.train_shard(worker_id, self.config.shard_size)
            self.workers.append(
                Worker(
                    worker_id,
                    model,
                    ShardBatcher(
                        images, labels, self.config.batch_size, seeds.rng("b", worker_id)
                    ),
                    Augmenter(seeds.rng("a", worker_id), pad=self.config.augment_pad),
                    scheme,
                    small_tensor_threshold=self.config.small_tensor_threshold,
                )
            )
        # The server aggregates one worker's push at a time (divisor 1).
        self.server = ParameterServer(
            reference.parameters(),
            MomentumSGD(self.config.momentum, self.config.weight_decay),
            schedule,
            scheme,
            num_workers=1,
            small_tensor_threshold=self.config.small_tensor_threshold,
        )
        # Per-worker pull contexts: loosely-synchronized replicas need an
        # individual compressed delta stream each (paper §3).
        self._pull_contexts = {
            worker.worker_id: {
                name: (
                    scheme.make_bypass_context(param.shape, key=("apull", worker.worker_id, name))
                    if name in self.server.bypassed
                    else scheme.make_context(param.shape, key=("apull", worker.worker_id, name))
                )
                for name, param in self.server.params.items()
            }
            for worker in self.workers
        }
        # Global state at each worker's last pull: the pull context is fed
        # only the increment since then; its own error buffer carries
        # whatever compression deferred (same contract as the BSP cluster).
        self._last_global = {
            worker.worker_id: self.server.state_dict() for worker in self.workers
        }
        self._clock = {worker.worker_id: 0.0 for worker in self.workers}
        self._local_steps = {worker.worker_id: 0 for worker in self.workers}
        self._eval_model = model_factory()
        self.traffic = TrafficMeter()
        self.update_count = 0

    # -- scheduling --------------------------------------------------------

    def _eligible(self) -> list[int]:
        staleness = self.config.staleness
        if staleness is None:
            return list(self._clock)
        slowest = min(self._local_steps.values())
        return [
            wid
            for wid, steps in self._local_steps.items()
            if steps - slowest <= staleness
        ]

    def _next_worker(self) -> int:
        eligible = self._eligible()
        return min(eligible, key=lambda wid: (self._clock[wid], wid))

    # -- training ----------------------------------------------------------

    def run_updates(self, count: int) -> None:
        """Apply ``count`` asynchronous gradient updates to the global model."""
        for _ in range(count):
            self._one_update()

    def _one_update(self) -> None:
        wid = self._next_worker()
        worker = self.workers[wid]
        batch = worker.train_step()

        multiplier = (
            self.config.straggler.multiplier(wid, self._local_steps[wid])
            if self.config.straggler
            else 1.0
        )
        self._clock[wid] += batch.compute_seconds * multiplier
        self._local_steps[wid] += 1

        # Server applies this worker's (stale) gradient immediately.
        pull_unused = self.server.step([batch.messages], divisor=1)
        self.update_count += 1

        # Individual pull: compress (global - worker_view) deltas for this
        # worker only, via its personal error-feedback contexts.
        record = StepTraffic(
            step=self.update_count - 1,
            pull_fanout=1,
            num_workers=1,
            model_elements=sum(p.size for p in self.server.params.values()),
        )
        for result in batch.messages.values():
            if result is None:
                continue
            record.push_bytes += result.message.wire_size
            record.push_elements += result.message.element_count
        deltas: dict[str, np.ndarray] = {}
        last = self._last_global[wid]
        for name, param in self.server.params.items():
            context = self._pull_contexts[wid][name]
            increment = param.data - last[name]
            last[name] = param.data.copy()
            result = context.compress(increment)
            if result is None:  # deferred (local-steps); buffered in context
                continue
            deltas[name] = result.reconstruction
            record.pull_bytes_shared += result.message.wire_size
            record.pull_elements += result.message.element_count
        worker.apply_pull(deltas)
        self.traffic.record(record)

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, *, test_size: int = 1000) -> float:
        """Top-1 accuracy of the global model on the held-out set."""
        self._eval_model.load_state_dict(self.server.state_dict())
        from repro.distributed.cluster import Cluster

        Cluster._sync_bn_stats(self.workers[0].model, self._eval_model)
        images, labels = self.dataset.test_set(test_size)
        logits = self._eval_model.forward(images, training=False)
        return accuracy(logits, labels)

    def max_staleness_observed(self) -> int:
        """Largest local-step lead any worker currently holds."""
        steps = self._local_steps.values()
        return max(steps) - min(steps)
